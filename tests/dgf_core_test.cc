#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dgf/aggregators.h"
#include "dgf/gfu.h"
#include "dgf/splitting_policy.h"
#include "table/schema.h"
#include "tests/test_util.h"

namespace dgf::core {
namespace {

using table::DataType;
using table::Schema;
using table::Value;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

SplittingPolicy MakePolicy() {
  auto policy = SplittingPolicy::Create(
      {
          {"userId", DataType::kInt64, /*min=*/0, /*interval=*/100},
          {"regionId", DataType::kInt64, 0, 1},
          {"time", DataType::kDate, 15000, 1},
      },
      MeterSchema());
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return *policy;
}

// ---------- SplittingPolicy ----------

TEST(SplittingPolicyTest, ValidatesInput) {
  Schema schema = MeterSchema();
  EXPECT_FALSE(SplittingPolicy::Create({}, schema).ok());
  EXPECT_FALSE(
      SplittingPolicy::Create({{"nope", DataType::kInt64, 0, 1}}, schema).ok());
  EXPECT_FALSE(
      SplittingPolicy::Create({{"userId", DataType::kInt64, 0, 0}}, schema).ok());
  EXPECT_FALSE(
      SplittingPolicy::Create({{"userId", DataType::kInt64, 0, 2.5}}, schema)
          .ok());
  EXPECT_FALSE(SplittingPolicy::Create({{"userId", DataType::kInt64, 0, 10},
                                        {"userId", DataType::kInt64, 0, 10}},
                                       schema)
                   .ok());
  // Double intervals may be fractional.
  Schema dbl({{"x", DataType::kDouble}});
  EXPECT_OK(
      SplittingPolicy::Create({{"x", DataType::kDouble, 0, 0.01}}, dbl).status());
}

TEST(SplittingPolicyTest, CellOfIntegerDim) {
  SplittingPolicy policy = MakePolicy();
  EXPECT_EQ(policy.CellOf(0, Value::Int64(0)), 0);
  EXPECT_EQ(policy.CellOf(0, Value::Int64(99)), 0);
  EXPECT_EQ(policy.CellOf(0, Value::Int64(100)), 1);
  EXPECT_EQ(policy.CellOf(0, Value::Int64(-1)), -1);
  EXPECT_EQ(policy.CellOf(0, Value::Int64(-100)), -1);
  EXPECT_EQ(policy.CellOf(0, Value::Int64(-101)), -2);
}

TEST(SplittingPolicyTest, CellBoundsRoundTrip) {
  SplittingPolicy policy = MakePolicy();
  for (int64_t cell : {-3LL, 0LL, 7LL, 123LL}) {
    const Value lb = policy.CellLowerBound(0, cell);
    const Value ub = policy.CellUpperBound(0, cell);
    EXPECT_EQ(policy.CellOf(0, lb), cell);
    EXPECT_EQ(ub.int64() - lb.int64(), 100);
    // Last value inside the cell still maps to it.
    EXPECT_EQ(policy.CellOf(0, Value::Int64(ub.int64() - 1)), cell);
  }
}

TEST(SplittingPolicyTest, DoubleDimCells) {
  Schema schema({{"discount", DataType::kDouble}});
  ASSERT_OK_AND_ASSIGN(
      auto policy,
      SplittingPolicy::Create({{"discount", DataType::kDouble, 0.0, 0.01}},
                              schema));
  EXPECT_EQ(policy.CellOf(0, Value::Double(0.005)), 0);
  EXPECT_EQ(policy.CellOf(0, Value::Double(0.031)), 3);
  EXPECT_EQ(policy.CellOf(0, Value::Double(-0.001)), -1);
}

TEST(SplittingPolicyTest, DateDimUsesDays) {
  SplittingPolicy policy = MakePolicy();
  EXPECT_EQ(policy.CellOf(2, Value::Date(15000)), 0);
  EXPECT_EQ(policy.CellOf(2, Value::Date(15029)), 29);
  EXPECT_TRUE(policy.CellLowerBound(2, 29).is_date());
}

TEST(SplittingPolicyTest, SerializeRoundTrip) {
  SplittingPolicy policy = MakePolicy();
  ASSERT_OK_AND_ASSIGN(auto copy,
                       SplittingPolicy::Deserialize(policy.Serialize()));
  ASSERT_EQ(copy.num_dims(), policy.num_dims());
  for (int d = 0; d < policy.num_dims(); ++d) {
    EXPECT_EQ(copy.dim(d).column, policy.dim(d).column);
    EXPECT_EQ(copy.dim(d).type, policy.dim(d).type);
    EXPECT_DOUBLE_EQ(copy.dim(d).min, policy.dim(d).min);
    EXPECT_DOUBLE_EQ(copy.dim(d).interval, policy.dim(d).interval);
  }
  EXPECT_EQ(*copy.DimIndex("time"), 2);
}

// ---------- GFU key/value ----------

TEST(GfuKeyTest, EncodeDecodeRoundTrip) {
  GfuKey key{{7, -3, 15000}};
  ASSERT_OK_AND_ASSIGN(GfuKey decoded, GfuKey::Decode(key.Encode(), 3));
  EXPECT_EQ(decoded, key);
  EXPECT_EQ(key.ToString(), "7_-3_15000");
}

TEST(GfuKeyTest, EncodingOrdersRowMajor) {
  GfuKey a{{1, 5}}, b{{1, 6}}, c{{2, 0}}, d{{-1, 100}};
  EXPECT_LT(a.Encode(), b.Encode());
  EXPECT_LT(b.Encode(), c.Encode());
  EXPECT_LT(d.Encode(), a.Encode());
}

TEST(GfuKeyTest, DecodeRejectsBadSizes) {
  GfuKey key{{1, 2}};
  EXPECT_FALSE(GfuKey::Decode(key.Encode(), 3).ok());
  EXPECT_FALSE(GfuKey::Decode("x", 1).ok());
}

TEST(GfuValueTest, EncodeDecodeRoundTrip) {
  GfuValue value;
  value.header = {1.5, -2.0, 42.0};
  value.record_count = 7;
  value.slices = {{"/f1", 0, 90}, {"/f2", 180, 270}};
  ASSERT_OK_AND_ASSIGN(GfuValue decoded, GfuValue::Decode(value.Encode()));
  EXPECT_EQ(decoded.header, value.header);
  EXPECT_EQ(decoded.record_count, 7u);
  ASSERT_EQ(decoded.slices.size(), 2u);
  EXPECT_EQ(decoded.slices[0], value.slices[0]);
  EXPECT_EQ(decoded.slices[1], value.slices[1]);
}

TEST(GfuValueTest, DecodeRejectsTrailingBytes) {
  GfuValue value;
  value.record_count = 1;
  std::string encoded = value.Encode() + "x";
  EXPECT_FALSE(GfuValue::Decode(encoded).ok());
}

// ---------- Aggregators ----------

TEST(AggSpecTest, ParseForms) {
  ASSERT_OK_AND_ASSIGN(AggSpec sum, AggSpec::Parse("sum(powerConsumed)"));
  EXPECT_EQ(sum.func, AggFunc::kSum);
  EXPECT_EQ(sum.column_a, "powerconsumed");

  ASSERT_OK_AND_ASSIGN(AggSpec count, AggSpec::Parse("COUNT(*)"));
  EXPECT_EQ(count.func, AggFunc::kCount);
  EXPECT_TRUE(count.column_a.empty());

  ASSERT_OK_AND_ASSIGN(AggSpec prod,
                       AggSpec::Parse("sum(l_extendedprice * l_discount)"));
  EXPECT_EQ(prod.func, AggFunc::kSumProduct);
  EXPECT_EQ(prod.column_a, "l_extendedprice");
  EXPECT_EQ(prod.column_b, "l_discount");

  EXPECT_FALSE(AggSpec::Parse("sum").ok());
  EXPECT_FALSE(AggSpec::Parse("frob(x)").ok());
  // avg parses (query-surface only) but is rejected by AggregatorList.
  ASSERT_OK_AND_ASSIGN(AggSpec avg, AggSpec::Parse("avg(x)"));
  EXPECT_EQ(avg.func, AggFunc::kAvg);
}

TEST(AggSpecTest, CanonicalString) {
  ASSERT_OK_AND_ASSIGN(AggSpec spec, AggSpec::Parse("SUM(PowerConsumed)"));
  EXPECT_EQ(spec.ToString(), "sum(powerconsumed)");
  ASSERT_OK_AND_ASSIGN(AggSpec reparsed, AggSpec::Parse(spec.ToString()));
  EXPECT_EQ(reparsed, spec);
}

TEST(AggregatorListTest, UpdateAndMerge) {
  Schema schema = MeterSchema();
  std::vector<AggSpec> specs;
  for (const char* text :
       {"sum(powerConsumed)", "count(*)", "min(powerConsumed)",
        "max(powerConsumed)", "sum(userId*powerConsumed)"}) {
    ASSERT_OK_AND_ASSIGN(AggSpec spec, AggSpec::Parse(text));
    specs.push_back(spec);
  }
  ASSERT_OK_AND_ASSIGN(auto aggs, AggregatorList::Create(specs, schema));

  auto h1 = aggs.Identity();
  table::Row r1 = {Value::Int64(2), Value::Int64(1), Value::Date(15000),
                   Value::Double(3.0)};
  table::Row r2 = {Value::Int64(10), Value::Int64(1), Value::Date(15000),
                   Value::Double(1.5)};
  aggs.Update(&h1, r1);
  aggs.Update(&h1, r2);
  EXPECT_DOUBLE_EQ(h1[0], 4.5);
  EXPECT_DOUBLE_EQ(h1[1], 2.0);
  EXPECT_DOUBLE_EQ(h1[2], 1.5);
  EXPECT_DOUBLE_EQ(h1[3], 3.0);
  EXPECT_DOUBLE_EQ(h1[4], 2 * 3.0 + 10 * 1.5);

  auto h2 = aggs.Identity();
  table::Row r3 = {Value::Int64(1), Value::Int64(2), Value::Date(15001),
                   Value::Double(9.0)};
  aggs.Update(&h2, r3);
  aggs.Merge(&h1, h2);
  EXPECT_DOUBLE_EQ(h1[0], 13.5);
  EXPECT_DOUBLE_EQ(h1[1], 3.0);
  EXPECT_DOUBLE_EQ(h1[2], 1.5);
  EXPECT_DOUBLE_EQ(h1[3], 9.0);
}

TEST(AggregatorListTest, MergeWithIdentityIsNoop) {
  Schema schema = MeterSchema();
  ASSERT_OK_AND_ASSIGN(AggSpec spec, AggSpec::Parse("min(powerConsumed)"));
  ASSERT_OK_AND_ASSIGN(auto aggs, AggregatorList::Create({spec}, schema));
  auto acc = aggs.Identity();
  table::Row row = {Value::Int64(1), Value::Int64(1), Value::Date(0),
                    Value::Double(5.0)};
  aggs.Update(&acc, row);
  aggs.Merge(&acc, aggs.Identity());
  EXPECT_DOUBLE_EQ(acc[0], 5.0);
}

TEST(AggregatorListTest, RejectsStringColumns) {
  Schema schema({{"name", DataType::kString}});
  ASSERT_OK_AND_ASSIGN(AggSpec spec, AggSpec::Parse("sum(name)"));
  EXPECT_FALSE(AggregatorList::Create({spec}, schema).ok());
}

TEST(AggregatorListTest, SerializeRoundTrip) {
  Schema schema = MeterSchema();
  ASSERT_OK_AND_ASSIGN(AggSpec a, AggSpec::Parse("sum(powerConsumed)"));
  ASSERT_OK_AND_ASSIGN(AggSpec b, AggSpec::Parse("count(*)"));
  ASSERT_OK_AND_ASSIGN(auto aggs, AggregatorList::Create({a, b}, schema));
  ASSERT_OK_AND_ASSIGN(auto copy,
                       AggregatorList::Deserialize(aggs.Serialize(), schema));
  EXPECT_EQ(copy.specs().size(), 2u);
  EXPECT_EQ(*copy.IndexOf(a), 0);
  EXPECT_EQ(*copy.IndexOf(b), 1);
  EXPECT_FALSE(copy.IndexOf(AggSpec{AggFunc::kMin, "powerconsumed", ""}).ok());
}

}  // namespace
}  // namespace dgf::core
