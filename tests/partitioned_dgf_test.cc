#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "dgf/dgf_input_format.h"
#include "dgf/partitioned_dgf.h"
#include "kv/mem_kv.h"
#include "tests/test_util.h"

namespace dgf::core {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Schema;
using table::Value;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

struct World {
  std::unique_ptr<ScopedDfs> dfs;
  std::unique_ptr<table::PartitionedTable> table;
  std::unique_ptr<PartitionedDgfIndex> index;
  std::vector<table::Row> rows;
};

World MakeWorld(const std::string& tag) {
  World world;
  world.dfs = std::make_unique<ScopedDfs>("pdgf_" + tag, 16384);
  table::TableDesc desc{"meter", MeterSchema(), table::FileFormat::kText,
                        "/w/meter"};
  auto part = table::PartitionedTable::Create(world.dfs->get(), desc, {"time"});
  EXPECT_TRUE(part.ok());
  world.table = std::move(*part);
  Random rng(71);
  for (int day = 0; day < 6; ++day) {
    for (int i = 0; i < 300; ++i) {
      table::Row row = {Value::Int64(rng.UniformRange(0, 199)),
                        Value::Int64(rng.UniformRange(1, 4)),
                        Value::Date(15000 + day),
                        Value::Double(rng.UniformDouble(0, 10))};
      world.rows.push_back(row);
      EXPECT_OK(world.table->Append(row));
    }
  }
  EXPECT_OK(world.table->Close());

  DgfBuilder::Options base;
  base.dims = {{"userId", DataType::kInt64, 0, 25},
               {"regionId", DataType::kInt64, 0, 1}};
  base.precompute = {"sum(powerConsumed)", "count(*)"};
  base.data_dir = "/w/meter_dgf";
  auto index = PartitionedDgfIndex::Build(
      world.dfs->get(), *world.table, base,
      [](const std::string&) -> Result<std::shared_ptr<kv::KvStore>> {
        return std::shared_ptr<kv::KvStore>(std::make_shared<kv::MemKv>());
      });
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  world.index = std::move(*index);
  return world;
}

query::Predicate BoxPredicate(int64_t u_lo, int64_t u_hi, int64_t t_lo,
                              int64_t t_hi) {
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", Value::Int64(u_lo), true,
                                       Value::Int64(u_hi), false));
  pred.And(query::ColumnRange::Between("time", Value::Date(t_lo), true,
                                       Value::Date(t_hi), false));
  return pred;
}

TEST(PartitionedDgfTest, BuildsOneIndexPerPartition) {
  World world = MakeWorld("build");
  EXPECT_EQ(world.index->num_partitions(), 6);
  ASSERT_OK_AND_ASSIGN(uint64_t size, world.index->IndexSizeBytes());
  EXPECT_GT(size, 0u);
}

TEST(PartitionedDgfTest, RejectsPartitionColumnAsGridDimension) {
  World world = MakeWorld("reject");
  DgfBuilder::Options base;
  base.dims = {{"time", DataType::kDate, 15000, 1}};
  base.data_dir = "/w/meter_dgf2";
  auto bad = PartitionedDgfIndex::Build(
      world.dfs->get(), *world.table, base,
      [](const std::string&) -> Result<std::shared_ptr<kv::KvStore>> {
        return std::shared_ptr<kv::KvStore>(std::make_shared<kv::MemKv>());
      });
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(PartitionedDgfTest, PrunesPartitionsByTimePredicate) {
  World world = MakeWorld("prune");
  query::Predicate pred = BoxPredicate(0, 200, 15001, 15003);
  ASSERT_OK_AND_ASSIGN(auto lookup, world.index->Lookup(pred, true));
  EXPECT_EQ(lookup.partitions_consulted, 2);
  EXPECT_EQ(lookup.partitions_pruned, 4);
}

TEST(PartitionedDgfTest, AggregationMatchesBruteForce) {
  World world = MakeWorld("agg");
  Random rng(72);
  const Schema schema = MeterSchema();
  for (int trial = 0; trial < 6; ++trial) {
    const int64_t u_lo = rng.UniformRange(0, 150);
    const int64_t u_hi = u_lo + rng.UniformRange(1, 199 - u_lo + 1);
    const int64_t t_lo = 15000 + rng.UniformRange(0, 4);
    const int64_t t_hi = t_lo + rng.UniformRange(1, 3);
    query::Predicate pred = BoxPredicate(u_lo, u_hi, t_lo, t_hi);
    ASSERT_OK_AND_ASSIGN(auto lookup, world.index->Lookup(pred, true));

    double sum = lookup.merged.inner_header[0];
    uint64_t count = lookup.merged.inner_records;
    ASSERT_OK_AND_ASSIGN(auto planned,
                         PlanSlicedSplits(world.dfs->get(),
                                          lookup.merged.slices, 16384));
    auto bound = pred.Bind(schema);
    ASSERT_TRUE(bound.ok());
    for (const auto& sliced : planned) {
      ASSERT_OK_AND_ASSIGN(
          auto reader, SliceRecordReader::Open(world.dfs->get(), sliced, schema));
      table::Row row;
      for (;;) {
        ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
        if (!more) break;
        if (bound->Matches(row)) {
          sum += row[3].AsDouble();
          ++count;
        }
      }
    }
    double expected_sum = 0;
    uint64_t expected_count = 0;
    for (const auto& row : world.rows) {
      if (bound->Matches(row)) {
        expected_sum += row[3].AsDouble();
        ++expected_count;
      }
    }
    EXPECT_NEAR(sum, expected_sum, 1e-6 * (1 + std::abs(expected_sum)))
        << pred.ToString();
    EXPECT_EQ(count, expected_count) << pred.ToString();
  }
}

TEST(PartitionedDgfTest, CoversAggregations) {
  World world = MakeWorld("covers");
  ASSERT_OK_AND_ASSIGN(AggSpec sum, AggSpec::Parse("sum(powerConsumed)"));
  ASSERT_OK_AND_ASSIGN(AggSpec min, AggSpec::Parse("min(powerConsumed)"));
  EXPECT_TRUE(world.index->CoversAggregations({sum}));
  EXPECT_FALSE(world.index->CoversAggregations({min}));
}

}  // namespace
}  // namespace dgf::core
