// Failure-injection tests: corrupt on-disk state in targeted ways and check
// that every layer reports structured Corruption/NotFound errors instead of
// crashing or silently returning wrong data.

#include <gtest/gtest.h>

#include <string>

#include "dgf/dgf_builder.h"
#include "dgf/dgf_input_format.h"
#include "dgf/gfu.h"
#include "kv/lsm_kv.h"
#include "kv/mem_kv.h"
#include "kv/sstable.h"
#include "table/rc_format.h"
#include "table/text_format.h"
#include "tests/test_util.h"

namespace dgf {
namespace {

using ::dgf::testing::AssertFlipByte;
using ::dgf::testing::AssertTruncateFile;
using ::dgf::testing::ScopedDfs;

TEST(FailureInjectionTest, SstableTruncatedFooterIsCorruption) {
  ScopedDfs dfs("fi_sst_footer");
  {
    auto writer = kv::SstableWriter::Create(dfs.get(), "/t.sst");
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK((*writer)->Add("key" + std::to_string(1000 + i), "v"));
    }
    ASSERT_OK((*writer)->Finish());
  }
  ASSERT_OK_AND_ASSIGN(auto stat, dfs->Stat("/t.sst"));
  AssertTruncateFile(dfs, "/t.sst", stat.length - 10);
  auto reopened = kv::SstableReader::Open(dfs.get(), "/t.sst");
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST(FailureInjectionTest, LsmTornWalTailIsDropped) {
  // A torn final WAL record (crash mid-write) must not poison recovery:
  // the intact prefix replays, the torn suffix is discarded.
  ScopedDfs dfs("fi_wal");
  kv::LsmKv::Options options;
  options.dfs = dfs.get();
  options.dir = "/kv";
  options.memtable_flush_bytes = 1 << 20;  // keep everything in the WAL
  {
    ASSERT_OK_AND_ASSIGN(auto store, kv::LsmKv::Open(options));
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(store->Put("key" + std::to_string(100 + i), "value"));
    }
  }
  ASSERT_OK_AND_ASSIGN(auto stat, dfs->Stat("/kv/WAL"));
  AssertTruncateFile(dfs, "/kv/WAL", stat.length - 3);  // tear the last record
  ASSERT_OK_AND_ASSIGN(auto store, kv::LsmKv::Open(options));
  ASSERT_OK_AND_ASSIGN(uint64_t count, store->Count());
  EXPECT_EQ(count, 19u);  // all but the torn tail
  EXPECT_EQ(*store->Get("key100"), "value");
}

TEST(FailureInjectionTest, RcColumnCorruptionSurfacesAsError) {
  ScopedDfs dfs("fi_rc");
  table::Schema schema({{"v", table::DataType::kInt64}});
  {
    table::RcFileWriter::Options options;
    options.rows_per_group = 8;
    auto writer = table::RcFileWriter::Create(dfs.get(), "/t.rc", schema,
                                              options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 32; ++i) {
      ASSERT_OK((*writer)->Append({table::Value::Int64(i)}));
    }
    ASSERT_OK((*writer)->Close());
  }
  // Flip a byte inside the first group's column data (past sync + header).
  AssertFlipByte(dfs, "/t.rc", 24);
  fs::FileSplit split{"/t.rc", 0, 1 << 20};
  ASSERT_OK_AND_ASSIGN(auto reader,
                       table::RcSplitReader::Open(dfs.get(), split, schema));
  table::Row row;
  Status st;
  for (;;) {
    auto more = reader->Next(&row);
    if (!more.ok()) {
      st = more.status();
      break;
    }
    if (!*more) break;
  }
  EXPECT_FALSE(st.ok());  // corruption or parse error, never silence
}

TEST(FailureInjectionTest, MalformedRowInTextTableFailsScan) {
  ScopedDfs dfs("fi_text");
  table::Schema schema({{"a", table::DataType::kInt64},
                        {"b", table::DataType::kDouble}});
  {
    auto writer = table::TextFileWriter::Create(dfs.get(), "/t.txt", schema);
    ASSERT_TRUE(writer.ok());
    ASSERT_OK((*writer)->AppendLine("1|2.5"));
    ASSERT_OK((*writer)->AppendLine("oops"));
    ASSERT_OK((*writer)->Close());
  }
  fs::FileSplit split{"/t.txt", 0, 1 << 20};
  ASSERT_OK_AND_ASSIGN(auto reader,
                       table::TextSplitReader::Open(dfs.get(), split, schema));
  table::Row row;
  ASSERT_OK_AND_ASSIGN(bool first, reader->Next(&row));
  EXPECT_TRUE(first);
  auto second = reader->Next(&row);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsCorruption());
}

TEST(FailureInjectionTest, CorruptGfuValueFailsLookup) {
  ScopedDfs dfs("fi_gfu");
  auto store = std::make_shared<kv::MemKv>();
  // Minimal table + index.
  table::TableDesc meter{"m",
                         table::Schema({{"x", table::DataType::kInt64},
                                        {"y", table::DataType::kInt64}}),
                         table::FileFormat::kText, "/w/m"};
  {
    ASSERT_OK_AND_ASSIGN(auto writer,
                         table::TableWriter::Create(dfs.get(), meter));
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(writer->Append(
          {table::Value::Int64(i), table::Value::Int64(i % 5)}));
    }
    ASSERT_OK(writer->Close());
  }
  core::DgfBuilder::Options options;
  options.dims = {{"x", table::DataType::kInt64, 0, 10},
                  {"y", table::DataType::kInt64, 0, 1}};
  options.data_dir = "/w/m_dgf";
  ASSERT_OK_AND_ASSIGN(auto index,
                       core::DgfBuilder::Build(dfs.get(), store, meter, options));
  // Scribble over one GFU value.
  auto it = store->NewIterator();
  it->Seek("G");
  ASSERT_TRUE(it->Valid());
  ASSERT_OK(store->Put(it->key(), "garbage"));

  query::Predicate pred;
  pred.And(query::ColumnRange::Between("x", table::Value::Int64(0), true,
                                       table::Value::Int64(50), false));
  auto lookup = index->Lookup(pred, /*aggregation=*/false);
  EXPECT_FALSE(lookup.ok());
  EXPECT_TRUE(lookup.status().IsCorruption());
}

TEST(FailureInjectionTest, MissingDataFileFailsSliceRead) {
  ScopedDfs dfs("fi_missing");
  std::vector<core::SliceLocation> slices = {{"/ghost.txt", 0, 100}};
  auto planned = core::PlanSlicedSplits(dfs.get(), slices);
  EXPECT_FALSE(planned.ok());
  EXPECT_TRUE(planned.status().IsNotFound());
}

TEST(FailureInjectionTest, BadPolicyMetadataFailsOpen) {
  ScopedDfs dfs("fi_policy");
  auto store = std::make_shared<kv::MemKv>();
  ASSERT_OK(store->Put(core::kMetaPolicyKey, "not,a,policy"));
  ASSERT_OK(store->Put(core::kMetaAggsKey, ""));
  ASSERT_OK(store->Put(core::kMetaDataDirKey, "/x"));
  table::Schema schema({{"x", table::DataType::kInt64}});
  EXPECT_FALSE(core::DgfIndex::Open(dfs.get(), store, schema).ok());
}

}  // namespace
}  // namespace dgf
