#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/hyperloglog.h"
#include "common/random.h"
#include "table/statistics.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"

namespace dgf {
namespace {

using ::dgf::testing::ScopedDfs;

// ---------- HyperLogLog ----------

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll;
  EXPECT_LT(hll.Estimate(), 1.0);
}

TEST(HyperLogLogTest, ExactlyDistinctSmallSets) {
  HyperLogLog hll;
  for (int i = 0; i < 100; ++i) hll.Add("item" + std::to_string(i));
  // Small-range linear counting is near-exact here.
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) hll.Add("key" + std::to_string(i));
  }
  EXPECT_NEAR(hll.Estimate(), 200.0, 10.0);
}

class HllCardinalitySweep : public ::testing::TestWithParam<int> {};

TEST_P(HllCardinalitySweep, WithinFivePercent) {
  const int n = GetParam();
  HyperLogLog hll(12);
  for (int i = 0; i < n; ++i) hll.Add("value_" + std::to_string(i));
  const double estimate = hll.Estimate();
  EXPECT_NEAR(estimate, n, 0.05 * n) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllCardinalitySweep,
                         ::testing::Values(1000, 10000, 100000, 500000));

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), merged(12);
  for (int i = 0; i < 20000; ++i) {
    a.Add("a" + std::to_string(i));
    merged.Add("a" + std::to_string(i));
  }
  for (int i = 0; i < 20000; ++i) {
    b.Add("b" + std::to_string(i));
    merged.Add("b" + std::to_string(i));
  }
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), merged.Estimate(), 1e-9);
  EXPECT_NEAR(a.Estimate(), 40000.0, 2000.0);
}

// ---------- AnalyzeTable ----------

TEST(AnalyzeTableTest, ComputesColumnStats) {
  ScopedDfs dfs("stats_basic", 16384);
  workload::MeterConfig config;
  config.num_users = 500;
  config.num_days = 10;
  config.num_regions = 7;
  config.extra_metrics = 1;
  ASSERT_OK_AND_ASSIGN(auto meter, workload::GenerateMeterTable(
                                       dfs.get(), "/w/meter", config));
  ASSERT_OK_AND_ASSIGN(auto stats, table::AnalyzeTable(dfs.get(), meter));

  EXPECT_EQ(stats.num_rows, static_cast<uint64_t>(config.TotalRows()));
  EXPECT_GT(stats.avg_row_bytes, 10.0);

  ASSERT_OK_AND_ASSIGN(const auto* user, stats.Column("userId"));
  EXPECT_DOUBLE_EQ(user->min, 0);
  EXPECT_DOUBLE_EQ(user->max, 499);
  EXPECT_NEAR(user->distinct, 500, 25);

  ASSERT_OK_AND_ASSIGN(const auto* region, stats.Column("regionId"));
  EXPECT_GE(region->min, 1);
  EXPECT_LE(region->max, 7);
  EXPECT_NEAR(region->distinct, 7, 1);

  ASSERT_OK_AND_ASSIGN(const auto* time, stats.Column("time"));
  EXPECT_NEAR(time->distinct, 10, 1);
  EXPECT_DOUBLE_EQ(time->max - time->min, 9);
}

TEST(AnalyzeTableTest, FeedsPolicyAdvisor) {
  // End-to-end future-work path: ANALYZE -> advisor -> valid policy.
  ScopedDfs dfs("stats_advisor", 16384);
  workload::MeterConfig config;
  config.num_users = 400;
  config.num_days = 8;
  config.extra_metrics = 0;
  ASSERT_OK_AND_ASSIGN(auto meter, workload::GenerateMeterTable(
                                       dfs.get(), "/w/meter", config));
  ASSERT_OK_AND_ASSIGN(auto stats, table::AnalyzeTable(dfs.get(), meter));

  std::vector<core::PolicyAdvisor::DimensionStats> dims;
  for (const char* column : {"userId", "regionId", "time"}) {
    ASSERT_OK_AND_ASSIGN(auto dim, stats.AdvisorDimension(column));
    dims.push_back(dim);
  }
  core::PolicyAdvisor::Options options;
  options.total_records = static_cast<double>(stats.num_rows);
  options.record_bytes = stats.avg_row_bytes;
  core::PolicyAdvisor advisor(dims, options);

  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", table::Value::Int64(10), true,
                                       table::Value::Int64(50), false));
  ASSERT_OK_AND_ASSIGN(auto rec, advisor.Recommend({pred}));
  EXPECT_EQ(rec.dims.size(), 3u);
  // The recommendation is a valid splitting policy for the schema.
  ASSERT_OK(core::SplittingPolicy::Create(rec.dims, meter.schema).status());
}

TEST(AnalyzeTableTest, RejectsStringAdvisorDimension) {
  ScopedDfs dfs("stats_str", 16384);
  workload::MeterConfig config;
  config.num_users = 20;
  config.num_days = 1;
  ASSERT_OK_AND_ASSIGN(auto users, workload::GenerateUserInfoTable(
                                       dfs.get(), "/w/users", config));
  ASSERT_OK_AND_ASSIGN(auto stats, table::AnalyzeTable(dfs.get(), users));
  EXPECT_EQ(stats.AdvisorDimension("userName").status().code(),
            StatusCode::kNotSupported);
  EXPECT_TRUE(stats.Column("ghost").status().IsNotFound());
}

}  // namespace
}  // namespace dgf
