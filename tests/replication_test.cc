// Replication and failover suite: k-way replica placement invariants,
// replica-failover reads under injected faults / checksum corruption /
// degraded clusters, re-replication repair, and the coordinator's one-shot
// replica retry for read sub-queries (including a primary killed provably
// mid-query). Built as its own binary (dgf_replication_tests) so the
// ASan/TSan stages in scripts/check.sh can run exactly this suite.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fs/mini_dfs.h"
#include "query/parser.h"
#include "server/client.h"
#include "table/table.h"
#include "testing/corruption.h"
#include "testing/differential.h"
#include "testing/shard_sweep.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"

namespace dgf {
namespace {

using ::dgf::testing::FlipReplicaByte;
using ::dgf::testing::MakeMarkerBatch;
using ::dgf::testing::ResultFromPayload;
using ::dgf::testing::ScopedDfs;
using ::dgf::testing::SeededWorld;
using ::dgf::testing::ShardedCluster;

fs::MiniDfs::Options ReplicatedOptions(int replication,
                                       uint64_t chunk_bytes = 64) {
  fs::MiniDfs::Options options;
  options.block_size = 1 << 20;
  options.replication = replication;
  // Tiny chunks so a handful of bytes spans several checksum chunks.
  options.checksum_chunk_bytes = chunk_bytes;
  return options;
}

// A DFS path (under /pref) whose hash-rotated read preference starts at
// `store` — ReplicaOrder is a pure function of the path, so the preference
// can be chosen before the file exists.
std::string PathPreferring(const std::shared_ptr<fs::MiniDfs>& dfs,
                           int store) {
  for (int i = 0;; ++i) {
    const std::string path = "/pref/f" + std::to_string(i);
    const std::vector<int> order = dfs->ReplicaOrder(path);
    if (!order.empty() && order[0] == store) return path;
  }
}

void WriteFile(const std::shared_ptr<fs::MiniDfs>& dfs,
               const std::string& path, const std::string& content) {
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create(path));
  ASSERT_OK(writer->Append(content));
  ASSERT_OK(writer->Close());
}

std::string ReadAll(const std::shared_ptr<fs::MiniDfs>& dfs,
                    const std::string& path) {
  auto reader = dfs->OpenForRead(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  if (!reader.ok()) return {};
  std::string out;
  auto read = (*reader)->Pread(0, (*reader)->Length(), &out);
  EXPECT_TRUE(read.ok()) << read.ToString();
  return out;
}

std::string ReadLocalCopy(const std::string& local) {
  std::ifstream file(local, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

// Fails every read attempt on whichever store it is installed on; counts
// the attempts it poisoned.
class AlwaysTransientInjector : public fs::ReadFaultInjector {
 public:
  fs::ReadFault NextFault(const std::string& path, uint64_t offset,
                          uint64_t length) override {
    (void)path;
    (void)offset;
    (void)length;
    faults_.fetch_add(1, std::memory_order_relaxed);
    fs::ReadFault fault;
    fault.kind = fs::ReadFault::Kind::kTransientError;
    return fault;
  }

  int faults() const { return faults_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> faults_{0};
};

// ---------------------------------------------------------------------------
// Placement.

TEST(ReplicationTest, PlacementFansOutToKDistinctStores) {
  ScopedDfs dfs("repl_placement", ReplicatedOptions(3));
  const std::string content(300, 'x');  // several 64-byte chunks
  WriteFile(dfs.get(), "/a/data.txt", content);

  // Every store holds a byte-identical copy at its own local path.
  std::vector<std::string> locals;
  for (int store = 0; store < 3; ++store) {
    const std::string local = dfs->StoreLocalPath(store, "/a/data.txt");
    ASSERT_TRUE(std::filesystem::exists(local)) << local;
    EXPECT_EQ(ReadLocalCopy(local), content) << local;
    locals.push_back(local);
  }
  EXPECT_NE(locals[0], locals[1]);
  EXPECT_NE(locals[1], locals[2]);

  // The read preference covers all k distinct stores.
  const std::vector<int> order = dfs->ReplicaOrder("/a/data.txt");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_NE(order[0], order[1]);
  EXPECT_NE(order[1], order[2]);
  EXPECT_NE(order[0], order[2]);

  // Accounting: k replica bytes per logical byte; scrubbing is clean.
  EXPECT_EQ(dfs->TotalBytesWritten(), content.size());
  EXPECT_EQ(dfs->TotalReplicaBytesWritten(), 3 * content.size());
  EXPECT_OK(dfs->VerifyReplicas("/a/data.txt"));
  EXPECT_EQ(ReadAll(dfs.get(), "/a/data.txt"), content);
}

TEST(ReplicationTest, ReplicationOneKeepsLegacyLayout) {
  ScopedDfs dfs("repl_legacy", 1 << 20);
  WriteFile(dfs.get(), "/a/data.txt", "hello");
  // No r0/ indirection: the file lives directly under the root.
  EXPECT_TRUE(std::filesystem::exists(dfs.dir() / "a" / "data.txt"));
  EXPECT_EQ(ReadAll(dfs.get(), "/a/data.txt"), "hello");
}

// ---------------------------------------------------------------------------
// Failover reads.

TEST(ReplicationTest, ReadFailsOverOnInjectedFault) {
  ScopedDfs dfs("repl_fault", ReplicatedOptions(2));
  const std::string path = PathPreferring(dfs.get(), /*store=*/0);
  const std::string content(200, 'y');
  WriteFile(dfs.get(), path, content);

  // Poison only store 0 — the *preferred* replica. The read must retry past
  // the transient budget, fail over to store 1, and still return the exact
  // bytes. Store 1 must never see the injector.
  auto injector = std::make_shared<AlwaysTransientInjector>();
  dfs->SetReadFaultInjector(/*store=*/0, injector);
  EXPECT_EQ(ReadAll(dfs.get(), path), content);
  EXPECT_GE(dfs->TotalReadFailovers(), 1u);
  EXPECT_GE(injector->faults(), 1);

  // Scoping fix regression: clearing the one store's injector clears the
  // whole fault path; a fresh reader prefers store 0 again and succeeds
  // without another failover.
  dfs->SetReadFaultInjector(/*store=*/0, nullptr);
  const uint64_t failovers = dfs->TotalReadFailovers();
  const int faults = injector->faults();
  EXPECT_EQ(ReadAll(dfs.get(), path), content);
  EXPECT_EQ(dfs->TotalReadFailovers(), failovers);
  EXPECT_EQ(injector->faults(), faults);
}

TEST(ReplicationTest, ReadFailsOverOnChecksumMismatch) {
  ScopedDfs dfs("repl_crc", ReplicatedOptions(2));
  const std::string path = PathPreferring(dfs.get(), /*store=*/0);
  std::string content;
  for (int i = 0; i < 50; ++i) content += "chunked-content-";
  WriteFile(dfs.get(), path, content);

  // Corrupt one byte of the preferred store's copy behind the DFS's back.
  ASSERT_OK(FlipReplicaByte(dfs.get(), /*store=*/0, path, /*at=*/100));

  // The read detects the chunk-checksum mismatch, abandons the corrupt
  // replica, and serves the intact sibling — bytes exact, corruption
  // counted, never silently wrong data.
  EXPECT_EQ(ReadAll(dfs.get(), path), content);
  EXPECT_GE(dfs->TotalChecksumFailures(), 1u);
  EXPECT_GE(dfs->TotalReadFailovers(), 1u);

  // Scrubbing sees what the read saw.
  const Status scrub = dfs->VerifyReplicas(path);
  EXPECT_TRUE(scrub.IsCorruption()) << scrub.ToString();
}

TEST(ReplicationTest, DegradedReadsDownToLastReplicaThenStructuredError) {
  ScopedDfs dfs("repl_degraded", ReplicatedOptions(3));
  const std::string content(150, 'z');
  WriteFile(dfs.get(), "/d/file.txt", content);

  // k-1 stores die (processes, not disks): reads keep working off whatever
  // single replica survives.
  ASSERT_OK(dfs->KillStore(0));
  ASSERT_OK(dfs->KillStore(1));
  EXPECT_EQ(ReadAll(dfs.get(), "/d/file.txt"), content);

  // All k dead: a structured error, not a crash or partial data.
  ASSERT_OK(dfs->KillStore(2));
  ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead("/d/file.txt"));
  std::string out;
  const Status read = reader->Pread(0, content.size(), &out);
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.IsIOError()) << read.ToString();

  // Revival restores service with no repair needed (data was never lost).
  ASSERT_OK(dfs->ReviveStore(0));
  ASSERT_OK(dfs->ReviveStore(1));
  ASSERT_OK(dfs->ReviveStore(2));
  EXPECT_EQ(ReadAll(dfs.get(), "/d/file.txt"), content);
}

// ---------------------------------------------------------------------------
// Re-replication.

TEST(ReplicationTest, ReReplicateRepairsWipedStore) {
  ScopedDfs dfs("repl_repair", ReplicatedOptions(2));
  const std::string content(500, 'a');
  WriteFile(dfs.get(), "/r/before.txt", content);

  // Store 1 loses its disk; a file written while it is gone lands only on
  // store 0 and is born under-replicated.
  ASSERT_OK(dfs->KillStore(1, /*wipe_data=*/true));
  WriteFile(dfs.get(), "/r/during.txt", content);
  EXPECT_FALSE(
      std::filesystem::exists(dfs->StoreLocalPath(1, "/r/during.txt")));
  EXPECT_EQ(ReadAll(dfs.get(), "/r/before.txt"), content);

  // The store returns empty; ReReplicate repairs both files from store 0
  // and scrubbing proves the copies.
  ASSERT_OK(dfs->ReviveStore(1));
  ASSERT_OK_AND_ASSIGN(uint64_t repaired, dfs->ReReplicate());
  EXPECT_GE(repaired, 2u);
  for (const std::string path : {"/r/before.txt", "/r/during.txt"}) {
    EXPECT_OK(dfs->VerifyReplicas(path));
    EXPECT_EQ(ReadLocalCopy(dfs->StoreLocalPath(1, path)), content) << path;
    EXPECT_EQ(dfs->ReplicaOrder(path).size(), 2u) << path;
  }
}

TEST(ReplicationTest, OpenWriterIsNeverRepairedUntilSealed) {
  ScopedDfs dfs("repl_open_writer", ReplicatedOptions(2));
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/w/log"));
  ASSERT_OK(writer->Append("aaaa"));

  // The write pipeline loses store 1's disk mid-file. Repairing the open
  // file now would leave a copy the pipeline no longer extends — it must be
  // skipped until the writer seals it.
  ASSERT_OK(dfs->KillStore(1, /*wipe_data=*/true));
  ASSERT_OK(dfs->ReviveStore(1));
  ASSERT_OK_AND_ASSIGN(uint64_t repaired, dfs->ReReplicate());
  EXPECT_EQ(repaired, 0u);
  EXPECT_FALSE(std::filesystem::exists(dfs->StoreLocalPath(1, "/w/log")));

  // The revived store must not silently rejoin the pipeline either (its
  // old descriptor points at the wiped, unlinked inode).
  ASSERT_OK(writer->Append("bbbb"));
  ASSERT_OK(writer->Close());
  EXPECT_FALSE(std::filesystem::exists(dfs->StoreLocalPath(1, "/w/log")));

  // Sealed, the file is repairable: both copies identical and scrubbed.
  ASSERT_OK_AND_ASSIGN(repaired, dfs->ReReplicate());
  EXPECT_EQ(repaired, 1u);
  EXPECT_EQ(ReadLocalCopy(dfs->StoreLocalPath(1, "/w/log")), "aaaabbbb");
  EXPECT_OK(dfs->VerifyReplicas("/w/log"));
  EXPECT_EQ(ReadAll(dfs.get(), "/w/log"), "aaaabbbb");
}

TEST(ReplicationTest, ColdReopenRebuildsNamespaceFromSurvivingStore) {
  // Managed manually: the DFS is closed, one store directory is destroyed
  // on disk, and a fresh MiniDfs must recover the namespace and repair the
  // lost copies from the survivor.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dgf_test_repl_cold_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  fs::MiniDfs::Options options = ReplicatedOptions(2);
  options.root_dir = dir.string();

  const std::string content(300, 'c');
  {
    ASSERT_OK_AND_ASSIGN(auto dfs, fs::MiniDfs::Open(options));
    auto writer = dfs->Create("/cold/a.txt");
    ASSERT_TRUE(writer.ok());
    ASSERT_OK((*writer)->Append(content));
    ASSERT_OK((*writer)->Close());
  }
  std::filesystem::remove_all(dir / "r0");

  ASSERT_OK_AND_ASSIGN(auto dfs, fs::MiniDfs::Open(options));
  ASSERT_OK_AND_ASSIGN(auto status, dfs->Stat("/cold/a.txt"));
  EXPECT_EQ(status.length, content.size());
  EXPECT_EQ(ReadAll(dfs, "/cold/a.txt"), content);
  ASSERT_OK_AND_ASSIGN(uint64_t repaired, dfs->ReReplicate());
  EXPECT_EQ(repaired, 1u);
  EXPECT_OK(dfs->VerifyReplicas("/cold/a.txt"));
  EXPECT_EQ(ReadLocalCopy(dfs->StoreLocalPath(0, "/cold/a.txt")), content);

  dfs.reset();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Coordinator replica retry.

// Deterministic brake (same pattern as coord_test): while closed, every
// low-level DFS read on the gated shard blocks inside NextFault.
class GateInjector : public fs::ReadFaultInjector {
 public:
  fs::ReadFault NextFault(const std::string& path, uint64_t offset,
                          uint64_t length) override {
    (void)path;
    (void)offset;
    (void)length;
    std::unique_lock<std::mutex> lock(mu_);
    ++blocked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    --blocked_;
    return fs::ReadFault{};
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  void WaitForBlocked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ >= n || open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int blocked_ = 0;
};

double StatValue(const std::vector<std::pair<std::string, double>>& stats,
                 const std::string& name) {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  return -1;
}

struct ReplicatedClusterFixture {
  std::unique_ptr<SeededWorld> world;
  std::unique_ptr<ShardedCluster> cluster;
};

Result<ReplicatedClusterFixture> StartReplicatedCluster(uint64_t seed,
                                                        int num_shards) {
  ReplicatedClusterFixture fixture;
  DGF_ASSIGN_OR_RETURN(auto world, SeededWorld::Build(seed));
  fixture.world = std::make_unique<SeededWorld>(std::move(world));
  ShardedCluster::Options options;
  options.config = fixture.world->config();
  options.dims = fixture.world->dims();
  options.num_shards = num_shards;
  options.replication = 2;
  options.replica_servers = true;
  DGF_ASSIGN_OR_RETURN(fixture.cluster, ShardedCluster::Start(options));
  return fixture;
}

TEST(ReplicationTest, CoordinatorRetriesReadOnReplicaWhenPrimaryIsDead) {
  auto fixture = StartReplicatedCluster(/*seed=*/6, /*num_shards=*/2);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const std::string sql = "SELECT count(*) FROM meterdata";
  auto before = (*client)->Query(sql);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(before->ok()) << server::ResponseStatus(*before).ToString();

  // Primary of shard 0 dies between queries; the next read must transparently
  // come back identical via the shard's replica endpoint.
  fixture->cluster->KillShardPrimary(0);
  auto after = (*client)->Query(sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_TRUE(after->ok()) << server::ResponseStatus(*after).ToString();
  EXPECT_EQ(after->result.rows, before->result.rows);

  const auto stats = fixture->cluster->coordinator()->StatsSnapshot();
  EXPECT_GE(StatValue(stats, "coord.replica_retries"), 1.0);
  EXPECT_GE(StatValue(stats, "coord.replica_successes"), 1.0);

  // Appends are never retried on a replica: a batch whose rows route to the
  // dead primary fails Unavailable instead of splitting brains.
  const auto batch = MakeMarkerBatch(fixture->world->config(), /*rows=*/6);
  auto append = (*client)->Append("meterdata", batch.lines);
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  const Status status = server::ResponseStatus(*append);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
}

TEST(ReplicationTest, CoordinatorRetriesOnReplicaWhenPrimaryDiesMidQuery) {
  auto fixture = StartReplicatedCluster(/*seed=*/6, /*num_shards=*/2);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();

  // Oracle answer for the projection every shard must contribute to.
  const std::string sql = "SELECT userId, powerConsumed FROM meterdata";
  auto query = query::ParseQuery(
      sql, workload::MeterSchema(fixture->world->config()));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto oracle = fixture->world->Oracle(*query);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  auto gate = std::make_shared<GateInjector>();
  fixture->cluster->shard_dfs(1)->SetReadFaultInjector(gate);
  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto id = (*client)->StartQuery(sql);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Shard 1's sub-query is provably mid-scan (pinned at the gate); kill its
  // primary out from under the coordinator. Shutdown half-closes the
  // connection first (then blocks joining the gated worker), so the
  // coordinator sees the death while the scan is still pinned.
  gate->WaitForBlocked(1);
  std::thread killer([&] { fixture->cluster->KillShardPrimary(1); });
  // Hold the gate shut until the coordinator has provably *begun* its
  // replica retry — only then may the (gated) retry scan proceed. Waiting
  // on the blocked-reader count instead would race: the original
  // sub-query's own worker threads can pin more than one read.
  while (StatValue(fixture->cluster->coordinator()->StatsSnapshot(),
                   "coord.replica_retries") < 1.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate->Open();
  auto response = (*client)->Await(*id);
  killer.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << server::ResponseStatus(*response).ToString();

  // The answer is the oracle's, bit for bit — served through the failover.
  auto merged = ResultFromPayload(response->result);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const std::string mismatch =
      dgf::testing::DescribeResultMismatch(*oracle, *merged);
  EXPECT_TRUE(mismatch.empty()) << mismatch;

  const auto stats = fixture->cluster->coordinator()->StatsSnapshot();
  EXPECT_GE(StatValue(stats, "coord.replica_retries"), 1.0);
  EXPECT_GE(StatValue(stats, "coord.replica_successes"), 1.0);
}

}  // namespace
}  // namespace dgf
