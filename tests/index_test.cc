#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "index/bitmap_index.h"
#include "index/compact_index.h"
#include "query/predicate.h"
#include "table/rc_format.h"
#include "table/table.h"
#include "tests/test_util.h"

namespace dgf::index {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Schema;
using table::TableDesc;
using table::Value;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

struct Dataset {
  TableDesc desc;
  std::vector<table::Row> rows;
};

// Time-sorted meter data (the real-world layout), multiple files.
Dataset WriteMeterTable(const ScopedDfs& dfs, int n, uint64_t seed,
                        table::FileFormat format) {
  Dataset data;
  data.desc = TableDesc{"meter", MeterSchema(), format, "/warehouse/meter"};
  Random rng(seed);
  for (int day = 0; day < 5; ++day) {
    for (int i = 0; i < n / 5; ++i) {
      data.rows.push_back({Value::Int64(rng.UniformRange(0, 499)),
                           Value::Int64(rng.UniformRange(1, 3)),
                           Value::Date(15000 + day),
                           Value::Double(rng.UniformDouble(0, 10))});
    }
  }
  table::TableWriter::Options options;
  options.max_file_bytes = 8192;
  options.rc_rows_per_group = 64;
  auto writer = table::TableWriter::Create(dfs.get(), data.desc, options);
  EXPECT_TRUE(writer.ok());
  for (const auto& row : data.rows) EXPECT_OK((*writer)->Append(row));
  EXPECT_OK((*writer)->Close());
  return data;
}

query::Predicate RegionTimePredicate(int64_t region, int64_t day) {
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("regionId", Value::Int64(region)));
  pred.And(query::ColumnRange::Equal("time", Value::Date(day)));
  return pred;
}

// Scans `splits` of `desc` and counts rows matching `pred`.
uint64_t ScanAndCount(const ScopedDfs& dfs, const TableDesc& desc,
                      const std::vector<fs::FileSplit>& splits,
                      const query::Predicate& pred) {
  auto bound = pred.Bind(desc.schema);
  EXPECT_TRUE(bound.ok());
  std::set<std::tuple<std::string, uint64_t, uint64_t>> seen;  // dedupe splits
  uint64_t count = 0;
  for (const auto& split : splits) {
    if (!seen.insert({split.path, split.offset, split.length}).second) continue;
    auto reader = table::OpenSplitReader(dfs.get(), desc, split);
    EXPECT_TRUE(reader.ok());
    table::Row row;
    for (;;) {
      auto more = (*reader)->Next(&row);
      EXPECT_TRUE(more.ok());
      if (!*more) break;
      if (bound->Matches(row)) ++count;
    }
  }
  return count;
}

uint64_t BruteCount(const Dataset& data, const query::Predicate& pred) {
  auto bound = pred.Bind(data.desc.schema);
  EXPECT_TRUE(bound.ok());
  uint64_t count = 0;
  for (const auto& row : data.rows) {
    if (bound->Matches(row)) ++count;
  }
  return count;
}

// ---------- Compact index ----------

class CompactIndexFormatTest
    : public ::testing::TestWithParam<table::FileFormat> {};

TEST_P(CompactIndexFormatTest, LookupFindsAllMatchingRows) {
  ScopedDfs dfs("ci_lookup", /*block_size=*/4096);
  Dataset data = WriteMeterTable(dfs, 2000, 21, GetParam());
  CompactIndex::BuildOptions options;
  options.dims = {"regionId", "time"};
  options.index_dir = "/warehouse/meter_idx";
  options.job.num_reducers = 4;
  options.split_size = 4096;
  ASSERT_OK_AND_ASSIGN(auto index,
                       CompactIndex::Build(dfs.get(), data.desc, options));

  for (int day = 0; day < 5; ++day) {
    query::Predicate pred = RegionTimePredicate(2, 15000 + day);
    ASSERT_OK_AND_ASSIGN(auto lookup, index->Lookup(pred, 4096));
    // Chosen splits must contain every matching row.
    EXPECT_EQ(ScanAndCount(dfs, data.desc, lookup.splits, pred),
              BruteCount(data, pred));
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, CompactIndexFormatTest,
                         ::testing::Values(table::FileFormat::kText,
                                           table::FileFormat::kRcFile),
                         [](const auto& info) {
                           return info.param == table::FileFormat::kText
                                      ? "Text"
                                      : "RcFile";
                         });

TEST(CompactIndexTest, TimeSortedDataFiltersSplits) {
  ScopedDfs dfs("ci_filter", 4096);
  Dataset data = WriteMeterTable(dfs, 3000, 22, table::FileFormat::kText);
  CompactIndex::BuildOptions options;
  options.dims = {"time"};
  options.index_dir = "/warehouse/meter_idx";
  options.split_size = 4096;
  ASSERT_OK_AND_ASSIGN(auto index,
                       CompactIndex::Build(dfs.get(), data.desc, options));

  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("time", Value::Date(15000)));
  ASSERT_OK_AND_ASSIGN(auto lookup, index->Lookup(pred, 4096));
  ASSERT_OK_AND_ASSIGN(auto all_splits,
                       table::GetTableSplits(dfs.get(), data.desc, 4096));
  // Data is time-sorted: one of five days must need far fewer splits.
  EXPECT_LT(lookup.splits.size(), all_splits.size());
  EXPECT_GT(lookup.splits.size(), 0u);
}

TEST(CompactIndexTest, ScatteredValuesFilterNothing) {
  // The paper's TPC-H observation: when every split holds every dimension
  // value, the Compact Index chooses all splits.
  ScopedDfs dfs("ci_scatter", 2048);
  Dataset data;
  data.desc = TableDesc{"t", MeterSchema(), table::FileFormat::kText, "/w/t"};
  table::TableWriter::Options wopts;
  wopts.max_file_bytes = 1ULL << 30;
  ASSERT_OK_AND_ASSIGN(auto writer,
                       table::TableWriter::Create(dfs.get(), data.desc, wopts));
  Random rng(23);
  for (int i = 0; i < 2000; ++i) {
    table::Row row = {Value::Int64(i), Value::Int64(i % 3 + 1),
                      Value::Date(15000 + i % 5),
                      Value::Double(rng.UniformDouble(0, 1))};
    data.rows.push_back(row);
    ASSERT_OK(writer->Append(row));
  }
  ASSERT_OK(writer->Close());

  CompactIndex::BuildOptions options;
  options.dims = {"regionId"};
  options.index_dir = "/w/t_idx";
  options.split_size = 2048;
  ASSERT_OK_AND_ASSIGN(auto index,
                       CompactIndex::Build(dfs.get(), data.desc, options));
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("regionId", Value::Int64(2)));
  ASSERT_OK_AND_ASSIGN(auto lookup, index->Lookup(pred, 2048));
  ASSERT_OK_AND_ASSIGN(auto all_splits,
                       table::GetTableSplits(dfs.get(), data.desc, 2048));
  EXPECT_EQ(lookup.splits.size(), all_splits.size());
}

TEST(CompactIndexTest, IndexSizeGrowsWithDimensionality) {
  // Table 2's phenomenon: more indexed dimensions with many distinct values
  // => far larger index table.
  ScopedDfs dfs("ci_size", 1 << 20);
  Dataset data = WriteMeterTable(dfs, 3000, 24, table::FileFormat::kText);

  CompactIndex::BuildOptions two_dims;
  two_dims.dims = {"regionId", "time"};
  two_dims.index_dir = "/w/idx2";
  ASSERT_OK_AND_ASSIGN(auto index2,
                       CompactIndex::Build(dfs.get(), data.desc, two_dims));

  CompactIndex::BuildOptions three_dims;
  three_dims.dims = {"userId", "regionId", "time"};
  three_dims.index_dir = "/w/idx3";
  ASSERT_OK_AND_ASSIGN(auto index3,
                       CompactIndex::Build(dfs.get(), data.desc, three_dims));

  ASSERT_OK_AND_ASSIGN(uint64_t size2, index2->IndexSizeBytes());
  ASSERT_OK_AND_ASSIGN(uint64_t size3, index3->IndexSizeBytes());
  EXPECT_GT(size3, 5 * size2);
}

TEST(CompactIndexTest, RejectsUnknownDimension) {
  ScopedDfs dfs("ci_unknown");
  Dataset data = WriteMeterTable(dfs, 100, 25, table::FileFormat::kText);
  CompactIndex::BuildOptions options;
  options.dims = {"nope"};
  options.index_dir = "/w/idx";
  EXPECT_FALSE(CompactIndex::Build(dfs.get(), data.desc, options).ok());
}

// ---------- Aggregate index ----------

TEST(AggregateIndexTest, GroupByCountRewrite) {
  ScopedDfs dfs("ai_rewrite", 4096);
  Dataset data = WriteMeterTable(dfs, 2000, 26, table::FileFormat::kText);
  CompactIndex::BuildOptions options;
  options.dims = {"regionId", "time"};
  options.index_dir = "/w/agg_idx";
  options.split_size = 4096;
  ASSERT_OK_AND_ASSIGN(auto index,
                       AggregateIndex::Build(dfs.get(), data.desc, options));

  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("time", Value::Date(15001)));
  exec::JobResult scan;
  ASSERT_OK_AND_ASSIGN(auto groups,
                       index->RewriteGroupByCount(pred, "regionId", &scan));

  // Verify against brute force per region.
  for (const auto& [region_text, count] : groups) {
    query::Predicate check = pred;
    ASSERT_OK_AND_ASSIGN(int64_t region, dgf::ParseInt64(region_text));
    check.And(query::ColumnRange::Equal("regionId", Value::Int64(region)));
    EXPECT_EQ(static_cast<uint64_t>(count), BruteCount(data, check))
        << "region " << region_text;
  }
  uint64_t total = 0;
  for (const auto& [region_text, count] : groups) {
    (void)region_text;
    total += static_cast<uint64_t>(count);
  }
  EXPECT_EQ(total, BruteCount(data, pred));
}

TEST(AggregateIndexTest, RewriteRejectsNonIndexedColumns) {
  ScopedDfs dfs("ai_reject", 4096);
  Dataset data = WriteMeterTable(dfs, 500, 27, table::FileFormat::kText);
  CompactIndex::BuildOptions options;
  options.dims = {"regionId", "time"};
  options.index_dir = "/w/agg_idx";
  ASSERT_OK_AND_ASSIGN(auto index,
                       AggregateIndex::Build(dfs.get(), data.desc, options));

  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("userId", Value::Int64(5)));
  exec::JobResult scan;
  EXPECT_EQ(index->RewriteGroupByCount(pred, "regionId", &scan).status().code(),
            StatusCode::kNotSupported);
  query::Predicate ok_pred;
  EXPECT_EQ(index->RewriteGroupByCount(ok_pred, "userId", &scan).status().code(),
            StatusCode::kNotSupported);
}

// ---------- Bitmap index ----------

TEST(BitmapIndexTest, RequiresRcFile) {
  ScopedDfs dfs("bi_text");
  Dataset data = WriteMeterTable(dfs, 200, 28, table::FileFormat::kText);
  BitmapIndex::BuildOptions options;
  options.dims = {"regionId"};
  options.index_dir = "/w/bidx";
  EXPECT_EQ(BitmapIndex::Build(dfs.get(), data.desc, options).status().code(),
            StatusCode::kNotSupported);
}

TEST(BitmapIndexTest, RowFiltersSelectExactRows) {
  ScopedDfs dfs("bi_rows", 4096);
  Dataset data = WriteMeterTable(dfs, 1500, 29, table::FileFormat::kRcFile);
  BitmapIndex::BuildOptions options;
  options.dims = {"regionId", "time"};
  options.index_dir = "/w/bidx";
  options.job.num_reducers = 4;
  options.split_size = 4096;
  ASSERT_OK_AND_ASSIGN(auto index,
                       BitmapIndex::Build(dfs.get(), data.desc, options));

  query::Predicate pred = RegionTimePredicate(1, 15002);
  ASSERT_OK_AND_ASSIGN(auto lookup, index->Lookup(pred, 4096));
  EXPECT_EQ(lookup.matching_rows, BruteCount(data, pred));

  // Read using the row filters: every returned row must match; total count
  // must equal brute force even without re-applying the predicate.
  uint64_t rows_emitted = 0;
  auto bound = pred.Bind(data.desc.schema);
  ASSERT_TRUE(bound.ok());
  for (const auto& filter : lookup.row_filters) {
    ASSERT_OK_AND_ASSIGN(auto stat, dfs->Stat(filter.file));
    fs::FileSplit whole{filter.file, 0, stat.length};
    ASSERT_OK_AND_ASSIGN(
        auto reader,
        table::RcSplitReader::Open(dfs.get(), whole, data.desc.schema));
    reader->SetRowFilter(filter.blocks);
    table::Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      EXPECT_TRUE(bound->Matches(row));
      ++rows_emitted;
    }
  }
  EXPECT_EQ(rows_emitted, BruteCount(data, pred));
}

}  // namespace
}  // namespace dgf::index
