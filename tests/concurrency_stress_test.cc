// Concurrency hardening tests: snapshot-isolated reads under a concurrent
// appender and a concurrent slice optimizer.
//
// The stress test replays the paper's query templates (aggregation with a
// precomputed header, aggregation falling back to slices, plain slice scans)
// from N reader threads while one thread appends pre-generated meter batches
// and another loops SliceOptimizer::Optimize. Every reader result must equal
// the brute-force oracle answer of ONE published batch prefix — a torn
// result (rows of batch k mixed with GFU headers of batch k+1, or a slice
// file deleted mid-scan) matches no single prefix and fails the run.
//
// Built with -DDGF_SANITIZE=tsan this is the race detector's main workload;
// see scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_index.h"
#include "dgf/dgf_input_format.h"
#include "dgf/slice_optimizer.h"
#include "kv/lsm_kv.h"
#include "query/predicate.h"
#include "server/query_service.h"
#include "table/table.h"
#include "tests/test_util.h"

namespace dgf::core {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Schema;
using table::TableDesc;
using table::Value;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

std::vector<table::Row> MakeRows(int n, uint64_t seed) {
  Random rng(seed);
  std::vector<table::Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(rng.UniformRange(0, 999)),
                    Value::Int64(rng.UniformRange(1, 5)),
                    Value::Date(15000 + rng.UniformRange(0, 9)),
                    Value::Double(rng.UniformDouble(0.0, 50.0))});
  }
  return rows;
}

Status WriteBatchTable(const ScopedDfs& dfs, const TableDesc& desc,
                       const std::vector<table::Row>& rows) {
  DGF_ASSIGN_OR_RETURN(auto writer, table::TableWriter::Create(dfs.get(), desc));
  for (const auto& row : rows) DGF_RETURN_IF_ERROR(writer->Append(row));
  return writer->Close();
}

query::Predicate MeterPredicate(int64_t u_lo, int64_t u_hi, int64_t r_lo,
                                int64_t r_hi, int64_t t_lo, int64_t t_hi) {
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", Value::Int64(u_lo), true,
                                       Value::Int64(u_hi), false));
  pred.And(query::ColumnRange::Between("regionId", Value::Int64(r_lo), true,
                                       Value::Int64(r_hi), false));
  pred.And(query::ColumnRange::Between("time", Value::Date(t_lo), true,
                                       Value::Date(t_hi), false));
  return pred;
}

struct Answer {
  uint64_t count = 0;
  double sum = 0.0;
};

bool AnswersMatch(const Answer& got, const Answer& want) {
  if (got.count != want.count) return false;
  const double tol = 1e-9 * std::max({1.0, std::fabs(got.sum),
                                      std::fabs(want.sum)});
  return std::fabs(got.sum - want.sum) <= tol;
}

Answer BruteForce(const std::vector<table::Row>& rows,
                  const query::Predicate& pred, const Schema& schema) {
  auto bound = pred.Bind(schema);
  EXPECT_TRUE(bound.ok());
  Answer answer;
  for (const auto& row : rows) {
    if (bound->Matches(row)) {
      answer.sum += row[3].AsDouble();
      ++answer.count;
    }
  }
  return answer;
}

/// Evaluates one query template against a pinned snapshot: aggregation-path
/// lookups take sum/count from the precomputed inner headers and scan only
/// boundary slices; scan-path lookups read every slice. The snapshot must
/// stay pinned until the slices are fully read — that pin is exactly what
/// keeps retired files alive.
Result<Answer> EvaluatePinned(const DgfIndex& index,
                              const DgfIndex::Snapshot& snap,
                              const query::Predicate& pred, bool aggregation,
                              const Schema& schema) {
  DGF_ASSIGN_OR_RETURN(DgfIndex::LookupResult lookup,
                       index.Lookup(snap, pred, aggregation));
  Answer answer;
  if (aggregation) {
    answer.sum = lookup.inner_header.empty() ? 0.0 : lookup.inner_header[0];
    answer.count = lookup.inner_records;
  }
  DGF_ASSIGN_OR_RETURN(auto bound, pred.Bind(schema));
  DGF_ASSIGN_OR_RETURN(auto planned,
                       PlanSlicedSplits(index.dfs(), lookup.slices, 4096));
  table::Row row;
  for (const auto& sliced : planned) {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         SliceRecordReader::Open(index.dfs(), sliced, schema));
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      if (bound.Matches(row)) {
        answer.sum += row[3].AsDouble();
        ++answer.count;
      }
    }
  }
  return answer;
}

struct StressWorld {
  static constexpr int kBatches = 5;
  static constexpr int kRowsPerBatch = 150;

  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<DgfIndex> index;
  /// Batch tables 1..kBatches-1, pre-written to the DFS before any thread
  /// starts (the appender only publishes, it does not generate).
  std::vector<TableDesc> pending_batches;
  /// prefix_rows[k] = all rows visible once k batches are published (k >= 1).
  std::vector<std::vector<table::Row>> prefix_rows;
};

Result<StressWorld> BuildStressWorld(const ScopedDfs& dfs) {
  StressWorld world;
  world.prefix_rows.resize(StressWorld::kBatches + 1);

  std::vector<table::Row> base_rows =
      MakeRows(StressWorld::kRowsPerBatch, /*seed=*/101);
  TableDesc base{"meter", MeterSchema(), table::FileFormat::kText,
                 "/warehouse/meter"};
  DGF_RETURN_IF_ERROR(WriteBatchTable(dfs, base, base_rows));
  world.prefix_rows[1] = base_rows;

  for (int k = 1; k < StressWorld::kBatches; ++k) {
    TableDesc batch{"meter_b" + std::to_string(k), MeterSchema(),
                    table::FileFormat::kText,
                    "/staging/meter_b" + std::to_string(k)};
    std::vector<table::Row> rows =
        MakeRows(StressWorld::kRowsPerBatch, /*seed=*/101 + k);
    DGF_RETURN_IF_ERROR(WriteBatchTable(dfs, batch, rows));
    world.pending_batches.push_back(batch);
    world.prefix_rows[k + 1] = world.prefix_rows[k];
    world.prefix_rows[k + 1].insert(world.prefix_rows[k + 1].end(),
                                    rows.begin(), rows.end());
  }

  // Tiny memtable and low run limit: the stress run crosses WAL appends,
  // flushes, and compactions while readers hold LSM snapshots.
  kv::LsmKv::Options kv_options;
  kv_options.dfs = dfs.get();
  kv_options.dir = "/kv/meter";
  kv_options.memtable_flush_bytes = 4096;
  kv_options.max_runs = 3;
  DGF_ASSIGN_OR_RETURN(auto lsm, kv::LsmKv::Open(std::move(kv_options)));
  world.store = std::move(lsm);

  DgfBuilder::Options options;
  options.dims = {{"userId", DataType::kInt64, 0, 100},
                  {"regionId", DataType::kInt64, 0, 1},
                  {"time", DataType::kDate, 15000, 1}};
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir = "/warehouse/meter_dgf";
  options.job.num_reducers = 2;
  options.split_size = 4096;
  DGF_ASSIGN_OR_RETURN(world.index, DgfBuilder::Build(dfs.get(), world.store,
                                                      base, options));
  return world;
}

/// The paper's template shapes at three selectivities; each runs through the
/// precomputed-aggregation path and the slice-scan path.
std::vector<query::Predicate> StressTemplates() {
  std::vector<query::Predicate> templates;
  templates.push_back(MeterPredicate(0, 1000, 1, 6, 15000, 15010));  // all
  templates.push_back(MeterPredicate(0, 700, 1, 4, 15001, 15008));   // medium
  templates.push_back(MeterPredicate(100, 400, 2, 4, 15002, 15006)); // narrow
  return templates;
}

TEST(DgfConcurrencyStressTest, SnapshotReadsNeverTornUnderAppendAndOptimize) {
  ScopedDfs dfs("dgf_stress");
  auto built = BuildStressWorld(dfs);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  StressWorld& world = *built;
  const Schema schema = MeterSchema();
  const std::vector<query::Predicate> templates = StressTemplates();

  // Oracle: the legal answers, one per (published batch count, template).
  std::vector<std::vector<Answer>> expected(StressWorld::kBatches + 1);
  for (int k = 1; k <= StressWorld::kBatches; ++k) {
    for (const query::Predicate& pred : templates) {
      expected[static_cast<size_t>(k)].push_back(
          BruteForce(world.prefix_rows[static_cast<size_t>(k)], pred, schema));
    }
  }
  // Every batch contributes rows to the widest template, so distinct batch
  // prefixes are distinguishable by count alone — a torn read cannot hide.
  for (int k = 1; k < StressWorld::kBatches; ++k) {
    ASSERT_LT(expected[static_cast<size_t>(k)][0].count,
              expected[static_cast<size_t>(k) + 1][0].count);
  }

  // `published` counts batches whose Append has RETURNED. The publish itself
  // (ApplyBatch) happens just before the counter bump, so a reader that
  // pinned between the two may already see one more batch than it read from
  // the counter: the legal window for a query bracketed by [e0, e1] is
  // [e0, min(e1 + 1, kBatches)].
  std::atomic<int> published{1};
  std::atomic<bool> writers_done{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  const auto record_failure = [&](std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(message));
  };

  constexpr int kReaders = 3;
  constexpr int kIterationsPerReader = 14;
  std::vector<std::thread> threads;

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int iter = 0; iter < kIterationsPerReader; ++iter) {
        const size_t t = static_cast<size_t>(r + iter) % templates.size();
        const bool aggregation = ((r + iter) / templates.size()) % 2 == 0;
        const int e0 = published.load(std::memory_order_acquire);
        auto snap = world.index->Pin();
        if (!snap.ok()) {
          record_failure("Pin failed: " + snap.status().ToString());
          return;
        }
        auto got = EvaluatePinned(*world.index, *snap, templates[t],
                                  aggregation, schema);
        const int e1 = published.load(std::memory_order_acquire);
        if (!got.ok()) {
          record_failure("query failed (template " + std::to_string(t) +
                         "): " + got.status().ToString());
          continue;
        }
        const int lo = e0;
        const int hi = std::min(e1 + 1, StressWorld::kBatches);
        bool legal = false;
        for (int k = lo; k <= hi && !legal; ++k) {
          legal = AnswersMatch(*got, expected[static_cast<size_t>(k)][t]);
        }
        if (!legal) {
          record_failure(
              "torn result: template " + std::to_string(t) +
              (aggregation ? " (agg)" : " (scan)") + " count=" +
              std::to_string(got->count) + " sum=" + std::to_string(got->sum) +
              " legal window [" + std::to_string(lo) + ", " +
              std::to_string(hi) + "]");
        }
      }
    });
  }

  threads.emplace_back([&] {
    for (const TableDesc& batch : world.pending_batches) {
      exec::JobRunner::Options job;
      job.num_reducers = 2;
      auto appended = DgfBuilder::Append(world.index.get(), batch, job, 4096);
      if (!appended.ok()) {
        record_failure("Append failed: " + appended.status().ToString());
        break;
      }
      published.fetch_add(1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writers_done.store(true, std::memory_order_release);
  });

  threads.emplace_back([&] {
    int optimize_runs = 0;
    while (!writers_done.load(std::memory_order_acquire) ||
           optimize_runs == 0) {
      auto stats = SliceOptimizer::Optimize(world.index.get(),
                                            /*target_file_bytes=*/1 << 20);
      if (!stats.ok()) {
        record_failure("Optimize failed: " + stats.status().ToString());
        break;
      }
      ++optimize_runs;
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  for (std::thread& thread : threads) thread.join();
  for (const std::string& failure : failures) ADD_FAILURE() << failure;

  // Quiesced final state: every template answers exactly the full oracle,
  // through both paths.
  ASSERT_OK_AND_ASSIGN(DgfIndex::Snapshot snap, world.index->Pin());
  for (size_t t = 0; t < templates.size(); ++t) {
    for (const bool aggregation : {true, false}) {
      auto got =
          EvaluatePinned(*world.index, snap, templates[t], aggregation, schema);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(AnswersMatch(
          *got, expected[StressWorld::kBatches][t]))
          << "template " << t << " agg=" << aggregation << " count="
          << got->count << " want="
          << expected[StressWorld::kBatches][t].count;
    }
  }
}

// Deterministic single-threaded proof of the acceptance criterion: a query
// snapshot pinned before an Append (and a subsequent optimize) keeps
// answering with exactly the pre-append state, while a fresh pin sees the
// post-append state.
TEST(DgfConcurrencyStressTest, PinnedSnapshotImmuneToMidQueryAppend) {
  ScopedDfs dfs("dgf_pin_immune");
  auto built = BuildStressWorld(dfs);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  StressWorld& world = *built;
  const Schema schema = MeterSchema();
  const query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15000, 15010);
  const Answer before = BruteForce(world.prefix_rows[1], pred, schema);
  const Answer after = BruteForce(world.prefix_rows[2], pred, schema);
  ASSERT_LT(before.count, after.count);

  ASSERT_OK_AND_ASSIGN(DgfIndex::Snapshot pinned, world.index->Pin());
  const uint64_t pinned_epoch = pinned.epoch;

  // "Mid-query": the snapshot is pinned, the append and a full slice rewrite
  // land, and only then does the query read its slices.
  ASSERT_OK(DgfBuilder::Append(world.index.get(), world.pending_batches[0], {},
                               4096)
                .status());
  ASSERT_OK(SliceOptimizer::Optimize(world.index.get()).status());

  for (const bool aggregation : {true, false}) {
    auto got = EvaluatePinned(*world.index, pinned, pred, aggregation, schema);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(AnswersMatch(*got, before))
        << "agg=" << aggregation << " count=" << got->count
        << " want=" << before.count;
  }

  ASSERT_OK_AND_ASSIGN(DgfIndex::Snapshot fresh, world.index->Pin());
  EXPECT_GT(fresh.epoch, pinned_epoch);
  for (const bool aggregation : {true, false}) {
    auto got = EvaluatePinned(*world.index, fresh, pred, aggregation, schema);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(AnswersMatch(*got, after))
        << "agg=" << aggregation << " count=" << got->count
        << " want=" << after.count;
  }
}

// Group-commit append pipeline under contention: K threads append through
// QueryService::Append while readers pin snapshots mid-flight. Every append
// call tags its rows with a unique `time` value, so atomicity is directly
// observable: a pinned read must see each call's rows either completely or
// not at all (a torn group shows up as a partial tag count), and the final
// state must hold every call exactly once on top of an intact base table.
TEST(DgfConcurrencyStressTest, GroupCommitAppendsAtomicUnderConcurrency) {
  constexpr int kAppenders = 8;
  constexpr int kCallsPerAppender = 4;
  constexpr int kCalls = kAppenders * kCallsPerAppender;
  constexpr int64_t kTagBase = 15100;  // outside the base table's time range

  ScopedDfs dfs("dgf_group_commit");
  auto built = BuildStressWorld(dfs);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  StressWorld& world = *built;
  const Schema schema = MeterSchema();

  server::QueryService::Options service_options;
  service_options.dfs = dfs.get();
  service_options.max_concurrent = 2;
  service_options.query_worker_threads = 1;
  service_options.split_size = 4096;
  server::QueryService service(std::move(service_options));
  TableDesc base{"meter", schema, table::FileFormat::kText,
                 "/warehouse/meter"};
  service.RegisterTable(base);
  service.RegisterDgfIndex("meter", world.index.get());

  // Call c appends kRowsPerCall[c] rows, all tagged time = kTagBase + c.
  std::vector<std::vector<std::string>> call_lines(kCalls);
  std::vector<uint64_t> call_rows(kCalls);
  {
    Random rng(4242);
    for (int c = 0; c < kCalls; ++c) {
      const int n = 4 + static_cast<int>(rng.Uniform(5));
      call_rows[static_cast<size_t>(c)] = static_cast<uint64_t>(n);
      for (int i = 0; i < n; ++i) {
        table::Row row = {Value::Int64(rng.UniformRange(0, 999)),
                          Value::Int64(rng.UniformRange(1, 5)),
                          Value::Date(kTagBase + c),
                          Value::Double(rng.UniformDouble(0.0, 50.0))};
        call_lines[static_cast<size_t>(c)].push_back(
            table::FormatRowText(row));
      }
    }
  }

  // Scans every appended tag's rows out of one pinned snapshot.
  const auto scan_tags = [&](const DgfIndex::Snapshot& snap)
      -> Result<std::map<int64_t, uint64_t>> {
    const query::Predicate pred =
        MeterPredicate(0, 1000, 1, 6, kTagBase, kTagBase + kCalls);
    DGF_ASSIGN_OR_RETURN(DgfIndex::LookupResult lookup,
                         world.index->Lookup(snap, pred, false));
    DGF_ASSIGN_OR_RETURN(auto bound, pred.Bind(schema));
    DGF_ASSIGN_OR_RETURN(
        auto planned, PlanSlicedSplits(world.index->dfs(), lookup.slices, 4096));
    std::map<int64_t, uint64_t> counts;
    table::Row row;
    for (const auto& sliced : planned) {
      DGF_ASSIGN_OR_RETURN(
          auto reader, SliceRecordReader::Open(world.index->dfs(), sliced,
                                               schema));
      for (;;) {
        DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
        if (!more) break;
        if (bound.Matches(row)) ++counts[row[2].int64()];
      }
    }
    return counts;
  };

  std::atomic<bool> writers_done{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  const auto record_failure = [&](std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(message));
  };

  std::vector<std::thread> threads;
  for (int a = 0; a < kAppenders; ++a) {
    threads.emplace_back([&, a] {
      for (int i = 0; i < kCallsPerAppender; ++i) {
        const int c = a * kCallsPerAppender + i;
        auto appended =
            service.Append("meter", call_lines[static_cast<size_t>(c)]);
        if (!appended.ok()) {
          record_failure("Append call " + std::to_string(c) +
                         " failed: " + appended.status().ToString());
          return;
        }
        if (*appended != call_rows[static_cast<size_t>(c)]) {
          record_failure("Append call " + std::to_string(c) +
                         " acked wrong row count");
        }
      }
    });
  }
  constexpr int kReaders = 2;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!writers_done.load(std::memory_order_acquire)) {
        auto snap = world.index->Pin();
        if (!snap.ok()) {
          record_failure("Pin failed: " + snap.status().ToString());
          return;
        }
        auto tags = scan_tags(*snap);
        if (!tags.ok()) {
          record_failure("tag scan failed: " + tags.status().ToString());
          return;
        }
        for (const auto& [tag, count] : *tags) {
          const auto c = static_cast<size_t>(tag - kTagBase);
          if (c >= call_rows.size() || count != call_rows[c]) {
            record_failure("torn group: tag " + std::to_string(tag) +
                           " shows " + std::to_string(count) + " of " +
                           std::to_string(c < call_rows.size() ? call_rows[c]
                                                               : 0) +
                           " rows");
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (size_t a = 0; a < static_cast<size_t>(kAppenders); ++a) {
    threads[a].join();
  }
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kAppenders; t < threads.size(); ++t) threads[t].join();
  for (const std::string& failure : failures) ADD_FAILURE() << failure;

  // Final state: every call's rows exactly once...
  ASSERT_OK_AND_ASSIGN(DgfIndex::Snapshot snap, world.index->Pin());
  ASSERT_OK_AND_ASSIGN(auto tags, scan_tags(snap));
  ASSERT_EQ(tags.size(), static_cast<size_t>(kCalls));
  for (int c = 0; c < kCalls; ++c) {
    EXPECT_EQ(tags[kTagBase + c], call_rows[static_cast<size_t>(c)])
        << "call " << c;
  }
  // ...on top of an intact base table, through both query paths.
  const query::Predicate base_pred =
      MeterPredicate(0, 1000, 1, 6, 15000, 15010);
  const Answer base_answer = BruteForce(world.prefix_rows[1], base_pred,
                                        schema);
  for (const bool aggregation : {true, false}) {
    auto got =
        EvaluatePinned(*world.index, snap, base_pred, aggregation, schema);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(AnswersMatch(*got, base_answer)) << "agg=" << aggregation;
  }
  // The pipeline actually grouped: all calls published in STRICTLY fewer
  // flushes than calls. With 8 appenders racing, some call always lands
  // while a leader is staging and rides that leader's flush; flushes ==
  // calls would mean the double-buffered pipeline never coalesced at all.
  uint64_t flushes = 0, batches = 0;
  double staging_s = -1, reorg_s = -1;
  for (const auto& [name, value] : service.StatsSnapshot()) {
    if (name == "appends.flushes") flushes = static_cast<uint64_t>(value);
    if (name == "appends.batches") batches = static_cast<uint64_t>(value);
    if (name == "appends.staging_s") staging_s = value;
    if (name == "appends.reorg_s") reorg_s = value;
  }
  EXPECT_EQ(batches, static_cast<uint64_t>(kCalls));
  EXPECT_GE(flushes, 1u);
  EXPECT_LT(flushes, batches);
  // Both pipeline stages ran and were accounted (the bench's overlap
  // evidence flows from these counters).
  EXPECT_GT(staging_s, 0.0);
  EXPECT_GT(reorg_s, 0.0);
}

}  // namespace
}  // namespace dgf::core
