// Shard coordinator tests: shard-map partitioning, exact cross-shard merge
// (including the avg -> sum + count rewrite) against the differential
// oracle, and the failure policy — a dead endpoint fails fast, a hung shard
// is declared dead within the response timeout, a shard killed mid-query
// yields a structured Unavailable (never a silent partial result), and
// coordinator-level CANCEL and deadline expiry fan out to every shard.
//
// Built as its own binary (dgf_coord_tests) so the sanitizer stages in
// scripts/check.sh can run exactly the coordinator suite.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "coord/coordinator.h"
#include "coord/shard_map.h"
#include "fs/mini_dfs.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "table/schema.h"
#include "table/value.h"
#include "testing/differential.h"
#include "testing/shard_sweep.h"
#include "workload/meter_gen.h"

namespace dgf::coord {
namespace {

using dgf::testing::DescribeResultMismatch;
using dgf::testing::SeededWorld;
using dgf::testing::ShardedCluster;
using server::Response;
using server::ServerClient;

// ---------------------------------------------------------------------------
// ShardMap partitioning.

TEST(ShardMapTest, ByTimeRangeCoversEveryDayWithContiguousBands) {
  ShardMap map = ShardMap::ByTimeRange("time", 100, 129, 4);
  EXPECT_EQ(map.num_shards(), 4);
  EXPECT_EQ(map.column(), "time");
  ASSERT_EQ(map.cuts().size(), 3u);
  for (size_t i = 1; i < map.cuts().size(); ++i) {
    EXPECT_LT(map.cuts()[i - 1], map.cuts()[i]);
  }
  // Every day maps to exactly one shard, in non-decreasing band order, and
  // every shard owns at least one day.
  std::vector<int> days_owned(4, 0);
  int prev = 0;
  for (int64_t day = 100; day <= 129; ++day) {
    const int shard = map.ShardForValue(day);
    ASSERT_GE(shard, prev);
    ASSERT_LT(shard, 4);
    prev = shard;
    ++days_owned[static_cast<size_t>(shard)];
  }
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GE(days_owned[static_cast<size_t>(shard)], 1) << shard;
  }
  // Outer shards are unbounded, so out-of-range values still route.
  EXPECT_EQ(map.ShardForValue(-1000), 0);
  EXPECT_EQ(map.ShardForValue(1000000), 3);
  EXPECT_FALSE(map.LowerBound(0).has_value());
  EXPECT_FALSE(map.UpperBound(3).has_value());
  ASSERT_TRUE(map.UpperBound(0).has_value());
  ASSERT_TRUE(map.LowerBound(3).has_value());
}

TEST(ShardMapTest, RequestedShardsClampToDayCount) {
  ShardMap tiny = ShardMap::ByTimeRange("time", 5, 7, 16);
  EXPECT_EQ(tiny.num_shards(), 3);
  ShardMap one = ShardMap::ByTimeRange("time", 9, 9, 4);
  EXPECT_EQ(one.num_shards(), 1);
  EXPECT_TRUE(one.cuts().empty());
}

TEST(ShardMapTest, RestrictSkipsBandsTheQueryCannotTouch) {
  workload::MeterConfig config;
  config.extra_metrics = 0;
  const table::Schema schema = workload::MeterSchema(config);
  const int64_t first = config.start_day;
  const int64_t last = config.start_day + config.num_days - 1;
  ShardMap map = ShardMap::ByTimeRange("time", first, last, 3);

  // A query pinned to the first day intersects only shard 0.
  auto q = query::ParseQuery("SELECT count(*) FROM meterdata WHERE time = '" +
                                 table::FormatDate(first) + "'",
                             schema);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(map.Restrict(*q, 0).has_value());
  EXPECT_FALSE(map.Restrict(*q, 1).has_value());
  EXPECT_FALSE(map.Restrict(*q, 2).has_value());

  // An unconstrained query intersects every shard.
  auto all = query::ParseQuery("SELECT count(*) FROM meterdata", schema);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  for (int shard = 0; shard < map.num_shards(); ++shard) {
    EXPECT_TRUE(map.Restrict(*all, shard).has_value()) << shard;
  }
}

// ---------------------------------------------------------------------------
// Harness helpers.

// Read-fault injector used as a deterministic brake: while closed, every
// low-level DFS read on the gated shard blocks inside NextFault, so a
// fanned-out sub-query is provably in flight when the test overloads,
// cancels, kills, or times out the shard.
class GateInjector : public fs::ReadFaultInjector {
 public:
  fs::ReadFault NextFault(const std::string& path, uint64_t offset,
                          uint64_t length) override {
    (void)path;
    (void)offset;
    (void)length;
    std::unique_lock<std::mutex> lock(mu_);
    ++blocked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    --blocked_;
    return fs::ReadFault{};
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  /// Blocks until at least `n` reads are held at the gate.
  void WaitForBlocked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ >= n || open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int blocked_ = 0;
};

// A projection has no aggregate-only shortcut, so it reliably reaches the
// DFS read path where GateInjector can hold it.
std::string FullProjectionSql() {
  return "SELECT userId, powerConsumed FROM meterdata";
}

struct ClusterFixture {
  std::unique_ptr<SeededWorld> world;
  std::unique_ptr<ShardedCluster> cluster;
};

Result<ClusterFixture> StartCluster(uint64_t seed, int num_shards,
                                    double shard_response_timeout = 30.0) {
  ClusterFixture fixture;
  DGF_ASSIGN_OR_RETURN(auto world, SeededWorld::Build(seed));
  fixture.world = std::make_unique<SeededWorld>(std::move(world));
  ShardedCluster::Options options;
  options.config = fixture.world->config();
  options.dims = fixture.world->dims();
  options.num_shards = num_shards;
  options.shard_response_timeout_seconds = shard_response_timeout;
  DGF_ASSIGN_OR_RETURN(fixture.cluster, ShardedCluster::Start(options));
  return fixture;
}

Result<query::QueryResult> ResultFromResponse(const Response& response) {
  query::QueryResult result;
  result.schema = response.result.schema;
  result.rows.reserve(response.result.rows.size());
  for (const std::string& line : response.result.rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row,
                         table::ParseRowText(line, result.schema));
    result.rows.push_back(std::move(row));
  }
  result.stats = response.result.stats;
  return result;
}

double StatValue(const std::vector<std::pair<std::string, double>>& stats,
                 const std::string& name) {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  return -1;
}

int64_t SingleCount(const Response& response) {
  if (response.result.rows.size() != 1) return -1;
  return std::strtoll(response.result.rows[0].c_str(), nullptr, 10);
}

int ReservedDeadPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// ---------------------------------------------------------------------------
// Exact merge across shards, against the oracle.

TEST(CoordinatorTest, CrossShardMergeMatchesOracleIncludingAvg) {
  auto fixture = StartCluster(/*seed=*/4, /*num_shards=*/3);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const table::Schema& schema = fixture->world->meter().schema;
  const workload::MeterConfig& config = fixture->world->config();
  const std::string mid_date =
      table::FormatDate(config.start_day + config.num_days / 2);
  // Every query spans more than one time band, so the merge does real work:
  // partial avg must come back as sum + count, min/max fold, group keys
  // repeat across shards.
  const std::vector<std::string> sqls = {
      "SELECT avg(powerConsumed), min(powerConsumed), max(powerConsumed), "
      "count(*) FROM meterdata",
      "SELECT sum(powerConsumed), count(*) FROM meterdata WHERE time >= '" +
          table::FormatDate(config.start_day) + "'",
      "SELECT regionId, sum(powerConsumed), count(*) FROM meterdata "
      "GROUP BY regionId",
      "SELECT time, avg(powerConsumed) FROM meterdata WHERE time <= '" +
          mid_date + "' GROUP BY time",
      "SELECT userId, time, powerConsumed FROM meterdata WHERE userId <= 3",
  };
  for (const std::string& sql : sqls) {
    auto parsed = query::ParseQuery(sql, schema);
    ASSERT_TRUE(parsed.ok()) << sql << ": " << parsed.status().ToString();
    auto oracle = fixture->world->Oracle(*parsed);
    ASSERT_TRUE(oracle.ok()) << sql << ": " << oracle.status().ToString();
    auto response = (*client)->Query(sql);
    ASSERT_TRUE(response.ok()) << sql << ": " << response.status().ToString();
    ASSERT_TRUE(response->ok())
        << sql << ": " << server::ResponseStatus(*response).ToString();
    auto sharded = ResultFromResponse(*response);
    ASSERT_TRUE(sharded.ok()) << sql << ": " << sharded.status().ToString();
    EXPECT_EQ(DescribeResultMismatch(*oracle, *sharded), "") << sql;
  }
}

// ---------------------------------------------------------------------------
// Failure policy.

TEST(CoordinatorTest, DeadEndpointFailsFastWithStructuredUnavailable) {
  workload::MeterConfig config;
  config.num_users = 4;
  config.num_days = 4;
  config.extra_metrics = 0;

  Coordinator::Options options;
  options.shard_map = ShardMap::ByTimeRange(
      "time", config.start_day, config.start_day + config.num_days - 1, 2);
  // Ports that were just bound and released: nothing listens there.
  options.shards = {{.host = "127.0.0.1", .port = ReservedDeadPort()},
                    {.host = "127.0.0.1", .port = ReservedDeadPort()}};
  options.connect_timeout_seconds = 0.5;
  Coordinator coordinator(options);
  table::TableDesc meter;
  meter.name = "meterdata";
  meter.schema = workload::MeterSchema(config);
  coordinator.RegisterTable(meter);

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  Stopwatch elapsed;
  ASSERT_TRUE(coordinator
                  .SubmitQuery(1, "SELECT count(*) FROM meterdata", 0, 0,
                               [&](Result<query::QueryResult> result) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 status = result.status();
                                 done = true;
                                 cv.notify_all();
                               })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_NE(status.message().find("unavailable"), std::string::npos)
      << status.ToString();
  // The connect timeout bounds the failure; a blocking connect to a dead
  // host could hang for minutes.
  EXPECT_LT(elapsed.ElapsedSeconds(), 10.0);
}

TEST(CoordinatorTest, HungShardDeclaredDeadWithinResponseTimeout) {
  auto fixture =
      StartCluster(/*seed=*/6, /*num_shards=*/2, /*shard_response_timeout=*/1.5);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  fixture->cluster->shard_dfs(0)->SetReadFaultInjector(gate);
  fixture->cluster->shard_dfs(1)->SetReadFaultInjector(gate);

  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Stopwatch elapsed;
  auto response = (*client)->Query(FullProjectionSql());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const Status status = server::ResponseStatus(*response);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_NE(status.message().find("unresponsive"), std::string::npos)
      << status.ToString();
  EXPECT_LT(elapsed.ElapsedSeconds(), 20.0);
  gate->Open();
}

TEST(CoordinatorTest, ShardKilledMidQueryYieldsUnavailableNotPartialRows) {
  auto fixture = StartCluster(/*seed=*/6, /*num_shards=*/2);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  fixture->cluster->shard_dfs(1)->SetReadFaultInjector(gate);

  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto id = (*client)->StartQuery(FullProjectionSql());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Shard 1 is provably mid-scan; kill its server out from under the
  // coordinator. Shutdown() half-closes the shard's connections first, so
  // the coordinator sees EOF promptly even though the shard-side query is
  // still pinned at the gate.
  gate->WaitForBlocked(1);
  std::thread killer([&] { fixture->cluster->shard_server(1)->Shutdown(); });
  Stopwatch elapsed;
  auto response = (*client)->Await(*id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const Status status = server::ResponseStatus(*response);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_TRUE(status.message().find("died mid-query") != std::string::npos ||
              status.message().find("unavailable") != std::string::npos)
      << status.ToString();
  // No partial result ever leaks out alongside an error.
  EXPECT_TRUE(response->result.rows.empty());
  EXPECT_LT(elapsed.ElapsedSeconds(), 20.0);
  gate->Open();
  killer.join();

  // The cluster stays structured after the loss: queries needing the dead
  // shard fail fast with Unavailable, and the front end itself is healthy.
  auto after = (*client)->Query("SELECT count(*) FROM meterdata");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(server::ResponseStatus(*after).IsUnavailable());
  auto ping = (*client)->Ping();
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_TRUE(ping->ok());
}

TEST(CoordinatorTest, CancelFansOutToEveryShard) {
  auto fixture = StartCluster(/*seed=*/6, /*num_shards=*/2);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  fixture->cluster->shard_dfs(0)->SetReadFaultInjector(gate);
  fixture->cluster->shard_dfs(1)->SetReadFaultInjector(gate);

  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto id = (*client)->StartQuery(FullProjectionSql());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  gate->WaitForBlocked(1);
  ASSERT_TRUE((*client)->StartCancel(*id).ok());
  // Give the coordinator a beat to observe its tripped token and fan the
  // CANCELs out, then release the shards so they can finish cancelled.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  gate->Open();
  auto response = (*client)->Await(*id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const Status status = server::ResponseStatus(*response);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  EXPECT_EQ(StatValue(fixture->cluster->coordinator()->StatsSnapshot(),
                      "queries.cancelled"),
            1.0);
  // At least one shard-side sub-query observed the fanned-out CANCEL.
  double shard_cancelled = 0;
  for (int shard = 0; shard < fixture->cluster->num_shards(); ++shard) {
    shard_cancelled +=
        StatValue(fixture->cluster->shard_service(shard)->StatsSnapshot(),
                  "queries.cancelled");
  }
  EXPECT_GE(shard_cancelled, 1.0);
}

TEST(CoordinatorTest, DeadlineExpiryFansOutAndReportsDeadlineExceeded) {
  auto fixture = StartCluster(/*seed=*/6, /*num_shards=*/2);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  fixture->cluster->shard_dfs(0)->SetReadFaultInjector(gate);
  fixture->cluster->shard_dfs(1)->SetReadFaultInjector(gate);

  auto client = fixture->cluster->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto id = (*client)->StartQuery(FullProjectionSql(), /*deadline_seconds=*/0.4);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  gate->WaitForBlocked(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  gate->Open();
  auto response = (*client)->Await(*id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const Status status = server::ResponseStatus(*response);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(StatValue(fixture->cluster->coordinator()->StatsSnapshot(),
                      "queries.deadline_exceeded"),
            1.0);
}

// ---------------------------------------------------------------------------
// Concurrent cross-shard appends vs pinned readers.

TEST(CoordinatorTest, ConcurrentCrossShardAppendsKeepReadersConsistent) {
  auto fixture = StartCluster(/*seed=*/6, /*num_shards=*/2);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  const workload::MeterConfig& config = fixture->world->config();
  const ShardMap& map = fixture->cluster->shard_map();
  ASSERT_TRUE(map.UpperBound(0).has_value());
  const int64_t band0_last_day = *map.UpperBound(0);
  const int64_t marker_base = config.num_users + 1000;

  auto baseline_client = fixture->cluster->Connect();
  ASSERT_TRUE(baseline_client.ok()) << baseline_client.status().ToString();
  auto baseline = (*baseline_client)->Query("SELECT count(*) FROM meterdata");
  ASSERT_TRUE(baseline.ok() && (*baseline).ok());
  const int64_t base_count = SingleCount(*baseline);
  ASSERT_GT(base_count, 0);

  // Marker rows in FormatRowText form, matching the seeded schema: userId,
  // regionId, time, powerConsumed, then the seed's extra metric columns.
  const int extras =
      fixture->world->meter().schema.num_fields() - 4;
  auto marker_row = [&](int64_t user, int64_t day) {
    std::string row = std::to_string(user) + "|1|" + table::FormatDate(day) +
                      "|2.5";
    for (int i = 0; i < extras; ++i) row += "|0.25";
    return row;
  };

  constexpr int kBatches = 8;
  constexpr int kRowsPerBand = 2;  // per batch; per-shard slices are atomic
  std::atomic<bool> append_failed{false};
  std::thread appender([&] {
    auto client = fixture->cluster->Connect();
    if (!client.ok()) {
      append_failed = true;
      return;
    }
    for (int batch = 0; batch < kBatches; ++batch) {
      std::vector<std::string> rows;
      for (int j = 0; j < kRowsPerBand; ++j) {
        rows.push_back(marker_row(marker_base + batch * 4 + j,
                                  band0_last_day));  // band 0
        rows.push_back(marker_row(marker_base + batch * 4 + 2 + j,
                                  band0_last_day + 1));  // band 1
      }
      auto response = (*client)->Append("meterdata", rows);
      if (!response.ok() || !(*response).ok() ||
          (*response).rows_appended != rows.size()) {
        append_failed = true;
        return;
      }
    }
  });

  const std::string band0_marker_count_sql =
      "SELECT count(*) FROM meterdata WHERE userId >= " +
      std::to_string(marker_base) + " AND time <= '" +
      table::FormatDate(band0_last_day) + "'";
  std::atomic<int> reader_failures{0};
  auto reader = [&] {
    auto client = fixture->cluster->Connect();
    if (!client.ok()) {
      ++reader_failures;
      return;
    }
    int64_t last_total = base_count;
    for (int i = 0; i < 25; ++i) {
      auto total = (*client)->Query("SELECT count(*) FROM meterdata");
      if (!total.ok() || !(*total).ok() || SingleCount(*total) < last_total) {
        ++reader_failures;
        return;
      }
      last_total = SingleCount(*total);
      // Each batch lands kRowsPerBand rows in band 0 atomically (one
      // group-commit per shard), so a reader never sees a torn batch.
      auto markers = (*client)->Query(band0_marker_count_sql);
      if (!markers.ok() || !(*markers).ok() ||
          SingleCount(*markers) % kRowsPerBand != 0) {
        ++reader_failures;
        return;
      }
    }
  };
  std::thread reader_a(reader);
  std::thread reader_b(reader);
  appender.join();
  reader_a.join();
  reader_b.join();
  EXPECT_FALSE(append_failed.load());
  EXPECT_EQ(reader_failures.load(), 0);

  auto final_count = (*baseline_client)->Query("SELECT count(*) FROM meterdata");
  ASSERT_TRUE(final_count.ok() && (*final_count).ok());
  EXPECT_EQ(SingleCount(*final_count),
            base_count + kBatches * kRowsPerBand * 2);
  const auto coord_stats = fixture->cluster->coordinator()->StatsSnapshot();
  EXPECT_EQ(StatValue(coord_stats, "appends.batches"), kBatches);
  EXPECT_EQ(StatValue(coord_stats, "appends.rows"),
            kBatches * kRowsPerBand * 2);
  // Every batch spans both bands, so it split into two shard batches.
  EXPECT_EQ(StatValue(coord_stats, "appends.shard_batches"), kBatches * 2);
}

}  // namespace
}  // namespace dgf::coord
