// DGFIndex with RCFile-format Slices: the paper's "it is easy to expend
// DGFIndex to support other file formats" claim, exercised end-to-end.
// Slices are runs of whole RCFile row groups (the builder forces a group
// boundary at every GFU), so split filtering, slice skipping, incremental
// append, and placement optimization all carry over.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/slice_optimizer.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf::core {
namespace {

using ::dgf::testing::ScopedDfs;

struct RcWorld {
  std::unique_ptr<ScopedDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<DgfIndex> index;
};

RcWorld MakeRcWorld(const std::string& tag) {
  RcWorld world;
  world.dfs = std::make_unique<ScopedDfs>("dgfrc_" + tag, 16384);
  world.config.num_users = 300;
  world.config.num_days = 6;
  world.config.extra_metrics = 2;
  world.config.seed = 81;
  auto meter = workload::GenerateMeterTable(world.dfs->get(), "/w/meter",
                                            world.config);
  EXPECT_TRUE(meter.ok());
  world.meter = *meter;
  world.store = std::make_shared<kv::MemKv>();
  DgfBuilder::Options options;
  options.dims = {{"userId", table::DataType::kInt64, 0, 30},
                  {"regionId", table::DataType::kInt64, 0, 1},
                  {"time", table::DataType::kDate,
                   static_cast<double>(world.config.start_day), 1}};
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir = "/w/meter_dgf_rc";
  options.data_format = table::FileFormat::kRcFile;
  auto index =
      DgfBuilder::Build(world.dfs->get(), world.store, world.meter, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  world.index = std::move(*index);
  return world;
}

std::unique_ptr<query::QueryExecutor> MakeExecutor(RcWorld& world) {
  query::QueryExecutor::Options options;
  options.dfs = world.dfs->get();
  options.split_size = 16384;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  executor->RegisterTable(world.meter);
  executor->RegisterDgfIndex(world.meter.name, world.index.get());
  return executor;
}

TEST(DgfRcFileTest, BuildStoresFormatAndReopens) {
  RcWorld world = MakeRcWorld("open");
  EXPECT_EQ(world.index->data_format(), table::FileFormat::kRcFile);
  ASSERT_OK_AND_ASSIGN(
      auto reopened,
      DgfIndex::Open(world.dfs->get(), world.store, world.meter.schema));
  EXPECT_EQ(reopened->data_format(), table::FileFormat::kRcFile);
  EXPECT_EQ(reopened->DataDesc().format, table::FileFormat::kRcFile);
}

TEST(DgfRcFileTest, QueriesAgreeWithScanAcrossSelectivities) {
  RcWorld world = MakeRcWorld("agree");
  auto executor = MakeExecutor(world);
  for (auto sel : {workload::Selectivity::kPoint,
                   workload::Selectivity::kFivePercent,
                   workload::Selectivity::kTwelvePercent}) {
    query::Query q = workload::MakeMeterQuery(
        world.config, workload::MeterQueryKind::kAggregation, sel, 5);
    ASSERT_OK_AND_ASSIGN(auto via_dgf,
                         executor->Execute(q, query::AccessPath::kDgfIndex));
    ASSERT_OK_AND_ASSIGN(auto via_scan,
                         executor->Execute(q, query::AccessPath::kFullScan));
    ASSERT_EQ(via_dgf.rows.size(), 1u);
    EXPECT_NEAR(via_dgf.rows[0][0].dbl(), via_scan.rows[0][0].dbl(),
                1e-6 * (1 + std::abs(via_scan.rows[0][0].dbl())))
        << workload::SelectivityName(sel);
  }
}

TEST(DgfRcFileTest, GroupByThroughRcSlices) {
  RcWorld world = MakeRcWorld("gb");
  auto executor = MakeExecutor(world);
  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kGroupBy,
      workload::Selectivity::kTwelvePercent, 6);
  ASSERT_OK_AND_ASSIGN(auto via_dgf,
                       executor->Execute(q, query::AccessPath::kDgfIndex));
  ASSERT_OK_AND_ASSIGN(auto via_scan,
                       executor->Execute(q, query::AccessPath::kFullScan));
  ASSERT_EQ(via_dgf.rows.size(), via_scan.rows.size());
  for (size_t i = 0; i < via_scan.rows.size(); ++i) {
    EXPECT_EQ(via_dgf.rows[i][0].ToText(), via_scan.rows[i][0].ToText());
    EXPECT_NEAR(via_dgf.rows[i][1].dbl(), via_scan.rows[i][1].dbl(),
                1e-6 * (1 + std::abs(via_scan.rows[i][1].dbl())));
  }
  // Slice skipping still pays off on RCFile data.
  EXPECT_LT(via_dgf.stats.records_read, via_scan.stats.records_read);
}

TEST(DgfRcFileTest, AppendAndAddAggregationWork) {
  RcWorld world = MakeRcWorld("append");
  // Append a fresh-day batch.
  workload::MeterConfig batch = world.config;
  batch.start_day = world.config.start_day + world.config.num_days;
  batch.num_days = 2;
  batch.seed = 82;
  ASSERT_OK_AND_ASSIGN(auto staged, workload::GenerateMeterTable(
                                        world.dfs->get(), "/staging/rc",
                                        batch));
  ASSERT_OK(DgfBuilder::Append(world.index.get(), staged).status());

  // Extend headers with a new UDF (re-scans the RC slices).
  ASSERT_OK_AND_ASSIGN(AggSpec max_spec, AggSpec::Parse("max(powerConsumed)"));
  ASSERT_OK(world.index->AddAggregation(max_spec));
  EXPECT_TRUE(world.index->CoversAggregations({max_spec}));

  auto executor = MakeExecutor(world);
  query::Query q;
  q.table = world.meter.name;
  q.select.push_back(query::SelectItem::Aggregation(max_spec));
  q.where.And(query::ColumnRange::Between(
      "time", table::Value::Date(batch.start_day), true,
      table::Value::Date(batch.start_day + 2), false));
  ASSERT_OK_AND_ASSIGN(auto via_dgf,
                       executor->Execute(q, query::AccessPath::kDgfIndex));
  // The appended batch lives only in the index-managed storage, so compare
  // against the generator directly rather than a base-table scan.
  double expected = -1;
  ASSERT_OK(workload::ForEachMeterRow(batch, [&](const table::Row& row) {
    expected = std::max(expected, row[3].AsDouble());
    return Status::OK();
  }));
  EXPECT_NEAR(via_dgf.rows[0][0].dbl(), expected, 1e-9);
}

TEST(DgfRcFileTest, SliceOptimizerHandlesRcLayout) {
  RcWorld world = MakeRcWorld("opt");
  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kFivePercent, 7);
  auto executor = MakeExecutor(world);
  ASSERT_OK_AND_ASSIGN(auto before,
                       executor->Execute(q, query::AccessPath::kDgfIndex));
  ASSERT_OK_AND_ASSIGN(auto stats, SliceOptimizer::Optimize(world.index.get()));
  EXPECT_EQ(stats.slices_after, stats.gfus);
  ASSERT_OK_AND_ASSIGN(auto after,
                       executor->Execute(q, query::AccessPath::kDgfIndex));
  EXPECT_NEAR(after.rows[0][0].dbl(), before.rows[0][0].dbl(),
              1e-6 * (1 + std::abs(before.rows[0][0].dbl())));
}

}  // namespace
}  // namespace dgf::core
