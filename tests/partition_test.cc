#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "table/partition.h"
#include "tests/test_util.h"

namespace dgf::table {
namespace {

using ::dgf::testing::ScopedDfs;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

Row MakeRow(int64_t user, int64_t region, int64_t day, double power) {
  return {Value::Int64(user), Value::Int64(region), Value::Date(day),
          Value::Double(power)};
}

TEST(PartitionTest, RoutesRowsToValueDirectories) {
  ScopedDfs dfs("part_route");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(auto table,
                       PartitionedTable::Create(dfs.get(), desc, {"time"}));
  for (int day = 0; day < 3; ++day) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(table->Append(MakeRow(i, 1, 15000 + day, 1.0)));
    }
  }
  ASSERT_OK(table->Close());
  EXPECT_EQ(table->NumPartitions(), 3);
  auto dirs = table->PartitionDirs();
  ASSERT_EQ(dirs.size(), 3u);
  EXPECT_EQ(dirs[0], "/w/meter/time=2011-01-26");  // day 15000
}

TEST(PartitionTest, MultiLevelPartitioning) {
  ScopedDfs dfs("part_multi");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(
      auto table,
      PartitionedTable::Create(dfs.get(), desc, {"time", "regionId"}));
  for (int day = 0; day < 2; ++day) {
    for (int region = 1; region <= 4; ++region) {
      ASSERT_OK(table->Append(MakeRow(region, region, 15000 + day, 1.0)));
    }
  }
  ASSERT_OK(table->Close());
  EXPECT_EQ(table->NumPartitions(), 8);  // 2 days x 4 regions
}

TEST(PartitionTest, PruningSkipsNonMatchingPartitions) {
  ScopedDfs dfs("part_prune");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(
      auto table,
      PartitionedTable::Create(dfs.get(), desc, {"time", "regionId"}));
  Random rng(3);
  int matching_rows = 0;
  for (int day = 0; day < 5; ++day) {
    for (int region = 1; region <= 3; ++region) {
      for (int i = 0; i < 20; ++i) {
        ASSERT_OK(table->Append(
            MakeRow(rng.UniformRange(0, 99), region, 15000 + day, 1.0)));
        if (day == 2 && region == 2) ++matching_rows;
      }
    }
  }
  ASSERT_OK(table->Close());

  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("time", Value::Date(15002)));
  pred.And(query::ColumnRange::Equal("regionId", Value::Int64(2)));
  int64_t pruned = 0;
  ASSERT_OK_AND_ASSIGN(auto splits, table->PrunedSplits(pred, 0, &pruned));
  EXPECT_EQ(pruned, 14);  // 15 partitions, 1 survives

  // Surviving splits hold exactly the matching rows.
  int rows = 0;
  for (const auto& split : splits) {
    TableDesc part = desc;
    ASSERT_OK_AND_ASSIGN(auto reader, OpenSplitReader(dfs.get(), part, split));
    Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      EXPECT_EQ(row[1].int64(), 2);
      EXPECT_EQ(row[2].int64(), 15002);
      ++rows;
    }
  }
  EXPECT_EQ(rows, matching_rows);
}

TEST(PartitionTest, RangePredicatePrunesPartially) {
  ScopedDfs dfs("part_range");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(auto table,
                       PartitionedTable::Create(dfs.get(), desc, {"time"}));
  for (int day = 0; day < 10; ++day) {
    ASSERT_OK(table->Append(MakeRow(day, 1, 15000 + day, 1.0)));
  }
  ASSERT_OK(table->Close());
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("time", Value::Date(15003), true,
                                       Value::Date(15006), false));
  int64_t pruned = 0;
  ASSERT_OK_AND_ASSIGN(auto splits, table->PrunedSplits(pred, 0, &pruned));
  EXPECT_EQ(pruned, 7);
  EXPECT_EQ(splits.size(), 3u);
}

TEST(PartitionTest, UnrelatedPredicateKeepsEverything) {
  ScopedDfs dfs("part_unrelated");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(auto table,
                       PartitionedTable::Create(dfs.get(), desc, {"time"}));
  for (int day = 0; day < 4; ++day) {
    ASSERT_OK(table->Append(MakeRow(day, 1, 15000 + day, 1.0)));
  }
  ASSERT_OK(table->Close());
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("userId", Value::Int64(1)));
  int64_t pruned = 0;
  ASSERT_OK_AND_ASSIGN(auto splits, table->PrunedSplits(pred, 0, &pruned));
  EXPECT_EQ(pruned, 0);
  EXPECT_EQ(splits.size(), 4u);
}

TEST(PartitionTest, NameNodeMetadataGrowsWithPartitions) {
  // The paper's Section 2.2 argument: multidimensional partitioning creates
  // directory counts that overwhelm the NameNode (150 bytes per object).
  ScopedDfs dfs("part_namenode");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(
      auto table,
      PartitionedTable::Create(dfs.get(), desc, {"time", "regionId"}));
  const uint64_t before = dfs->MetadataMemoryBytes();
  const int kDays = 10, kRegions = 10;
  for (int day = 0; day < kDays; ++day) {
    for (int region = 1; region <= kRegions; ++region) {
      ASSERT_OK(table->Append(MakeRow(0, region, 15000 + day, 1.0)));
    }
  }
  ASSERT_OK(table->Close());
  const uint64_t after = dfs->MetadataMemoryBytes();
  // 100 leaf partitions, each >= 1 directory + 1 file + 1 block, plus the 10
  // intermediate day directories.
  EXPECT_GE(after - before, 150u * (3u * kDays * kRegions + kDays));
}

TEST(PartitionTest, RejectsUnknownPartitionColumn) {
  ScopedDfs dfs("part_bad");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  EXPECT_FALSE(PartitionedTable::Create(dfs.get(), desc, {"nope"}).ok());
  EXPECT_FALSE(PartitionedTable::Create(dfs.get(), desc, {}).ok());
}

TEST(PartitionTest, ParsePartitionPathRoundTrip) {
  ScopedDfs dfs("part_parse");
  TableDesc desc{"meter", MeterSchema(), FileFormat::kText, "/w/meter"};
  ASSERT_OK_AND_ASSIGN(
      auto table,
      PartitionedTable::Create(dfs.get(), desc, {"time", "regionId"}));
  ASSERT_OK_AND_ASSIGN(
      auto values,
      table->ParsePartitionPath("/w/meter/time=2012-12-30/regionId=7"));
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], Value::Date(15704));
  EXPECT_EQ(values[1], Value::Int64(7));
  EXPECT_FALSE(table->ParsePartitionPath("/elsewhere/time=1").ok());
  EXPECT_FALSE(table->ParsePartitionPath("/w/meter/oops=1/regionId=2").ok());
}

}  // namespace
}  // namespace dgf::table
