#include <gtest/gtest.h>

#include <string>

#include "common/string_util.h"
#include "exec/cluster.h"
#include "exec/mapreduce.h"
#include "table/schema.h"
#include "table/text_format.h"
#include "tests/test_util.h"

namespace dgf::exec {
namespace {

using ::dgf::testing::ScopedDfs;

TEST(SimulateMakespanTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(SimulateMakespan({}, 4), 0.0);
}

TEST(SimulateMakespanTest, SingleSlotSums) {
  EXPECT_DOUBLE_EQ(SimulateMakespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(SimulateMakespanTest, ManySlotsTakeMax) {
  EXPECT_DOUBLE_EQ(SimulateMakespan({1.0, 2.0, 3.0}, 10), 3.0);
}

TEST(SimulateMakespanTest, TwoSlotsGreedy) {
  // Tasks 2,2,3 on 2 slots: slot A:2+3=5, slot B:2.
  EXPECT_DOUBLE_EQ(SimulateMakespan({2.0, 2.0, 3.0}, 2), 5.0);
}

// A mapper that counts words in text lines, and a summing reducer: the
// archetypal job, exercising shuffle and reduce.
class WordCountMapper : public Mapper {
 public:
  explicit WordCountMapper(std::shared_ptr<fs::MiniDfs> dfs)
      : dfs_(std::move(dfs)) {}

  Status Map(const fs::FileSplit& split, MapContext* ctx) override {
    table::Schema schema({{"line", table::DataType::kString}});
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::TextSplitReader::Open(dfs_, split, schema));
    std::string line;
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->NextLine(&line));
      if (!more) break;
      ctx->AddRecords(1);
      for (std::string_view word : dgf::SplitString(line, ' ')) {
        if (!word.empty()) ctx->Emit(std::string(word), "1");
      }
    }
    ctx->AddBytesRead(reader->BytesRead());
    return Status::OK();
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Collect(key, std::to_string(values.size()));
    return Status::OK();
  }
};

TEST(JobRunnerTest, WordCountEndToEnd) {
  ScopedDfs dfs("mr_wc");
  {
    auto writer = dfs->Create("/in.txt");
    ASSERT_OK(writer.status());
    ASSERT_OK((*writer)->Append("a b a\nb a\nc\n"));
    ASSERT_OK((*writer)->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/in.txt", 5));
  ASSERT_GT(splits.size(), 1u);

  JobRunner::Options options;
  options.num_reducers = 2;
  JobRunner runner(options);
  ASSERT_OK_AND_ASSIGN(
      JobResult result,
      runner.Run(
          splits,
          [&] { return std::make_unique<WordCountMapper>(dfs.get()); },
          [](int) { return std::make_unique<SumReducer>(); }));

  std::map<std::string, std::string> got(result.reduce_output.begin(),
                                         result.reduce_output.end());
  EXPECT_EQ(got["a"], "3");
  EXPECT_EQ(got["b"], "2");
  EXPECT_EQ(got["c"], "1");
  EXPECT_EQ(result.num_map_tasks, static_cast<int>(splits.size()));
  EXPECT_EQ(result.counters.Get(kCounterMapInputRecords), 3);
  EXPECT_GT(result.simulated_seconds, 0.0);
}

TEST(JobRunnerTest, MapOnlyJobCollectsEmissions) {
  ScopedDfs dfs("mr_maponly");
  {
    auto writer = dfs->Create("/in.txt");
    ASSERT_OK(writer.status());
    ASSERT_OK((*writer)->Append("x\ny\n"));
    ASSERT_OK((*writer)->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/in.txt"));
  JobRunner runner(JobRunner::Options{});
  ASSERT_OK_AND_ASSIGN(
      JobResult result,
      runner.Run(splits, [&] {
        return std::make_unique<WordCountMapper>(dfs.get());
      }));
  EXPECT_EQ(result.reduce_output.size(), 2u);
  EXPECT_EQ(result.num_reduce_tasks, 0);
}

class FailingMapper : public Mapper {
 public:
  Status Map(const fs::FileSplit&, MapContext*) override {
    return Status::Internal("boom");
  }
};

TEST(JobRunnerTest, MapErrorFailsJob) {
  ScopedDfs dfs("mr_fail");
  {
    auto writer = dfs->Create("/in.txt");
    ASSERT_OK(writer.status());
    ASSERT_OK((*writer)->Append("x\n"));
    ASSERT_OK((*writer)->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/in.txt"));
  JobRunner runner(JobRunner::Options{});
  auto result =
      runner.Run(splits, [] { return std::make_unique<FailingMapper>(); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(JobRunnerTest, ReducersRequestedWithoutFactoryFails) {
  JobRunner::Options options;
  options.num_reducers = 2;
  JobRunner runner(options);
  auto result =
      runner.Run({}, [] { return std::make_unique<FailingMapper>(); });
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(CountersTest, AddAndMerge) {
  Counters a, b;
  a.Add("x", 2);
  b.Add("x", 3);
  b.Add("y", 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x"), 5);
  EXPECT_EQ(a.Get("y"), 1);
  EXPECT_EQ(a.Get("z"), 0);
}

TEST(ClusterConfigTest, SlotArithmetic) {
  ClusterConfig config;
  EXPECT_EQ(config.total_map_slots(), 28 * 5);
  EXPECT_EQ(config.total_reduce_slots(), 28 * 3);
}

}  // namespace
}  // namespace dgf::exec
