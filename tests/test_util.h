#ifndef DGF_TESTS_TEST_UTIL_H_
#define DGF_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "fs/mini_dfs.h"
#include "testing/corruption.h"

#define ASSERT_OK(expr)                                   \
  do {                                                    \
    auto _st = (expr);                                    \
    ASSERT_TRUE(_st.ok()) << _st.ToString();              \
  } while (0)

#define EXPECT_OK(expr)                                   \
  do {                                                    \
    auto _st = (expr);                                    \
    EXPECT_TRUE(_st.ok()) << _st.ToString();              \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                  \
  ASSERT_OK_AND_ASSIGN_IMPL_(                             \
      DGF_CONCAT_(_assert_res, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)       \
  auto tmp = (rexpr);                                     \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();       \
  lhs = std::move(tmp).value()

namespace dgf::testing {

/// Creates a fresh MiniDfs under a unique temp directory and removes it on
/// destruction.
class ScopedDfs {
 public:
  explicit ScopedDfs(const std::string& tag, uint64_t block_size = 1 << 20) {
    fs::MiniDfs::Options options;
    options.block_size = block_size;
    Start(tag, options);
  }

  /// Full-options variant (replication / checksum chunk experiments);
  /// `base.root_dir` is ignored and replaced with the scoped temp dir.
  ScopedDfs(const std::string& tag, fs::MiniDfs::Options base) {
    Start(tag, std::move(base));
  }

  ~ScopedDfs() {
    dfs_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  const std::shared_ptr<fs::MiniDfs>& get() const { return dfs_; }
  fs::MiniDfs* operator->() const { return dfs_.get(); }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  void Start(const std::string& tag, fs::MiniDfs::Options options) {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgf_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::remove_all(dir_);
    options.root_dir = dir_.string();
    auto dfs = fs::MiniDfs::Open(options);
    EXPECT_TRUE(dfs.ok()) << dfs.status().ToString();
    if (dfs.ok()) dfs_ = *dfs;
  }

  static inline int counter_ = 0;
  std::filesystem::path dir_;
  std::shared_ptr<fs::MiniDfs> dfs_;
};

/// ASSERT-style wrappers over the shared corruption helpers
/// (src/testing/corruption.h) for use inside TEST bodies.
inline void AssertFlipByte(const ScopedDfs& dfs, const std::string& path,
                           uint64_t at) {
  ASSERT_OK(FlipByte(dfs.get(), path, at));
}

inline void AssertTruncateFile(const ScopedDfs& dfs, const std::string& path,
                               uint64_t keep) {
  ASSERT_OK(TruncateFile(dfs.get(), path, keep));
}

}  // namespace dgf::testing

#endif  // DGF_TESTS_TEST_UTIL_H_
