#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"

namespace dgf {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> ParsePositive(std::string_view text) {
  DGF_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
  if (v <= 0) return Status::InvalidArgument("not positive");
  return static_cast<int>(v);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*ParsePositive("5"), 5);
  EXPECT_FALSE(ParsePositive("x").ok());
  EXPECT_FALSE(ParsePositive("-1").ok());
}

TEST(EncodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0xDEADBEEFCAFEBABEULL);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0xDEADBEEFCAFEBABEULL);
}

TEST(EncodingTest, Fixed64BigEndianOrders) {
  std::string a, b;
  PutFixed64(&a, 1);
  PutFixed64(&b, 256);
  EXPECT_LT(a, b);
}

TEST(EncodingTest, VarintRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 40,
                     ~0ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view view(buf);
    ASSERT_OK_AND_ASSIGN(uint64_t decoded, GetVarint64(&view));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(view.empty());
  }
}

TEST(EncodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  std::string_view view(buf);
  EXPECT_FALSE(GetVarint64(&view).ok());
}

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view view(buf);
  ASSERT_OK_AND_ASSIGN(std::string_view a, GetLengthPrefixed(&view));
  ASSERT_OK_AND_ASSIGN(std::string_view b, GetLengthPrefixed(&view));
  ASSERT_OK_AND_ASSIGN(std::string_view c, GetLengthPrefixed(&view));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(view.empty());
}

TEST(EncodingTest, OrderedInt64PreservesOrder) {
  const std::vector<int64_t> values = {INT64_MIN, -1000000, -1, 0,
                                       1,         42,       1000000, INT64_MAX};
  std::vector<std::string> encoded;
  for (int64_t v : values) {
    std::string buf;
    PutOrderedInt64(&buf, v);
    EXPECT_EQ(DecodeOrderedInt64(buf.data()), v);
    encoded.push_back(buf);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
}

TEST(EncodingTest, OrderedDoublePreservesOrder) {
  const std::vector<double> values = {-1e300, -3.5, -0.0001, 0.0,
                                      0.0001, 2.5,  1e300};
  std::vector<std::string> encoded;
  for (double v : values) {
    std::string buf;
    PutOrderedDouble(&buf, v);
    EXPECT_EQ(DecodeOrderedDouble(buf.data()), v);
    encoded.push_back(buf);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a||b|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = SplitString("abc", '|');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, TrimString) {
  EXPECT_EQ(TrimString("  x y  "), "x y");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString(" \t\n "), "");
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_FALSE(ParseInt64("42x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("3.25q").ok());
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ULL << 20), "3.00 MB");
}

TEST(StringUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234), "-1,234");
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, ZipfSkewsTowardsSmallValues) {
  ZipfGenerator zipf(1000, 0.9, 11);
  int small = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    if (v < 10) ++small;
  }
  // With theta=0.9 the head is heavily favoured.
  EXPECT_GT(small, n / 4);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

}  // namespace
}  // namespace dgf
