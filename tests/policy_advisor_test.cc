#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dgf/policy_advisor.h"
#include "query/predicate.h"
#include "tests/test_util.h"

namespace dgf::core {
namespace {

using table::DataType;
using table::Value;

PolicyAdvisor::DimensionStats UserStats() {
  return {"userId", DataType::kInt64, 0, 1e6, 1e6};
}
PolicyAdvisor::DimensionStats RegionStats() {
  return {"regionId", DataType::kInt64, 1, 11, 11};
}
PolicyAdvisor::DimensionStats TimeStats() {
  return {"time", DataType::kDate, 15675, 15705, 30};
}

query::Predicate RangeQuery(int64_t u_lo, int64_t u_hi, int64_t t_lo,
                            int64_t t_hi) {
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", Value::Int64(u_lo), true,
                                       Value::Int64(u_hi), false));
  pred.And(query::ColumnRange::Between("time", Value::Date(t_lo), true,
                                       Value::Date(t_hi), false));
  return pred;
}

TEST(PolicyAdvisorTest, RequiresDimensionsAndHistory) {
  PolicyAdvisor empty({}, {});
  EXPECT_FALSE(empty.Recommend({RangeQuery(0, 1, 0, 1)}).ok());
  PolicyAdvisor advisor({UserStats()}, {});
  EXPECT_FALSE(advisor.Recommend({}).ok());
}

TEST(PolicyAdvisorTest, RespectsCellBudget) {
  PolicyAdvisor::Options options;
  options.max_cells = 5000;
  PolicyAdvisor advisor({UserStats(), RegionStats(), TimeStats()}, options);
  std::vector<query::Predicate> history = {RangeQuery(0, 50000, 15675, 15690)};
  ASSERT_OK_AND_ASSIGN(auto rec, advisor.Recommend(history));
  EXPECT_LE(rec.expected_cells, options.max_cells * 1.01);
  ASSERT_EQ(rec.dims.size(), 3u);
  for (const auto& dim : rec.dims) EXPECT_GT(dim.interval, 0);
}

TEST(PolicyAdvisorTest, NarrowQueriesGetFinerIntervals) {
  PolicyAdvisor::Options options;
  options.max_cells = 1e7;
  PolicyAdvisor advisor({UserStats(), TimeStats()}, options);
  // History A: tiny userId windows -> expect fine userId intervals.
  std::vector<query::Predicate> narrow;
  for (int i = 0; i < 5; ++i) {
    narrow.push_back(RangeQuery(i * 1000, i * 1000 + 500, 15675, 15705));
  }
  ASSERT_OK_AND_ASSIGN(auto narrow_rec, advisor.Recommend(narrow));
  // History B: near-full-domain windows -> coarse userId intervals suffice.
  std::vector<query::Predicate> wide;
  for (int i = 0; i < 5; ++i) {
    wide.push_back(RangeQuery(0, 900000, 15675, 15705));
  }
  ASSERT_OK_AND_ASSIGN(auto wide_rec, advisor.Recommend(wide));
  EXPECT_LT(narrow_rec.dims[0].interval, wide_rec.dims[0].interval);
}

TEST(PolicyAdvisorTest, RecommendationBeatsExtremes) {
  PolicyAdvisor::Options options;
  options.max_cells = 1e6;
  PolicyAdvisor advisor({UserStats(), RegionStats(), TimeStats()}, options);
  std::vector<query::Predicate> history;
  for (int i = 0; i < 4; ++i) {
    history.push_back(RangeQuery(i * 10000, i * 10000 + 50000, 15680, 15695));
  }
  ASSERT_OK_AND_ASSIGN(auto rec, advisor.Recommend(history));

  auto avg_cost = [&](const std::vector<double>& intervals) {
    double total = 0;
    for (const auto& pred : history) total += advisor.QueryCost(intervals, pred);
    return total / history.size();
  };
  std::vector<double> recommended;
  for (const auto& dim : rec.dims) recommended.push_back(dim.interval);
  // One giant cell per dimension (coarsest legal grid).
  const double coarse = avg_cost({1e6, 11, 30});
  EXPECT_LE(rec.expected_query_cost, coarse + 1e-12);
  EXPECT_NEAR(rec.expected_query_cost, avg_cost(recommended), 1e-9);
}

TEST(PolicyAdvisorTest, IntegerDimensionsGetIntegralIntervals) {
  PolicyAdvisor advisor({UserStats(), TimeStats()}, {});
  ASSERT_OK_AND_ASSIGN(auto rec,
                       advisor.Recommend({RangeQuery(0, 100, 15675, 15677)}));
  for (const auto& dim : rec.dims) {
    EXPECT_EQ(dim.interval, std::floor(dim.interval)) << dim.column;
  }
}

TEST(PolicyAdvisorTest, CoordinateDescentHandlesManyDims) {
  std::vector<PolicyAdvisor::DimensionStats> stats = {
      UserStats(), RegionStats(), TimeStats(),
      {"powerConsumed", DataType::kDouble, 0, 500, 1e5}};
  PolicyAdvisor::Options options;
  options.max_cells = 1e6;
  PolicyAdvisor advisor(stats, options);
  query::Predicate pred = RangeQuery(0, 1000, 15675, 15680);
  pred.And(query::ColumnRange::Between("powerConsumed", Value::Double(10), true,
                                       Value::Double(20), false));
  ASSERT_OK_AND_ASSIGN(auto rec, advisor.Recommend({pred}));
  EXPECT_EQ(rec.dims.size(), 4u);
  EXPECT_LE(rec.expected_cells, options.max_cells * 1.01);
}

}  // namespace
}  // namespace dgf::core
