#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_input_format.h"
#include "dgf/slice_optimizer.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "table/table.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf::core {
namespace {

using ::dgf::testing::ScopedDfs;

struct FragmentedWorld {
  std::unique_ptr<ScopedDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<DgfIndex> index;
};

// Builds an index, then appends two more batches over the SAME grid region,
// so every GFU ends up with three slices across three batch files.
FragmentedWorld MakeFragmented(const std::string& tag) {
  FragmentedWorld world;
  world.dfs = std::make_unique<ScopedDfs>("sopt_" + tag, 16384);
  world.config.num_users = 200;
  world.config.num_days = 5;
  world.config.extra_metrics = 0;
  world.config.seed = 61;
  auto meter = workload::GenerateMeterTable(world.dfs->get(), "/w/meter",
                                            world.config);
  EXPECT_TRUE(meter.ok());
  world.meter = *meter;
  world.store = std::make_shared<kv::MemKv>();
  DgfBuilder::Options build;
  build.dims = {{"userId", table::DataType::kInt64, 0, 40},
                {"regionId", table::DataType::kInt64, 0, 1},
                {"time", table::DataType::kDate,
                 static_cast<double>(world.config.start_day), 1}};
  build.precompute = {"sum(powerConsumed)", "count(*)"};
  build.data_dir = "/w/meter_dgf";
  auto index =
      DgfBuilder::Build(world.dfs->get(), world.store, world.meter, build);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  world.index = std::move(*index);

  for (int batch = 0; batch < 2; ++batch) {
    workload::MeterConfig batch_config = world.config;
    batch_config.seed = world.config.seed + 10 + static_cast<uint64_t>(batch);
    table::TableDesc staged = *workload::GenerateMeterTable(
        world.dfs->get(), "/staging/b" + std::to_string(batch), batch_config);
    EXPECT_OK(DgfBuilder::Append(world.index.get(), staged).status());
  }
  return world;
}

uint64_t TotalSlices(const FragmentedWorld& world) {
  uint64_t slices = 0;
  auto it = world.store->NewIterator();
  for (it->Seek("G"); it->Valid(); it->Next()) {
    if (it->key().front() != 'G') break;
    auto value = GfuValue::Decode(it->value());
    EXPECT_TRUE(value.ok());
    slices += value->slices.size();
  }
  return slices;
}

double QuerySum(const FragmentedWorld& world, const query::Query& q) {
  query::QueryExecutor::Options options;
  options.dfs = world.dfs->get();
  options.split_size = 16384;
  query::QueryExecutor executor(options);
  executor.RegisterTable(world.meter);
  executor.RegisterDgfIndex(world.meter.name, world.index.get());
  auto result = executor.Execute(q, query::AccessPath::kDgfIndex);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->rows[0][0].AsDouble();
}

TEST(SliceOptimizerTest, MergesSlicesAndPreservesAnswers) {
  FragmentedWorld world = MakeFragmented("merge");
  ASSERT_OK_AND_ASSIGN(uint64_t gfus, world.index->NumGfus());
  const uint64_t slices_before = TotalSlices(world);
  EXPECT_GT(slices_before, gfus);  // fragmented: >1 slice per GFU on average

  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kFivePercent, 2);
  const double before = QuerySum(world, q);

  ASSERT_OK_AND_ASSIGN(auto stats,
                       SliceOptimizer::Optimize(world.index.get(), 64 << 10));
  EXPECT_EQ(stats.gfus, gfus);
  EXPECT_EQ(stats.slices_before, slices_before);
  EXPECT_EQ(stats.slices_after, gfus);  // exactly one slice per GFU
  EXPECT_EQ(TotalSlices(world), gfus);
  EXPECT_GT(stats.files_after, 0u);

  const double after = QuerySum(world, q);
  EXPECT_NEAR(after, before, 1e-6 * (1 + std::abs(before)));
}

TEST(SliceOptimizerTest, DeletesStaleBatchFiles) {
  FragmentedWorld world = MakeFragmented("gc");
  const auto before_files = world.dfs->get()->ListFiles("/w/meter_dgf/");
  ASSERT_OK(SliceOptimizer::Optimize(world.index.get()).status());
  const auto after_files = world.dfs->get()->ListFiles("/w/meter_dgf/");
  // Only optimized files remain.
  for (const auto& file : after_files) {
    EXPECT_NE(file.path.find("part-opt"), std::string::npos) << file.path;
  }
  EXPECT_LT(after_files.size(), before_files.size());
}

TEST(SliceOptimizerTest, AdjacentSlicesCoalesceAfterOptimization) {
  FragmentedWorld world = MakeFragmented("coalesce");
  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kGroupBy,
      workload::Selectivity::kTwelvePercent, 3);
  ASSERT_OK_AND_ASSIGN(auto lookup_before,
                       world.index->Lookup(q.where, /*aggregation=*/false));
  ASSERT_OK_AND_ASSIGN(
      auto planned_before,
      PlanSlicedSplits(world.dfs->get(), lookup_before.slices, 16384));
  uint64_t reads_before = 0;
  for (const auto& sliced : planned_before) reads_before += sliced.slices.size();

  ASSERT_OK(SliceOptimizer::Optimize(world.index.get()).status());
  ASSERT_OK_AND_ASSIGN(auto lookup_after,
                       world.index->Lookup(q.where, /*aggregation=*/false));
  ASSERT_OK_AND_ASSIGN(
      auto planned_after,
      PlanSlicedSplits(world.dfs->get(), lookup_after.slices, 16384));
  uint64_t reads_after = 0;
  for (const auto& sliced : planned_after) reads_after += sliced.slices.size();

  // Row-major placement + coalescing: far fewer positional reads.
  EXPECT_LT(reads_after, reads_before / 2)
      << "before=" << reads_before << " after=" << reads_after;
}

TEST(SliceOptimizerTest, SecondOptimizationIsIdempotent) {
  FragmentedWorld world = MakeFragmented("idem");
  ASSERT_OK_AND_ASSIGN(auto first, SliceOptimizer::Optimize(world.index.get()));
  ASSERT_OK_AND_ASSIGN(auto second, SliceOptimizer::Optimize(world.index.get()));
  EXPECT_EQ(second.slices_before, first.slices_after);
  EXPECT_EQ(second.slices_after, first.slices_after);
  // Answers still correct.
  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kTwelvePercent, 4);
  (void)QuerySum(world, q);
}

}  // namespace
}  // namespace dgf::core
