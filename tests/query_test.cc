#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "table/table.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf::query {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Schema;
using table::Value;

// ---------- Predicate unit tests ----------

TEST(PredicateTest, RangeMatching) {
  auto range = ColumnRange::Between("x", Value::Int64(5), true,
                                    Value::Int64(10), false);
  EXPECT_FALSE(range.Matches(Value::Int64(4)));
  EXPECT_TRUE(range.Matches(Value::Int64(5)));
  EXPECT_TRUE(range.Matches(Value::Int64(9)));
  EXPECT_FALSE(range.Matches(Value::Int64(10)));
}

TEST(PredicateTest, ExclusiveLower) {
  ColumnRange range;
  range.column = "x";
  range.lower = Bound{Value::Double(2.5), false};
  EXPECT_FALSE(range.Matches(Value::Double(2.5)));
  EXPECT_TRUE(range.Matches(Value::Double(2.500001)));
}

TEST(PredicateTest, AndIntersectsSameColumn) {
  Predicate pred;
  pred.And(ColumnRange::Between("x", Value::Int64(0), true, Value::Int64(100),
                                true));
  pred.And(ColumnRange::Between("x", Value::Int64(10), true, Value::Int64(50),
                                false));
  ASSERT_EQ(pred.ranges().size(), 1u);
  const ColumnRange& merged = pred.ranges()[0];
  EXPECT_EQ(merged.lower->value, Value::Int64(10));
  EXPECT_EQ(merged.upper->value, Value::Int64(50));
  EXPECT_FALSE(merged.upper->inclusive);
}

TEST(PredicateTest, BindRejectsUnknownColumn) {
  Predicate pred;
  pred.And(ColumnRange::Equal("ghost", Value::Int64(1)));
  Schema schema({{"x", DataType::kInt64}});
  EXPECT_FALSE(pred.Bind(schema).ok());
}

TEST(PredicateTest, EmptyPredicateMatchesAll) {
  Predicate pred;
  Schema schema({{"x", DataType::kInt64}});
  ASSERT_OK_AND_ASSIGN(BoundPredicate bound, pred.Bind(schema));
  EXPECT_TRUE(bound.Matches({Value::Int64(7)}));
}

// ---------- Parser tests ----------

Schema MeterParseSchema() {
  workload::MeterConfig config;
  config.extra_metrics = 0;
  return workload::MeterSchema(config);
}

TEST(ParserTest, ParsesAggregationQuery) {
  Schema schema = MeterParseSchema();
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT sum(powerConsumed) FROM meterdata "
                 "WHERE regionId > 1 AND regionId < 5 AND userId >= 100 "
                 "AND userId < 1000 AND time > '2012-12-05' AND "
                 "time < '2012-12-20'",
                 schema));
  EXPECT_EQ(q.table, "meterdata");
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_TRUE(q.select[0].is_aggregation());
  EXPECT_EQ(q.select[0].agg->ToString(), "sum(powerconsumed)");
  EXPECT_TRUE(q.IsPlainAggregation());
  const ColumnRange* time = q.where.FindColumn("time");
  ASSERT_NE(time, nullptr);
  EXPECT_TRUE(time->lower->value.is_date());
  EXPECT_FALSE(time->lower->inclusive);
}

TEST(ParserTest, ParsesGroupBy) {
  Schema schema = MeterParseSchema();
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT time, sum(powerConsumed) FROM meterdata "
                          "WHERE regionId = 3 GROUP BY time",
                          schema));
  ASSERT_TRUE(q.group_by.has_value());
  EXPECT_EQ(*q.group_by, "time");
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].column, "time");
}

TEST(ParserTest, ParsesJoinWithAliases) {
  Schema left = MeterParseSchema();
  Schema right = workload::UserInfoSchema();
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT t2.userName, t1.powerConsumed FROM meterdata t1 "
                 "JOIN userinfo t2 ON t1.userId = t2.userId "
                 "WHERE t1.regionId > 1 AND t1.regionId < 4",
                 left, &right));
  ASSERT_TRUE(q.join.has_value());
  EXPECT_EQ(q.join->right_table, "userinfo");
  EXPECT_EQ(q.join->left_column, "userid");
  EXPECT_EQ(q.join->right_column, "userid");
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].column, "username");
}

TEST(ParserTest, ParsesCountStarAndSumProduct) {
  Schema schema({{"a", DataType::kDouble}, {"b", DataType::kDouble}});
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery("SELECT count(*), sum(a*b) FROM t", schema));
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].agg->func, core::AggFunc::kCount);
  EXPECT_EQ(q.select[1].agg->func, core::AggFunc::kSumProduct);
}

TEST(ParserTest, RejectsMalformedQueries) {
  Schema schema = MeterParseSchema();
  EXPECT_FALSE(ParseQuery("SELEC x FROM t", schema).ok());
  EXPECT_FALSE(ParseQuery("SELECT sum( FROM t", schema).ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM t WHERE", schema).ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM t WHERE a >", schema).ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM t trailing junk()", schema).ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM t WHERE nope = 'x'", schema).ok());
}

TEST(ParserTest, ParsesBetween) {
  Schema schema = MeterParseSchema();
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT count(*) FROM meterdata WHERE powerConsumed BETWEEN "
                 "120.34 AND 230.2 AND time BETWEEN '2013-01-01' AND "
                 "'2013-02-01'",
                 schema));
  const ColumnRange* power = q.where.FindColumn("powerConsumed");
  ASSERT_NE(power, nullptr);
  EXPECT_DOUBLE_EQ(power->lower->value.dbl(), 120.34);
  EXPECT_TRUE(power->lower->inclusive);
  EXPECT_DOUBLE_EQ(power->upper->value.dbl(), 230.2);
  EXPECT_TRUE(power->upper->inclusive);
  const ColumnRange* time = q.where.FindColumn("time");
  ASSERT_NE(time, nullptr);
  EXPECT_TRUE(time->lower->value.is_date());
  // Malformed BETWEEN forms fail.
  EXPECT_FALSE(
      ParseQuery("SELECT count(*) FROM m WHERE userId BETWEEN 1", schema).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT count(*) FROM m WHERE userId BETWEEN 1 OR 2", schema)
          .ok());
}

TEST(ParserTest, ParsesAvg) {
  Schema schema = MeterParseSchema();
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT avg(powerConsumed) FROM meterdata "
                          "WHERE userId BETWEEN 100 AND 1000",
                          schema));
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].agg->func, core::AggFunc::kAvg);
  EXPECT_TRUE(q.IsPlainAggregation());
}

TEST(ParserTest, TypesLiteralsAgainstSchema) {
  Schema schema = MeterParseSchema();
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT count(*) FROM m WHERE time = '2012-12-30' "
                          "AND powerConsumed <= 100",
                          schema));
  const ColumnRange* time = q.where.FindColumn("time");
  ASSERT_NE(time, nullptr);
  EXPECT_TRUE(time->lower->value.is_date());
  const ColumnRange* power = q.where.FindColumn("powerconsumed");
  ASSERT_NE(power, nullptr);
  EXPECT_TRUE(power->upper->value.is_double());
}

// ---------- Executor end-to-end: all access paths agree ----------

struct World {
  std::unique_ptr<ScopedDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  table::TableDesc users;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> dgf;
  std::unique_ptr<index::CompactIndex> compact;
  std::unique_ptr<QueryExecutor> executor;
};

World MakeWorld(const std::string& tag) {
  World world;
  world.dfs = std::make_unique<ScopedDfs>("qexec_" + tag, /*block_size=*/16384);
  world.config.num_users = 400;
  world.config.num_days = 10;
  world.config.num_regions = 5;
  world.config.extra_metrics = 2;
  world.config.seed = 99;

  auto meter = workload::GenerateMeterTable(world.dfs->get(), "/w/meter",
                                            world.config,
                                            table::FileFormat::kText, 16384);
  EXPECT_TRUE(meter.ok()) << meter.status().ToString();
  world.meter = *meter;
  auto users = workload::GenerateUserInfoTable(world.dfs->get(), "/w/users",
                                               world.config);
  EXPECT_TRUE(users.ok());
  world.users = *users;

  world.store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options dgf_options;
  dgf_options.dims = {{"userId", DataType::kInt64, 0, 50},
                      {"regionId", DataType::kInt64, 0, 1},
                      {"time", DataType::kDate,
                       static_cast<double>(world.config.start_day), 1}};
  dgf_options.precompute = {"sum(powerConsumed)", "count(*)"};
  dgf_options.data_dir = "/w/meter_dgf";
  dgf_options.split_size = 16384;
  auto dgf = core::DgfBuilder::Build(world.dfs->get(), world.store, world.meter,
                                     dgf_options);
  EXPECT_TRUE(dgf.ok()) << dgf.status().ToString();
  world.dgf = std::move(*dgf);

  index::CompactIndex::BuildOptions ci_options;
  ci_options.dims = {"regionId", "time"};
  ci_options.index_dir = "/w/meter_ci";
  ci_options.index_format = table::FileFormat::kText;
  ci_options.split_size = 16384;
  auto compact =
      index::CompactIndex::Build(world.dfs->get(), world.meter, ci_options);
  EXPECT_TRUE(compact.ok()) << compact.status().ToString();
  world.compact = std::move(*compact);

  QueryExecutor::Options options;
  options.dfs = world.dfs->get();
  options.split_size = 16384;
  world.executor = std::make_unique<QueryExecutor>(options);
  world.executor->RegisterTable(world.meter);
  world.executor->RegisterTable(world.users);
  world.executor->RegisterDgfIndex(world.meter.name, world.dgf.get());
  world.executor->RegisterCompactIndex(world.meter.name, world.compact.get());
  return world;
}

void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                       const std::string& context) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << context;
  // Compare row sets (order may differ for projections).
  std::vector<std::string> ta, tb;
  for (const auto& row : a.rows) ta.push_back(table::FormatRowText(row));
  for (const auto& row : b.rows) tb.push_back(table::FormatRowText(row));
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  for (size_t i = 0; i < ta.size(); ++i) {
    if (ta[i] != tb[i]) {
      // Double aggregation order can differ; allow tiny numeric slack by
      // re-parsing through the schema and comparing numerically.
      auto ra = table::ParseRowText(ta[i], a.schema);
      auto rb = table::ParseRowText(tb[i], b.schema);
      ASSERT_TRUE(ra.ok() && rb.ok()) << context;
      ASSERT_EQ(ra->size(), rb->size()) << context;
      for (size_t c = 0; c < ra->size(); ++c) {
        const Value& va = (*ra)[c];
        const Value& vb = (*rb)[c];
        if (va.is_double() || vb.is_double()) {
          EXPECT_NEAR(va.AsDouble(), vb.AsDouble(),
                      1e-6 * (1.0 + std::abs(va.AsDouble())))
              << context << " row " << i;
        } else {
          EXPECT_EQ(va.ToText(), vb.ToText()) << context << " row " << i;
        }
      }
    }
  }
}

class ExecutorPathAgreementTest
    : public ::testing::TestWithParam<workload::Selectivity> {};

TEST_P(ExecutorPathAgreementTest, AggregationAllPathsAgree) {
  World world = MakeWorld("agg");
  Query q = workload::MakeMeterQuery(world.config,
                                     workload::MeterQueryKind::kAggregation,
                                     GetParam(), 1);
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult compact,
                       world.executor->Execute(q, AccessPath::kCompactIndex));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  ExpectSameResults(scan, compact, "scan-vs-compact " + q.ToString());
  ExpectSameResults(scan, dgf, "scan-vs-dgf " + q.ToString());
  // Work ordering: DGF reads fewer records than compact, which reads no more
  // than the scan.
  EXPECT_LE(dgf.stats.records_read, compact.stats.records_read);
  EXPECT_LE(compact.stats.records_read, scan.stats.records_read);
}

TEST_P(ExecutorPathAgreementTest, GroupByAllPathsAgree) {
  World world = MakeWorld("gb");
  Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kGroupBy, GetParam(), 2);
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult compact,
                       world.executor->Execute(q, AccessPath::kCompactIndex));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  ExpectSameResults(scan, compact, "scan-vs-compact " + q.ToString());
  ExpectSameResults(scan, dgf, "scan-vs-dgf " + q.ToString());
}

TEST_P(ExecutorPathAgreementTest, JoinAllPathsAgree) {
  World world = MakeWorld("join");
  Query q = workload::MakeMeterQuery(world.config,
                                     workload::MeterQueryKind::kJoin,
                                     GetParam(), 3);
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  ExpectSameResults(scan, dgf, "scan-vs-dgf " + q.ToString());
  EXPECT_GT(scan.rows.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Selectivities, ExecutorPathAgreementTest,
    ::testing::Values(workload::Selectivity::kPoint,
                      workload::Selectivity::kFivePercent,
                      workload::Selectivity::kTwelvePercent),
    [](const auto& info) {
      switch (info.param) {
        case workload::Selectivity::kPoint:
          return "Point";
        case workload::Selectivity::kFivePercent:
          return "Five";
        default:
          return "Twelve";
      }
    });

TEST(ExecutorTest, PartialQueryAgreesAcrossPaths) {
  World world = MakeWorld("partial");
  Query q = workload::MakeMeterQuery(world.config,
                                     workload::MeterQueryKind::kPartial,
                                     workload::Selectivity::kPoint, 4);
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  ExpectSameResults(scan, dgf, "partial " + q.ToString());
}

TEST(ExecutorTest, DgfAggregationReadsFarFewerRecordsAtHighSelectivity) {
  World world = MakeWorld("work");
  Query q = workload::MakeMeterQuery(world.config,
                                     workload::MeterQueryKind::kAggregation,
                                     workload::Selectivity::kTwelvePercent, 5);
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  // The inner region is pre-aggregated: only boundary records are read.
  // (At this toy scale fixed job overheads dominate simulated seconds, so the
  // work assertion is on records/bytes; the benches show the time shape at
  // realistic scale.)
  EXPECT_LT(dgf.stats.records_read, scan.stats.records_read / 4);
  EXPECT_LT(dgf.stats.bytes_read, scan.stats.bytes_read / 4);
}

TEST(ExecutorTest, AutoPathPrefersDgf) {
  World world = MakeWorld("auto");
  Query q = workload::MakeMeterQuery(world.config,
                                     workload::MeterQueryKind::kAggregation,
                                     workload::Selectivity::kFivePercent, 6);
  ASSERT_OK_AND_ASSIGN(QueryResult result, world.executor->Execute(q));
  EXPECT_EQ(result.stats.path, AccessPath::kDgfIndex);
}

TEST(ExecutorTest, ForcingUnregisteredPathFails) {
  World world = MakeWorld("force");
  Query q = workload::MakeMeterQuery(world.config,
                                     workload::MeterQueryKind::kAggregation,
                                     workload::Selectivity::kPoint, 7);
  EXPECT_FALSE(world.executor->Execute(q, AccessPath::kBitmapIndex).ok());
}

TEST(ExecutorTest, AvgComputedFromSumAndCountOnEveryPath) {
  // The paper's motivating example: "What was the average power consumption
  // of user ids in the range 100 to 1000 and dates in ...?" — avg is not
  // additive, so the executor expands it to sum/count; with both precomputed
  // the DGF aggregation path still answers from headers.
  World world = MakeWorld("avg");
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT avg(powerConsumed), count(*) FROM meterdata WHERE "
                 "userId BETWEEN 100 AND 300 AND regionId BETWEEN 1 AND 5 AND "
                 "time BETWEEN '2012-12-02' AND '2012-12-06'",
                 world.meter.schema));
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  ASSERT_EQ(scan.rows.size(), 1u);
  const double scan_avg = scan.rows[0][0].dbl();
  EXPECT_GT(scan_avg, 0.0);
  EXPECT_NEAR(dgf.rows[0][0].dbl(), scan_avg, 1e-6 * (1 + scan_avg));
  EXPECT_EQ(dgf.rows[0][1].int64(), scan.rows[0][1].int64());
  // sum+count are both precomputed -> boundary-only read.
  EXPECT_LT(dgf.stats.records_read, scan.stats.records_read);
}

TEST(ExecutorTest, ParsedSqlRunsEndToEnd) {
  World world = MakeWorld("sql");
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT sum(powerConsumed), count(*) FROM meterdata "
                          "WHERE userId >= 100 AND userId < 200 AND "
                          "regionId >= 1 AND regionId <= 5 AND "
                          "time >= '2012-12-02' AND time < '2012-12-06'",
                          world.meter.schema));
  ASSERT_OK_AND_ASSIGN(QueryResult scan,
                       world.executor->Execute(q, AccessPath::kFullScan));
  ASSERT_OK_AND_ASSIGN(QueryResult dgf,
                       world.executor->Execute(q, AccessPath::kDgfIndex));
  ExpectSameResults(scan, dgf, "sql");
  ASSERT_EQ(scan.rows.size(), 1u);
  // count(*) column must be a positive integer.
  EXPECT_GT(scan.rows[0][1].int64(), 0);
}

}  // namespace
}  // namespace dgf::query
