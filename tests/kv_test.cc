#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "kv/lsm_kv.h"
#include "kv/mem_kv.h"
#include "kv/sstable.h"
#include "tests/test_util.h"

namespace dgf::kv {
namespace {

using ::dgf::testing::ScopedDfs;

// ---------- Shared conformance suite over both KvStore implementations ----

enum class StoreKind { kMem, kLsm };

struct StoreFixture {
  std::unique_ptr<ScopedDfs> dfs;
  std::unique_ptr<KvStore> store;
};

StoreFixture MakeStore(StoreKind kind, const std::string& tag) {
  StoreFixture fixture;
  if (kind == StoreKind::kMem) {
    fixture.store = std::make_unique<MemKv>();
    return fixture;
  }
  fixture.dfs = std::make_unique<ScopedDfs>("kv_" + tag);
  LsmKv::Options options;
  options.dfs = fixture.dfs->get();
  options.dir = "/kv";
  options.memtable_flush_bytes = 256;  // tiny: force multi-run behaviour
  options.max_runs = 3;
  auto store = LsmKv::Open(options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  fixture.store = std::move(*store);
  return fixture;
}

class KvConformanceTest : public ::testing::TestWithParam<StoreKind> {};

TEST_P(KvConformanceTest, PutGetOverwrite) {
  auto fixture = MakeStore(GetParam(), "pgo");
  auto& store = *fixture.store;
  ASSERT_OK(store.Put("a", "1"));
  ASSERT_OK(store.Put("b", "2"));
  ASSERT_OK(store.Put("a", "3"));
  EXPECT_EQ(*store.Get("a"), "3");
  EXPECT_EQ(*store.Get("b"), "2");
  EXPECT_TRUE(store.Get("c").status().IsNotFound());
}

TEST_P(KvConformanceTest, DeleteHidesKey) {
  auto fixture = MakeStore(GetParam(), "del");
  auto& store = *fixture.store;
  ASSERT_OK(store.Put("k", "v"));
  ASSERT_OK(store.Delete("k"));
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
  ASSERT_OK(store.Put("k", "v2"));
  EXPECT_EQ(*store.Get("k"), "v2");
}

TEST_P(KvConformanceTest, IteratorScansInOrder) {
  auto fixture = MakeStore(GetParam(), "scan");
  auto& store = *fixture.store;
  for (int i = 99; i >= 0; --i) {
    ASSERT_OK(store.Put(StringPrintf("key%03d", i), std::to_string(i)));
  }
  auto it = store.NewIterator();
  int count = 0;
  std::string prev;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_GT(std::string(it->key()), prev);
    prev = std::string(it->key());
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST_P(KvConformanceTest, SeekFindsLowerBound) {
  auto fixture = MakeStore(GetParam(), "seek");
  auto& store = *fixture.store;
  ASSERT_OK(store.Put("b", "1"));
  ASSERT_OK(store.Put("d", "2"));
  ASSERT_OK(store.Put("f", "3"));
  auto it = store.NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("f");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "f");
  it->Seek("g");
  EXPECT_FALSE(it->Valid());
}

TEST_P(KvConformanceTest, CountMatchesLiveKeys) {
  auto fixture = MakeStore(GetParam(), "count");
  auto& store = *fixture.store;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(store.Put("k" + std::to_string(i), "v"));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(store.Delete("k" + std::to_string(i)));
  }
  EXPECT_EQ(*store.Count(), 40u);
}

TEST_P(KvConformanceTest, RandomizedAgainstStdMap) {
  auto fixture = MakeStore(GetParam(), "rand");
  auto& store = *fixture.store;
  std::map<std::string, std::string> model;
  Random rng(2024);
  for (int op = 0; op < 2000; ++op) {
    const std::string key = "k" + std::to_string(rng.Uniform(200));
    if (rng.Uniform(4) == 0) {
      ASSERT_OK(store.Delete(key));
      model.erase(key);
    } else {
      const std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_OK(store.Put(key, value));
      model[key] = value;
    }
  }
  // Point lookups agree.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto got = store.Get(key);
    auto want = model.find(key);
    if (want == model.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << key;
    } else {
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(*got, want->second) << key;
    }
  }
  // Full scan agrees.
  auto it = store.NewIterator();
  auto want = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++want) {
    ASSERT_NE(want, model.end());
    EXPECT_EQ(it->key(), want->first);
    EXPECT_EQ(it->value(), want->second);
  }
  EXPECT_EQ(want, model.end());
}

TEST_P(KvConformanceTest, MultiGetMixedKeys) {
  auto fixture = MakeStore(GetParam(), "mget");
  auto& store = *fixture.store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(store.Put(StringPrintf("key%03d", i), "v" + std::to_string(i)));
  }
  ASSERT_OK(store.Delete("key042"));

  const std::vector<std::string> keys = {"key000", "key042", "missing",
                                         "key099", "key007", "key007"};
  auto results = store.MultiGet(keys);
  ASSERT_EQ(results.size(), keys.size());
  EXPECT_EQ(*results[0], "v0");
  EXPECT_TRUE(results[1].status().IsNotFound());  // deleted
  EXPECT_TRUE(results[2].status().IsNotFound());  // never written
  EXPECT_EQ(*results[3], "v99");
  EXPECT_EQ(*results[4], "v7");  // duplicates each get an answer
  EXPECT_EQ(*results[5], "v7");
}

TEST_P(KvConformanceTest, MultiGetEmptyBatch) {
  auto fixture = MakeStore(GetParam(), "mget0");
  EXPECT_TRUE(fixture.store->MultiGet({}).empty());
}

TEST_P(KvConformanceTest, MultiGetMatchesGetRandomized) {
  auto fixture = MakeStore(GetParam(), "mgetr");
  auto& store = *fixture.store;
  std::map<std::string, std::string> model;
  Random rng(77);
  for (int op = 0; op < 1500; ++op) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    if (rng.Uniform(5) == 0) {
      ASSERT_OK(store.Delete(key));
      model.erase(key);
    } else {
      const std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_OK(store.Put(key, value));
      model[key] = value;
    }
  }
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) keys.push_back("k" + std::to_string(i));
  auto results = store.MultiGet(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto want = model.find(keys[i]);
    if (want == model.end()) {
      EXPECT_TRUE(results[i].status().IsNotFound()) << keys[i];
    } else {
      ASSERT_TRUE(results[i].ok()) << keys[i];
      EXPECT_EQ(*results[i], want->second) << keys[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, KvConformanceTest,
                         ::testing::Values(StoreKind::kMem, StoreKind::kLsm),
                         [](const auto& info) {
                           return info.param == StoreKind::kMem ? "MemKv"
                                                                : "LsmKv";
                         });

// ---------- SSTable-specific tests ----------

TEST(SstableTest, WriteReadRoundTrip) {
  ScopedDfs dfs("sst_rt");
  ASSERT_OK_AND_ASSIGN(auto writer, SstableWriter::Create(dfs.get(), "/t.sst"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(writer->Add(StringPrintf("k%03d", i), "value" + std::to_string(i)));
  }
  ASSERT_OK(writer->Finish());

  ASSERT_OK_AND_ASSIGN(auto reader, SstableReader::Open(dfs.get(), "/t.sst"));
  EXPECT_EQ(reader->num_records(), 100u);
  bool deleted = false;
  EXPECT_EQ(*reader->Get("k042", &deleted), "value42");
  EXPECT_FALSE(deleted);
  EXPECT_TRUE(reader->Get("nope", &deleted).status().IsNotFound());
  EXPECT_TRUE(reader->Get("k0425", &deleted).status().IsNotFound());
}

TEST(SstableTest, RejectsOutOfOrderKeys) {
  ScopedDfs dfs("sst_order");
  ASSERT_OK_AND_ASSIGN(auto writer, SstableWriter::Create(dfs.get(), "/t.sst"));
  ASSERT_OK(writer->Add("b", "1"));
  EXPECT_FALSE(writer->Add("a", "2").ok());
  EXPECT_FALSE(writer->Add("b", "dup").ok());
}

TEST(SstableTest, TombstonesSurfaceInGet) {
  ScopedDfs dfs("sst_tomb");
  ASSERT_OK_AND_ASSIGN(auto writer, SstableWriter::Create(dfs.get(), "/t.sst"));
  ASSERT_OK(writer->Add("dead", "", /*tombstone=*/true));
  ASSERT_OK(writer->Add("live", "v"));
  ASSERT_OK(writer->Finish());
  ASSERT_OK_AND_ASSIGN(auto reader, SstableReader::Open(dfs.get(), "/t.sst"));
  bool deleted = false;
  ASSERT_OK(reader->Get("dead", &deleted).status());
  EXPECT_TRUE(deleted);
  EXPECT_EQ(*reader->Get("live", &deleted), "v");
  EXPECT_FALSE(deleted);
}

TEST(SstableTest, MultiGetMergeJoinOverRun) {
  ScopedDfs dfs("sst_mget");
  ASSERT_OK_AND_ASSIGN(auto writer, SstableWriter::Create(dfs.get(), "/t.sst"));
  for (int i = 0; i < 200; ++i) {
    if (i == 150) {
      ASSERT_OK(writer->Add(StringPrintf("k%03d", i), "", /*tombstone=*/true));
    } else {
      ASSERT_OK(writer->Add(StringPrintf("k%03d", i), "v" + std::to_string(i)));
    }
  }
  ASSERT_OK(writer->Finish());
  ASSERT_OK_AND_ASSIGN(auto reader, SstableReader::Open(dfs.get(), "/t.sst"));

  // Sorted batch spanning found / tombstone / absent keys plus a duplicate.
  const std::vector<std::string_view> keys = {"aaa",  "k000", "k000", "k017",
                                              "k150", "k199", "zzz"};
  ASSERT_OK_AND_ASSIGN(auto probes, reader->MultiGet(keys));
  ASSERT_EQ(probes.size(), keys.size());
  using State = SstableReader::ProbeResult;
  EXPECT_EQ(probes[0].state, State::kAbsent);
  EXPECT_EQ(probes[1].state, State::kFound);
  EXPECT_EQ(probes[1].value, "v0");
  EXPECT_EQ(probes[2].state, State::kFound);  // duplicate key re-resolved
  EXPECT_EQ(probes[2].value, "v0");
  EXPECT_EQ(probes[3].state, State::kFound);
  EXPECT_EQ(probes[3].value, "v17");
  EXPECT_EQ(probes[4].state, State::kTombstone);
  EXPECT_EQ(probes[5].state, State::kFound);
  EXPECT_EQ(probes[5].value, "v199");
  EXPECT_EQ(probes[6].state, State::kAbsent);

  EXPECT_TRUE(reader->MultiGet({})->empty());
}

TEST(SstableTest, CorruptMagicRejected) {
  ScopedDfs dfs("sst_corrupt");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/junk.sst"));
  ASSERT_OK(writer->Append(std::string(64, 'q')));
  ASSERT_OK(writer->Close());
  EXPECT_TRUE(SstableReader::Open(dfs.get(), "/junk.sst").status().IsCorruption());
}

// ---------- LSM-specific tests ----------

TEST(LsmKvTest, FlushCreatesRunsAndCompactionBoundsThem) {
  ScopedDfs dfs("lsm_runs");
  LsmKv::Options options;
  options.dfs = dfs.get();
  options.dir = "/kv";
  options.memtable_flush_bytes = 128;
  options.max_runs = 2;
  ASSERT_OK_AND_ASSIGN(auto store, LsmKv::Open(options));
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(store->Put(StringPrintf("key%04d", i), std::string(16, 'v')));
  }
  EXPECT_LE(store->NumRuns(), options.max_runs + 1);
  EXPECT_EQ(*store->Count(), 500u);
}

TEST(LsmKvTest, RecoversFromWalAndRuns) {
  ScopedDfs dfs("lsm_recover");
  LsmKv::Options options;
  options.dfs = dfs.get();
  options.dir = "/kv";
  options.memtable_flush_bytes = 200;
  {
    ASSERT_OK_AND_ASSIGN(auto store, LsmKv::Open(options));
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(store->Put(StringPrintf("key%03d", i), std::to_string(i)));
    }
    ASSERT_OK(store->Delete("key050"));
    // No explicit flush/close: destructor just closes the WAL handle.
  }
  ASSERT_OK_AND_ASSIGN(auto store, LsmKv::Open(options));
  EXPECT_EQ(*store->Get("key099"), "99");
  EXPECT_TRUE(store->Get("key050").status().IsNotFound());
  EXPECT_EQ(*store->Count(), 99u);
}

TEST(LsmKvTest, CompactMergesToSingleRun) {
  ScopedDfs dfs("lsm_compact");
  LsmKv::Options options;
  options.dfs = dfs.get();
  options.dir = "/kv";
  options.memtable_flush_bytes = 100;
  options.max_runs = 100;  // no automatic compaction
  ASSERT_OK_AND_ASSIGN(auto store, LsmKv::Open(options));
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(store->Put(StringPrintf("key%04d", i % 50), std::to_string(i)));
  }
  ASSERT_OK(store->Delete("key0000"));
  ASSERT_OK(store->Compact());
  EXPECT_EQ(store->NumRuns(), 1);
  EXPECT_EQ(*store->Count(), 49u);
  EXPECT_TRUE(store->Get("key0000").status().IsNotFound());
  // Newest value wins after merge: key0001 was last written at i=251.
  EXPECT_EQ(*store->Get("key0001"), "251");
}

TEST(LsmKvTest, ApproximateSizeGrowsWithData) {
  ScopedDfs dfs("lsm_size");
  LsmKv::Options options;
  options.dfs = dfs.get();
  options.dir = "/kv";
  ASSERT_OK_AND_ASSIGN(auto store, LsmKv::Open(options));
  ASSERT_OK_AND_ASSIGN(uint64_t empty, store->ApproximateSizeBytes());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(store->Put("key" + std::to_string(i), std::string(100, 'x')));
  }
  ASSERT_OK_AND_ASSIGN(uint64_t full, store->ApproximateSizeBytes());
  EXPECT_GT(full, empty + 100 * 100);
}

}  // namespace
}  // namespace dgf::kv
