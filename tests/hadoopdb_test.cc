#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/encoding.h"
#include "common/random.h"
#include "hadoopdb/btree.h"
#include "hadoopdb/hadoopdb.h"
#include "hadoopdb/local_db.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf::hadoopdb {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Row;
using table::Schema;
using table::Value;

// ---------- BTree ----------

std::string IntKey(int64_t v) {
  std::string key;
  PutOrderedInt64(&key, v);
  return key;
}

TEST(BTreeTest, InsertAndRangeScan) {
  BTree tree;
  for (int64_t i = 999; i >= 0; --i) tree.Insert(IntKey(i), static_cast<uint64_t>(i));
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.height(), 1);

  uint64_t count = 0;
  int64_t prev = -1;
  for (auto it = tree.Range(IntKey(100), IntKey(200)); it.Valid(); it.Next()) {
    const auto v = static_cast<int64_t>(it.value());
    EXPECT_GE(v, 100);
    EXPECT_LT(v, 200);
    EXPECT_GT(v, prev);  // sorted
    prev = v;
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(BTreeTest, UnboundedUpper) {
  BTree tree;
  for (int64_t i = 0; i < 50; ++i) tree.Insert(IntKey(i), static_cast<uint64_t>(i));
  EXPECT_EQ(tree.CountRange(IntKey(40), ""), 10u);
  EXPECT_EQ(tree.CountRange("", ""), 50u);
}

TEST(BTreeTest, DuplicateKeysAllKept) {
  BTree tree;
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(IntKey(7), i);
  EXPECT_EQ(tree.CountRange(IntKey(7), IntKey(8)), 500u);
  EXPECT_EQ(tree.CountRange(IntKey(6), IntKey(7)), 0u);
  std::set<uint64_t> values;
  for (auto it = tree.Range(IntKey(7), IntKey(8)); it.Valid(); it.Next()) {
    values.insert(it.value());
  }
  EXPECT_EQ(values.size(), 500u);
}

TEST(BTreeTest, EmptyTreeRange) {
  BTree tree;
  auto it = tree.Range(IntKey(0), IntKey(10));
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, RandomizedAgainstMultimap) {
  BTree tree;
  std::multimap<std::string, uint64_t> model;
  Random rng(31);
  for (uint64_t i = 0; i < 5000; ++i) {
    const std::string key = IntKey(rng.UniformRange(0, 300));
    tree.Insert(key, i);
    model.emplace(key, i);
  }
  ASSERT_EQ(tree.size(), model.size());
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t lo = rng.UniformRange(0, 300);
    const int64_t hi = lo + rng.UniformRange(0, 100);
    std::multiset<uint64_t> expected;
    for (auto it = model.lower_bound(IntKey(lo)); it != model.end(); ++it) {
      if (it->first >= IntKey(hi)) break;
      expected.insert(it->second);
    }
    std::multiset<uint64_t> got;
    for (auto it = tree.Range(IntKey(lo), IntKey(hi)); it.Valid(); it.Next()) {
      EXPECT_EQ(it.key().size(), 8u);  // visible key without the uniquifier
      got.insert(it.value());
    }
    EXPECT_EQ(got, expected) << "range [" << lo << "," << hi << ")";
  }
}

// ---------- LocalDb ----------

Schema MeterMini() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

std::vector<Row> MiniRows(int n, uint64_t seed) {
  Random rng(seed);
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(rng.UniformRange(0, 99)),
                    Value::Int64(rng.UniformRange(1, 3)),
                    Value::Date(15000 + rng.UniformRange(0, 9)),
                    Value::Double(rng.UniformDouble(0, 10))});
  }
  return rows;
}

TEST(LocalDbTest, IndexScanForSelectiveLeadingRange) {
  ASSERT_OK_AND_ASSIGN(auto db,
                       LocalDb::Create(MeterMini(), {"userId", "regionId", "time"}));
  auto rows = MiniRows(2000, 41);
  for (const auto& row : rows) ASSERT_OK(db->Insert(row));

  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", Value::Int64(10), true,
                                       Value::Int64(13), false));
  std::vector<uint64_t> out;
  ASSERT_OK_AND_ASSIGN(auto stats, db->Execute(pred, &out));
  EXPECT_TRUE(stats.used_index);
  // Verify against brute force.
  auto bound = pred.Bind(MeterMini());
  ASSERT_TRUE(bound.ok());
  uint64_t expected = 0;
  for (const auto& row : rows) {
    if (bound->Matches(row)) ++expected;
  }
  EXPECT_EQ(stats.rows_matched, expected);
  EXPECT_EQ(out.size(), expected);
  EXPECT_LT(stats.rows_examined, rows.size() / 2);
}

TEST(LocalDbTest, SeqScanForWideRange) {
  ASSERT_OK_AND_ASSIGN(auto db,
                       LocalDb::Create(MeterMini(), {"userId", "regionId", "time"}));
  for (const auto& row : MiniRows(1000, 42)) ASSERT_OK(db->Insert(row));
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", Value::Int64(0), true,
                                       Value::Int64(100), false));
  std::vector<uint64_t> out;
  ASSERT_OK_AND_ASSIGN(auto stats, db->Execute(pred, &out));
  EXPECT_FALSE(stats.used_index);
  EXPECT_EQ(stats.rows_examined, 1000u);
  EXPECT_EQ(stats.bytes_scanned, db->heap_bytes());
}

TEST(LocalDbTest, SeqScanWhenLeadingColumnUnconstrained) {
  ASSERT_OK_AND_ASSIGN(auto db,
                       LocalDb::Create(MeterMini(), {"userId", "regionId", "time"}));
  for (const auto& row : MiniRows(500, 43)) ASSERT_OK(db->Insert(row));
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("regionId", Value::Int64(2)));
  std::vector<uint64_t> out;
  ASSERT_OK_AND_ASSIGN(auto stats, db->Execute(pred, &out));
  EXPECT_FALSE(stats.used_index);
}

TEST(LocalDbTest, BulkLoadThenBuildIndex) {
  ASSERT_OK_AND_ASSIGN(auto db, LocalDb::Create(MeterMini(), {"userId"}));
  auto rows = MiniRows(800, 44);
  for (const auto& row : rows) {
    ASSERT_OK(db->Insert(row, /*maintain_index=*/false));
  }
  db->BuildIndex();
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("userId", Value::Int64(5)));
  std::vector<uint64_t> out;
  ASSERT_OK_AND_ASSIGN(auto stats, db->Execute(pred, &out));
  EXPECT_TRUE(stats.used_index);
  auto bound = pred.Bind(MeterMini());
  ASSERT_TRUE(bound.ok());
  uint64_t expected = 0;
  for (const auto& row : rows) {
    if (bound->Matches(row)) ++expected;
  }
  EXPECT_EQ(stats.rows_matched, expected);
}

// ---------- HadoopDb engine ----------

struct HdbWorld {
  std::unique_ptr<ScopedDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  table::TableDesc users;
  std::unique_ptr<HadoopDb> db;
  std::vector<Row> rows;
};

HdbWorld MakeHdbWorld(const std::string& tag) {
  HdbWorld world;
  world.dfs = std::make_unique<ScopedDfs>("hdb_" + tag);
  world.config.num_users = 300;
  world.config.num_days = 6;
  world.config.num_regions = 4;
  world.config.extra_metrics = 0;
  world.config.seed = 17;
  auto meter = workload::GenerateMeterTable(world.dfs->get(), "/w/meter",
                                            world.config);
  EXPECT_TRUE(meter.ok());
  world.meter = *meter;
  auto users = workload::GenerateUserInfoTable(world.dfs->get(), "/w/users",
                                               world.config);
  EXPECT_TRUE(users.ok());
  world.users = *users;
  EXPECT_OK(workload::ForEachMeterRow(world.config, [&](const Row& row) {
    world.rows.push_back(row);
    return Status::OK();
  }));

  HadoopDbConfig config;
  config.num_nodes = 4;
  config.chunks_per_node = 3;
  auto db = HadoopDb::Load(world.dfs->get(), world.meter, config);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  world.db = std::move(*db);
  EXPECT_OK(world.db->ReplicateArchive(world.dfs->get(), world.users));
  return world;
}

TEST(HadoopDbTest, LoadPartitionsEverything) {
  HdbWorld world = MakeHdbWorld("load");
  EXPECT_EQ(world.db->total_rows(),
            static_cast<uint64_t>(world.config.TotalRows()));
}

TEST(HadoopDbTest, AggregationMatchesBruteForce) {
  HdbWorld world = MakeHdbWorld("agg");
  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kFivePercent, 1);
  ASSERT_OK_AND_ASSIGN(auto output, world.db->Execute(q));
  auto bound = q.where.Bind(world.meter.schema);
  ASSERT_TRUE(bound.ok());
  double expected = 0;
  for (const auto& row : world.rows) {
    if (bound->Matches(row)) expected += row[3].AsDouble();
  }
  ASSERT_EQ(output.rows.size(), 1u);
  EXPECT_NEAR(output.rows[0][0].dbl(), expected, 1e-6 * (1 + std::abs(expected)));
  EXPECT_GT(output.stats.total_seconds, 0.0);
}

TEST(HadoopDbTest, GroupByMatchesBruteForce) {
  HdbWorld world = MakeHdbWorld("gb");
  query::Query q = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kGroupBy,
      workload::Selectivity::kTwelvePercent, 2);
  ASSERT_OK_AND_ASSIGN(auto output, world.db->Execute(q));
  auto bound = q.where.Bind(world.meter.schema);
  ASSERT_TRUE(bound.ok());
  std::map<int64_t, double> expected;
  for (const auto& row : world.rows) {
    if (bound->Matches(row)) expected[row[2].int64()] += row[3].AsDouble();
  }
  ASSERT_EQ(output.rows.size(), expected.size());
  for (const auto& row : output.rows) {
    const auto it = expected.find(row[0].int64());
    ASSERT_NE(it, expected.end());
    EXPECT_NEAR(row[1].dbl(), it->second, 1e-6 * (1 + std::abs(it->second)));
  }
}

TEST(HadoopDbTest, JoinMatchesBruteForce) {
  HdbWorld world = MakeHdbWorld("join");
  query::Query q = workload::MakeMeterQuery(world.config,
                                            workload::MeterQueryKind::kJoin,
                                            workload::Selectivity::kPoint, 3);
  ASSERT_OK_AND_ASSIGN(auto output, world.db->Execute(q));
  auto bound = q.where.Bind(world.meter.schema);
  ASSERT_TRUE(bound.ok());
  uint64_t expected = 0;
  for (const auto& row : world.rows) {
    if (bound->Matches(row)) ++expected;
  }
  // Every meter row joins exactly one userInfo row.
  EXPECT_EQ(output.rows.size(), expected);
  if (!output.rows.empty()) {
    EXPECT_TRUE(output.rows[0][0].is_string());  // userName
  }
}

TEST(HadoopDbTest, PointQueryUsesIndexesHighSelectivityScans) {
  HdbWorld world = MakeHdbWorld("planner");
  query::Query point = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kPoint, 4);
  ASSERT_OK_AND_ASSIGN(auto point_out, world.db->Execute(point));
  EXPECT_EQ(point_out.stats.chunks_seq_scanned, 0);
  EXPECT_GT(point_out.stats.chunks_using_index, 0);

  query::Query wide = workload::MakeMeterQuery(
      world.config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kTwelvePercent, 5);
  ASSERT_OK_AND_ASSIGN(auto wide_out, world.db->Execute(wide));
  EXPECT_GT(wide_out.stats.chunks_seq_scanned, 0);
  // Degradation shape: wide queries cost much more than point queries.
  EXPECT_GT(wide_out.stats.total_seconds, point_out.stats.total_seconds);
}

TEST(HadoopDbTest, JoinWithoutArchiveFails) {
  ScopedDfs dfs("hdb_noarch");
  workload::MeterConfig config;
  config.num_users = 50;
  config.num_days = 2;
  config.extra_metrics = 0;
  ASSERT_OK_AND_ASSIGN(auto meter,
                       workload::GenerateMeterTable(dfs.get(), "/w/m", config));
  HadoopDbConfig hconfig;
  hconfig.num_nodes = 2;
  hconfig.chunks_per_node = 2;
  ASSERT_OK_AND_ASSIGN(auto db, HadoopDb::Load(dfs.get(), meter, hconfig));
  query::Query q = workload::MakeMeterQuery(
      config, workload::MeterQueryKind::kJoin, workload::Selectivity::kPoint, 1);
  EXPECT_FALSE(db->Execute(q).ok());
}

}  // namespace
}  // namespace dgf::hadoopdb
