#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_index.h"
#include "dgf/dgf_input_format.h"
#include "kv/mem_kv.h"
#include "query/predicate.h"
#include "table/table.h"
#include "tests/test_util.h"

namespace dgf::core {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Schema;
using table::TableDesc;
using table::Value;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

// Deterministic small meter dataset.
std::vector<table::Row> MakeRows(int n, uint64_t seed) {
  Random rng(seed);
  std::vector<table::Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(rng.UniformRange(0, 999)),
                    Value::Int64(rng.UniformRange(1, 5)),
                    Value::Date(15000 + rng.UniformRange(0, 9)),
                    Value::Double(rng.UniformDouble(0.0, 50.0))});
  }
  return rows;
}

struct BuiltIndex {
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<DgfIndex> index;
  TableDesc base;
  std::vector<table::Row> rows;
};

BuiltIndex BuildTestIndex(const ScopedDfs& dfs, int n_rows, uint64_t seed,
                          std::vector<std::string> precompute = {
                              "sum(powerConsumed)", "count(*)"}) {
  BuiltIndex built;
  built.base = TableDesc{"meter", MeterSchema(), table::FileFormat::kText,
                         "/warehouse/meter"};
  built.rows = MakeRows(n_rows, seed);
  auto writer = table::TableWriter::Create(dfs.get(), built.base);
  EXPECT_TRUE(writer.ok());
  for (const auto& row : built.rows) {
    EXPECT_OK((*writer)->Append(row));
  }
  EXPECT_OK((*writer)->Close());

  built.store = std::make_shared<kv::MemKv>();
  DgfBuilder::Options options;
  options.dims = {{"userId", DataType::kInt64, 0, 100},
                  {"regionId", DataType::kInt64, 0, 1},
                  {"time", DataType::kDate, 15000, 1}};
  options.precompute = std::move(precompute);
  options.data_dir = "/warehouse/meter_dgf";
  options.job.num_reducers = 4;
  options.split_size = 4096;
  auto index = DgfBuilder::Build(dfs.get(), built.store, built.base, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  built.index = std::move(*index);
  return built;
}

// Reads all rows named by `slices` via the sliced input format.
std::vector<table::Row> ReadSlices(const ScopedDfs& dfs,
                                   const std::vector<SliceLocation>& slices,
                                   const Schema& schema) {
  std::vector<table::Row> rows;
  auto planned = PlanSlicedSplits(dfs.get(), slices, 4096);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  for (const auto& sliced : *planned) {
    auto reader = SliceRecordReader::Open(dfs.get(), sliced, schema);
    EXPECT_TRUE(reader.ok());
    table::Row row;
    for (;;) {
      auto more = (*reader)->Next(&row);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      rows.push_back(row);
    }
  }
  return rows;
}

query::Predicate MeterPredicate(int64_t u_lo, int64_t u_hi, int64_t r_lo,
                                int64_t r_hi, int64_t t_lo, int64_t t_hi) {
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", Value::Int64(u_lo), true,
                                       Value::Int64(u_hi), false));
  pred.And(query::ColumnRange::Between("regionId", Value::Int64(r_lo), true,
                                       Value::Int64(r_hi), false));
  pred.And(query::ColumnRange::Between("time", Value::Date(t_lo), true,
                                       Value::Date(t_hi), false));
  return pred;
}

double BruteForceSum(const std::vector<table::Row>& rows,
                     const query::Predicate& pred, const Schema& schema,
                     uint64_t* matching = nullptr) {
  auto bound = pred.Bind(schema);
  EXPECT_TRUE(bound.ok());
  double sum = 0;
  uint64_t count = 0;
  for (const auto& row : rows) {
    if (bound->Matches(row)) {
      sum += row[3].AsDouble();
      ++count;
    }
  }
  if (matching != nullptr) *matching = count;
  return sum;
}

// ---------- Build ----------

TEST(DgfBuildTest, BuildsAndReportsStats) {
  ScopedDfs dfs("dgf_build");
  auto built = BuildTestIndex(dfs, 2000, 1);
  ASSERT_OK_AND_ASSIGN(uint64_t gfus, built.index->NumGfus());
  // 10 user cells x 5 regions x 10 days = at most 500 GFUs, at least some.
  EXPECT_GT(gfus, 50u);
  EXPECT_LE(gfus, 500u);
  ASSERT_OK_AND_ASSIGN(uint64_t size, built.index->IndexSizeBytes());
  EXPECT_GT(size, 0u);
}

TEST(DgfBuildTest, RefusesSecondBuildInSameStore) {
  ScopedDfs dfs("dgf_rebuild");
  auto built = BuildTestIndex(dfs, 200, 2);
  DgfBuilder::Options options;
  options.dims = {{"userId", DataType::kInt64, 0, 100}};
  options.data_dir = "/warehouse/other";
  auto again = DgfBuilder::Build(dfs.get(), built.store, built.base, options);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(DgfBuildTest, SlicesPartitionTheTable) {
  ScopedDfs dfs("dgf_slices");
  auto built = BuildTestIndex(dfs, 1000, 3);
  // Collect every slice from the store; total records must equal the table.
  uint64_t total_records = 0;
  std::vector<SliceLocation> all_slices;
  auto it = built.store->NewIterator();
  for (it->Seek("G"); it->Valid(); it->Next()) {
    if (it->key().front() != 'G') break;
    ASSERT_OK_AND_ASSIGN(GfuValue value, GfuValue::Decode(it->value()));
    total_records += value.record_count;
    all_slices.insert(all_slices.end(), value.slices.begin(),
                      value.slices.end());
  }
  EXPECT_EQ(total_records, 1000u);
  // Reading every slice yields every row exactly once.
  auto rows = ReadSlices(dfs, all_slices, MeterSchema());
  EXPECT_EQ(rows.size(), 1000u);
}

TEST(DgfBuildTest, HeadersMatchSliceContents) {
  ScopedDfs dfs("dgf_headers");
  auto built = BuildTestIndex(dfs, 800, 4);
  auto it = built.store->NewIterator();
  int checked = 0;
  for (it->Seek("G"); it->Valid() && checked < 20; it->Next()) {
    if (it->key().front() != 'G') break;
    ASSERT_OK_AND_ASSIGN(GfuValue value, GfuValue::Decode(it->value()));
    auto rows = ReadSlices(dfs, value.slices, MeterSchema());
    ASSERT_EQ(rows.size(), value.record_count);
    double sum = 0;
    for (const auto& row : rows) sum += row[3].AsDouble();
    EXPECT_NEAR(value.header[0], sum, 1e-6);
    EXPECT_DOUBLE_EQ(value.header[1], static_cast<double>(rows.size()));
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(DgfBuildTest, OpenFromPersistedMetadata) {
  ScopedDfs dfs("dgf_open");
  auto built = BuildTestIndex(dfs, 300, 5);
  ASSERT_OK_AND_ASSIGN(auto reopened,
                       DgfIndex::Open(dfs.get(), built.store, MeterSchema()));
  EXPECT_EQ(reopened->policy().num_dims(), 3);
  EXPECT_EQ(reopened->data_dir(), "/warehouse/meter_dgf");
  EXPECT_EQ(reopened->aggregators()->size(), 2);
}

// ---------- Lookup correctness (property test) ----------

class DgfLookupPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DgfLookupPropertyTest, AggregationLookupMatchesBruteForce) {
  ScopedDfs dfs("dgf_prop" + std::to_string(GetParam()));
  auto built = BuildTestIndex(dfs, 3000, 100 + GetParam());
  Random rng(999 + GetParam());
  const Schema schema = MeterSchema();

  for (int trial = 0; trial < 12; ++trial) {
    const int64_t u_lo = rng.UniformRange(0, 900);
    const int64_t u_hi = u_lo + rng.UniformRange(1, 999 - u_lo + 1);
    const int64_t r_lo = rng.UniformRange(1, 5);
    const int64_t r_hi = r_lo + rng.UniformRange(1, 3);
    const int64_t t_lo = 15000 + rng.UniformRange(0, 8);
    const int64_t t_hi = t_lo + rng.UniformRange(1, 5);
    query::Predicate pred = MeterPredicate(u_lo, u_hi, r_lo, r_hi, t_lo, t_hi);

    ASSERT_OK_AND_ASSIGN(auto lookup,
                         built.index->Lookup(pred, /*aggregation=*/true));
    // Aggregate: inner header + scan of boundary slices with the predicate.
    double sum = lookup.inner_header[0];
    uint64_t count = lookup.inner_records;
    auto bound = pred.Bind(schema);
    ASSERT_TRUE(bound.ok());
    for (const auto& row : ReadSlices(dfs, lookup.slices, schema)) {
      if (bound->Matches(row)) {
        sum += row[3].AsDouble();
        ++count;
      }
    }
    uint64_t expected_count = 0;
    const double expected_sum =
        BruteForceSum(built.rows, pred, schema, &expected_count);
    EXPECT_NEAR(sum, expected_sum, 1e-6)
        << "trial " << trial << " pred " << pred.ToString();
    EXPECT_EQ(count, expected_count) << pred.ToString();
  }
}

TEST_P(DgfLookupPropertyTest, NonAggregationLookupFindsAllMatchingRows) {
  ScopedDfs dfs("dgf_nonagg" + std::to_string(GetParam()));
  auto built = BuildTestIndex(dfs, 2000, 200 + GetParam());
  Random rng(555 + GetParam());
  const Schema schema = MeterSchema();

  for (int trial = 0; trial < 8; ++trial) {
    const int64_t u_lo = rng.UniformRange(0, 900);
    const int64_t u_hi = u_lo + rng.UniformRange(1, 999 - u_lo + 1);
    query::Predicate pred = MeterPredicate(u_lo, u_hi, 1, 6, 15000, 15010);

    ASSERT_OK_AND_ASSIGN(auto lookup,
                         built.index->Lookup(pred, /*aggregation=*/false));
    EXPECT_TRUE(lookup.inner_header.empty() ||
                lookup.inner_records == 0);  // nothing pre-aggregated
    auto bound = pred.Bind(schema);
    ASSERT_TRUE(bound.ok());
    uint64_t matches = 0;
    for (const auto& row : ReadSlices(dfs, lookup.slices, schema)) {
      if (bound->Matches(row)) ++matches;
    }
    uint64_t expected = 0;
    BruteForceSum(built.rows, pred, schema, &expected);
    EXPECT_EQ(matches, expected) << pred.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DgfLookupPropertyTest, ::testing::Range(0, 4));

// ---------- Lookup behaviours ----------

TEST(DgfLookupTest, PointQueryHasNoInnerRegion) {
  ScopedDfs dfs("dgf_point");
  auto built = BuildTestIndex(dfs, 2000, 7);
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("userId", Value::Int64(123)));
  pred.And(query::ColumnRange::Equal("regionId", Value::Int64(2)));
  pred.And(query::ColumnRange::Equal("time", Value::Date(15003)));
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  // A point query touches a single cell, never fully covered.
  EXPECT_EQ(lookup.inner_gfus, 0u);
  EXPECT_LE(lookup.boundary_gfus, 1u);
}

TEST(DgfLookupTest, AlignedQueryIsAllInner) {
  ScopedDfs dfs("dgf_aligned");
  auto built = BuildTestIndex(dfs, 3000, 8);
  // Cell-aligned box: [100,300) x [1,3) x [15002,15004).
  query::Predicate pred = MeterPredicate(100, 300, 1, 3, 15002, 15004);
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  EXPECT_EQ(lookup.boundary_gfus, 0u);
  EXPECT_TRUE(lookup.slices.empty());
  EXPECT_GT(lookup.inner_records, 0u);
  uint64_t expected = 0;
  const double expected_sum =
      BruteForceSum(built.rows, pred, MeterSchema(), &expected);
  EXPECT_EQ(lookup.inner_records, expected);
  EXPECT_NEAR(lookup.inner_header[0], expected_sum, 1e-6);
}

TEST(DgfLookupTest, PartialQueryUsesStoredBounds) {
  ScopedDfs dfs("dgf_partial");
  auto built = BuildTestIndex(dfs, 2000, 9);
  // No userId condition: the paper's partial-specified query (Listing 7).
  query::Predicate pred;
  pred.And(query::ColumnRange::Equal("regionId", Value::Int64(3)));
  pred.And(query::ColumnRange::Equal("time", Value::Date(15004)));
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  double sum = lookup.inner_header[0];
  auto bound = pred.Bind(MeterSchema());
  ASSERT_TRUE(bound.ok());
  for (const auto& row : ReadSlices(dfs, lookup.slices, MeterSchema())) {
    if (bound->Matches(row)) sum += row[3].AsDouble();
  }
  EXPECT_NEAR(sum, BruteForceSum(built.rows, pred, MeterSchema()), 1e-6);
  // userId axis is unconstrained -> fully inner along it, so the inner region
  // exists (regionId/time are single full cells).
  EXPECT_GT(lookup.inner_gfus, 0u);
}

TEST(DgfLookupTest, EmptyRangeReturnsNothing) {
  ScopedDfs dfs("dgf_empty");
  auto built = BuildTestIndex(dfs, 500, 10);
  query::Predicate pred = MeterPredicate(500, 400, 1, 5, 15000, 15005);
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  EXPECT_TRUE(lookup.slices.empty());
  EXPECT_EQ(lookup.inner_records, 0u);
}

TEST(DgfLookupTest, OutOfDomainRangeReturnsNothing) {
  ScopedDfs dfs("dgf_oob");
  auto built = BuildTestIndex(dfs, 500, 11);
  query::Predicate pred = MeterPredicate(5000, 9000, 1, 5, 15000, 15005);
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  EXPECT_TRUE(lookup.slices.empty());
  EXPECT_EQ(lookup.inner_records, 0u);
}

TEST(DgfLookupTest, CoversAggregations) {
  ScopedDfs dfs("dgf_covers");
  auto built = BuildTestIndex(dfs, 300, 12);
  ASSERT_OK_AND_ASSIGN(AggSpec sum, AggSpec::Parse("sum(powerConsumed)"));
  ASSERT_OK_AND_ASSIGN(AggSpec count, AggSpec::Parse("count(*)"));
  ASSERT_OK_AND_ASSIGN(AggSpec min, AggSpec::Parse("min(powerConsumed)"));
  EXPECT_TRUE(built.index->CoversAggregations({sum}));
  EXPECT_TRUE(built.index->CoversAggregations({sum, count}));
  EXPECT_FALSE(built.index->CoversAggregations({min}));
  EXPECT_FALSE(built.index->CoversAggregations({}));
}

// ---------- Incremental append ----------

TEST(DgfAppendTest, AppendExtendsTimeDimensionWithoutRebuild) {
  ScopedDfs dfs("dgf_append");
  auto built = BuildTestIndex(dfs, 1500, 13);

  // New batch: next 5 days of data (time cells the index has never seen).
  TableDesc batch{"meter_new", MeterSchema(), table::FileFormat::kText,
                  "/staging/meter_new"};
  Random rng(77);
  std::vector<table::Row> new_rows;
  ASSERT_OK_AND_ASSIGN(auto writer, table::TableWriter::Create(dfs.get(), batch));
  for (int i = 0; i < 800; ++i) {
    table::Row row = {Value::Int64(rng.UniformRange(0, 999)),
                      Value::Int64(rng.UniformRange(1, 5)),
                      Value::Date(15010 + rng.UniformRange(0, 4)),
                      Value::Double(rng.UniformDouble(0.0, 50.0))};
    new_rows.push_back(row);
    ASSERT_OK(writer->Append(row));
  }
  ASSERT_OK(writer->Close());

  ASSERT_OK(DgfBuilder::Append(built.index.get(), batch).status());

  // Old and new data both answer correctly.
  std::vector<table::Row> all_rows = built.rows;
  all_rows.insert(all_rows.end(), new_rows.begin(), new_rows.end());
  query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15005, 15013);
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  double sum = lookup.inner_header[0];
  auto bound = pred.Bind(MeterSchema());
  ASSERT_TRUE(bound.ok());
  for (const auto& row : ReadSlices(dfs, lookup.slices, MeterSchema())) {
    if (bound->Matches(row)) sum += row[3].AsDouble();
  }
  EXPECT_NEAR(sum, BruteForceSum(all_rows, pred, MeterSchema()), 1e-6);
}

TEST(DgfAppendTest, AppendMergesOverlappingGfus) {
  ScopedDfs dfs("dgf_append_merge");
  auto built = BuildTestIndex(dfs, 1000, 14);
  // Batch with the SAME time range: GFU entries must merge, not duplicate.
  TableDesc batch{"meter_new", MeterSchema(), table::FileFormat::kText,
                  "/staging/meter_new"};
  auto rows = MakeRows(600, 15);
  ASSERT_OK_AND_ASSIGN(auto writer, table::TableWriter::Create(dfs.get(), batch));
  for (const auto& row : rows) ASSERT_OK(writer->Append(row));
  ASSERT_OK(writer->Close());
  ASSERT_OK(DgfBuilder::Append(built.index.get(), batch).status());

  std::vector<table::Row> all_rows = built.rows;
  all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15000, 15010);
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  double sum = lookup.inner_header[0];
  uint64_t count = lookup.inner_records;
  auto bound = pred.Bind(MeterSchema());
  ASSERT_TRUE(bound.ok());
  for (const auto& row : ReadSlices(dfs, lookup.slices, MeterSchema())) {
    if (bound->Matches(row)) {
      sum += row[3].AsDouble();
      ++count;
    }
  }
  uint64_t expected_count = 0;
  const double expected =
      BruteForceSum(all_rows, pred, MeterSchema(), &expected_count);
  EXPECT_NEAR(sum, expected, 1e-6);
  EXPECT_EQ(count, expected_count);
}

// ---------- Dynamic aggregation extension ----------

TEST(DgfAddAggregationTest, AddsUdfAndUsesIt) {
  ScopedDfs dfs("dgf_addagg");
  auto built = BuildTestIndex(dfs, 1200, 16, {"count(*)"});
  ASSERT_OK_AND_ASSIGN(AggSpec max_spec, AggSpec::Parse("max(powerConsumed)"));
  EXPECT_FALSE(built.index->CoversAggregations({max_spec}));
  ASSERT_OK(built.index->AddAggregation(max_spec));
  EXPECT_TRUE(built.index->CoversAggregations({max_spec}));
  EXPECT_TRUE(
      built.index->AddAggregation(max_spec).code() ==
      StatusCode::kAlreadyExists);

  // Aligned query answered purely from the new headers.
  query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15000, 15010);
  ASSERT_OK_AND_ASSIGN(auto lookup, built.index->Lookup(pred, true));
  EXPECT_EQ(lookup.boundary_gfus, 0u);
  double expected_max = -1;
  for (const auto& row : built.rows) {
    expected_max = std::max(expected_max, row[3].AsDouble());
  }
  ASSERT_EQ(lookup.inner_header.size(), 2u);
  EXPECT_NEAR(lookup.inner_header[1], expected_max, 1e-9);
}

// ---------- Decoded-GFU cache ----------

TEST(DgfCacheTest, RepeatedLookupHitsCache) {
  ScopedDfs dfs("dgf_cache_warm");
  auto built = BuildTestIndex(dfs, 1500, 21);
  query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15000, 15010);

  ASSERT_OK_AND_ASSIGN(auto cold, built.index->Lookup(pred, true));
  EXPECT_GT(cold.cache_misses, 0u);
  ASSERT_OK_AND_ASSIGN(auto warm, built.index->Lookup(pred, true));
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_LT(warm.cache_misses, cold.cache_misses);

  // Cached answers are the same answers.
  ASSERT_EQ(warm.inner_header.size(), cold.inner_header.size());
  for (size_t i = 0; i < cold.inner_header.size(); ++i) {
    EXPECT_EQ(warm.inner_header[i], cold.inner_header[i]);
  }
  EXPECT_EQ(warm.inner_records, cold.inner_records);
  EXPECT_EQ(warm.slices.size(), cold.slices.size());
}

TEST(DgfCacheTest, AddAggregationInvalidatesCache) {
  ScopedDfs dfs("dgf_cache_addagg");
  auto built = BuildTestIndex(dfs, 1200, 22, {"count(*)"});
  query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15000, 15010);
  // Warm the cache with the single-aggregate headers.
  ASSERT_OK_AND_ASSIGN(auto before, built.index->Lookup(pred, true));
  ASSERT_EQ(before.inner_header.size(), 1u);

  ASSERT_OK_AND_ASSIGN(AggSpec max_spec, AggSpec::Parse("max(powerConsumed)"));
  ASSERT_OK(built.index->AddAggregation(max_spec));

  // Stale cached GfuValues would still carry one header slot.
  ASSERT_OK_AND_ASSIGN(auto after, built.index->Lookup(pred, true));
  ASSERT_EQ(after.inner_header.size(), 2u);
  double expected_max = -1;
  for (const auto& row : built.rows) {
    expected_max = std::max(expected_max, row[3].AsDouble());
  }
  EXPECT_NEAR(after.inner_header[1], expected_max, 1e-9);
}

TEST(DgfCacheTest, AppendInvalidatesCache) {
  ScopedDfs dfs("dgf_cache_append");
  auto built = BuildTestIndex(dfs, 1000, 23);
  query::Predicate pred = MeterPredicate(0, 1000, 1, 6, 15000, 15010);
  // Warm the cache before appending rows into the same cells.
  ASSERT_OK_AND_ASSIGN(auto before, built.index->Lookup(pred, true));

  TableDesc batch{"meter_new", MeterSchema(), table::FileFormat::kText,
                  "/staging/meter_new"};
  auto rows = MakeRows(600, 24);
  ASSERT_OK_AND_ASSIGN(auto writer, table::TableWriter::Create(dfs.get(), batch));
  for (const auto& row : rows) ASSERT_OK(writer->Append(row));
  ASSERT_OK(writer->Close());
  ASSERT_OK(DgfBuilder::Append(built.index.get(), batch).status());

  std::vector<table::Row> all_rows = built.rows;
  all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  ASSERT_OK_AND_ASSIGN(auto after, built.index->Lookup(pred, true));
  double sum = after.inner_header[0];
  uint64_t count = after.inner_records;
  auto bound = pred.Bind(MeterSchema());
  ASSERT_TRUE(bound.ok());
  for (const auto& row : ReadSlices(dfs, after.slices, MeterSchema())) {
    if (bound->Matches(row)) {
      sum += row[3].AsDouble();
      ++count;
    }
  }
  uint64_t expected_count = 0;
  const double expected =
      BruteForceSum(all_rows, pred, MeterSchema(), &expected_count);
  EXPECT_NEAR(sum, expected, 1e-6);
  EXPECT_EQ(count, expected_count);
  // Stale cached records would undercount versus the pre-append lookup.
  EXPECT_GT(count, before.inner_records);
}

TEST(DgfCacheTest, InterleavedAppendsKeepWarmAndColdAnswersEqual) {
  // Coherence under an append/query interleaving: after EVERY append, the
  // answer served through the warmed cache must equal the answer from a
  // freshly invalidated (cold) cache — and both must equal brute force.
  ScopedDfs dfs("dgf_cache_interleave");
  auto built = BuildTestIndex(dfs, 800, 25);
  std::vector<table::Row> all_rows = built.rows;
  const std::vector<query::Predicate> queries = {
      MeterPredicate(0, 1000, 1, 6, 15000, 15020),
      MeterPredicate(100, 700, 2, 4, 15002, 15012),
      MeterPredicate(0, 300, 1, 3, 15000, 15006)};

  for (int round = 0; round < 4; ++round) {
    // Warm the cache on every query shape before this round's append.
    for (const auto& pred : queries) {
      ASSERT_OK(built.index->Lookup(pred, true).status());
    }
    TableDesc batch{"meter_new", MeterSchema(), table::FileFormat::kText,
                    "/staging/meter_batch_" + std::to_string(round)};
    auto rows = MakeRows(300, 26 + static_cast<uint64_t>(round));
    ASSERT_OK_AND_ASSIGN(auto writer,
                         table::TableWriter::Create(dfs.get(), batch));
    for (const auto& row : rows) ASSERT_OK(writer->Append(row));
    ASSERT_OK(writer->Close());
    ASSERT_OK(DgfBuilder::Append(built.index.get(), batch).status());
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());

    for (const auto& pred : queries) {
      // Warm: whatever survives in the cache after Append's invalidation
      // plus this round's lookups.
      ASSERT_OK_AND_ASSIGN(auto warm, built.index->Lookup(pred, true));
      // Cold: everything re-read from the store.
      built.index->InvalidateCache();
      ASSERT_OK_AND_ASSIGN(auto cold, built.index->Lookup(pred, true));

      ASSERT_EQ(warm.inner_header.size(), cold.inner_header.size());
      for (size_t i = 0; i < cold.inner_header.size(); ++i) {
        EXPECT_EQ(warm.inner_header[i], cold.inner_header[i])
            << "round " << round << " header " << i;
      }
      EXPECT_EQ(warm.inner_records, cold.inner_records) << "round " << round;
      EXPECT_EQ(warm.slices.size(), cold.slices.size()) << "round " << round;

      double sum = cold.inner_header[0];
      uint64_t count = cold.inner_records;
      auto bound = pred.Bind(MeterSchema());
      ASSERT_TRUE(bound.ok());
      for (const auto& row : ReadSlices(dfs, cold.slices, MeterSchema())) {
        if (bound->Matches(row)) {
          sum += row[3].AsDouble();
          ++count;
        }
      }
      uint64_t expected_count = 0;
      const double expected =
          BruteForceSum(all_rows, pred, MeterSchema(), &expected_count);
      EXPECT_NEAR(sum, expected, 1e-6 * (1 + std::abs(expected)))
          << "round " << round;
      EXPECT_EQ(count, expected_count) << "round " << round;
    }
  }
}

// ---------- Sliced input format ----------

TEST(SlicedSplitTest, FiltersUnrelatedSplits) {
  ScopedDfs dfs("dgf_splitfilter");
  // One file of 10 x 100-byte regions; slices in regions 2 and 7 only.
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/data.txt"));
  std::string line(99, 'x');
  line += "\n";
  for (int i = 0; i < 10; ++i) ASSERT_OK(writer->Append(line));
  ASSERT_OK(writer->Close());

  std::vector<SliceLocation> slices = {{"/data.txt", 200, 300},
                                       {"/data.txt", 700, 800}};
  ASSERT_OK_AND_ASSIGN(auto planned,
                       PlanSlicedSplits(dfs.get(), slices, /*split_size=*/250));
  // Splits: [0,250) [250,500) [500,750) [750,1000). Slice starts at 200 and
  // 700 -> splits 0 and 2 chosen.
  ASSERT_EQ(planned.size(), 2u);
  EXPECT_EQ(planned[0].split.offset, 0u);
  EXPECT_EQ(planned[1].split.offset, 500u);
  ASSERT_EQ(planned[0].slices.size(), 1u);
  EXPECT_EQ(planned[0].slices[0].start, 200u);
}

TEST(SlicedSplitTest, DropsZeroLengthSlices) {
  ScopedDfs dfs("dgf_zeroslice");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/data.txt"));
  ASSERT_OK(writer->Append("abc\n"));
  ASSERT_OK(writer->Close());
  std::vector<SliceLocation> slices = {{"/data.txt", 0, 0}};
  ASSERT_OK_AND_ASSIGN(auto planned, PlanSlicedSplits(dfs.get(), slices));
  EXPECT_TRUE(planned.empty());
}

TEST(SliceRecordReaderTest, CountsSeeks) {
  ScopedDfs dfs("dgf_seeks");
  Schema schema({{"v", DataType::kInt64}});
  ASSERT_OK_AND_ASSIGN(auto writer,
                       table::TextFileWriter::Create(dfs.get(), "/d.txt", schema));
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 10; ++i) {
    offsets.push_back(writer->Offset());
    ASSERT_OK(writer->Append({Value::Int64(i)}));
  }
  const uint64_t end = writer->Offset();
  ASSERT_OK(writer->Close());

  SlicedSplit sliced;
  sliced.split = {"/d.txt", 0, end};
  sliced.slices = {{"/d.txt", offsets[1], offsets[3]},
                   {"/d.txt", offsets[6], offsets[7]}};
  ASSERT_OK_AND_ASSIGN(auto reader,
                       SliceRecordReader::Open(dfs.get(), sliced, schema));
  table::Row row;
  std::vector<int64_t> got;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
    if (!more) break;
    got.push_back(row[0].int64());
  }
  EXPECT_EQ(got, (std::vector<int64_t>{1, 2, 6}));
  EXPECT_EQ(reader->SeekCount(), 2u);
}

}  // namespace
}  // namespace dgf::core
