// Cross-module integration tests: DGFIndex over the persistent LSM store,
// the Bitmap Index through the query executor, and end-to-end SQL over
// every layer at once.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dgf/dgf_builder.h"
#include "index/bitmap_index.h"
#include "kv/lsm_kv.h"
#include "query/executor.h"
#include "query/parser.h"
#include "table/table.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf {
namespace {

using ::dgf::testing::ScopedDfs;

TEST(IntegrationTest, DgfIndexOverLsmStoreSurvivesReopen) {
  ScopedDfs dfs("int_lsm", /*block_size=*/16384);
  workload::MeterConfig config;
  config.num_users = 200;
  config.num_days = 6;
  config.extra_metrics = 0;
  config.seed = 51;
  ASSERT_OK_AND_ASSIGN(auto meter, workload::GenerateMeterTable(
                                       dfs.get(), "/w/meter", config));

  // Build the index with its GFU pairs in a persistent LSM store (the
  // HBase-shaped deployment) rather than the in-memory store.
  kv::LsmKv::Options kv_options;
  kv_options.dfs = dfs.get();
  kv_options.dir = "/index/meter";
  kv_options.memtable_flush_bytes = 4096;
  ASSERT_OK_AND_ASSIGN(auto lsm, kv::LsmKv::Open(kv_options));
  std::shared_ptr<kv::KvStore> store(std::move(lsm));

  core::DgfBuilder::Options build;
  build.dims = {{"userId", table::DataType::kInt64, 0, 25},
                {"regionId", table::DataType::kInt64, 0, 1},
                {"time", table::DataType::kDate,
                 static_cast<double>(config.start_day), 1}};
  build.precompute = {"sum(powerConsumed)"};
  build.data_dir = "/w/meter_dgf";
  {
    ASSERT_OK_AND_ASSIGN(
        auto index, core::DgfBuilder::Build(dfs.get(), store, meter, build));
    ASSERT_OK_AND_ASSIGN(uint64_t gfus, index->NumGfus());
    EXPECT_GT(gfus, 0u);
  }
  // Drop every in-memory handle and recover purely from disk.
  store.reset();
  ASSERT_OK_AND_ASSIGN(auto reopened_lsm, kv::LsmKv::Open(kv_options));
  std::shared_ptr<kv::KvStore> reopened(std::move(reopened_lsm));
  ASSERT_OK_AND_ASSIGN(auto index,
                       core::DgfIndex::Open(dfs.get(), reopened, meter.schema));

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs.get();
  exec_options.split_size = 16384;
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(meter);
  executor.RegisterDgfIndex(meter.name, index.get());

  query::Query q = workload::MakeMeterQuery(
      config, workload::MeterQueryKind::kAggregation,
      workload::Selectivity::kFivePercent, 1);
  ASSERT_OK_AND_ASSIGN(auto via_index,
                       executor.Execute(q, query::AccessPath::kDgfIndex));
  ASSERT_OK_AND_ASSIGN(auto via_scan,
                       executor.Execute(q, query::AccessPath::kFullScan));
  ASSERT_EQ(via_index.rows.size(), 1u);
  EXPECT_NEAR(via_index.rows[0][0].dbl(), via_scan.rows[0][0].dbl(),
              1e-6 * (1 + std::abs(via_scan.rows[0][0].dbl())));
}

TEST(IntegrationTest, BitmapPathAgreesWithScanThroughExecutor) {
  ScopedDfs dfs("int_bitmap", /*block_size=*/16384);
  workload::MeterConfig config;
  config.num_users = 300;
  config.num_days = 5;
  config.extra_metrics = 0;
  config.seed = 52;
  ASSERT_OK_AND_ASSIGN(
      auto meter, workload::GenerateMeterTable(dfs.get(), "/w/meter_rc", config,
                                               table::FileFormat::kRcFile));

  index::BitmapIndex::BuildOptions build;
  build.dims = {"regionId", "time"};
  build.index_dir = "/w/meter_bidx";
  build.split_size = 16384;
  ASSERT_OK_AND_ASSIGN(auto bitmap,
                       index::BitmapIndex::Build(dfs.get(), meter, build));

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs.get();
  exec_options.split_size = 16384;
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(meter);
  executor.RegisterBitmapIndex(meter.name, bitmap.get());

  ASSERT_OK_AND_ASSIGN(
      query::Query q,
      query::ParseQuery("SELECT sum(powerConsumed), count(*) FROM meterdata "
                        "WHERE regionId = 3 AND time = '2012-12-03'",
                        meter.schema));
  ASSERT_OK_AND_ASSIGN(auto via_bitmap,
                       executor.Execute(q, query::AccessPath::kBitmapIndex));
  ASSERT_OK_AND_ASSIGN(auto via_scan,
                       executor.Execute(q, query::AccessPath::kFullScan));
  EXPECT_EQ(via_bitmap.rows[0][1].int64(), via_scan.rows[0][1].int64());
  EXPECT_NEAR(via_bitmap.rows[0][0].dbl(), via_scan.rows[0][0].dbl(), 1e-6);
  // The bitmap reader skips non-matching rows inside row groups.
  EXPECT_LT(via_bitmap.stats.records_read, via_scan.stats.records_read);
}

TEST(IntegrationTest, AggregateRewritePathThroughExecutor) {
  ScopedDfs dfs("int_aggrw", /*block_size=*/16384);
  workload::MeterConfig config;
  config.num_users = 200;
  config.num_days = 4;
  config.extra_metrics = 0;
  config.seed = 53;
  ASSERT_OK_AND_ASSIGN(auto meter, workload::GenerateMeterTable(
                                       dfs.get(), "/w/meter", config));
  index::CompactIndex::BuildOptions build;
  build.dims = {"regionId", "time"};
  build.index_dir = "/w/meter_ai";
  build.index_format = table::FileFormat::kText;
  ASSERT_OK_AND_ASSIGN(auto agg_index,
                       index::AggregateIndex::Build(dfs.get(), meter, build));

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs.get();
  exec_options.split_size = 16384;
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(meter);
  executor.RegisterAggregateIndex(meter.name, agg_index.get());

  ASSERT_OK_AND_ASSIGN(
      query::Query q,
      query::ParseQuery("SELECT regionId, count(*) FROM meterdata WHERE "
                        "time = '2012-12-02' GROUP BY regionId",
                        meter.schema));
  ASSERT_OK_AND_ASSIGN(auto rewrite,
                       executor.Execute(q, query::AccessPath::kAggregateRewrite));
  ASSERT_OK_AND_ASSIGN(auto scan,
                       executor.Execute(q, query::AccessPath::kFullScan));
  ASSERT_EQ(rewrite.rows.size(), scan.rows.size());
  for (size_t i = 0; i < scan.rows.size(); ++i) {
    EXPECT_EQ(rewrite.rows[i][0].int64(), scan.rows[i][0].int64());
    EXPECT_EQ(rewrite.rows[i][1].int64(), scan.rows[i][1].int64());
  }
  // The rewrite never touches the base table.
  EXPECT_EQ(rewrite.stats.records_read, 0u);
}

}  // namespace
}  // namespace dgf
