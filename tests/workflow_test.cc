#include <gtest/gtest.h>

#include <memory>

#include "query/parser.h"
#include "tests/test_util.h"
#include "workflow/workflow.h"
#include "workload/meter_gen.h"

namespace dgf::workflow {
namespace {

using ::dgf::testing::ScopedDfs;

struct ExecWorld {
  std::unique_ptr<ScopedDfs> dfs;
  table::TableDesc meter;
  std::unique_ptr<query::QueryExecutor> executor;
};

ExecWorld MakeWorld(const std::string& tag) {
  ExecWorld world;
  world.dfs = std::make_unique<ScopedDfs>("wf_" + tag, 16384);
  workload::MeterConfig config;
  config.num_users = 100;
  config.num_days = 4;
  config.extra_metrics = 0;
  auto meter = workload::GenerateMeterTable(world.dfs->get(), "/w/meter",
                                            config);
  EXPECT_TRUE(meter.ok());
  world.meter = *meter;
  query::QueryExecutor::Options options;
  options.dfs = world.dfs->get();
  options.split_size = 16384;
  world.executor = std::make_unique<query::QueryExecutor>(options);
  world.executor->RegisterTable(world.meter);
  return world;
}

Action MakeAction(const ExecWorld& world, const std::string& name,
                  const std::string& sql,
                  std::vector<std::string> deps = {}) {
  Action action;
  action.name = name;
  auto q = query::ParseQuery(sql, world.meter.schema);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  action.query = *q;
  action.depends_on = std::move(deps);
  return action;
}

Action BrokenAction(const std::string& name,
                    std::vector<std::string> deps = {}) {
  Action action;
  action.name = name;
  action.query.table = "no_such_table";
  action.query.select.push_back(query::SelectItem::Aggregation(
      *core::AggSpec::Parse("count(*)")));
  action.depends_on = std::move(deps);
  return action;
}

TEST(WorkflowTest, ValidatesDag) {
  ExecWorld world = MakeWorld("validate");
  const std::string sql = "SELECT count(*) FROM meterdata";
  EXPECT_FALSE(Workflow::Create("empty", {}).ok());
  EXPECT_FALSE(Workflow::Create("dup", {MakeAction(world, "a", sql),
                                        MakeAction(world, "a", sql)})
                   .ok());
  EXPECT_FALSE(Workflow::Create("unknown", {MakeAction(world, "a", sql,
                                                       {"ghost"})})
                   .ok());
  EXPECT_FALSE(Workflow::Create("cycle", {MakeAction(world, "a", sql, {"b"}),
                                          MakeAction(world, "b", sql, {"a"})})
                   .ok());
}

TEST(WorkflowTest, ExecutesInDependencyOrder) {
  ExecWorld world = MakeWorld("order");
  const std::string sql = "SELECT count(*) FROM meterdata";
  ASSERT_OK_AND_ASSIGN(
      auto workflow,
      Workflow::Create("proc", {MakeAction(world, "load_check", sql),
                                MakeAction(world, "daily_stats", sql,
                                           {"load_check"}),
                                MakeAction(world, "report", sql,
                                           {"daily_stats", "load_check"})}));
  ASSERT_OK_AND_ASSIGN(auto report, workflow.Run(world.executor.get()));
  EXPECT_TRUE(report.succeeded);
  ASSERT_EQ(report.actions.size(), 3u);
  for (const auto& [name, outcome] : report.actions) {
    EXPECT_EQ(outcome.state, ActionResult::State::kSucceeded) << name;
    EXPECT_EQ(outcome.result.rows.size(), 1u);
  }
  EXPECT_GT(report.sequential_seconds, 0);
  EXPECT_GT(report.critical_path_seconds, 0);
  EXPECT_LE(report.critical_path_seconds, report.sequential_seconds + 1e-9);
}

TEST(WorkflowTest, FailurePropagatesToDependents) {
  ExecWorld world = MakeWorld("fail");
  const std::string sql = "SELECT count(*) FROM meterdata";
  ASSERT_OK_AND_ASSIGN(
      auto workflow,
      Workflow::Create("proc", {BrokenAction("bad"),
                                MakeAction(world, "downstream", sql, {"bad"}),
                                MakeAction(world, "independent", sql)}));
  ASSERT_OK_AND_ASSIGN(auto report, workflow.Run(world.executor.get()));
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.actions.at("bad").state, ActionResult::State::kFailed);
  EXPECT_FALSE(report.actions.at("bad").error.ok());
  EXPECT_EQ(report.actions.at("downstream").state,
            ActionResult::State::kSkipped);
  EXPECT_EQ(report.actions.at("independent").state,
            ActionResult::State::kSucceeded);
}

TEST(CoordinatorTest, FiresOnSchedule) {
  ExecWorld world = MakeWorld("coord");
  const std::string sql = "SELECT count(*) FROM meterdata";
  ASSERT_OK_AND_ASSIGN(auto hourly,
                       Workflow::Create("hourly", {MakeAction(world, "a", sql)}));
  ASSERT_OK_AND_ASSIGN(auto daily,
                       Workflow::Create("daily", {MakeAction(world, "b", sql)}));
  Coordinator coordinator(world.executor.get());
  coordinator.Schedule(std::move(hourly), /*period_s=*/3600);
  coordinator.Schedule(std::move(daily), /*period_s=*/86400, /*first=*/100);

  ASSERT_OK_AND_ASSIGN(auto firings, coordinator.RunUntil(4 * 3600.0));
  // hourly at 0, 3600, 7200, 10800, 14400; daily at 100.
  int hourly_count = 0, daily_count = 0;
  double last_time = -1;
  for (const auto& firing : firings) {
    EXPECT_GE(firing.fire_time_s, last_time);  // time-ordered
    last_time = firing.fire_time_s;
    EXPECT_TRUE(firing.report.succeeded);
    if (firing.workflow == "hourly") ++hourly_count;
    if (firing.workflow == "daily") ++daily_count;
  }
  EXPECT_EQ(hourly_count, 5);
  EXPECT_EQ(daily_count, 1);
  EXPECT_DOUBLE_EQ(coordinator.now(), 4 * 3600.0);
}

TEST(CoordinatorTest, NothingDueReturnsEmpty) {
  ExecWorld world = MakeWorld("idle");
  const std::string sql = "SELECT count(*) FROM meterdata";
  ASSERT_OK_AND_ASSIGN(auto wf,
                       Workflow::Create("w", {MakeAction(world, "a", sql)}));
  Coordinator coordinator(world.executor.get());
  coordinator.Schedule(std::move(wf), 100, /*first=*/500);
  ASSERT_OK_AND_ASSIGN(auto firings, coordinator.RunUntil(400));
  EXPECT_TRUE(firings.empty());
}

}  // namespace
}  // namespace dgf::workflow
