// Small fixed-seed runs of the differential oracle harness, so the core
// cross-engine invariants are exercised inside the unit-test binary too (the
// full sweep lives in the dgf_difftest ctest entry).

#include <gtest/gtest.h>

#include "testing/differential.h"
#include "testing/lsm_crash_sweep.h"
#include "testing/parser_fuzz.h"
#include "tests/test_util.h"

namespace dgf::testing {
namespace {

TEST(DifftestHarnessTest, DifferentialSeedsAgreeAcrossAllPaths) {
  DiffOptions options;
  options.seed = 17;
  options.num_queries = 25;
  ASSERT_OK_AND_ASSIGN(DiffReport report, RunDifferential(options));
  EXPECT_EQ(report.queries_run, 25);
  EXPECT_GE(report.comparisons, 4 * report.queries_run);
  for (const auto& divergence : report.divergences) {
    ADD_FAILURE() << divergence.ToString();
  }
}

TEST(DifftestHarnessTest, CaseReplayRunsExactlyOneCase) {
  DiffOptions options;
  options.seed = 17;
  options.num_queries = 25;
  options.only_case = 3;
  ASSERT_OK_AND_ASSIGN(DiffReport report, RunDifferential(options));
  EXPECT_EQ(report.queries_run, 1);
  EXPECT_TRUE(report.ok());
}

TEST(DifftestHarnessTest, CrashSweepCoversEveryPointAndRecovers) {
  CrashSweepOptions options;
  options.seed = 19;
  // Keep the gtest run light; the tier-1 smoke runs the full occurrence set.
  options.max_occurrences_per_point = 3;
  ASSERT_OK_AND_ASSIGN(CrashSweepReport report, RunLsmCrashSweep(options));
  EXPECT_EQ(report.points_covered, 11);
  EXPECT_GT(report.schedules_run, 0);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << failure;
  }
}

TEST(DifftestHarnessTest, FaultSweepNeverReturnsWrongData) {
  FaultSweepOptions options;
  options.seed = 23;
  options.num_queries = 15;
  ASSERT_OK_AND_ASSIGN(FaultReport report, RunFaultSweep(options));
  EXPECT_EQ(report.queries_run, 15);
  EXPECT_GT(report.faults_injected, 0u);
  for (const auto& divergence : report.divergences) {
    ADD_FAILURE() << divergence.ToString();
  }
}

TEST(DifftestHarnessTest, ParserFuzzNeverCrashesOrLosesErrors) {
  ParserFuzzOptions options;
  options.seed = 29;
  options.num_cases = 150;
  ASSERT_OK_AND_ASSIGN(ParserFuzzReport report, RunParserFuzz(options));
  EXPECT_EQ(report.cases_run, 150);
  EXPECT_GT(report.parse_error, 0);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << failure;
  }
}

TEST(DifftestHarnessTest, FuzzInputsAreSeedReplayable) {
  EXPECT_EQ(GenerateFuzzQuery(29, 7), GenerateFuzzQuery(29, 7));
  EXPECT_NE(GenerateFuzzQuery(29, 7), GenerateFuzzQuery(29, 8));
}

}  // namespace
}  // namespace dgf::testing
