// Observability subsystem tests: metric registry semantics and concurrency
// (the TSan stage in scripts/check.sh runs this binary), histogram quantile
// accuracy against an exact sort, Prometheus/JSON rendering, the embedded
// HTTP exporter's endpoints and error handling, the trace ring buffer, and
// end-to-end trace-id propagation through an in-process two-shard cluster.
//
// Built as its own binary (dgf_obs_tests) so the sanitizer stages in
// scripts/check.sh can run exactly this suite.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/query_service.h"
#include "testing/differential.h"
#include "testing/shard_sweep.h"

namespace dgf::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry basics.

TEST(MetricsRegistryTest, GetReturnsStablePointersPerName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("queries.admitted");
  Counter* b = registry.GetCounter("queries.admitted");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("queries.served"));
  a->Increment();
  a->Increment(4);
  EXPECT_EQ(b->Value(), 5u);

  Gauge* g = registry.GetGauge("appends.staging_s");
  g->Set(2.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("appends.staging_s")->Value(), 3.0);
}

TEST(MetricsRegistryTest, SnapshotFlattensAndSorts) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.GetGauge("a.gauge")->Set(1.5);
  registry.SetCallback("c.cb", [] { return 9.0; });
  Histogram* h = registry.GetHistogram("latency");
  h->Observe(0.001);
  h->Observe(0.002);

  const auto snapshot = registry.Snapshot();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
  std::set<std::string> names;
  for (const auto& [name, value] : snapshot) names.insert(name);
  for (const char* expected :
       {"a.gauge", "b.count", "c.cb", "latency.count", "latency.sum",
        "latency.p50", "latency.p95", "latency.p99"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  for (const auto& [name, value] : snapshot) {
    if (name == "latency.count") EXPECT_DOUBLE_EQ(value, 2.0);
    if (name == "c.cb") EXPECT_DOUBLE_EQ(value, 9.0);
  }
}

TEST(MetricsRegistryTest, CallbackMayTouchTheRegistryWithoutDeadlock) {
  // Components register callbacks that read their own state; a callback that
  // (indirectly) resolves another metric must not deadlock the snapshot.
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment(3);
  registry.SetCallback("y", [&registry] {
    return static_cast<double>(registry.GetCounter("x")->Value());
  });
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "y") EXPECT_DOUBLE_EQ(value, 3.0);
  }
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAndSnapshotsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress.counter");
  Gauge* gauge = registry.GetGauge("stress.gauge");
  Histogram* histogram = registry.GetHistogram("stress.latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Observe(1e-4 * static_cast<double>((t + i) % 100 + 1));
      }
    });
  }
  // A reader snapshotting concurrently must see internally consistent data
  // and never crash; exactness is asserted after the join.
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      const auto snapshot = registry.Snapshot();
      EXPECT_FALSE(snapshot.empty());
      (void)registry.RenderPrometheus();
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Histogram quantiles.

TEST(HistogramTest, BucketBoundsGrowBySqrt2AndIndexIsConsistent) {
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_NEAR(Histogram::BucketBound(i) / Histogram::BucketBound(i - 1),
                std::sqrt(2.0), 1e-9);
  }
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const double bound = Histogram::BucketBound(i);
    EXPECT_LE(Histogram::BucketIndex(bound * 0.999), i);
    EXPECT_GT(Histogram::BucketIndex(bound * 1.001), i);
  }
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
}

TEST(HistogramTest, QuantilesWithinSqrt2OfExactOrderStatistic) {
  // The documented accuracy contract: with sqrt(2)-growth buckets, every
  // quantile estimate is within one bucket of the exact order statistic, so
  // the ratio estimate/exact lies in [1/sqrt(2), sqrt(2)].
  Random rng(7);
  Histogram histogram;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over [1e-5, 10]: spans ~40 buckets.
    const double value = std::pow(10.0, rng.UniformDouble(-5.0, 1.0));
    values.push_back(value);
    histogram.Observe(value);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(histogram.Count(), values.size());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double exact =
        values[static_cast<size_t>(q * (static_cast<double>(values.size()) - 1))];
    const double estimate = histogram.Quantile(q);
    EXPECT_GT(estimate, 0.0) << "q=" << q;
    const double ratio = estimate / exact;
    EXPECT_GE(ratio, 1.0 / std::sqrt(2.0) - 0.01) << "q=" << q;
    EXPECT_LE(ratio, std::sqrt(2.0) + 0.01) << "q=" << q;
  }
  EXPECT_NEAR(histogram.Sum(),
              std::accumulate(values.begin(), values.end(), 0.0), 1e-6);
}

TEST(HistogramTest, EmptyAndSingleValue) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  histogram.Observe(0.25);
  EXPECT_EQ(histogram.Count(), 1u);
  const double estimate = histogram.Quantile(0.5);
  EXPECT_GE(estimate, 0.25 / std::sqrt(2.0) - 1e-9);
  EXPECT_LE(estimate, 0.25 * std::sqrt(2.0) + 1e-9);
}

// ---------------------------------------------------------------------------
// Rendering.

TEST(RenderTest, PrometheusExposesCountersGaugesAndHistogramSeries) {
  MetricsRegistry registry;
  registry.GetCounter("queries.admitted")->Increment(12);
  registry.GetGauge("coord.shards")->Set(2);
  registry.SetCallback("queries.in_flight", [] { return 1.0; });
  Histogram* h = registry.GetHistogram("latency");
  h->Observe(0.003);
  h->Observe(0.004);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE dgf_queries_admitted counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dgf_queries_admitted 12"), std::string::npos) << text;
  EXPECT_NE(text.find("dgf_coord_shards 2"), std::string::npos) << text;
  EXPECT_NE(text.find("dgf_queries_in_flight 1"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE dgf_latency histogram"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dgf_latency_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dgf_latency_count 2"), std::string::npos) << text;
  // Cumulative buckets: the +Inf bucket equals the count, and every emitted
  // bucket count is non-decreasing in the order printed.
  uint64_t prev = 0;
  size_t at = 0;
  while ((at = text.find("dgf_latency_bucket{le=", at)) != std::string::npos) {
    const size_t brace = text.find("} ", at);
    ASSERT_NE(brace, std::string::npos);
    const uint64_t cum = std::strtoull(text.c_str() + brace + 2, nullptr, 10);
    EXPECT_GE(cum, prev);
    prev = cum;
    at = brace;
  }
  EXPECT_EQ(prev, 2u);
}

TEST(RenderTest, JsonIsFlatAndQuoted) {
  MetricsRegistry registry;
  registry.GetCounter("a.b")->Increment(3);
  registry.GetGauge("c")->Set(1.5);
  const std::string json = registry.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a.b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c\""), std::string::npos) << json;
}

TEST(RenderTest, StatsFromRegistryKeepsLegacyAliases) {
  MetricsRegistry registry;
  registry.GetCounter("cache.hits")->Increment(3);
  registry.GetCounter("cache.misses")->Increment(1);
  Histogram* latency = registry.GetHistogram("latency");
  for (int i = 0; i < 8; ++i) latency->Observe(0.010);

  const auto stats = server::StatsFromRegistry(&registry);
  double hit_rate = -1, samples = -1, p50_ms = -1;
  for (const auto& [name, value] : stats) {
    if (name == "cache.hit_rate") hit_rate = value;
    if (name == "latency.samples") samples = value;
    if (name == "latency.p50_ms") p50_ms = value;
  }
  EXPECT_DOUBLE_EQ(hit_rate, 0.75);
  EXPECT_DOUBLE_EQ(samples, 8.0);
  // 10ms observations: the alias is in milliseconds, within a bucket width.
  EXPECT_GE(p50_ms, 10.0 / std::sqrt(2.0) - 0.1);
  EXPECT_LE(p50_ms, 10.0 * std::sqrt(2.0) + 0.1);
}

// ---------------------------------------------------------------------------
// Trace log.

TEST(TraceTest, NextTraceIdIsNonZeroAndDistinct) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(TraceTest, RingBufferKeepsMostRecentAndFiltersFast) {
  TraceLog::Options options;
  options.capacity = 3;
  options.min_seconds = 0.5;
  TraceLog log(options);
  log.Record({1, "fast", 0.1, {}});  // filtered: under min_seconds
  for (uint64_t id = 2; id <= 6; ++id) {
    log.Record({id, "slow " + std::to_string(id), 1.0, {{"execute", 0, 1.0}}});
  }
  const auto traces = log.Traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].trace_id, 6u);  // most recent first
  EXPECT_EQ(traces[2].trace_id, 4u);
  const std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos) << json;
  EXPECT_NE(json.find("execute"), std::string::npos) << json;
  EXPECT_EQ(json.find("fast"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// HTTP exporter.

/// Raw one-shot HTTP exchange (for request shapes HttpGet cannot produce).
std::string RawHttpExchange(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.GetCounter("queries.admitted")->Increment(7);
    registry_.GetHistogram("latency")->Observe(0.002);
    trace_log_.Record({42, "SELECT 1", 0.002, {{"execute", 0, 0.002}}});
    HttpExporter::Options options;
    options.registry = &registry_;
    options.trace_log = &trace_log_;
    options.recv_timeout_seconds = 2.0;
    auto exporter = HttpExporter::Start(options);
    ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
    exporter_ = std::move(*exporter);
    ASSERT_GT(exporter_->port(), 0);
  }

  MetricsRegistry registry_;
  TraceLog trace_log_;
  std::unique_ptr<HttpExporter> exporter_;
};

TEST_F(HttpExporterTest, ServesAllFourEndpoints) {
  auto health = HttpGet(exporter_->port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto metrics = HttpGet(exporter_->port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->body.find("dgf_queries_admitted 7"), std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("dgf_latency_bucket"), std::string::npos);

  auto stats = HttpGet(exporter_->port(), "/stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status_code, 200);
  EXPECT_NE(stats->body.find("\"queries.admitted\""), std::string::npos)
      << stats->body;

  auto trace = HttpGet(exporter_->port(), "/trace");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->status_code, 200);
  EXPECT_NE(trace->body.find("\"trace_id\":42"), std::string::npos)
      << trace->body;
}

TEST_F(HttpExporterTest, ErrorsAreHttpNotCrashes) {
  auto missing = HttpGet(exporter_->port(), "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing->status_code, 404);

  EXPECT_NE(RawHttpExchange(exporter_->port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(RawHttpExchange(exporter_->port(), "GET\r\n\r\n").find("400"),
            std::string::npos);
  std::string flood = "GET /metrics HTTP/1.0\r\n";
  flood.append(32 * 1024, 'a');
  flood += "\r\n\r\n";
  EXPECT_NE(RawHttpExchange(exporter_->port(), flood).find("431"),
            std::string::npos);

  // An early-closed connection must not poison the next request.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(exporter_->port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    (void)::send(fd, "GET /st", 7, MSG_NOSIGNAL);
    ::close(fd);
  }
  auto health = HttpGet(exporter_->port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
}

TEST_F(HttpExporterTest, ShutdownIsIdempotentAndStopsServing) {
  const int port = exporter_->port();
  exporter_->Shutdown();
  exporter_->Shutdown();
  auto after = HttpGet(port, "/healthz", 1.0);
  EXPECT_FALSE(after.ok() && after->status_code == 200);
}

// ---------------------------------------------------------------------------
// End-to-end: trace-id propagation through a two-shard cluster.

TEST(TracePropagationTest, CrossShardQueryCarriesTraceIdAndPerShardSpans) {
  auto world = testing::SeededWorld::Build(11);
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  testing::ShardedCluster::Options options;
  options.config = world->config();
  options.dims = world->dims();
  options.num_shards = 2;
  auto cluster = testing::ShardedCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_EQ((*cluster)->num_shards(), 2);

  auto client = (*cluster)->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr uint64_t kTraceId = 0xABCDEF12345ULL;
  auto response = (*client)->Query(
      "SELECT count(*), sum(powerConsumed) FROM meterdata", /*deadline=*/0,
      kTraceId);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << server::ResponseStatus(*response).ToString();

  // The id the client chose comes back on the merged stats...
  const query::QueryStats& stats = response->result.stats;
  EXPECT_EQ(stats.trace_id, kTraceId);

  // ...with the coordinator's own spans plus both shards' RPC and execution
  // spans, rebased onto one timeline.
  std::set<std::string> span_names;
  for (const SpanTiming& span : stats.spans) {
    EXPECT_GE(span.start_seconds, 0.0) << span.name;
    EXPECT_GE(span.duration_seconds, 0.0) << span.name;
    span_names.insert(span.name);
  }
  for (const char* expected :
       {"admission_wait", "merge", "shard0.rpc", "shard1.rpc",
        "shard0.execute", "shard1.execute"}) {
    EXPECT_EQ(span_names.count(expected), 1u)
        << expected << " missing; spans present: "
        << [&] {
             std::string all;
             for (const auto& name : span_names) all += name + " ";
             return all;
           }();
  }

  // The coordinator's trace log kept the trace under the propagated id...
  bool found_coord = false;
  for (const QueryTrace& trace : (*cluster)->coordinator()->trace_log()->Traces()) {
    found_coord = found_coord || trace.trace_id == kTraceId;
  }
  EXPECT_TRUE(found_coord);

  // ...and each shard's execution joined the same trace (wire propagation).
  for (int shard = 0; shard < 2; ++shard) {
    bool found = false;
    for (const QueryTrace& trace :
         (*cluster)->shard_service(shard)->trace_log()->Traces()) {
      found = found || trace.trace_id == kTraceId;
    }
    EXPECT_TRUE(found) << "shard " << shard
                       << " never recorded trace id " << kTraceId;
  }

  // Registry movement sanity: both shards admitted and served a sub-query.
  for (int shard = 0; shard < 2; ++shard) {
    const auto snapshot =
        (*cluster)->shard_service(shard)->metrics()->Snapshot();
    double served = 0;
    for (const auto& [name, value] : snapshot) {
      if (name == "queries.served") served = value;
    }
    EXPECT_GE(served, 1.0) << "shard " << shard;
  }
}

}  // namespace
}  // namespace dgf::obs
