#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "table/rc_format.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/text_format.h"
#include "table/value.h"
#include "tests/test_util.h"

namespace dgf::table {
namespace {

using ::dgf::testing::ScopedDfs;

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"amount", DataType::kDouble},
                 {"name", DataType::kString},
                 {"day", DataType::kDate}});
}

Row MakeRow(int64_t id, double amount, const std::string& name, int64_t day) {
  return {Value::Int64(id), Value::Double(amount), Value::String(name),
          Value::Date(day)};
}

// ---------- Value / date tests ----------

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_EQ(Value::Double(2.5), Value::Double(2.5));
  EXPECT_GT(Value::String("b"), Value::String("a"));
  EXPECT_LT(Value::Date(10), Value::Date(11));
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_LT(Value::Int64(1), Value::Double(1.5));
  EXPECT_EQ(Value::Int64(2), Value::Double(2.0));
  EXPECT_GT(Value::Date(3), Value::Int64(2));
}

TEST(ValueTest, TextRoundTrip) {
  EXPECT_EQ(Value::Int64(-42).ToText(), "-42");
  EXPECT_EQ(Value::String("hi").ToText(), "hi");
  EXPECT_EQ(Value::Date(0).ToText(), "1970-01-01");
  ASSERT_OK_AND_ASSIGN(Value v, ParseValue("3.5", DataType::kDouble));
  EXPECT_DOUBLE_EQ(v.dbl(), 3.5);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(2012, 12, 30), 15704);
  EXPECT_EQ(FormatDate(15704), "2012-12-30");
  EXPECT_EQ(*ParseDate("2013-01-01"), 15706);
}

TEST(DateTest, RoundTripSweep) {
  for (int64_t day = -1000; day <= 40000; day += 137) {
    ASSERT_OK_AND_ASSIGN(int64_t parsed, ParseDate(FormatDate(day)));
    EXPECT_EQ(parsed, day);
  }
}

TEST(DateTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDate("2013-13-01").ok());
  EXPECT_FALSE(ParseDate("2013-01").ok());
  EXPECT_FALSE(ParseDate("yyyy-mm-dd").ok());
}

// ---------- Schema / row text ----------

TEST(SchemaTest, FieldLookup) {
  Schema schema = TestSchema();
  EXPECT_EQ(*schema.FieldIndex("amount"), 1);
  EXPECT_TRUE(schema.FieldIndex("nope").status().IsNotFound());
  EXPECT_TRUE(schema.HasField("day"));
}

TEST(SchemaTest, RowTextRoundTrip) {
  Schema schema = TestSchema();
  Row row = MakeRow(7, 1.25, "alice", 15704);
  const std::string line = FormatRowText(row);
  EXPECT_EQ(line, "7|1.25|alice|2012-12-30");
  ASSERT_OK_AND_ASSIGN(Row parsed, ParseRowText(line, schema));
  EXPECT_EQ(parsed[0], row[0]);
  EXPECT_EQ(parsed[1], row[1]);
  EXPECT_EQ(parsed[2], row[2]);
  EXPECT_EQ(parsed[3], row[3]);
}

TEST(SchemaTest, ParseRejectsWrongArity) {
  EXPECT_FALSE(ParseRowText("1|2", TestSchema()).ok());
}

// ---------- Text format split semantics ----------

TEST(TextFormatTest, SingleSplitReadsAll) {
  ScopedDfs dfs("text_all");
  Schema schema = TestSchema();
  ASSERT_OK_AND_ASSIGN(auto writer,
                       TextFileWriter::Create(dfs.get(), "/t.txt", schema));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(writer->Append(MakeRow(i, i * 0.5, "n" + std::to_string(i), i)));
  }
  ASSERT_OK(writer->Close());

  ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/t.txt", 1 << 20));
  ASSERT_EQ(splits.size(), 1u);
  ASSERT_OK_AND_ASSIGN(auto reader,
                       TextSplitReader::Open(dfs.get(), splits[0], schema));
  Row row;
  int count = 0;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
    if (!more) break;
    EXPECT_EQ(row[0], Value::Int64(count));
    ++count;
  }
  EXPECT_EQ(count, 10);
}

TEST(TextFormatTest, EveryRecordReadExactlyOnceAcrossSplits) {
  // Property: for any split size, the union of all split readers yields each
  // record exactly once — the Hadoop line-ownership invariant.
  ScopedDfs dfs("text_splits");
  Schema schema = TestSchema();
  ASSERT_OK_AND_ASSIGN(auto writer,
                       TextFileWriter::Create(dfs.get(), "/t.txt", schema));
  const int kRows = 500;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_OK(writer->Append(MakeRow(i, i * 1.5, "name" + std::to_string(i), i)));
  }
  ASSERT_OK(writer->Close());

  for (uint64_t split_size : {64ULL, 100ULL, 377ULL, 1000ULL, 1ULL << 20}) {
    ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/t.txt", split_size));
    std::set<int64_t> seen;
    for (const auto& split : splits) {
      ASSERT_OK_AND_ASSIGN(auto reader,
                           TextSplitReader::Open(dfs.get(), split, schema));
      Row row;
      for (;;) {
        ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
        if (!more) break;
        EXPECT_TRUE(seen.insert(row[0].int64()).second)
            << "duplicate id " << row[0].int64() << " split_size " << split_size;
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kRows))
        << "split_size " << split_size;
  }
}

TEST(TextFormatTest, BlockOffsetIsLineStart) {
  ScopedDfs dfs("text_offsets");
  Schema schema({{"v", DataType::kString}});
  ASSERT_OK_AND_ASSIGN(auto writer,
                       TextFileWriter::Create(dfs.get(), "/t.txt", schema));
  ASSERT_OK(writer->AppendLine("aa"));   // offset 0, 3 bytes with newline
  ASSERT_OK(writer->AppendLine("bbb"));  // offset 3
  ASSERT_OK(writer->AppendLine("c"));    // offset 7
  ASSERT_OK(writer->Close());

  fs::FileSplit split{"/t.txt", 0, 100};
  ASSERT_OK_AND_ASSIGN(auto reader,
                       TextSplitReader::Open(dfs.get(), split, schema));
  std::string line;
  ASSERT_OK_AND_ASSIGN(bool m1, reader->NextLine(&line));
  ASSERT_TRUE(m1);
  EXPECT_EQ(reader->CurrentBlockOffset(), 0u);
  ASSERT_OK_AND_ASSIGN(bool m2, reader->NextLine(&line));
  ASSERT_TRUE(m2);
  EXPECT_EQ(reader->CurrentBlockOffset(), 3u);
  ASSERT_OK_AND_ASSIGN(bool m3, reader->NextLine(&line));
  ASSERT_TRUE(m3);
  EXPECT_EQ(reader->CurrentBlockOffset(), 7u);
}

// ---------- RC format ----------

class RcFormatSplitTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RcFormatSplitTest, EveryRecordReadExactlyOnce) {
  ScopedDfs dfs("rc_splits");
  Schema schema = TestSchema();
  RcFileWriter::Options options;
  options.rows_per_group = 16;
  ASSERT_OK_AND_ASSIGN(
      auto writer, RcFileWriter::Create(dfs.get(), "/t.rc", schema, options));
  const int kRows = 400;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_OK(writer->Append(MakeRow(i, i * 0.25, "n" + std::to_string(i), i)));
  }
  ASSERT_OK(writer->Close());

  ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/t.rc", GetParam()));
  std::set<int64_t> seen;
  for (const auto& split : splits) {
    ASSERT_OK_AND_ASSIGN(auto reader,
                         RcSplitReader::Open(dfs.get(), split, schema));
    Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      EXPECT_TRUE(seen.insert(row[0].int64()).second);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kRows));
}

INSTANTIATE_TEST_SUITE_P(SplitSizes, RcFormatSplitTest,
                         ::testing::Values(200, 512, 1000, 4096, 1 << 20));

TEST(RcFormatTest, ProjectionDecodesOnlyWantedColumns) {
  ScopedDfs dfs("rc_proj");
  Schema schema = TestSchema();
  ASSERT_OK_AND_ASSIGN(auto writer,
                       RcFileWriter::Create(dfs.get(), "/t.rc", schema));
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(writer->Append(MakeRow(i, i * 2.0, "secret", i)));
  }
  ASSERT_OK(writer->Close());

  fs::FileSplit split{"/t.rc", 0, 1 << 20};
  ASSERT_OK_AND_ASSIGN(
      auto reader,
      RcSplitReader::Open(dfs.get(), split, schema, std::vector<int>{0, 1}));
  Row row;
  ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
  ASSERT_TRUE(more);
  EXPECT_EQ(row[0], Value::Int64(0));
  EXPECT_DOUBLE_EQ(row[1].dbl(), 0.0);
  EXPECT_EQ(row[2].str(), "");  // unprojected -> type default
}

TEST(RcFormatTest, RowInBlockOrdinals) {
  ScopedDfs dfs("rc_ordinals");
  Schema schema({{"v", DataType::kInt64}});
  RcFileWriter::Options options;
  options.rows_per_group = 4;
  ASSERT_OK_AND_ASSIGN(
      auto writer, RcFileWriter::Create(dfs.get(), "/t.rc", schema, options));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(writer->Append({Value::Int64(i)}));
  }
  ASSERT_OK(writer->Close());

  fs::FileSplit split{"/t.rc", 0, 1 << 20};
  ASSERT_OK_AND_ASSIGN(auto reader, RcSplitReader::Open(dfs.get(), split, schema));
  Row row;
  std::vector<uint64_t> ordinals;
  std::set<uint64_t> group_offsets;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
    if (!more) break;
    ordinals.push_back(reader->CurrentRowInBlock());
    group_offsets.insert(reader->CurrentBlockOffset());
  }
  EXPECT_EQ(ordinals,
            (std::vector<uint64_t>{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}));
  EXPECT_EQ(group_offsets.size(), 3u);  // 4+4+2 rows
}

TEST(RcFormatTest, RowFilterSelectsSpecificRows) {
  ScopedDfs dfs("rc_filter");
  Schema schema({{"v", DataType::kInt64}});
  RcFileWriter::Options options;
  options.rows_per_group = 5;
  ASSERT_OK_AND_ASSIGN(
      auto writer, RcFileWriter::Create(dfs.get(), "/t.rc", schema, options));
  for (int i = 0; i < 15; ++i) {
    ASSERT_OK(writer->Append({Value::Int64(i)}));
  }
  ASSERT_OK(writer->Close());

  // Find the group offsets first.
  fs::FileSplit split{"/t.rc", 0, 1 << 20};
  std::vector<uint64_t> offsets;
  {
    ASSERT_OK_AND_ASSIGN(auto reader,
                         RcSplitReader::Open(dfs.get(), split, schema));
    Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      if (offsets.empty() || offsets.back() != reader->CurrentBlockOffset()) {
        offsets.push_back(reader->CurrentBlockOffset());
      }
    }
  }
  ASSERT_EQ(offsets.size(), 3u);

  // Select rows {1,3} of group 0 and row {2} of group 2; skip group 1.
  ASSERT_OK_AND_ASSIGN(auto reader, RcSplitReader::Open(dfs.get(), split, schema));
  reader->SetRowFilter({{offsets[0], {1, 3}}, {offsets[2], {2}}});
  Row row;
  std::vector<int64_t> got;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
    if (!more) break;
    got.push_back(row[0].int64());
  }
  EXPECT_EQ(got, (std::vector<int64_t>{1, 3, 12}));
}

// ---------- Table / catalog ----------

TEST(CatalogTest, CreateGetDrop) {
  ScopedDfs dfs("catalog");
  Catalog catalog(dfs.get());
  TableDesc desc{"t", TestSchema(), FileFormat::kText, "/warehouse/t"};
  ASSERT_OK(catalog.CreateTable(desc));
  EXPECT_TRUE(catalog.CreateTable(desc).code() == StatusCode::kAlreadyExists);
  ASSERT_OK_AND_ASSIGN(TableDesc got, catalog.GetTable("t"));
  EXPECT_EQ(got.dir, "/warehouse/t");
  ASSERT_OK(catalog.DropTable("t"));
  EXPECT_TRUE(catalog.GetTable("t").status().IsNotFound());
}

TEST(TableWriterTest, RotatesFiles) {
  ScopedDfs dfs("tw_rotate");
  TableDesc desc{"t", TestSchema(), FileFormat::kText, "/warehouse/t"};
  TableWriter::Options options;
  options.max_file_bytes = 200;
  ASSERT_OK_AND_ASSIGN(auto writer, TableWriter::Create(dfs.get(), desc, options));
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(writer->Append(MakeRow(i, 1.0, "x", 0)));
  }
  ASSERT_OK(writer->Close());
  EXPECT_GT(dfs->ListFiles("/warehouse/t/data-").size(), 1u);

  // All rows come back through GetTableSplits + OpenSplitReader.
  ASSERT_OK_AND_ASSIGN(auto splits, GetTableSplits(dfs.get(), desc));
  std::set<int64_t> seen;
  for (const auto& split : splits) {
    ASSERT_OK_AND_ASSIGN(auto reader, OpenSplitReader(dfs.get(), desc, split));
    Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      seen.insert(row[0].int64());
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

}  // namespace
}  // namespace dgf::table
