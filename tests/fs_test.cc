#include <gtest/gtest.h>

#include <string>

#include "fs/mini_dfs.h"
#include "tests/test_util.h"

namespace dgf::fs {
namespace {

using ::dgf::testing::ScopedDfs;

TEST(MiniDfsTest, CreateWriteRead) {
  ScopedDfs dfs("fs_basic");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/a/b.txt"));
  ASSERT_OK(writer->Append("hello "));
  ASSERT_OK(writer->Append("world"));
  ASSERT_OK(writer->Close());

  ASSERT_OK_AND_ASSIGN(auto status, dfs->Stat("/a/b.txt"));
  EXPECT_EQ(status.length, 11u);

  ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead("/a/b.txt"));
  std::string out;
  ASSERT_OK(reader->Pread(0, 11, &out));
  EXPECT_EQ(out, "hello world");
  ASSERT_OK(reader->Pread(6, 5, &out));
  EXPECT_EQ(out, "world");
  ASSERT_OK(reader->Pread(6, 100, &out));
  EXPECT_EQ(out, "world");  // short read at EOF
  ASSERT_OK(reader->Pread(100, 5, &out));
  EXPECT_EQ(out, "");  // past EOF
}

TEST(MiniDfsTest, CreateExistingFails) {
  ScopedDfs dfs("fs_exists");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/x"));
  ASSERT_OK(writer->Close());
  EXPECT_FALSE(dfs->Create("/x").ok());
}

TEST(MiniDfsTest, AppendExtends) {
  ScopedDfs dfs("fs_append");
  {
    ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/log"));
    ASSERT_OK(writer->Append("aaa"));
    ASSERT_OK(writer->Close());
  }
  {
    ASSERT_OK_AND_ASSIGN(auto writer, dfs->Append("/log"));
    EXPECT_EQ(writer->Offset(), 3u);
    ASSERT_OK(writer->Append("bbb"));
    ASSERT_OK(writer->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead("/log"));
  std::string out;
  ASSERT_OK(reader->Pread(0, 6, &out));
  EXPECT_EQ(out, "aaabbb");
}

TEST(MiniDfsTest, ValidatesPaths) {
  ScopedDfs dfs("fs_paths");
  EXPECT_FALSE(dfs->Create("relative").ok());
  EXPECT_FALSE(dfs->Create("/a/../b").ok());
  EXPECT_FALSE(dfs->Create("/dir/").ok());
}

TEST(MiniDfsTest, DeleteAndExists) {
  ScopedDfs dfs("fs_delete");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/f"));
  ASSERT_OK(writer->Close());
  EXPECT_TRUE(dfs->Exists("/f"));
  ASSERT_OK(dfs->Delete("/f"));
  EXPECT_FALSE(dfs->Exists("/f"));
  EXPECT_TRUE(dfs->Delete("/f").IsNotFound());
}

TEST(MiniDfsTest, RenameMovesData) {
  ScopedDfs dfs("fs_rename");
  {
    ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/tmp/x"));
    ASSERT_OK(writer->Append("data"));
    ASSERT_OK(writer->Close());
  }
  ASSERT_OK(dfs->Rename("/tmp/x", "/final/y"));
  EXPECT_FALSE(dfs->Exists("/tmp/x"));
  ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead("/final/y"));
  std::string out;
  ASSERT_OK(reader->Pread(0, 4, &out));
  EXPECT_EQ(out, "data");
}

TEST(MiniDfsTest, ListFilesByPrefix) {
  ScopedDfs dfs("fs_list");
  for (const char* path : {"/t/data-0", "/t/data-1", "/t/other", "/u/data-0"}) {
    ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create(path));
    ASSERT_OK(writer->Close());
  }
  auto files = dfs->ListFiles("/t/data-");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].path, "/t/data-0");
  EXPECT_EQ(files[1].path, "/t/data-1");
}

TEST(MiniDfsTest, GetSplitsCoversFile) {
  ScopedDfs dfs("fs_splits", /*block_size=*/10);
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/f"));
  ASSERT_OK(writer->Append(std::string(25, 'x')));
  ASSERT_OK(writer->Close());

  ASSERT_OK_AND_ASSIGN(auto splits, dfs->GetSplits("/f"));
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0].offset, 0u);
  EXPECT_EQ(splits[0].length, 10u);
  EXPECT_EQ(splits[2].offset, 20u);
  EXPECT_EQ(splits[2].length, 5u);

  ASSERT_OK_AND_ASSIGN(auto big, dfs->GetSplits("/f", 100));
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0].length, 25u);
}

TEST(MiniDfsTest, CountersTrackIo) {
  ScopedDfs dfs("fs_counters");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/f"));
  ASSERT_OK(writer->Append("0123456789"));
  ASSERT_OK(writer->Close());
  EXPECT_EQ(dfs->TotalBytesWritten(), 10u);
  ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead("/f"));
  std::string out;
  ASSERT_OK(reader->Pread(0, 4, &out));
  EXPECT_EQ(dfs->TotalBytesRead(), 4u);
  dfs->ResetCounters();
  EXPECT_EQ(dfs->TotalBytesWritten(), 0u);
}

TEST(MiniDfsTest, MetadataAccountingGrowsWithDirs) {
  ScopedDfs dfs("fs_meta", /*block_size=*/4);
  const uint64_t before = dfs->MetadataMemoryBytes();
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/p1/p2/p3/f"));
  ASSERT_OK(writer->Append("12345678"));  // 2 blocks of 4
  ASSERT_OK(writer->Close());
  // 3 directories + 1 file + 2 blocks = 6 objects of 150 bytes.
  EXPECT_EQ(dfs->MetadataMemoryBytes() - before, 6u * 150u);
  EXPECT_EQ(dfs->NumDirectories(), 3u);
  EXPECT_EQ(dfs->NumFiles(), 1u);
}

TEST(MiniDfsTest, ReopenRecoversNamespace) {
  ScopedDfs dfs("fs_reopen");
  ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create("/keep/me"));
  ASSERT_OK(writer->Append("xyz"));
  ASSERT_OK(writer->Close());

  // A second MiniDfs over the same root must see the file.
  fs::MiniDfs::Options options;
  ASSERT_OK_AND_ASSIGN(auto st, dfs->Stat("/keep/me"));
  (void)st;
}

}  // namespace
}  // namespace dgf::fs
