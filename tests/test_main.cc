#include <gtest/gtest.h>

#include "common/logging.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Tests exercise error paths on purpose; keep routine logs quiet.
  dgf::SetLogLevel(dgf::LogLevel::kWarn);
  return RUN_ALL_TESTS();
}
