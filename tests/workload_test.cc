#include <gtest/gtest.h>

#include <map>
#include <set>

#include "table/table.h"
#include "tests/test_util.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"
#include "workload/tpch_gen.h"

namespace dgf::workload {
namespace {

using ::dgf::testing::ScopedDfs;
using table::Row;
using table::Value;

TEST(MeterGenTest, RowCountAndShape) {
  MeterConfig config;
  config.num_users = 50;
  config.num_days = 4;
  config.extra_metrics = 13;
  int64_t count = 0;
  ASSERT_OK(ForEachMeterRow(config, [&](const Row& row) {
    EXPECT_EQ(static_cast<int>(row.size()), 17);  // the paper's 17 fields
    ++count;
    return Status::OK();
  }));
  EXPECT_EQ(count, config.TotalRows());
}

TEST(MeterGenTest, DeterministicForSeed) {
  MeterConfig config;
  config.num_users = 20;
  config.num_days = 2;
  std::vector<std::string> first, second;
  ASSERT_OK(ForEachMeterRow(config, [&](const Row& row) {
    first.push_back(table::FormatRowText(row));
    return Status::OK();
  }));
  ASSERT_OK(ForEachMeterRow(config, [&](const Row& row) {
    second.push_back(table::FormatRowText(row));
    return Status::OK();
  }));
  EXPECT_EQ(first, second);
}

TEST(MeterGenTest, TimeSortedAndEachUserOncePerDay) {
  MeterConfig config;
  config.num_users = 100;
  config.num_days = 3;
  int64_t last_day = -1;
  std::map<int64_t, std::set<int64_t>> users_per_day;
  ASSERT_OK(ForEachMeterRow(config, [&](const Row& row) {
    const int64_t day = row[2].int64();
    EXPECT_GE(day, last_day);  // collection order: day-clustered
    last_day = day;
    EXPECT_TRUE(users_per_day[day].insert(row[0].int64()).second)
        << "duplicate user " << row[0].int64() << " on day " << day;
    return Status::OK();
  }));
  for (const auto& [day, users] : users_per_day) {
    (void)day;
    EXPECT_EQ(users.size(), 100u);
  }
}

TEST(MeterGenTest, RegionsAreStableAndInRange) {
  MeterConfig config;
  config.num_regions = 11;
  for (int64_t user = 0; user < 100; ++user) {
    const int64_t region = RegionOfUser(config, user);
    EXPECT_GE(region, 1);
    EXPECT_LE(region, 11);
    EXPECT_EQ(region, RegionOfUser(config, user));
  }
}

TEST(MeterGenTest, GeneratesTableOnDfs) {
  ScopedDfs dfs("mgen_table");
  MeterConfig config;
  config.num_users = 30;
  config.num_days = 2;
  ASSERT_OK_AND_ASSIGN(auto desc, GenerateMeterTable(dfs.get(), "/w/meter",
                                                     config));
  ASSERT_OK_AND_ASSIGN(uint64_t bytes, table::TableDataBytes(dfs.get(), desc));
  EXPECT_GT(bytes, 0u);
  ASSERT_OK_AND_ASSIGN(auto splits, table::GetTableSplits(dfs.get(), desc));
  uint64_t rows = 0;
  for (const auto& split : splits) {
    ASSERT_OK_AND_ASSIGN(auto reader, table::OpenSplitReader(dfs.get(), desc, split));
    Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      ++rows;
    }
  }
  EXPECT_EQ(rows, static_cast<uint64_t>(config.TotalRows()));
}

TEST(MeterGenTest, UserInfoOneRowPerUser) {
  ScopedDfs dfs("mgen_users");
  MeterConfig config;
  config.num_users = 25;
  ASSERT_OK_AND_ASSIGN(auto desc,
                       GenerateUserInfoTable(dfs.get(), "/w/users", config));
  ASSERT_OK_AND_ASSIGN(auto splits, table::GetTableSplits(dfs.get(), desc));
  std::set<int64_t> users;
  for (const auto& split : splits) {
    ASSERT_OK_AND_ASSIGN(auto reader, table::OpenSplitReader(dfs.get(), desc, split));
    Row row;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
      if (!more) break;
      EXPECT_TRUE(users.insert(row[0].int64()).second);
      EXPECT_EQ(row[2].int64(), RegionOfUser(config, row[0].int64()));
    }
  }
  EXPECT_EQ(users.size(), 25u);
}

TEST(MeterGenTest, RejectsBadConfig) {
  MeterConfig config;
  config.num_users = 0;
  EXPECT_FALSE(
      ForEachMeterRow(config, [](const Row&) { return Status::OK(); }).ok());
}

// ---------- TPC-H ----------

TEST(TpchGenTest, DomainsFollowSpec) {
  LineitemConfig config;
  config.num_rows = 2000;
  const int64_t lo = table::DaysFromCivil(1992, 1, 1);
  const int64_t hi = table::DaysFromCivil(1998, 12, 2);
  ASSERT_OK(ForEachLineitemRow(config, [&](const Row& row) {
    EXPECT_EQ(row.size(), 16u);
    const double quantity = row[4].dbl();
    EXPECT_GE(quantity, 1.0);
    EXPECT_LE(quantity, 50.0);
    const double discount = row[6].dbl();
    EXPECT_GE(discount, 0.0);
    EXPECT_LE(discount, 0.10 + 1e-9);
    EXPECT_GE(row[10].int64(), lo);
    EXPECT_LE(row[10].int64(), hi);
    return Status::OK();
  }));
}

TEST(TpchGenTest, ShipdatesAreScatteredAcrossFileOrder) {
  // The property that defeats the Compact Index: consecutive rows span the
  // whole shipdate domain rather than being sorted.
  LineitemConfig config;
  config.num_rows = 1000;
  int64_t prev = -1;
  int64_t inversions = 0, total = 0;
  ASSERT_OK(ForEachLineitemRow(config, [&](const Row& row) {
    if (prev >= 0) {
      ++total;
      if (row[10].int64() < prev) ++inversions;
    }
    prev = row[10].int64();
    return Status::OK();
  }));
  // Random order: about half the adjacent pairs are inverted.
  EXPECT_GT(inversions, total / 4);
}

TEST(TpchGenTest, Q6PredicateShape) {
  query::Query q6 = MakeQ6(1994, 0.06, 24);
  EXPECT_TRUE(q6.IsPlainAggregation());
  ASSERT_EQ(q6.select.size(), 1u);
  EXPECT_EQ(q6.select[0].agg->ToString(), "sum(l_extendedprice*l_discount)");
  const auto* ship = q6.where.FindColumn("l_shipdate");
  ASSERT_NE(ship, nullptr);
  EXPECT_EQ(ship->lower->value.int64(), table::DaysFromCivil(1994, 1, 1));
  const auto* quantity = q6.where.FindColumn("l_quantity");
  ASSERT_NE(quantity, nullptr);
  EXPECT_FALSE(quantity->lower.has_value());
}

// ---------- Query generator ----------

TEST(QueryGenTest, SelectivityApproximatelyMet) {
  MeterConfig config;
  config.num_users = 1000;
  config.num_days = 10;
  config.seed = 5;
  for (Selectivity sel :
       {Selectivity::kFivePercent, Selectivity::kTwelvePercent}) {
    query::Query q =
        MakeMeterQuery(config, MeterQueryKind::kAggregation, sel, 1);
    // Count matching rows.
    auto bound = q.where.Bind(MeterSchema(config));
    ASSERT_TRUE(bound.ok());
    int64_t matched = 0;
    ASSERT_OK(ForEachMeterRow(config, [&](const Row& row) {
      if (bound->Matches(row)) ++matched;
      return Status::OK();
    }));
    const double fraction =
        static_cast<double>(matched) / static_cast<double>(config.TotalRows());
    EXPECT_NEAR(fraction, SelectivityFraction(sel),
                0.4 * SelectivityFraction(sel))
        << SelectivityName(sel);
  }
}

TEST(QueryGenTest, PointQuerySelectsOneUserDay) {
  MeterConfig config;
  config.num_users = 500;
  config.num_days = 10;
  query::Query q = MakeMeterQuery(config, MeterQueryKind::kAggregation,
                                  Selectivity::kPoint, 2);
  auto bound = q.where.Bind(MeterSchema(config));
  ASSERT_TRUE(bound.ok());
  int64_t matched = 0;
  ASSERT_OK(ForEachMeterRow(config, [&](const Row& row) {
    if (bound->Matches(row)) ++matched;
    return Status::OK();
  }));
  EXPECT_EQ(matched, config.readings_per_day);
}

TEST(QueryGenTest, PartialDropsUserCondition) {
  MeterConfig config;
  query::Query q = MakeMeterQuery(config, MeterQueryKind::kPartial,
                                  Selectivity::kPoint, 3);
  EXPECT_EQ(q.where.FindColumn("userId"), nullptr);
  EXPECT_NE(q.where.FindColumn("regionId"), nullptr);
  EXPECT_NE(q.where.FindColumn("time"), nullptr);
}

TEST(QueryGenTest, VariantsDiffer) {
  MeterConfig config;
  query::Query a = MakeMeterQuery(config, MeterQueryKind::kAggregation,
                                  Selectivity::kFivePercent, 1);
  query::Query b = MakeMeterQuery(config, MeterQueryKind::kAggregation,
                                  Selectivity::kFivePercent, 2);
  EXPECT_NE(a.where.ToString(), b.where.ToString());
}

}  // namespace
}  // namespace dgf::workload
