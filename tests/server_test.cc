// Query service layer tests: wire protocol round-trips, stable error codes,
// admission control, cooperative cancellation, deadline enforcement,
// graceful-drain shutdown, and concurrent clients (with a background
// appender) checked against the differential oracle.
//
// Built as its own binary (dgf_server_tests) so the sanitizer stages in
// scripts/check.sh can run exactly the server suite.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dgf/aggregators.h"
#include "fs/mini_dfs.h"
#include "query/query.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "server/wire.h"
#include "table/schema.h"
#include "testing/differential.h"
#include "workload/meter_gen.h"

namespace dgf::server {
namespace {

using dgf::testing::SeededWorld;

// ---------------------------------------------------------------------------
// Wire protocol round-trips.

TEST(ServerWireTest, RequestRoundTripAllOpcodes) {
  {
    Request req;
    req.opcode = Opcode::kQuery;
    req.request_id = 0xDEADBEEFCAFE;
    req.query.sql = "SELECT sum(powerConsumed) FROM meterdata WHERE userId = 7";
    req.query.deadline_seconds = 2.5;
    auto decoded = DecodeRequest(EncodeRequest(req));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->opcode, Opcode::kQuery);
    EXPECT_EQ(decoded->request_id, req.request_id);
    EXPECT_EQ(decoded->query.sql, req.query.sql);
    EXPECT_EQ(decoded->query.deadline_seconds, 2.5);
  }
  {
    Request req;
    req.opcode = Opcode::kAppend;
    req.request_id = 42;
    req.append.table = "meterdata";
    req.append.rows = {"1|2|2012-12-01|3.5", "4|5|2012-12-02|6.25"};
    auto decoded = DecodeRequest(EncodeRequest(req));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->append.table, "meterdata");
    EXPECT_EQ(decoded->append.rows, req.append.rows);
  }
  {
    Request req;
    req.opcode = Opcode::kCancel;
    req.request_id = 9;
    req.cancel_target = 7;
    auto decoded = DecodeRequest(EncodeRequest(req));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->cancel_target, 7u);
  }
  for (Opcode op : {Opcode::kStats, Opcode::kPing, Opcode::kShutdown}) {
    Request req;
    req.opcode = op;
    req.request_id = 3;
    auto decoded = DecodeRequest(EncodeRequest(req));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->opcode, op);
    EXPECT_EQ(decoded->request_id, 3u);
  }
  // Unknown opcode byte is corruption, not a crash.
  std::string bad = EncodeRequest(Request{});
  bad[0] = static_cast<char>(0x7F);
  EXPECT_TRUE(DecodeRequest(bad).status().IsCorruption());
}

TEST(ServerWireTest, QueryResponseRoundTripCarriesSchemaRowsStats) {
  Response resp;
  resp.opcode = Opcode::kQuery;
  resp.request_id = 17;
  resp.code = 0;
  resp.result.schema = table::Schema(
      {{"userId", table::DataType::kInt64},
       {"time", table::DataType::kDate},
       {"powerConsumed", table::DataType::kDouble}});
  resp.result.rows = {"1|2012-12-01|0.125", "2|2012-12-02|7.75"};
  resp.result.stats.path = query::AccessPath::kDgfIndex;
  resp.result.stats.records_read = 1234;
  resp.result.stats.records_matched = 99;
  resp.result.stats.bytes_read = 1 << 20;
  resp.result.stats.splits_scanned = 7;
  resp.result.stats.kv_gets = 11;
  resp.result.stats.cache_hits = 5;
  resp.result.stats.cache_misses = 6;
  resp.result.stats.wall_seconds = 0.125;

  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok());
  EXPECT_EQ(decoded->request_id, 17u);
  ASSERT_EQ(decoded->result.schema.num_fields(), 3);
  EXPECT_EQ(decoded->result.schema.field(1).name, "time");
  EXPECT_EQ(decoded->result.schema.field(1).type, table::DataType::kDate);
  EXPECT_EQ(decoded->result.rows, resp.result.rows);
  EXPECT_EQ(decoded->result.stats.path, query::AccessPath::kDgfIndex);
  EXPECT_EQ(decoded->result.stats.records_read, 1234u);
  EXPECT_EQ(decoded->result.stats.splits_scanned, 7);
  EXPECT_EQ(decoded->result.stats.cache_misses, 6u);
  EXPECT_EQ(decoded->result.stats.wall_seconds, 0.125);
}

TEST(ServerWireTest, ErrorStatsAppendResponsesRoundTrip) {
  {
    Response resp = MakeErrorResponse(
        Opcode::kQuery, 5, Status::Unavailable("admission queue full"));
    auto decoded = DecodeResponse(EncodeResponse(resp));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_FALSE(decoded->ok());
    const Status status = ResponseStatus(*decoded);
    EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
    EXPECT_EQ(status.message(), "admission queue full");
  }
  {
    Response resp;
    resp.opcode = Opcode::kStats;
    resp.request_id = 2;
    resp.stats = {{"queries.served", 12.0}, {"latency.p99_ms", 3.5}};
    auto decoded = DecodeResponse(EncodeResponse(resp));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->stats, resp.stats);
  }
  {
    Response resp;
    resp.opcode = Opcode::kAppend;
    resp.request_id = 3;
    resp.rows_appended = 1000;
    auto decoded = DecodeResponse(EncodeResponse(resp));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->rows_appended, 1000u);
  }
}

// Every StatusCode must survive the trip to a wire number and back; the wire
// numbers themselves are a frozen protocol contract.
TEST(ServerWireTest, StatusWireCodesRoundTrip) {
  constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kIOError,      StatusCode::kCorruption,
      StatusCode::kNotSupported, StatusCode::kOutOfRange,
      StatusCode::kInternal,     StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
  };
  for (StatusCode code : kAll) {
    const uint16_t wire = static_cast<uint16_t>(StatusCodeToWire(code));
    EXPECT_EQ(StatusCodeFromWire(wire), code) << StatusCodeName(code);
  }
  // The frozen numbering (append-only; see common/status.h).
  EXPECT_EQ(static_cast<uint16_t>(StatusCodeToWire(StatusCode::kOk)), 0);
  EXPECT_EQ(static_cast<uint16_t>(StatusCodeToWire(StatusCode::kCancelled)), 9);
  EXPECT_EQ(
      static_cast<uint16_t>(StatusCodeToWire(StatusCode::kDeadlineExceeded)),
      10);
  EXPECT_EQ(
      static_cast<uint16_t>(StatusCodeToWire(StatusCode::kUnavailable)), 11);
  // A newer peer's unknown code degrades to kInternal instead of failing.
  EXPECT_EQ(StatusCodeFromWire(999), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Harness: a seeded differential world served over a live socket.

struct Harness {
  std::unique_ptr<SeededWorld> world;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  Result<std::unique_ptr<ServerClient>> Connect() const {
    return ServerClient::ConnectTcp("127.0.0.1", server->port());
  }
};

Result<std::unique_ptr<Harness>> StartHarness(uint64_t seed,
                                              int max_concurrent = 4,
                                              int max_pending = 16) {
  auto harness = std::make_unique<Harness>();
  DGF_ASSIGN_OR_RETURN(auto world, SeededWorld::Build(seed));
  harness->world = std::make_unique<SeededWorld>(std::move(world));

  QueryService::Options service_options;
  service_options.dfs = harness->world->dfs();
  service_options.max_concurrent = max_concurrent;
  service_options.max_pending = max_pending;
  harness->service = std::make_unique<QueryService>(service_options);
  harness->service->RegisterTable(harness->world->meter());
  harness->service->RegisterDgfIndex(harness->world->meter().name,
                                     harness->world->dgf_text());

  Server::Options server_options;
  server_options.service = harness->service.get();
  server_options.port = 0;
  DGF_ASSIGN_OR_RETURN(harness->server, Server::Start(server_options));
  return harness;
}

Result<query::QueryResult> ResultFromResponse(const Response& response) {
  query::QueryResult result;
  result.schema = response.result.schema;
  result.rows.reserve(response.result.rows.size());
  for (const std::string& line : response.result.rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row,
                         table::ParseRowText(line, result.schema));
    result.rows.push_back(std::move(row));
  }
  result.stats = response.result.stats;
  return result;
}

// A projection touches every slice through the data-scan job (never answered
// from precomputed GFU headers), so it reliably reaches the DFS read path —
// where GateInjector can hold it — and polls its cancel token while scanning.
std::string FullProjectionSql(const std::string& table) {
  return "SELECT userId, powerConsumed FROM " + table;
}

/// Read-fault injector used as a deterministic brake: while closed, every
/// low-level DFS read blocks inside NextFault. Lets tests hold a query
/// mid-scan (provably in flight) while they overload, cancel, or shut down
/// the server, then release it.
class GateInjector : public fs::ReadFaultInjector {
 public:
  fs::ReadFault NextFault(const std::string& path, uint64_t offset,
                          uint64_t length) override {
    (void)path;
    (void)offset;
    (void)length;
    std::unique_lock<std::mutex> lock(mu_);
    ++blocked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    --blocked_;
    return fs::ReadFault{};
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  /// Blocks until at least `n` reads are held at the gate.
  void WaitForBlocked(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ >= n || open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int blocked_ = 0;
};

double FirstField(const std::string& row_text) {
  return std::strtod(row_text.c_str(), nullptr);
}

double StatValue(const Response& stats_response, const std::string& name) {
  for (const auto& [key, value] : stats_response.stats) {
    if (key == name) return value;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Protocol against a live server, answers diffed against the oracle.

TEST(ServerTest, QueriesMatchOracleAndStatsCount) {
  auto harness = StartHarness(/*seed=*/3);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  auto client = (*harness)->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto ping = (*client)->Ping();
  ASSERT_TRUE(ping.ok() && ping->ok());

  constexpr int kQueries = 30;
  int served = 0;
  for (int case_id = 0; case_id < kQueries; ++case_id) {
    const query::Query q = (*harness)->world->GenerateQuery(3, case_id);
    auto oracle = (*harness)->world->Oracle(q);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    auto response = (*client)->Query(q.ToSql());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->ok())
        << "case " << case_id << " [" << q.ToSql()
        << "]: " << ResponseStatus(*response).ToString();
    auto got = ResultFromResponse(*response);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->stats.path, query::AccessPath::kDgfIndex);
    const std::string mismatch =
        dgf::testing::DescribeResultMismatch(*oracle, *got);
    EXPECT_TRUE(mismatch.empty())
        << "case " << case_id << " [" << q.ToSql() << "]: " << mismatch;
    ++served;
  }

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok() && stats->ok());
  EXPECT_EQ(StatValue(*stats, "queries.served"), served);
  EXPECT_EQ(StatValue(*stats, "queries.rejected"), 0);
  EXPECT_EQ(StatValue(*stats, "queries.in_flight"), 0);
  EXPECT_GE(StatValue(*stats, "latency.samples"), served);
  EXPECT_GE(StatValue(*stats, "scan.records_read"), 1);
  // A parse error is a served request with an error response, not a dropped
  // connection.
  auto bad = (*client)->Query("SELECT FROM nothing WHERE");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(bad->ok());
  auto after = (*client)->Ping();
  EXPECT_TRUE(after.ok() && after->ok());
}

TEST(ServerTest, AdmissionRejectsWhenSaturated) {
  auto harness = StartHarness(/*seed=*/4, /*max_concurrent=*/1,
                              /*max_pending=*/0);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  (*harness)->world->dfs()->SetReadFaultInjector(gate);

  auto client = (*harness)->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::string sql = FullProjectionSql((*harness)->world->meter().name);

  auto held = (*client)->StartQuery(sql);
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  gate->WaitForBlocked(1);

  // The worker is occupied and the pending queue is zero: the next query
  // must bounce with the structured backpressure code, immediately (it never
  // waits behind the held query).
  auto rejected = (*client)->Query(sql);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok());
  const Status status = ResponseStatus(*rejected);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();

  gate->Open();
  auto held_response = (*client)->Await(*held);
  ASSERT_TRUE(held_response.ok()) << held_response.status().ToString();
  EXPECT_TRUE(held_response->ok())
      << ResponseStatus(*held_response).ToString();

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok() && stats->ok());
  EXPECT_EQ(StatValue(*stats, "queries.rejected"), 1);
  EXPECT_EQ(StatValue(*stats, "queries.served"), 1);
  (*harness)->world->dfs()->SetReadFaultInjector(nullptr);
}

TEST(ServerTest, CancelInterruptsRunningQuery) {
  auto harness = StartHarness(/*seed=*/5);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  (*harness)->world->dfs()->SetReadFaultInjector(gate);

  auto client = (*harness)->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto query_id =
      (*client)->StartQuery(FullProjectionSql((*harness)->world->meter().name));
  ASSERT_TRUE(query_id.ok()) << query_id.status().ToString();
  gate->WaitForBlocked(1);  // provably mid-scan, holding a pinned snapshot

  auto cancel_id = (*client)->StartCancel(*query_id);
  ASSERT_TRUE(cancel_id.ok()) << cancel_id.status().ToString();
  auto cancel_ack = (*client)->Await(*cancel_id);
  ASSERT_TRUE(cancel_ack.ok()) << cancel_ack.status().ToString();
  EXPECT_TRUE(cancel_ack->ok()) << ResponseStatus(*cancel_ack).ToString();

  gate->Open();
  auto response = (*client)->Await(*query_id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok());
  const Status status = ResponseStatus(*response);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  // Cancelling a finished query is a NotFound, not a crash or a stale kill.
  auto stale = (*client)->StartCancel(*query_id);
  ASSERT_TRUE(stale.ok());
  auto stale_ack = (*client)->Await(*stale);
  ASSERT_TRUE(stale_ack.ok());
  EXPECT_TRUE(ResponseStatus(*stale_ack).IsNotFound());

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok() && stats->ok());
  EXPECT_EQ(StatValue(*stats, "queries.cancelled"), 1);
  (*harness)->world->dfs()->SetReadFaultInjector(nullptr);
}

TEST(ServerTest, DeadlineExceededSurfacesAsWireCode) {
  auto harness = StartHarness(/*seed=*/6);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  auto gate = std::make_shared<GateInjector>();
  (*harness)->world->dfs()->SetReadFaultInjector(gate);

  auto client = (*harness)->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto query_id = (*client)->StartQuery(
      FullProjectionSql((*harness)->world->meter().name),
      /*deadline_seconds=*/0.05);
  ASSERT_TRUE(query_id.ok()) << query_id.status().ToString();
  gate->WaitForBlocked(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  gate->Open();

  auto response = (*client)->Await(*query_id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok());
  const Status status = ResponseStatus(*response);
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok() && stats->ok());
  EXPECT_EQ(StatValue(*stats, "queries.deadline_exceeded"), 1);
  (*harness)->world->dfs()->SetReadFaultInjector(nullptr);
}

TEST(ServerTest, ShutdownDrainsInFlightQueries) {
  auto harness = StartHarness(/*seed=*/7);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  const int64_t total_rows = (*harness)->world->config().TotalRows();
  auto gate = std::make_shared<GateInjector>();
  (*harness)->world->dfs()->SetReadFaultInjector(gate);

  auto query_client = (*harness)->Connect();
  ASSERT_TRUE(query_client.ok()) << query_client.status().ToString();
  auto admin_client = (*harness)->Connect();
  ASSERT_TRUE(admin_client.ok()) << admin_client.status().ToString();

  auto query_id = (*query_client)
                      ->StartQuery(FullProjectionSql(
                          (*harness)->world->meter().name));
  ASSERT_TRUE(query_id.ok()) << query_id.status().ToString();
  gate->WaitForBlocked(1);

  // Release the held query a beat after SHUTDOWN starts draining; the drain
  // must wait for it rather than killing it.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    gate->Open();
  });
  auto shutdown = (*admin_client)->Shutdown();
  releaser.join();
  ASSERT_TRUE(shutdown.ok()) << shutdown.status().ToString();
  EXPECT_TRUE(shutdown->ok()) << ResponseStatus(*shutdown).ToString();

  // The in-flight query finished with its full answer, not an error.
  auto response = (*query_client)->Await(*query_id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << ResponseStatus(*response).ToString();
  EXPECT_EQ(response->result.rows.size(), static_cast<size_t>(total_rows));

  (*harness)->server->WaitShutdown();
  (*harness)->server->Shutdown();
  (*harness)->world->dfs()->SetReadFaultInjector(nullptr);

  // The drained server no longer accepts connections.
  auto late = ServerClient::ConnectTcp("127.0.0.1", (*harness)->server->port());
  if (late.ok()) {
    auto ping = (*late)->Ping();
    EXPECT_FALSE(ping.ok() && ping->ok());
  }
}

// ---------------------------------------------------------------------------
// Concurrency: 8 clients replaying generated workload against a live server
// while a 9th connection appends new days into the DGF index. Generated
// queries are clamped to the base time range so the precomputed oracle stays
// valid; probe queries over the appended range must see whole published
// batches (atomic publish), never a torn prefix.

TEST(ServerConcurrencyTest, EightClientsWithBackgroundAppender) {
  constexpr uint64_t kSeed = 11;
  constexpr int kClientThreads = 8;
  constexpr int kQueriesPerThread = 12;
  constexpr int kAppendBatches = 5;
  constexpr int kRowsPerBatch = 20;

  auto harness = StartHarness(kSeed, /*max_concurrent=*/4,
                              /*max_pending=*/64);
  ASSERT_TRUE(harness.ok()) << harness.status().ToString();
  const SeededWorld& world = *(*harness)->world;
  const workload::MeterConfig& config = world.config();
  const table::Schema& schema = world.meter().schema;
  const int64_t base_first_day = config.start_day;
  const int64_t base_last_day = config.start_day + config.num_days - 1;
  const int64_t append_first_day = base_last_day + 1;

  // Pre-compute queries and oracle answers sequentially; the appended days
  // lie outside the clamp so the oracle stays valid while batches land.
  std::vector<query::Query> queries;
  std::vector<query::QueryResult> oracles;
  for (int i = 0; i < kClientThreads * kQueriesPerThread; ++i) {
    query::Query q = world.GenerateQuery(kSeed, i);
    q.where.And(query::ColumnRange::Between(
        "time", table::Value::Date(base_first_day), true,
        table::Value::Date(base_last_day), true));
    auto oracle = world.Oracle(q);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    queries.push_back(std::move(q));
    oracles.push_back(*std::move(oracle));
  }

  query::Query probe;
  probe.table = world.meter().name;
  probe.select.push_back(
      query::SelectItem::Aggregation(*core::AggSpec::Parse("count(*)")));
  {
    query::ColumnRange appended_range;
    appended_range.column = "time";
    appended_range.lower =
        query::Bound{table::Value::Date(append_first_day), true};
    probe.where.And(std::move(appended_range));
  }
  const std::string probe_sql = probe.ToSql();

  std::atomic<int64_t> rows_published{0};
  std::atomic<bool> append_failed{false};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto report = [&](std::string what) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(what));
  };

  std::thread appender([&] {
    auto client = (*harness)->Connect();
    if (!client.ok()) {
      append_failed.store(true);
      report("appender connect: " + client.status().ToString());
      return;
    }
    for (int batch = 0; batch < kAppendBatches; ++batch) {
      std::vector<std::string> rows;
      for (int i = 0; i < kRowsPerBatch; ++i) {
        const int64_t user = i % config.num_users;
        table::Row row = {
            table::Value::Int64(user),
            table::Value::Int64(workload::RegionOfUser(config, user)),
            table::Value::Date(append_first_day + batch),
            table::Value::Double(1.0 + 0.25 * i)};
        for (int extra = 0; extra < config.extra_metrics; ++extra) {
          row.push_back(table::Value::Double(0.5 * extra));
        }
        if (static_cast<int>(row.size()) != schema.num_fields()) {
          append_failed.store(true);
          report("appender: row arity mismatch");
          return;
        }
        rows.push_back(table::FormatRowText(row));
      }
      auto response = (*client)->Append(world.meter().name, rows);
      if (!response.ok() || !response->ok()) {
        append_failed.store(true);
        report("append batch " + std::to_string(batch) + ": " +
               (response.ok() ? ResponseStatus(*response).ToString()
                              : response.status().ToString()));
        return;
      }
      rows_published.fetch_add(kRowsPerBatch);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      auto client = (*harness)->Connect();
      if (!client.ok()) {
        report("client connect: " + client.status().ToString());
        return;
      }
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const int case_id = t * kQueriesPerThread + i;
        const query::Query& q = queries[static_cast<size_t>(case_id)];
        auto response = (*client)->Query(q.ToSql());
        if (!response.ok()) {
          report("case " + std::to_string(case_id) + ": transport: " +
                 response.status().ToString());
          continue;
        }
        if (!response->ok()) {
          report("case " + std::to_string(case_id) + " [" + q.ToSql() +
                 "]: " + ResponseStatus(*response).ToString());
          continue;
        }
        auto got = ResultFromResponse(*response);
        if (!got.ok()) {
          report("case " + std::to_string(case_id) +
                 ": decode: " + got.status().ToString());
          continue;
        }
        const std::string mismatch = dgf::testing::DescribeResultMismatch(
            oracles[static_cast<size_t>(case_id)], *got);
        if (!mismatch.empty()) {
          report("case " + std::to_string(case_id) + " [" + q.ToSql() +
                 "]: " + mismatch);
        }

        if (i % 4 == 3) {
          // Probe the appended region: any answer must be whole batches
          // within the published window around the probe.
          const int64_t before = rows_published.load();
          auto probe_response = (*client)->Query(probe_sql);
          const int64_t after = rows_published.load();
          if (!probe_response.ok() || !probe_response->ok()) {
            report("probe: " +
                   (probe_response.ok()
                        ? ResponseStatus(*probe_response).ToString()
                        : probe_response.status().ToString()));
            continue;
          }
          if (probe_response->result.rows.size() != 1) {
            report("probe: expected 1 row");
            continue;
          }
          const auto count = static_cast<int64_t>(
              FirstField(probe_response->result.rows[0]));
          if (count % kRowsPerBatch != 0) {
            report("probe: torn batch visible: count=" +
                   std::to_string(count));
          }
          // One batch may be published-but-unacked when the probe pins its
          // snapshot, hence the +kRowsPerBatch slack on the upper bound.
          if (count < before ||
              (count > after + kRowsPerBatch && !append_failed.load())) {
            report("probe: count=" + std::to_string(count) +
                   " outside published window [" + std::to_string(before) +
                   ", " + std::to_string(after + kRowsPerBatch) + "]");
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  appender.join();

  for (const std::string& failure : failures) ADD_FAILURE() << failure;

  // All published batches are durably visible once the appender is done.
  auto client = (*harness)->Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto final_probe = (*client)->Query(probe_sql);
  ASSERT_TRUE(final_probe.ok() && final_probe->ok());
  ASSERT_EQ(final_probe->result.rows.size(), 1u);
  EXPECT_EQ(static_cast<int64_t>(FirstField(final_probe->result.rows[0])),
            rows_published.load());

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok() && stats->ok());
  EXPECT_GE(StatValue(*stats, "queries.served"),
            kClientThreads * kQueriesPerThread);
  EXPECT_EQ(StatValue(*stats, "appends.rows"), rows_published.load());
}

}  // namespace
}  // namespace dgf::server
