// MiniDfs namespace-striping stress tests: N writer threads create, append,
// seal, rename, and read back files concurrently while other threads scan
// the namespace (ListFiles / Stat / metadata accounting). The global-mutex
// MiniDfs serialized all of this on one lock; the striped version must keep
// the same semantics — every writer's bytes durable and attributed to the
// right path, listings always a point-in-time subset ordered by path — with
// per-stripe locking only.
//
// Built with -DDGF_SANITIZE=tsan / asan this is the striped-DFS race
// workload; see scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "fs/mini_dfs.h"
#include "tests/test_util.h"

namespace dgf::fs {
namespace {

using ::dgf::testing::ScopedDfs;

/// One writer's deterministic payload: `lines` records of the form
/// "w<writer>:<i>\n" so a read-back can verify both content and length.
std::string WriterPayload(int writer, int lines) {
  std::string payload;
  for (int i = 0; i < lines; ++i) {
    payload += StringPrintf("w%03d:%06d\n", writer, i);
  }
  return payload;
}

TEST(MiniDfsStressTest, ConcurrentWritersOnDistinctFiles) {
  constexpr int kWriters = 8;
  constexpr int kFilesPerWriter = 6;
  constexpr int kLinesPerFile = 40;

  ScopedDfs dfs("fs_stress_writers");
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string payload = WriterPayload(w, kLinesPerFile);
      for (int f = 0; f < kFilesPerWriter; ++f) {
        // Writers share directories, so directory tracking and stripe maps
        // see interleaved inserts of colliding prefixes.
        const std::string path =
            StringPrintf("/stress/dir%d/w%03d_f%02d", f % 3, w, f);
        auto writer = dfs->Create(path);
        if (!writer.ok()) {
          failed.store(true);
          return;
        }
        // Half the payload at create time, half through the append path, so
        // the published length crosses Create -> Close -> Append -> Close.
        const size_t half = payload.size() / 2;
        if (!(*writer)->Append(payload.substr(0, half)).ok() ||
            !(*writer)->Close().ok()) {
          failed.store(true);
          return;
        }
        auto appender = dfs->Append(path);
        if (!appender.ok() || !(*appender)->Append(payload.substr(half)).ok() ||
            !(*appender)->Close().ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  // Concurrent namespace scans: listings and accounting must never crash,
  // tear, or observe an out-of-order listing while stripes churn.
  std::atomic<bool> writers_done{false};
  threads.emplace_back([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      std::vector<FileStatus> files = dfs->ListFiles("/stress/");
      for (size_t i = 1; i < files.size(); ++i) {
        if (!(files[i - 1].path < files[i].path)) failed.store(true);
      }
      (void)dfs->MetadataMemoryBytes();
      (void)dfs->NumFiles();
      for (const FileStatus& file : files) {
        if (!dfs->Exists(file.path)) failed.store(true);
      }
    }
  });
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  writers_done.store(true, std::memory_order_release);
  threads.back().join();
  ASSERT_FALSE(failed.load());

  // Every file holds exactly its writer's payload.
  EXPECT_EQ(dfs->NumFiles(), static_cast<uint64_t>(kWriters * kFilesPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    const std::string payload = WriterPayload(w, kLinesPerFile);
    for (int f = 0; f < kFilesPerWriter; ++f) {
      const std::string path =
          StringPrintf("/stress/dir%d/w%03d_f%02d", f % 3, w, f);
      ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead(path));
      ASSERT_EQ(reader->Length(), payload.size()) << path;
      std::string got;
      ASSERT_OK(reader->Pread(0, payload.size(), &got));
      EXPECT_EQ(got, payload) << path;
    }
  }
}

TEST(MiniDfsStressTest, ConcurrentRenamesAcrossStripes) {
  constexpr int kMovers = 6;
  constexpr int kFilesPerMover = 8;

  ScopedDfs dfs("fs_stress_rename");
  for (int m = 0; m < kMovers; ++m) {
    for (int f = 0; f < kFilesPerMover; ++f) {
      const std::string path = StringPrintf("/src/m%d/f%02d", m, f);
      ASSERT_OK_AND_ASSIGN(auto writer, dfs->Create(path));
      ASSERT_OK(writer->Append(StringPrintf("m%d f%d\n", m, f)));
      ASSERT_OK(writer->Close());
    }
  }
  // Each mover renames its own files into a shared destination tree. Source
  // and destination hash to unrelated stripes, so every rename exercises the
  // two-stripe lock ordering against concurrent renames and listings.
  std::atomic<bool> failed{false};
  std::atomic<bool> movers_done{false};
  std::vector<std::thread> threads;
  for (int m = 0; m < kMovers; ++m) {
    threads.emplace_back([&, m] {
      for (int f = 0; f < kFilesPerMover; ++f) {
        const std::string from = StringPrintf("/src/m%d/f%02d", m, f);
        const std::string to = StringPrintf("/dst/m%d_f%02d", m, f);
        if (!dfs->Rename(from, to).ok()) failed.store(true);
      }
    });
  }
  threads.emplace_back([&] {
    while (!movers_done.load(std::memory_order_acquire)) {
      // The total file count is rename-invariant: a listing that caught a
      // file in neither tree (or both) would break it.
      const uint64_t total = dfs->ListFiles("/src/").size() +
                             dfs->ListFiles("/dst/").size();
      if (total != static_cast<uint64_t>(kMovers * kFilesPerMover)) {
        // ListFiles("/src/") and ("/dst/") are two separate scans, so a
        // rename between them may double-count but can never lose a file.
        if (total < static_cast<uint64_t>(kMovers * kFilesPerMover)) {
          failed.store(true);
        }
      }
    }
  });
  for (int t = 0; t < kMovers; ++t) threads[static_cast<size_t>(t)].join();
  movers_done.store(true, std::memory_order_release);
  threads.back().join();
  ASSERT_FALSE(failed.load());

  EXPECT_TRUE(dfs->ListFiles("/src/").empty());
  EXPECT_EQ(dfs->ListFiles("/dst/").size(),
            static_cast<size_t>(kMovers * kFilesPerMover));
  for (int m = 0; m < kMovers; ++m) {
    for (int f = 0; f < kFilesPerMover; ++f) {
      const std::string to = StringPrintf("/dst/m%d_f%02d", m, f);
      ASSERT_OK_AND_ASSIGN(auto reader, dfs->OpenForRead(to));
      std::string got;
      ASSERT_OK(reader->Pread(0, reader->Length(), &got));
      EXPECT_EQ(got, StringPrintf("m%d f%d\n", m, f));
    }
  }
}

}  // namespace
}  // namespace dgf::fs
