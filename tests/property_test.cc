// Property sweeps: the library's central invariants checked across
// parameterized configuration grids (splitting policies, slice geometries).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_input_format.h"
#include "kv/mem_kv.h"
#include "table/text_format.h"
#include "tests/test_util.h"

namespace dgf::core {
namespace {

using ::dgf::testing::ScopedDfs;
using table::DataType;
using table::Schema;
using table::Value;

Schema MeterSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"regionId", DataType::kInt64},
                 {"time", DataType::kDate},
                 {"powerConsumed", DataType::kDouble}});
}

// ---------------------------------------------------------------------------
// Invariant 1: for ANY splitting policy, aggregation via DGFIndex (inner
// headers + boundary scan) equals brute force. Swept over (user interval,
// region interval, time interval) including degenerate 1-cell and 1-value
// grids.
// ---------------------------------------------------------------------------

class PolicySweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PolicySweepTest, AggregationEqualsBruteForceUnderAnyPolicy) {
  const auto [user_interval, region_interval, time_interval] = GetParam();
  ScopedDfs dfs("prop_policy", 16384);
  const Schema schema = MeterSchema();

  Random rng(501);
  std::vector<table::Row> rows;
  table::TableDesc meter{"meter", schema, table::FileFormat::kText, "/w/m"};
  {
    ASSERT_OK_AND_ASSIGN(auto writer, table::TableWriter::Create(dfs.get(), meter));
    for (int i = 0; i < 1500; ++i) {
      table::Row row = {Value::Int64(rng.UniformRange(0, 299)),
                        Value::Int64(rng.UniformRange(1, 6)),
                        Value::Date(15000 + rng.UniformRange(0, 11)),
                        Value::Double(rng.UniformDouble(0, 100))};
      rows.push_back(row);
      ASSERT_OK(writer->Append(row));
    }
    ASSERT_OK(writer->Close());
  }

  auto store = std::make_shared<kv::MemKv>();
  DgfBuilder::Options options;
  options.dims = {
      {"userId", DataType::kInt64, 0, static_cast<double>(user_interval)},
      {"regionId", DataType::kInt64, 0, static_cast<double>(region_interval)},
      {"time", DataType::kDate, 15000, static_cast<double>(time_interval)}};
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir = "/w/m_dgf";
  options.split_size = 16384;
  ASSERT_OK_AND_ASSIGN(auto index,
                       DgfBuilder::Build(dfs.get(), store, meter, options));

  for (int trial = 0; trial < 6; ++trial) {
    query::Predicate pred;
    const int64_t u_lo = rng.UniformRange(0, 250);
    pred.And(query::ColumnRange::Between(
        "userId", Value::Int64(u_lo), true,
        Value::Int64(u_lo + rng.UniformRange(1, 60)), false));
    const int64_t t_lo = 15000 + rng.UniformRange(0, 9);
    pred.And(query::ColumnRange::Between(
        "time", Value::Date(t_lo), true,
        Value::Date(t_lo + rng.UniformRange(1, 4)), false));

    ASSERT_OK_AND_ASSIGN(auto lookup, index->Lookup(pred, true));
    double sum = lookup.inner_header[0];
    uint64_t count = lookup.inner_records;
    ASSERT_OK_AND_ASSIGN(auto planned,
                         PlanSlicedSplits(dfs.get(), lookup.slices, 16384));
    auto bound = pred.Bind(schema);
    ASSERT_TRUE(bound.ok());
    for (const auto& sliced : planned) {
      ASSERT_OK_AND_ASSIGN(auto reader,
                           SliceRecordReader::Open(dfs.get(), sliced, schema));
      table::Row row;
      for (;;) {
        ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
        if (!more) break;
        if (bound->Matches(row)) {
          sum += row[3].AsDouble();
          ++count;
        }
      }
    }
    double expected_sum = 0;
    uint64_t expected_count = 0;
    for (const auto& row : rows) {
      if (bound->Matches(row)) {
        expected_sum += row[3].AsDouble();
        ++expected_count;
      }
    }
    EXPECT_NEAR(sum, expected_sum, 1e-6 * (1 + std::abs(expected_sum)))
        << "policy(" << user_interval << "," << region_interval << ","
        << time_interval << ") " << pred.ToString();
    EXPECT_EQ(count, expected_count) << pred.ToString();
  }
}

// ---------------------------------------------------------------------------
// Invariant 1b: partial-specified queries (the paper's Section 4.3 case —
// dimensions absent from the predicate are completed with the stored
// min/max) also equal brute force, for every subset of specified dimensions
// and every splitting policy in the grid above.
// ---------------------------------------------------------------------------

TEST_P(PolicySweepTest, PartialQueriesCompleteUnspecifiedDimensions) {
  const auto [user_interval, region_interval, time_interval] = GetParam();
  ScopedDfs dfs("prop_partial", 16384);
  const Schema schema = MeterSchema();

  Random rng(701);
  std::vector<table::Row> rows;
  table::TableDesc meter{"meter", schema, table::FileFormat::kText, "/w/m"};
  {
    ASSERT_OK_AND_ASSIGN(auto writer, table::TableWriter::Create(dfs.get(), meter));
    for (int i = 0; i < 1200; ++i) {
      table::Row row = {Value::Int64(rng.UniformRange(0, 299)),
                        Value::Int64(rng.UniformRange(1, 6)),
                        Value::Date(15000 + rng.UniformRange(0, 11)),
                        Value::Double(rng.UniformDouble(0, 100))};
      rows.push_back(row);
      ASSERT_OK(writer->Append(row));
    }
    ASSERT_OK(writer->Close());
  }

  auto store = std::make_shared<kv::MemKv>();
  DgfBuilder::Options options;
  options.dims = {
      {"userId", DataType::kInt64, 0, static_cast<double>(user_interval)},
      {"regionId", DataType::kInt64, 0, static_cast<double>(region_interval)},
      {"time", DataType::kDate, 15000, static_cast<double>(time_interval)}};
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir = "/w/m_dgf";
  options.split_size = 16384;
  ASSERT_OK_AND_ASSIGN(auto index,
                       DgfBuilder::Build(dfs.get(), store, meter, options));

  // Every subset of specified dimensions, from fully-specified (mask 7) down
  // to the completely unspecified query (mask 0, the whole table).
  for (int mask = 0; mask < 8; ++mask) {
    query::Predicate pred;
    if (mask & 1) {
      pred.And(query::ColumnRange::Between("userId", Value::Int64(40), true,
                                           Value::Int64(220), false));
    }
    if (mask & 2) {
      pred.And(query::ColumnRange::Between("regionId", Value::Int64(2), true,
                                           Value::Int64(5), true));
    }
    if (mask & 4) {
      pred.And(query::ColumnRange::Between("time", Value::Date(15002), true,
                                           Value::Date(15008), false));
    }

    ASSERT_OK_AND_ASSIGN(auto lookup, index->Lookup(pred, true));
    double sum = lookup.inner_header[0];
    uint64_t count = lookup.inner_records;
    ASSERT_OK_AND_ASSIGN(auto planned,
                         PlanSlicedSplits(dfs.get(), lookup.slices, 16384));
    auto bound = pred.Bind(schema);
    ASSERT_TRUE(bound.ok());
    for (const auto& sliced : planned) {
      ASSERT_OK_AND_ASSIGN(auto reader,
                           SliceRecordReader::Open(dfs.get(), sliced, schema));
      table::Row row;
      for (;;) {
        ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
        if (!more) break;
        if (bound->Matches(row)) {
          sum += row[3].AsDouble();
          ++count;
        }
      }
    }
    double expected_sum = 0;
    uint64_t expected_count = 0;
    for (const auto& row : rows) {
      if (bound->Matches(row)) {
        expected_sum += row[3].AsDouble();
        ++expected_count;
      }
    }
    EXPECT_NEAR(sum, expected_sum, 1e-6 * (1 + std::abs(expected_sum)))
        << "policy(" << user_interval << "," << region_interval << ","
        << time_interval << ") mask " << mask << " " << pred.ToString();
    EXPECT_EQ(count, expected_count) << "mask " << mask << " "
                                     << pred.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweepTest,
    ::testing::Values(std::make_tuple(1, 1, 1),       // finest: 1 value/cell
                      std::make_tuple(10, 1, 1),      // the paper's shape
                      std::make_tuple(75, 2, 3),      // coarse, unaligned
                      std::make_tuple(300, 6, 12),    // single cell per dim
                      std::make_tuple(1000, 10, 50),  // cells larger than domain
                      std::make_tuple(7, 3, 5)),      // primes (never aligned)
    [](const auto& info) {
      return "u" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Invariant 2: slice plans cover every requested byte exactly once for any
// random set of line-aligned slices, under any split size.
// ---------------------------------------------------------------------------

class SlicePlanSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlicePlanSweepTest, SlicesReadExactlyTheRequestedRows) {
  const uint64_t split_size = GetParam();
  ScopedDfs dfs("prop_slices", 16384);
  Schema schema({{"v", DataType::kInt64}});
  std::vector<uint64_t> line_starts;
  uint64_t end_offset = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto writer,
                         table::TextFileWriter::Create(dfs.get(), "/f.txt",
                                                       schema));
    for (int i = 0; i < 2000; ++i) {
      line_starts.push_back(writer->Offset());
      ASSERT_OK(writer->Append({Value::Int64(i)}));
    }
    end_offset = writer->Offset();
    ASSERT_OK(writer->Close());
  }
  line_starts.push_back(end_offset);

  Random rng(601 + split_size);
  for (int trial = 0; trial < 5; ++trial) {
    // Pick disjoint random line ranges as slices.
    std::vector<SliceLocation> slices;
    std::set<int64_t> expected;
    size_t cursor = 0;
    while (cursor + 2 < line_starts.size() - 1) {
      cursor += rng.Uniform(40);  // gap
      const size_t len = 1 + rng.Uniform(30);
      const size_t first = cursor;
      const size_t last = std::min(cursor + len, line_starts.size() - 2);
      if (first > last) break;
      slices.push_back(SliceLocation{"/f.txt", line_starts[first],
                                     line_starts[last + 1]});
      for (size_t i = first; i <= last; ++i) {
        expected.insert(static_cast<int64_t>(i));
      }
      cursor = last + 2;
    }
    ASSERT_FALSE(slices.empty());

    ASSERT_OK_AND_ASSIGN(auto planned,
                         PlanSlicedSplits(dfs.get(), slices, split_size));
    std::set<int64_t> got;
    for (const auto& sliced : planned) {
      ASSERT_OK_AND_ASSIGN(auto reader,
                           SliceRecordReader::Open(dfs.get(), sliced, schema));
      table::Row row;
      for (;;) {
        ASSERT_OK_AND_ASSIGN(bool more, reader->Next(&row));
        if (!more) break;
        EXPECT_TRUE(got.insert(row[0].int64()).second)
            << "duplicate row " << row[0].int64();
      }
    }
    EXPECT_EQ(got, expected) << "split_size " << split_size;
  }
}

INSTANTIATE_TEST_SUITE_P(SplitSizes, SlicePlanSweepTest,
                         ::testing::Values(512, 1000, 4096, 16384, 1 << 20));

}  // namespace
}  // namespace dgf::core
