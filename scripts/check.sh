#!/usr/bin/env bash
# Repo-wide verification with one line of PASS/FAIL per stage:
# tier-1 build + ctest, the differential oracle smoke suite, an ASan/UBSan
# pass that re-runs both the unit tests and the harness, and a TSan pass
# that runs the concurrency stress tests plus the threaded differential.
# Both sanitizer passes also run the query-server suite (dgf_server_tests),
# the observability suite (dgf_obs_tests), the shard-coordinator suite
# (dgf_coord_tests), and the replication suite (dgf_replication_tests); a
# shard smoke stage runs the sharded-vs-oracle cluster sweep plus the wire
# fuzz (now including the HTTP-exporter stage), an exporter smoke asserts
# /metrics stays responsive under 8-client query load, and a replication
# smoke stage runs the kill-a-node survivability sweep (replicated clusters
# with daemon/store kills diffed against the oracle)
# (contract: every stage prints exactly one [PASS]/[FAIL] line; any [FAIL]
# makes the script exit non-zero).
#
#   scripts/check.sh            # all stages
#   scripts/check.sh --fast     # skip the sanitizer stages
set -u

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILED=0

stage() {
  local name="$1"
  shift
  local log
  log="$(mktemp /tmp/dgf_check_XXXXXX.log)"
  if "$@" >"$log" 2>&1; then
    echo "[PASS] $name"
    rm -f "$log"
  else
    echo "[FAIL] $name (log: $log)"
    tail -20 "$log" | sed 's/^/       /'
    FAILED=1
  fi
}

stage "configure"        cmake -B build -S .
stage "build"            cmake --build build -j "$JOBS"
stage "unit tests"       ctest --test-dir build -j "$JOBS" --output-on-failure
stage "difftest tier1"   ./build/src/dgf_difftest --seeds=tier1
# Shard smoke: paper-template queries through in-process 1/2/4-shard
# clusters behind the coordinator, diffed against the single-node oracle,
# plus the mutated-frame wire fuzz against the codec and a live server.
stage "shard smoke"      ./build/src/dgf_difftest --shard-sweep --wire-fuzz \
  --count=3 --seed=11
# Replication smoke: the node-crash survivability sweep — 2-way replicated
# LSM-backed clusters take a store kill (failover reads), a wipe + repair, a
# primary kill mid-stream (coordinator replica retry), and a daemon kill +
# cold reopen with one store dir destroyed; every answer must equal the
# single-node oracle and recovery must equal the acknowledged prefix.
stage "replication smoke" ./build/src/dgf_difftest --node-crash-sweep \
  --seed=41 --seeds=2
# Observability suite: registry/histogram/exporter/trace tests, then an
# exporter-under-load smoke — 8 client threads of query load while a poller
# hammers /metrics and /healthz; any failed probe fails the binary.
stage "obs tests"        ./build/tests/dgf_obs_tests
stage "exporter smoke"   ./build/bench/bench_server_throughput \
  --http-port=0 --threads=8 --queries=5 --users=60 --days=3
# Parallel-build speedup gate (1.5x floor at 4 threads); self-skips (exit 0)
# on hosts with < 4 CPUs, where the comparison measures nothing.
stage "perf smoke"       ./build/bench/bench_perf_smoke

if [[ "${1:-}" == "--fast" ]]; then
  echo "== done (fast mode, sanitizer stages skipped) =="
  exit "$FAILED"
fi

stage "asan configure"   cmake -B build-asan -S . -DDGF_SANITIZE=ON
stage "asan build"       cmake --build build-asan -j "$JOBS"
stage "asan kv/dgf tests" ctest --test-dir build-asan -j "$JOBS" \
  --output-on-failure -R 'Kv|Sstable|Lsm|Dgf|Slice|Difftest'
stage "asan difftest"    ./build-asan/src/dgf_difftest --seed=1 --queries=40
stage "asan server tests" ./build-asan/tests/dgf_server_tests
stage "asan obs tests"   ./build-asan/tests/dgf_obs_tests
stage "asan coord tests" ./build-asan/tests/dgf_coord_tests
stage "asan replication tests" ./build-asan/tests/dgf_replication_tests
stage "asan shard smoke" ./build-asan/src/dgf_difftest --shard-sweep \
  --wire-fuzz --count=1 --seed=11
stage "asan replication smoke" ./build-asan/src/dgf_difftest \
  --node-crash-sweep --seed=41 --seeds=1

# ThreadSanitizer: concurrent readers vs appender/optimizer (the stress
# tests) and the threaded differential against its sequential oracle. A
# reported race fails the binary (TSan exits non-zero), which fails the
# stage.
stage "tsan configure"   cmake -B build-tsan -S . -DDGF_SANITIZE=TSAN
stage "tsan build"       cmake --build build-tsan -j "$JOBS"
stage "tsan stress tests" ctest --test-dir build-tsan -j "$JOBS" \
  --output-on-failure -R 'ConcurrencyStress'
stage "tsan difftest"    ./build-tsan/src/dgf_difftest --threads=4 --seeds=tier1
stage "tsan server tests" ./build-tsan/tests/dgf_server_tests
stage "tsan obs tests"   ./build-tsan/tests/dgf_obs_tests
stage "tsan coord tests" ./build-tsan/tests/dgf_coord_tests
stage "tsan replication tests" ./build-tsan/tests/dgf_replication_tests
stage "tsan shard smoke" ./build-tsan/src/dgf_difftest --shard-sweep \
  --wire-fuzz --count=1 --seed=11
stage "tsan replication smoke" ./build-tsan/src/dgf_difftest \
  --node-crash-sweep --seed=41 --seeds=1

exit "$FAILED"
