#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the kv/dgf tests.
#
#   scripts/check.sh            # full check (regular build + ctest, then ASan/UBSan)
#   scripts/check.sh --fast     # regular build + ctest only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure

if [[ "${1:-}" == "--fast" ]]; then
  echo "== OK (fast mode, sanitizer pass skipped) =="
  exit 0
fi

echo "== sanitizer: ASan+UBSan build of kv/dgf tests =="
cmake -B build-asan -S . -DDGF_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS" --target dgf_tests
ctest --test-dir build-asan -j "$JOBS" --output-on-failure \
  -R 'Kv|Sstable|Lsm|Dgf|Slice'

echo "== OK =="
