// Client load harness for the query service: N client threads replay the
// paper's meter-query templates (Listings 4-7 at the evaluated
// selectivities) against an in-process dgf_serverd-style world over real
// sockets, optionally while an appender lands new day batches. Emits one
// JSON report with throughput and per-percentile latency.
//
//   bench_server_throughput [--threads=8] [--queries=40] [--appender]
//                           [--users=200] [--days=5] [--regions=5]
//                           [--max-concurrent=4] [--max-pending=32]
//                           [--shards=N] [--replication=k] [--http-port=P]
//
// --http-port=P (0 = ephemeral) starts the HTTP observability exporter on
// the serving process and a poller thread that hammers /metrics and
// /healthz throughout the load window; every probe must succeed — an
// exporter that blocks or errors under full query load fails the run. The
// probe count lands in the JSON report.
//
// With --shards=N the same load is driven through an in-process N-shard
// cluster (per-shard servers behind the scatter-gather coordinator) instead
// of a single server, so the sharded and single-node configurations are
// directly comparable. --replication=k backs every DFS with k replica
// stores (fan-out writes, chunk checksums, failover reads; against the
// cluster it also arms per-shard replica endpoints), making the write
// amplification and read-path cost of replication a measurable axis of the
// same report. Every run appends one QPS/latency record to
// BENCH_build.json (path overridable via DGF_BENCH_BUILD_JSON).
//
// Exits non-zero if any query fails with an error other than the structured
// admission rejection (Unavailable counts as backpressure, not failure).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "obs/http_exporter.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "table/schema.h"
#include "testing/shard_sweep.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf::server {
namespace {

struct Flags {
  int threads = 8;
  int queries_per_thread = 40;
  bool appender = false;
  int64_t users = 200;
  int days = 5;
  int64_t regions = 5;
  int max_concurrent = 4;
  int max_pending = 32;
  /// 0 = single server; N >= 1 = N-shard cluster behind the coordinator.
  int shards = 0;
  /// DFS replication factor (1 = legacy single copy). Against the cluster
  /// this also starts per-shard replica endpoints and hands them to the
  /// coordinator.
  int replication = 1;
  /// >= 0: serve the HTTP observability exporter and assert it stays
  /// responsive under load (0 = ephemeral port). < 0 (default): off.
  int http_port = -1;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

struct BenchWorld {
  std::filesystem::path dir;
  std::shared_ptr<fs::MiniDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  table::TableDesc user_info;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> dgf;

  ~BenchWorld() {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

Result<std::unique_ptr<BenchWorld>> BuildBenchWorld(const Flags& flags) {
  auto world = std::make_unique<BenchWorld>();
  world->dir = std::filesystem::temp_directory_path() /
               ("dgf_bench_server_" + std::to_string(::getpid()));
  std::filesystem::remove_all(world->dir);

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = world->dir.string();
  dfs_options.block_size = 256 * 1024;
  dfs_options.replication = flags.replication;
  DGF_ASSIGN_OR_RETURN(world->dfs, fs::MiniDfs::Open(dfs_options));

  world->config.num_users = flags.users;
  world->config.num_days = flags.days;
  world->config.num_regions = flags.regions;
  world->config.extra_metrics = 2;
  DGF_ASSIGN_OR_RETURN(
      world->meter, workload::GenerateMeterTable(world->dfs, "/warehouse/meter",
                                                 world->config));
  DGF_ASSIGN_OR_RETURN(world->user_info,
                       workload::GenerateUserInfoTable(
                           world->dfs, "/warehouse/userinfo", world->config));

  core::DgfBuilder::Options build;
  build.dims = {
      {"userId", table::DataType::kInt64, 0, 50},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(world->config.start_day), 1},
  };
  build.precompute = {"sum(powerConsumed)", "count(*)"};
  build.data_dir = "/warehouse/dgf";
  world->store = std::make_shared<kv::MemKv>();
  DGF_ASSIGN_OR_RETURN(world->dgf,
                       core::DgfBuilder::Build(world->dfs, world->store,
                                               world->meter, build));
  return world;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int Main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--appender") == 0) {
      flags.appender = true;
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      flags.threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      flags.queries_per_thread = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--users", &value)) {
      flags.users = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--days", &value)) {
      flags.days = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--regions", &value)) {
      flags.regions = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--max-concurrent", &value)) {
      flags.max_concurrent = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-pending", &value)) {
      flags.max_pending = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      flags.shards = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--replication", &value)) {
      flags.replication = std::atoi(value.c_str());
      if (flags.replication < 1) {
        std::fprintf(stderr, "bad --replication factor: %s\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--http-port", &value)) {
      flags.http_port = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  // Single-node and sharded paths differ only in who answers the port; the
  // client threads, appender, and reporting below are shared.
  std::unique_ptr<BenchWorld> world;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;
  std::unique_ptr<testing::ShardedCluster> cluster;
  workload::MeterConfig config;
  int port = 0;
  if (flags.shards >= 1) {
    config.num_users = flags.users;
    config.num_days = flags.days;
    config.num_regions = flags.regions;
    config.extra_metrics = 2;
    testing::ShardedCluster::Options cluster_options;
    cluster_options.config = config;
    cluster_options.dims = {
        {"userId", table::DataType::kInt64, 0, 50},
        {"regionId", table::DataType::kInt64, 0, 1},
        {"time", table::DataType::kDate, static_cast<double>(config.start_day),
         1},
    };
    cluster_options.num_shards = flags.shards;
    cluster_options.with_user_info = true;  // join templates need the archive
    cluster_options.replication = flags.replication;
    cluster_options.replica_servers = flags.replication > 1;
    cluster_options.max_concurrent = flags.max_concurrent;
    cluster_options.max_pending = flags.max_pending;
    auto started = testing::ShardedCluster::Start(cluster_options);
    if (!started.ok()) {
      std::fprintf(stderr, "cluster: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    cluster = std::move(*started);
    port = cluster->front()->port();
  } else {
    auto built = BuildBenchWorld(flags);
    if (!built.ok()) {
      std::fprintf(stderr, "world: %s\n", built.status().ToString().c_str());
      return 1;
    }
    world = std::move(*built);
    config = world->config;
    QueryService::Options service_options;
    service_options.dfs = world->dfs;
    service_options.max_concurrent = flags.max_concurrent;
    service_options.max_pending = flags.max_pending;
    service = std::make_unique<QueryService>(service_options);
    service->RegisterTable(world->meter);
    service->RegisterTable(world->user_info);
    service->RegisterDgfIndex(world->meter.name, world->dgf.get());

    Server::Options server_options;
    server_options.service = service.get();
    server_options.port = 0;
    auto started = Server::Start(server_options);
    if (!started.ok()) {
      std::fprintf(stderr, "start: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(*started);
    port = server->port();
  }

  // Observability exporter under load: serve the frontmost service's
  // registry (single node: the QueryService's; cluster: the coordinator's)
  // and poll it from a dedicated thread for the whole load window.
  std::unique_ptr<obs::HttpExporter> exporter;
  std::atomic<bool> stop_poller{false};
  std::atomic<uint64_t> http_probes{0};
  std::atomic<uint64_t> http_probe_failures{0};
  std::thread poller;
  if (flags.http_port >= 0) {
    obs::HttpExporter::Options http_options;
    http_options.port = flags.http_port;
    if (cluster != nullptr) {
      http_options.registry = cluster->coordinator()->metrics();
      http_options.trace_log = cluster->coordinator()->trace_log();
    } else {
      http_options.registry = service->metrics();
      http_options.trace_log = service->trace_log();
    }
    auto started = obs::HttpExporter::Start(http_options);
    if (!started.ok()) {
      std::fprintf(stderr, "http exporter: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    exporter = std::move(*started);
    poller = std::thread([&, http_port = exporter->port()] {
      while (!stop_poller.load()) {
        for (const char* path : {"/metrics", "/healthz"}) {
          auto probe = obs::HttpGet(http_port, path, 5.0);
          http_probes.fetch_add(1);
          if (!probe.ok() || probe->status_code != 200) {
            http_probe_failures.fetch_add(1);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  // The paper's template mix: aggregation, group-by, join, and
  // partial-specified, at the three evaluated selectivities.
  constexpr workload::MeterQueryKind kKinds[] = {
      workload::MeterQueryKind::kAggregation,
      workload::MeterQueryKind::kGroupBy, workload::MeterQueryKind::kJoin,
      workload::MeterQueryKind::kPartial};
  constexpr workload::Selectivity kSels[] = {
      workload::Selectivity::kPoint, workload::Selectivity::kFivePercent,
      workload::Selectivity::kTwelvePercent};

  std::atomic<bool> stop_appender{false};
  std::atomic<uint64_t> append_batches{0};
  std::thread appender;
  if (flags.appender) {
    appender = std::thread([&] {
      auto client = ServerClient::ConnectTcp("127.0.0.1", port);
      if (!client.ok()) return;
      // New-day batches sit past the last cut, so against the cluster the
      // coordinator's time-routed append lands them on the last shard.
      const int64_t first_day = config.start_day + config.num_days;
      for (int batch = 0; !stop_appender.load(); ++batch) {
        std::vector<std::string> rows;
        for (int i = 0; i < 50; ++i) {
          table::Row row = {
              table::Value::Int64(i % config.num_users),
              table::Value::Int64(1 + i % config.num_regions),
              table::Value::Date(first_day + batch),
              table::Value::Double(1.0 + 0.125 * i)};
          for (int extra = 0; extra < config.extra_metrics; ++extra) {
            row.push_back(table::Value::Double(0.25 * extra));
          }
          rows.push_back(table::FormatRowText(row));
        }
        auto response = (*client)->Append("meterdata", rows);
        if (!response.ok() || !response->ok()) return;
        append_batches.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  std::mutex mu;
  std::vector<double> latencies_ms;
  uint64_t ok_count = 0;
  uint64_t rejected_count = 0;
  uint64_t error_count = 0;
  std::string first_error;

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < flags.threads; ++t) {
    clients.emplace_back([&, t] {
      auto client = ServerClient::ConnectTcp("127.0.0.1", port);
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        ++error_count;
        if (first_error.empty()) first_error = client.status().ToString();
        return;
      }
      std::vector<double> local_ms;
      uint64_t local_ok = 0, local_rejected = 0, local_errors = 0;
      std::string local_first_error;
      for (int i = 0; i < flags.queries_per_thread; ++i) {
        const uint64_t variant =
            static_cast<uint64_t>(t) * 1000003ULL + static_cast<uint64_t>(i);
        const query::Query q = workload::MakeMeterQuery(
            config, kKinds[variant % 4], kSels[(variant / 4) % 3], variant);
        const auto start = std::chrono::steady_clock::now();
        auto response = (*client)->Query(q.ToSql());
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!response.ok()) {
          ++local_errors;
          if (local_first_error.empty()) {
            local_first_error = response.status().ToString();
          }
          continue;
        }
        if (!response->ok()) {
          const Status status = ResponseStatus(*response);
          if (status.IsUnavailable()) {
            ++local_rejected;  // structured backpressure, retryable
          } else {
            ++local_errors;
            if (local_first_error.empty()) {
              local_first_error = q.ToSql() + ": " + status.ToString();
            }
          }
          continue;
        }
        ++local_ok;
        local_ms.push_back(ms);
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      ok_count += local_ok;
      rejected_count += local_rejected;
      error_count += local_errors;
      if (first_error.empty()) first_error = local_first_error;
    });
  }
  for (std::thread& thread : clients) thread.join();
  const double elapsed = wall.ElapsedSeconds();

  stop_appender.store(true);
  if (appender.joinable()) appender.join();
  stop_poller.store(true);
  if (poller.joinable()) poller.join();
  exporter.reset();

  // Replica write amplification actually paid by the run (single node: the
  // bench world's DFS; cluster: summed over the shard DFSes). Snapshotted
  // before teardown releases the DFS handles.
  uint64_t logical_bytes = 0;
  uint64_t replica_bytes = 0;
  if (world != nullptr) {
    logical_bytes = world->dfs->TotalBytesWritten();
    replica_bytes = world->dfs->TotalReplicaBytesWritten();
  } else if (cluster != nullptr) {
    for (int i = 0; i < cluster->num_shards(); ++i) {
      logical_bytes += cluster->shard_dfs(i)->TotalBytesWritten();
      replica_bytes += cluster->shard_dfs(i)->TotalReplicaBytesWritten();
    }
  }

  if (server != nullptr) {
    auto client = ServerClient::ConnectTcp("127.0.0.1", port);
    if (client.ok()) (void)(*client)->Shutdown();
    server->Shutdown();
  }
  cluster.reset();  // front drains before the shards go away

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double qps =
      elapsed > 0 ? static_cast<double>(ok_count) / elapsed : 0;
  const double p50 = Percentile(latencies_ms, 0.50);
  const double p95 = Percentile(latencies_ms, 0.95);
  const double p99 = Percentile(latencies_ms, 0.99);
  std::printf(
      "{\"shards\": %d, \"replication\": %d, \"threads\": %d, "
      "\"queries_per_thread\": %d, "
      "\"ok\": %llu, \"rejected\": %llu, \"errors\": %llu, "
      "\"wall_seconds\": %.3f, \"qps\": %.1f, \"latency_ms\": "
      "{\"p50\": %.2f, \"p90\": %.2f, \"p95\": %.2f, \"p99\": %.2f, "
      "\"max\": %.2f}, \"append_batches\": %llu, "
      "\"logical_bytes_written\": %llu, \"replica_bytes_written\": %llu, "
      "\"http_probes\": %llu, \"http_probe_failures\": %llu}\n",
      flags.shards, flags.replication, flags.threads,
      flags.queries_per_thread, static_cast<unsigned long long>(ok_count),
      static_cast<unsigned long long>(rejected_count),
      static_cast<unsigned long long>(error_count), elapsed, qps, p50,
      Percentile(latencies_ms, 0.90), p95, p99,
      latencies_ms.empty() ? 0 : latencies_ms.back(),
      static_cast<unsigned long long>(append_batches.load()),
      static_cast<unsigned long long>(logical_bytes),
      static_cast<unsigned long long>(replica_bytes),
      static_cast<unsigned long long>(http_probes.load()),
      static_cast<unsigned long long>(http_probe_failures.load()));
  bench::AppendBenchJson(
      "DGF_BENCH_BUILD_JSON", "BENCH_build.json",
      StringPrintf("{\"bench\": \"server_throughput\", \"shards\": %d, "
                   "\"replication\": %d, "
                   "\"threads\": %d, \"ok\": %llu, \"rejected\": %llu, "
                   "\"wall_s\": %.3f, \"qps\": %.1f, \"p50_ms\": %.2f, "
                   "\"p95_ms\": %.2f, \"p99_ms\": %.2f, "
                   "\"replica_bytes_written\": %llu}",
                   flags.shards, flags.replication, flags.threads,
                   static_cast<unsigned long long>(ok_count),
                   static_cast<unsigned long long>(rejected_count), elapsed,
                   qps, p50, p95, p99,
                   static_cast<unsigned long long>(replica_bytes)));
  if (error_count > 0) {
    std::fprintf(stderr, "first error: %s\n", first_error.c_str());
    return 1;
  }
  if (flags.http_port >= 0 &&
      (http_probes.load() == 0 || http_probe_failures.load() > 0)) {
    std::fprintf(stderr,
                 "http exporter unresponsive under load: %llu/%llu probes "
                 "failed\n",
                 static_cast<unsigned long long>(http_probe_failures.load()),
                 static_cast<unsigned long long>(http_probes.load()));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dgf::server

int main(int argc, char** argv) { return dgf::server::Main(argc, argv); }
