// Reproduces Table 6: records read for TPC-H Q6 after index filtering.
//
// Because dbgen emits rows in random order, every split contains every
// (discount, quantity, shipdate) combination: the Compact Index chooses all
// splits and reads the whole table. DGFIndex reorganized the data into
// Slices and reads only the query region (accurate + boundary).

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/tpch_gen.h"

namespace dgf::bench {
namespace {

void Run() {
  TpchBench bench = TpchBench::Create("table6");
  std::printf("Table 6 reproduction: TPC-H Q6 records read, %lld rows\n",
              static_cast<long long>(bench.config().num_rows));
  query::Query q6 = workload::MakeQ6(1994, 0.06, 24);
  std::printf("query: %s\n", q6.ToString().c_str());

  TablePrinter table("Table 6: records read for TPC-H Q6",
                     {"access path", "records read"});
  auto scan = CheckOk(
      bench.MakeScanExecutor()->Execute(q6, query::AccessPath::kFullScan),
      "scan");
  table.AddRow({"Whole table", Count(scan.stats.records_read)});
  auto compact3 = CheckOk(bench.MakeCompactExecutor(true)->Execute(
                              q6, query::AccessPath::kCompactIndex),
                          "compact3");
  table.AddRow({"Compact-3", Count(compact3.stats.records_read)});
  auto compact2 = CheckOk(bench.MakeCompactExecutor(false)->Execute(
                              q6, query::AccessPath::kCompactIndex),
                          "compact2");
  table.AddRow({"Compact-2", Count(compact2.stats.records_read)});
  auto dgf = CheckOk(
      bench.MakeDgfExecutor()->Execute(q6, query::AccessPath::kDgfIndex),
      "dgf");
  table.AddRow({"DGFIndex", Count(dgf.stats.records_read)});
  table.AddRow({"Accurate", Count(scan.stats.records_matched)});
  table.Print();

  // Also confirm all paths compute the same Q6 answer.
  std::printf("\nQ6 result (sum(l_extendedprice*l_discount)):\n");
  std::printf("  scan    = %s\n", scan.rows[0][0].ToText().c_str());
  std::printf("  compact = %s\n", compact2.rows[0][0].ToText().c_str());
  std::printf("  dgf     = %s (dgf reads boundary only; inner from headers)\n",
              dgf.rows[0][0].ToText().c_str());
  std::printf(
      "\nPaper shape: Compact (2- and 3-dim) reads the entire table;\n"
      "DGFIndex reads slightly more than the accurate count.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
