// Reproduces Table 2: index size and construction time on the meter data.
//
// Rows: Compact-3D (RCFile), Compact-2D (RCFile), DGF-Large, DGF-Medium,
// DGF-Small. Construction time is the simulated cluster duration of the
// build job; size is the real on-disk/in-store footprint. Expected shape:
// the 3-dim Compact index is comparable to the base table itself; DGF
// indexes are orders of magnitude smaller and shrink as intervals grow;
// DGF construction costs more than Compact construction (full data
// reorganization through the shuffle).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"

namespace dgf::bench {
namespace {

void Run() {
  MeterBench bench = MeterBench::Create("table2", DefaultMeterOptions());
  const auto base_bytes =
      CheckOk(table::TableDataBytes(bench.dfs(), bench.meter()), "base bytes");
  std::printf("Table 2 reproduction: %lld rows, base table %s (TextFile)\n",
              static_cast<long long>(bench.config().TotalRows()),
              HumanBytes(base_bytes).c_str());

  TablePrinter table(
      "Table 2: index size and construction time",
      {"index", "base format", "dims", "size", "size/base",
       "construction (sim s)"});

  {
    exec::JobResult build;
    auto* compact3 = bench.Compact3(&build);
    const uint64_t size = CheckOk(compact3->IndexSizeBytes(), "size");
    table.AddRow({"Compact", "RCFile", "3", HumanBytes(size),
                  StringPrintf("%.3f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  {
    exec::JobResult build;
    auto* compact2 = bench.Compact(&build);
    const uint64_t size = CheckOk(compact2->IndexSizeBytes(), "size");
    table.AddRow({"Compact", "RCFile", "2", HumanBytes(size),
                  StringPrintf("%.3f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                          IntervalClass::kSmall}) {
    exec::JobResult build;
    auto* dgf = bench.Dgf(c, &build);
    const uint64_t size = CheckOk(dgf->IndexSizeBytes(), "size");
    const uint64_t gfus = CheckOk(dgf->NumGfus(), "gfus");
    table.AddRow({StringPrintf("DGF-%s (%s GFUs)", IntervalClassName(c),
                               Count(gfus).c_str()),
                  "TextFile", "3", HumanBytes(size),
                  StringPrintf("%.5f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: Compact-3D ~ base-table sized; DGF indexes are MBs;\n"
      "finer intervals -> more GFUs -> larger DGF index; DGF construction\n"
      "slower than Compact (reorganization shuffles all data).\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
