// Reproduces Table 2: index size and construction time on the meter data.
//
// Rows: Compact-3D (RCFile), Compact-2D (RCFile), DGF-Large, DGF-Medium,
// DGF-Small. Construction time is the simulated cluster duration of the
// build job; size is the real on-disk/in-store footprint. Expected shape:
// the 3-dim Compact index is comparable to the base table itself; DGF
// indexes are orders of magnitude smaller and shrink as intervals grow;
// DGF construction costs more than Compact construction (full data
// reorganization through the shuffle).

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "kv/mem_kv.h"

namespace dgf::bench {
namespace {

void RunParallelBuild(MeterBench& bench);

void Run() {
  MeterBench bench = MeterBench::Create("table2", DefaultMeterOptions());
  const auto base_bytes =
      CheckOk(table::TableDataBytes(bench.dfs(), bench.meter()), "base bytes");
  std::printf("Table 2 reproduction: %lld rows, base table %s (TextFile)\n",
              static_cast<long long>(bench.config().TotalRows()),
              HumanBytes(base_bytes).c_str());

  TablePrinter table(
      "Table 2: index size and construction time",
      {"index", "base format", "dims", "size", "size/base",
       "construction (sim s)"});

  {
    exec::JobResult build;
    auto* compact3 = bench.Compact3(&build);
    const uint64_t size = CheckOk(compact3->IndexSizeBytes(), "size");
    table.AddRow({"Compact", "RCFile", "3", HumanBytes(size),
                  StringPrintf("%.3f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  {
    exec::JobResult build;
    auto* compact2 = bench.Compact(&build);
    const uint64_t size = CheckOk(compact2->IndexSizeBytes(), "size");
    table.AddRow({"Compact", "RCFile", "2", HumanBytes(size),
                  StringPrintf("%.3f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                          IntervalClass::kSmall}) {
    exec::JobResult build;
    auto* dgf = bench.Dgf(c, &build);
    const uint64_t size = CheckOk(dgf->IndexSizeBytes(), "size");
    const uint64_t gfus = CheckOk(dgf->NumGfus(), "gfus");
    table.AddRow({StringPrintf("DGF-%s (%s GFUs)", IntervalClassName(c),
                               Count(gfus).c_str()),
                  "TextFile", "3", HumanBytes(size),
                  StringPrintf("%.5f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: Compact-3D ~ base-table sized; DGF indexes are MBs;\n"
      "finer intervals -> more GFUs -> larger DGF index; DGF construction\n"
      "slower than Compact (reorganization shuffles all data).\n");

  RunParallelBuild(bench);
}

/// Parallel build axis: the same DGF-Large index built from scratch with
/// every --build-threads value (DGF_BENCH_BUILD_THREADS, default "1,2,4,8").
/// "wall s" is the measured end-to-end build on this machine; "projected s"
/// replays the serial run's per-task seconds through the makespan simulator
/// with N slots — the honest multi-core projection when the host has fewer
/// cores than the thread axis. Each run also reports the per-stage wall
/// breakdown (shard / merge / slice_write / bounds / publish) so the serial
/// fraction bounding the speedup is visible. Results also land in
/// BENCH_build.json (DGF_BENCH_BUILD_JSON) for trajectory tracking.
void RunParallelBuild(MeterBench& bench) {
  const std::vector<int> thread_axis =
      EnvIntList("DGF_BENCH_BUILD_THREADS", "1,2,4,8");
  const auto rows = static_cast<double>(bench.config().TotalRows());
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());

  TablePrinter table("Table 2b: parallel DGF-Large build (--build-threads)",
                     {"build threads", "wall s", "rows/s", "wall speedup",
                      "projected s", "projected speedup"});
  std::vector<std::string> stage_lines;
  std::vector<double> serial_tasks;
  double serial_wall = 0, serial_projected = 0;
  int variant = 0;
  for (const int threads : thread_axis) {
    core::DgfBuilder::Options options;
    const int64_t interval = std::max<int64_t>(
        1, bench.config().num_users / IntervalCount(IntervalClass::kLarge));
    options.dims = {
        {"userId", table::DataType::kInt64, 0, static_cast<double>(interval)},
        {"regionId", table::DataType::kInt64, 0, 1},
        {"time", table::DataType::kDate,
         static_cast<double>(bench.config().start_day), 1}};
    options.precompute = {"sum(powerConsumed)", "count(*)"};
    options.data_dir =
        StringPrintf("/warehouse/meterdata_dgf_par%02d", variant++);
    options.job.cluster = bench.options().cluster;
    options.job.worker_threads = threads;
    options.build_threads = threads;
    // Small splits so the shard phase has enough tasks to spread.
    options.split_size = 1ULL << 20;
    auto store = std::make_shared<kv::MemKv>();
    exec::JobResult result;
    Stopwatch watch;
    auto index = CheckOk(core::DgfBuilder::Build(bench.dfs(), store,
                                                 bench.meter(), options,
                                                 &result),
                         "parallel build");
    const double wall = watch.ElapsedSeconds();
    if (serial_tasks.empty()) {
      serial_tasks = result.local_task_seconds;
      serial_wall = wall;
      serial_projected =
          exec::SimulateMakespan(serial_tasks, /*slots=*/1);
    }
    // Replay the SERIAL run's task set at N slots: same work, N-wide pool.
    const double projected =
        exec::SimulateMakespan(serial_tasks, std::max(1, threads));
    table.AddRow({StringPrintf("%d", threads), Seconds(wall),
                  Count(static_cast<uint64_t>(rows / wall)),
                  StringPrintf("%.2fx", serial_wall / wall),
                  Seconds(projected),
                  StringPrintf("%.2fx", serial_projected / projected)});
    std::string stage_line = StringPrintf("  threads=%d:", threads);
    for (const auto& [stage, seconds] : result.stage_seconds.Sorted()) {
      stage_line += StringPrintf(" %s=%.3fs", stage.c_str(), seconds);
    }
    stage_lines.push_back(stage_line);
    AppendBenchJson(
        "DGF_BENCH_BUILD_JSON", "BENCH_build.json",
        StringPrintf("{\"bench\": \"table2_index_build\", \"threads\": %d, "
                     "\"rows\": %.0f, \"wall_s\": %.6f, \"rows_per_s\": %.0f, "
                     "\"wall_speedup\": %.3f, \"projected_s\": %.6f, "
                     "\"projected_speedup\": %.3f, \"host_cpus\": %u, "
                     "\"stages\": %s}",
                     threads, rows, wall, rows / wall, serial_wall / wall,
                     projected, serial_projected / projected, host_cpus,
                     result.stage_seconds.ToJson().c_str()));
  }
  table.Print();
  std::printf("\nPer-stage wall breakdown (host has %u CPU%s):\n", host_cpus,
              host_cpus == 1 ? "" : "s");
  for (const std::string& line : stage_lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf(
      "\nParallel builds are byte-identical to the serial one (see\n"
      "dgf_difftest --build-sweep); the projected column replays measured\n"
      "per-task seconds on an N-slot pool.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
