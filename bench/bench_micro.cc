// Micro-benchmarks (google-benchmark) of the hot primitives under the
// DGFIndex implementation: key encoding, cell standardization, KV store
// operations, B-tree inserts/scans, the makespan simulator, and the
// read-path primitives (cold/warm index lookup, batched multi-get,
// coalesced slice scans). These are the constants behind the macro benches'
// cost model.
//
// Set DGF_BENCH_JSON=<path> to additionally write the google-benchmark JSON
// report (per-case ns/op plus the kv_gets / cache_hit_rate / preads /
// records counters) for machine consumption.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/encoding.h"
#include "common/random.h"
#include "dgf/dgf_index.h"
#include "dgf/dgf_input_format.h"
#include "dgf/gfu.h"
#include "dgf/splitting_policy.h"
#include "exec/cluster.h"
#include "hadoopdb/btree.h"
#include "kv/lsm_kv.h"
#include "kv/mem_kv.h"
#include "query/predicate.h"
#include "table/schema.h"
#include "table/value.h"

namespace dgf {
namespace {

void BM_GfuKeyEncode(benchmark::State& state) {
  core::GfuKey key{{123, 7, 15704}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encode());
  }
}
BENCHMARK(BM_GfuKeyEncode);

void BM_GfuKeyDecode(benchmark::State& state) {
  const std::string encoded = core::GfuKey{{123, 7, 15704}}.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GfuKey::Decode(encoded, 3));
  }
}
BENCHMARK(BM_GfuKeyDecode);

void BM_CellStandardization(benchmark::State& state) {
  table::Schema schema({{"userId", table::DataType::kInt64},
                        {"regionId", table::DataType::kInt64},
                        {"time", table::DataType::kDate}});
  auto policy = core::SplittingPolicy::Create(
      {{"userId", table::DataType::kInt64, 0, 1400},
       {"regionId", table::DataType::kInt64, 0, 1},
       {"time", table::DataType::kDate, 15675, 1}},
      schema);
  Random rng(1);
  const auto value = table::Value::Int64(rng.UniformRange(0, 14000000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->CellOf(0, value));
  }
}
BENCHMARK(BM_CellStandardization);

void BM_MemKvPut(benchmark::State& state) {
  kv::MemKv store;
  Random rng(2);
  std::string value(64, 'v');
  int64_t i = 0;
  for (auto _ : state) {
    std::string key;
    PutOrderedInt64(&key, i++);
    benchmark::DoNotOptimize(store.Put(key, value));
  }
}
BENCHMARK(BM_MemKvPut);

void BM_MemKvGet(benchmark::State& state) {
  kv::MemKv store;
  for (int64_t i = 0; i < 10000; ++i) {
    std::string key;
    PutOrderedInt64(&key, i);
    (void)store.Put(key, "value");
  }
  Random rng(3);
  for (auto _ : state) {
    std::string key;
    PutOrderedInt64(&key, rng.UniformRange(0, 9999));
    benchmark::DoNotOptimize(store.Get(key));
  }
}
BENCHMARK(BM_MemKvGet);

void BM_BTreeInsert(benchmark::State& state) {
  hadoopdb::BTree tree;
  Random rng(4);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key;
    PutOrderedInt64(&key, static_cast<int64_t>(rng.Next() % 1000000));
    tree.Insert(key, i++);
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeRangeScan(benchmark::State& state) {
  hadoopdb::BTree tree;
  for (int64_t i = 0; i < 100000; ++i) {
    std::string key;
    PutOrderedInt64(&key, i);
    tree.Insert(key, static_cast<uint64_t>(i));
  }
  std::string lo, hi;
  PutOrderedInt64(&lo, 40000);
  PutOrderedInt64(&hi, 40000 + state.range(0));
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = tree.Range(lo, hi); it.Valid(); it.Next()) sum += it.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

void BM_SimulateMakespan(benchmark::State& state) {
  Random rng(5);
  std::vector<double> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    tasks.push_back(rng.UniformDouble(1.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::SimulateMakespan(tasks, 140));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateMakespan)->Arg(1000)->Arg(100000);

void BM_RowTextRoundTrip(benchmark::State& state) {
  table::Schema schema({{"userId", table::DataType::kInt64},
                        {"regionId", table::DataType::kInt64},
                        {"time", table::DataType::kDate},
                        {"powerConsumed", table::DataType::kDouble}});
  table::Row row = {table::Value::Int64(12345), table::Value::Int64(7),
                    table::Value::Date(15704), table::Value::Double(123.456)};
  for (auto _ : state) {
    const std::string line = table::FormatRowText(row);
    benchmark::DoNotOptimize(table::ParseRowText(line, schema));
  }
}
BENCHMARK(BM_RowTextRoundTrip);

// ---------- Read-path primitives ----------

// One small shared meter world for the read-path cases; building it once
// keeps these micro cases fast while still going through the real index.
bench::MeterBench& Meter() {
  static bench::MeterBench instance = [] {
    bench::MeterBench::Options options;
    options.config.num_users = 2000;
    options.config.num_days = 10;
    options.config.readings_per_day = 4;
    options.config.extra_metrics = 0;
    return bench::MeterBench::Create("micro", std::move(options));
  }();
  return instance;
}

query::Predicate MeterBox(const workload::MeterConfig& config, int64_t u_lo,
                          int64_t u_hi, int64_t day_lo, int64_t day_hi,
                          int64_t r_lo = -1, int64_t r_hi = -1) {
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", table::Value::Int64(u_lo),
                                       true, table::Value::Int64(u_hi),
                                       false));
  pred.And(query::ColumnRange::Between(
      "time", table::Value::Date(config.start_day + day_lo), true,
      table::Value::Date(config.start_day + day_hi), false));
  if (r_lo >= 0) {
    pred.And(query::ColumnRange::Between("regionId", table::Value::Int64(r_lo),
                                         true, table::Value::Int64(r_hi),
                                         false));
  }
  return pred;
}

// Point-get-strategy box, cache invalidated every iteration: every cell is a
// KV fetch + GfuValue decode. kv_gets counts MultiGet batches, so O(1) per
// lookup instead of one per cell.
void BM_DgfLookupCold(benchmark::State& state) {
  auto& meter = Meter();
  core::DgfIndex* index = meter.Dgf(bench::IntervalClass::kLarge);
  const query::Predicate pred = MeterBox(meter.config(), 200, 600, 2, 7, 1, 6);
  uint64_t kv_gets = 0;
  uint64_t iters = 0;
  for (auto _ : state) {
    index->InvalidateCache();
    auto lookup = bench::CheckOk(index->Lookup(pred, true), "cold lookup");
    kv_gets += lookup.kv_gets;
    ++iters;
    benchmark::DoNotOptimize(lookup);
  }
  state.counters["kv_gets"] =
      static_cast<double>(kv_gets) / static_cast<double>(iters);
  state.counters["cache_hit_rate"] = 0.0;
}
BENCHMARK(BM_DgfLookupCold);

// Same box with a warm decoded-GFU cache: the acceptance bar is >= 5x
// faster than BM_DgfLookupCold.
void BM_DgfLookupWarm(benchmark::State& state) {
  auto& meter = Meter();
  core::DgfIndex* index = meter.Dgf(bench::IntervalClass::kLarge);
  const query::Predicate pred = MeterBox(meter.config(), 200, 600, 2, 7, 1, 6);
  bench::CheckOk(index->Lookup(pred, true), "warmup lookup");
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t kv_gets = 0;
  uint64_t iters = 0;
  for (auto _ : state) {
    auto lookup = bench::CheckOk(index->Lookup(pred, true), "warm lookup");
    hits += lookup.cache_hits;
    misses += lookup.cache_misses;
    kv_gets += lookup.kv_gets;
    ++iters;
    benchmark::DoNotOptimize(lookup);
  }
  state.counters["kv_gets"] =
      static_cast<double>(kv_gets) / static_cast<double>(iters);
  state.counters["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
}
BENCHMARK(BM_DgfLookupWarm);

constexpr int kLsmBatch = 256;

std::unique_ptr<kv::LsmKv> MakeBenchLsm(const std::string& dir) {
  kv::LsmKv::Options options;
  options.dfs = Meter().dfs();
  options.dir = dir;
  options.memtable_flush_bytes = 16 * 1024;  // several runs
  auto store = bench::CheckOk(kv::LsmKv::Open(options), "open lsm");
  std::string value(64, 'v');
  for (int64_t i = 0; i < 5000; ++i) {
    std::string key;
    PutOrderedInt64(&key, i);
    bench::CheckOk(store->Put(key, value), "lsm put");
  }
  return store;
}

std::vector<std::string> LsmProbeKeys(uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> keys;
  keys.reserve(kLsmBatch);
  for (int i = 0; i < kLsmBatch; ++i) {
    std::string key;
    PutOrderedInt64(&key, rng.UniformRange(0, 4999));
    keys.push_back(std::move(key));
  }
  return keys;
}

// Baseline for BM_LsmMultiGet: the same batch as one Get per key.
void BM_LsmGetSequential(benchmark::State& state) {
  auto store = MakeBenchLsm("/bench_kv_seq");
  const auto keys = LsmProbeKeys(6);
  for (auto _ : state) {
    for (const auto& key : keys) {
      benchmark::DoNotOptimize(store->Get(key));
    }
  }
  state.SetItemsProcessed(state.iterations() * kLsmBatch);
  state.counters["kv_gets"] = static_cast<double>(kLsmBatch);
}
BENCHMARK(BM_LsmGetSequential);

// One MultiGet batch: sorted probe order shares index probes and record
// parses across the run files.
void BM_LsmMultiGet(benchmark::State& state) {
  auto store = MakeBenchLsm("/bench_kv_mget");
  const auto keys = LsmProbeKeys(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->MultiGet(keys));
  }
  state.SetItemsProcessed(state.iterations() * kLsmBatch);
  state.counters["kv_gets"] = 1.0;
}
BENCHMARK(BM_LsmMultiGet);

// Boundary slices of a fig08-style unaligned box, read one reader per slice
// (the pre-coalescing read path).
void BM_SliceScanPerSlice(benchmark::State& state) {
  auto& meter = Meter();
  core::DgfIndex* index = meter.Dgf(bench::IntervalClass::kLarge);
  const query::Predicate pred = MeterBox(meter.config(), 55, 1333, 1, 8);
  auto lookup = bench::CheckOk(index->Lookup(pred, true), "slice lookup");
  const table::Schema schema = meter.meter().schema;
  uint64_t records = 0;
  uint64_t preads = 0;
  for (auto _ : state) {
    const uint64_t preads_before = meter.dfs()->TotalPreadCalls();
    records = 0;
    for (const auto& slice : lookup.slices) {
      auto reader = bench::CheckOk(
          core::OpenSliceReader(meter.dfs(), slice, schema), "slice reader");
      table::Row row;
      while (bench::CheckOk(reader->Next(&row), "slice next")) ++records;
    }
    preads = meter.dfs()->TotalPreadCalls() - preads_before;
  }
  state.counters["preads"] = static_cast<double>(preads);
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_SliceScanPerSlice);

// The same slices coalesced into merged ranges and served by the merged
// reader: measurably fewer Preads, identical record count.
void BM_SliceScanCoalesced(benchmark::State& state) {
  auto& meter = Meter();
  core::DgfIndex* index = meter.Dgf(bench::IntervalClass::kLarge);
  const query::Predicate pred = MeterBox(meter.config(), 55, 1333, 1, 8);
  auto lookup = bench::CheckOk(index->Lookup(pred, true), "slice lookup");
  const table::Schema schema = meter.meter().schema;
  uint64_t records = 0;
  uint64_t preads = 0;
  for (auto _ : state) {
    const uint64_t preads_before = meter.dfs()->TotalPreadCalls();
    records = 0;
    auto planned = bench::CheckOk(
        core::PlanSlicedSplits(meter.dfs(), lookup.slices,
                               meter.options().block_size),
        "plan splits");
    for (const auto& sliced : planned) {
      auto reader = bench::CheckOk(
          core::SliceRecordReader::Open(meter.dfs(), sliced, schema),
          "merged reader");
      table::Row row;
      while (bench::CheckOk(reader->Next(&row), "merged next")) ++records;
    }
    preads = meter.dfs()->TotalPreadCalls() - preads_before;
  }
  state.counters["preads"] = static_cast<double>(preads);
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_SliceScanCoalesced);

// The coalesced scan under concurrent readers: every thread pins its own
// snapshot (epoch + guard + KV view), consults the shared decoded-GFU cache,
// and scans the same table. Real-time per-op latency across 1/2/4/8 threads
// shows what snapshot acquisition and the sharded cache cost under
// contention; record counts are per-thread and must not vary with thread
// count (each reader sees a full consistent view).
void BM_SliceScanCoalescedMT(benchmark::State& state) {
  auto& meter = Meter();
  core::DgfIndex* index = meter.Dgf(bench::IntervalClass::kLarge);
  const query::Predicate pred = MeterBox(meter.config(), 55, 1333, 1, 8);
  const table::Schema schema = meter.meter().schema;
  uint64_t records = 0;
  for (auto _ : state) {
    auto snap = bench::CheckOk(index->Pin(), "pin snapshot");
    auto lookup =
        bench::CheckOk(index->Lookup(snap, pred, true), "mt lookup");
    records = 0;
    auto planned = bench::CheckOk(
        core::PlanSlicedSplits(meter.dfs(), lookup.slices,
                               meter.options().block_size),
        "plan splits");
    for (const auto& sliced : planned) {
      auto reader = bench::CheckOk(
          core::SliceRecordReader::Open(meter.dfs(), sliced, schema),
          "merged reader");
      table::Row row;
      while (bench::CheckOk(reader->Next(&row), "merged next")) ++records;
    }
    benchmark::DoNotOptimize(records);
  }
  state.counters["records"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kAvgThreads);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_SliceScanCoalescedMT)->ThreadRange(1, 8)->UseRealTime();

}  // namespace
}  // namespace dgf

// BENCHMARK_MAIN plus optional JSON report: DGF_BENCH_JSON=<path> appends
// --benchmark_out so future runs have a perf trajectory to diff against.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  if (const char* json = std::getenv("DGF_BENCH_JSON");
      json != nullptr && *json != '\0') {
    out_flag = std::string("--benchmark_out=") + json;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
