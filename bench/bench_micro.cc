// Micro-benchmarks (google-benchmark) of the hot primitives under the
// DGFIndex implementation: key encoding, cell standardization, KV store
// operations, B-tree inserts/scans, and the makespan simulator. These are
// the constants behind the macro benches' cost model.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/random.h"
#include "dgf/gfu.h"
#include "dgf/splitting_policy.h"
#include "exec/cluster.h"
#include "hadoopdb/btree.h"
#include "kv/mem_kv.h"
#include "table/schema.h"
#include "table/value.h"

namespace dgf {
namespace {

void BM_GfuKeyEncode(benchmark::State& state) {
  core::GfuKey key{{123, 7, 15704}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encode());
  }
}
BENCHMARK(BM_GfuKeyEncode);

void BM_GfuKeyDecode(benchmark::State& state) {
  const std::string encoded = core::GfuKey{{123, 7, 15704}}.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GfuKey::Decode(encoded, 3));
  }
}
BENCHMARK(BM_GfuKeyDecode);

void BM_CellStandardization(benchmark::State& state) {
  table::Schema schema({{"userId", table::DataType::kInt64},
                        {"regionId", table::DataType::kInt64},
                        {"time", table::DataType::kDate}});
  auto policy = core::SplittingPolicy::Create(
      {{"userId", table::DataType::kInt64, 0, 1400},
       {"regionId", table::DataType::kInt64, 0, 1},
       {"time", table::DataType::kDate, 15675, 1}},
      schema);
  Random rng(1);
  const auto value = table::Value::Int64(rng.UniformRange(0, 14000000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->CellOf(0, value));
  }
}
BENCHMARK(BM_CellStandardization);

void BM_MemKvPut(benchmark::State& state) {
  kv::MemKv store;
  Random rng(2);
  std::string value(64, 'v');
  int64_t i = 0;
  for (auto _ : state) {
    std::string key;
    PutOrderedInt64(&key, i++);
    benchmark::DoNotOptimize(store.Put(key, value));
  }
}
BENCHMARK(BM_MemKvPut);

void BM_MemKvGet(benchmark::State& state) {
  kv::MemKv store;
  for (int64_t i = 0; i < 10000; ++i) {
    std::string key;
    PutOrderedInt64(&key, i);
    (void)store.Put(key, "value");
  }
  Random rng(3);
  for (auto _ : state) {
    std::string key;
    PutOrderedInt64(&key, rng.UniformRange(0, 9999));
    benchmark::DoNotOptimize(store.Get(key));
  }
}
BENCHMARK(BM_MemKvGet);

void BM_BTreeInsert(benchmark::State& state) {
  hadoopdb::BTree tree;
  Random rng(4);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key;
    PutOrderedInt64(&key, static_cast<int64_t>(rng.Next() % 1000000));
    tree.Insert(key, i++);
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeRangeScan(benchmark::State& state) {
  hadoopdb::BTree tree;
  for (int64_t i = 0; i < 100000; ++i) {
    std::string key;
    PutOrderedInt64(&key, i);
    tree.Insert(key, static_cast<uint64_t>(i));
  }
  std::string lo, hi;
  PutOrderedInt64(&lo, 40000);
  PutOrderedInt64(&hi, 40000 + state.range(0));
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = tree.Range(lo, hi); it.Valid(); it.Next()) sum += it.value();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

void BM_SimulateMakespan(benchmark::State& state) {
  Random rng(5);
  std::vector<double> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    tasks.push_back(rng.UniformDouble(1.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::SimulateMakespan(tasks, 140));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateMakespan)->Arg(1000)->Arg(100000);

void BM_RowTextRoundTrip(benchmark::State& state) {
  table::Schema schema({{"userId", table::DataType::kInt64},
                        {"regionId", table::DataType::kInt64},
                        {"time", table::DataType::kDate},
                        {"powerConsumed", table::DataType::kDouble}});
  table::Row row = {table::Value::Int64(12345), table::Value::Int64(7),
                    table::Value::Date(15704), table::Value::Double(123.456)};
  for (auto _ : state) {
    const std::string line = table::FormatRowText(row);
    benchmark::DoNotOptimize(table::ParseRowText(line, schema));
  }
}
BENCHMARK(BM_RowTextRoundTrip);

}  // namespace
}  // namespace dgf

BENCHMARK_MAIN();
