// Ablation A: what does per-GFU pre-aggregation buy?
//
// Runs the Listing-4 aggregation query through the same DGFIndex layout with
// headers (aggregation path: inner region answered from the KV store) and
// through an identical index built without precomputed UDFs (every GFU's
// Slices are scanned). Sweeps selectivity to show that pre-computation is
// what makes DGF's aggregation latency flat (Figures 8-10's key effect).

#include <cstdio>

#include "bench/bench_util.h"
#include "kv/mem_kv.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("abl_pre", DefaultMeterOptions());
  std::printf("Ablation: pre-aggregation on/off, %lld rows, medium intervals\n",
              static_cast<long long>(bench.config().TotalRows()));

  auto with_exec = bench.MakeDgfExecutor(IntervalClass::kMedium);

  // Twin index without precomputed headers.
  auto store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options options;
  const int64_t interval = std::max<int64_t>(
      1, bench.config().num_users / IntervalCount(IntervalClass::kMedium));
  options.dims = {
      {"userId", table::DataType::kInt64, 0, static_cast<double>(interval)},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(bench.config().start_day), 1}};
  options.data_dir = "/warehouse/meterdata_dgf_nopre";
  auto nopre = CheckOk(
      core::DgfBuilder::Build(bench.dfs(), store, bench.meter(), options),
      "build nopre");
  query::QueryExecutor::Options exec_options;
  exec_options.dfs = bench.dfs();
  exec_options.cluster = bench.options().cluster;
  exec_options.worker_threads = bench.options().worker_threads;
  query::QueryExecutor nopre_exec(exec_options);
  nopre_exec.RegisterTable(bench.meter());
  nopre_exec.RegisterDgfIndex(bench.meter().name, nopre.get());

  TablePrinter table("Ablation A: pre-aggregation on/off (simulated s)",
                     {"selectivity", "with headers", "records read",
                      "without headers", "records read "});
  for (Selectivity sel : {Selectivity::kPoint, Selectivity::kFivePercent,
                          Selectivity::kTwelvePercent}) {
    query::Query q = workload::MakeMeterQuery(
        bench.config(), MeterQueryKind::kAggregation, sel, 21);
    auto with_pre =
        CheckOk(with_exec->Execute(q, query::AccessPath::kDgfIndex), "with");
    auto without =
        CheckOk(nopre_exec.Execute(q, query::AccessPath::kDgfIndex), "without");
    table.AddRow({workload::SelectivityName(sel),
                  Seconds(with_pre.stats.total_seconds),
                  Count(with_pre.stats.records_read),
                  Seconds(without.stats.total_seconds),
                  Count(without.stats.records_read)});
  }
  table.Print();
  std::printf(
      "\nExpected: with headers, cost stays flat as selectivity grows (only\n"
      "the boundary is scanned); without, cost tracks the query volume.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
