// Reproduces Figure 3: DBMS-X (with / without index) vs HDFS write
// throughput.
//
// The paper measured bulk-loading meter data into a commercial RDBMS on
// high-end servers against appending to HDFS on commodity nodes. Here the
// RDBMS write path is LocalDb (heap insert + B-tree index maintenance) and
// the HDFS path is MiniDfs append. Expected shape: HDFS >> DBMS-X without
// index > DBMS-X with index.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "hadoopdb/local_db.h"
#include "server/query_service.h"
#include "table/text_format.h"

namespace dgf::bench {
namespace {

void RunGroupCommitAppend(const MeterBench::Options& world_options);

void Run() {
  MeterBench::Options options = DefaultMeterOptions();
  // Write-path bench: a single stream of rows, sized by the usual knobs.
  workload::MeterConfig config = options.config;
  std::printf("Figure 3 reproduction: write throughput, %lld rows\n",
              static_cast<long long>(config.TotalRows()));

  // Pre-render the rows once so serialization cost is excluded from none of
  // the paths unfairly (each path still serializes what it stores).
  std::vector<table::Row> rows;
  rows.reserve(static_cast<size_t>(config.TotalRows()));
  CheckOk(workload::ForEachMeterRow(config,
                                    [&](const table::Row& row) {
                                      rows.push_back(row);
                                      return Status::OK();
                                    }),
          "generate");
  uint64_t payload_bytes = 0;
  for (const auto& row : rows) {
    payload_bytes += table::FormatRowText(row).size() + 1;
  }

  TablePrinter table("Figure 3: write throughput (MB/s, higher is better)",
                     {"system", "seconds", "MB/s"});

  // --- HDFS append path ---
  {
    MeterBench bench = MeterBench::Create("fig03_hdfs", options);
    Stopwatch watch;
    auto writer = CheckOk(table::TextFileWriter::Create(
                              bench.dfs(), "/ingest/meter.txt",
                              workload::MeterSchema(config)),
                          "create dfs file");
    for (const auto& row : rows) CheckOk(writer->Append(row), "append");
    CheckOk(writer->Close(), "close");
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({"HDFS (MiniDfs append)", Seconds(seconds),
                  Seconds(static_cast<double>(payload_bytes) / 1e6 / seconds)});
  }

  // --- DBMS-X paths ---
  // A transactional RDBMS persists every row twice (write-ahead log + heap
  // page) and, in the indexed configuration, also maintains the B-tree
  // inline. Both effects are real code here, not modelled constants.
  for (const bool with_index : {false, true}) {
    MeterBench bench = MeterBench::Create(
        with_index ? "fig03_dbx_idx" : "fig03_dbx", options);
    auto db = CheckOk(hadoopdb::LocalDb::Create(
                          workload::MeterSchema(config),
                          {"userId", "regionId", "time"}),
                      "create db");
    auto heap = CheckOk(bench.dfs()->Create("/dbx/heap"), "heap file");
    auto wal = CheckOk(bench.dfs()->Create("/dbx/wal"), "wal file");
    Stopwatch watch;
    for (const auto& row : rows) {
      const std::string line = table::FormatRowText(row) + "\n";
      CheckOk(wal->Append(line), "wal append");
      CheckOk(heap->Append(line), "heap append");
      CheckOk(db->Insert(row, with_index), "insert");
    }
    CheckOk(heap->Close(), "heap close");
    CheckOk(wal->Close(), "wal close");
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({with_index ? "DBMS-X with index" : "DBMS-X without index",
                  Seconds(seconds),
                  Seconds(static_cast<double>(payload_bytes) / 1e6 / seconds)});
  }

  table.Print();
  std::printf(
      "\nPaper shape: HDFS sustains several times the throughput of DBMS-X;\n"
      "index maintenance makes the RDBMS strictly slower.\n");

  RunGroupCommitAppend(options);
}

/// Indexed ingest through the group-commit append pipeline: K concurrent
/// clients (DGF_BENCH_BUILD_THREADS, default "1,2,4,8") push row batches
/// into QueryService::Append against a live DGF index. Concurrent calls
/// coalesce into shared flushes — one staging table, one slice-file
/// extension, one atomic publish per flush — so "flushes" below is the
/// batching win. Results also land in BENCH_build.json.
void RunGroupCommitAppend(const MeterBench::Options& world_options) {
  const std::vector<int> client_axis =
      EnvIntList("DGF_BENCH_BUILD_THREADS", "1,2,4,8");
  MeterBench bench = MeterBench::Create("fig03_dgf_append", world_options);
  core::DgfIndex* index = bench.Dgf(IntervalClass::kLarge);

  server::QueryService::Options service_options;
  service_options.dfs = bench.dfs();
  service_options.max_concurrent = 1;
  service_options.query_worker_threads =
      static_cast<int>(EnvInt("DGF_BENCH_THREADS", 4));
  service_options.split_size = 1ULL << 20;
  server::QueryService service(std::move(service_options));
  service.RegisterTable(bench.meter());
  service.RegisterDgfIndex(bench.meter().name, index);

  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  TablePrinter table(
      "Figure 3b: indexed ingest, group-commit append pipeline",
      {"clients", "rows", "seconds", "rows/s", "MB/s", "calls", "flushes",
       "coalesce", "staging s", "reorg s"});

  // Each axis step ingests one fresh day of readings (distinct time range,
  // same volume) split into per-client call batches.
  workload::MeterConfig append_config = bench.config();
  append_config.num_days = 1;
  append_config.start_day =
      bench.config().start_day + bench.config().num_days;
  uint64_t last_flushes = 0, last_calls = 0;
  double last_staging_s = 0, last_reorg_s = 0;
  for (const int clients : client_axis) {
    std::vector<std::string> lines;
    CheckOk(workload::ForEachMeterRow(append_config,
                                      [&](const table::Row& row) {
                                        lines.push_back(
                                            table::FormatRowText(row));
                                        return Status::OK();
                                      }),
            "generate batch");
    append_config.start_day += 1;  // next step extends the grid again
    uint64_t payload = 0;
    for (const auto& line : lines) payload += line.size() + 1;
    // ~8 calls per client, issued concurrently.
    const size_t per_call = std::max<size_t>(
        1, lines.size() / (static_cast<size_t>(clients) * 8));
    std::vector<std::vector<std::string>> calls;
    for (size_t at = 0; at < lines.size(); at += per_call) {
      calls.emplace_back(
          lines.begin() + static_cast<ptrdiff_t>(at),
          lines.begin() +
              static_cast<ptrdiff_t>(std::min(at + per_call, lines.size())));
    }
    std::atomic<size_t> next_call{0};
    std::atomic<bool> failed{false};
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t call = next_call.fetch_add(1);
          if (call >= calls.size()) return;
          auto appended =
              service.Append(bench.meter().name, calls[call]);
          if (!appended.ok()) failed.store(true);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const double seconds = watch.ElapsedSeconds();
    CheckOk(failed.load() ? Status::IOError("append call failed")
                          : Status::OK(),
            "group-commit append");
    uint64_t flushes = 0, total_calls = 0;
    double staging_s = 0, reorg_s = 0;
    for (const auto& [name, value] : service.StatsSnapshot()) {
      if (name == "appends.flushes") flushes = static_cast<uint64_t>(value);
      if (name == "appends.batches") total_calls = static_cast<uint64_t>(value);
      if (name == "appends.staging_s") staging_s = value;
      if (name == "appends.reorg_s") reorg_s = value;
    }
    const uint64_t step_calls = total_calls - last_calls;
    const uint64_t step_flushes = flushes - last_flushes;
    const double step_staging = staging_s - last_staging_s;
    const double step_reorg = reorg_s - last_reorg_s;
    // Calls absorbed per flush: 1.0 means no batching; K clients ideally
    // approach K as every in-flight call coalesces into the open group.
    const double coalesce =
        static_cast<double>(step_calls) /
        static_cast<double>(std::max<uint64_t>(1, step_flushes));
    const double rows_per_s = static_cast<double>(lines.size()) / seconds;
    table.AddRow({StringPrintf("%d", clients), Count(lines.size()),
                  Seconds(seconds), Count(static_cast<uint64_t>(rows_per_s)),
                  Seconds(static_cast<double>(payload) / 1e6 / seconds),
                  Count(step_calls), Count(step_flushes),
                  StringPrintf("%.2fx", coalesce), Seconds(step_staging),
                  Seconds(step_reorg)});
    AppendBenchJson(
        "DGF_BENCH_BUILD_JSON", "BENCH_build.json",
        StringPrintf("{\"bench\": \"fig03_group_commit_append\", "
                     "\"clients\": %d, \"rows\": %zu, \"wall_s\": %.6f, "
                     "\"rows_per_s\": %.0f, \"mb_per_s\": %.3f, "
                     "\"calls\": %llu, \"flushes\": %llu, "
                     "\"coalesce\": %.3f, \"host_cpus\": %u, \"stages\": "
                     "{\"staging\": %.6f, \"reorg\": %.6f}}",
                     clients, lines.size(), seconds, rows_per_s,
                     static_cast<double>(payload) / 1e6 / seconds,
                     static_cast<unsigned long long>(step_calls),
                     static_cast<unsigned long long>(step_flushes), coalesce,
                     host_cpus, step_staging, step_reorg));
    last_flushes = flushes;
    last_calls = total_calls;
    last_staging_s = staging_s;
    last_reorg_s = reorg_s;
  }
  table.Print();
  std::printf(
      "\nConcurrent clients coalesce into shared flushes (calls > flushes);\n"
      "each flush extends the index by one slice file and one atomic\n"
      "publish, keeping indexed ingest near raw-append throughput.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
