// Reproduces Figure 3: DBMS-X (with / without index) vs HDFS write
// throughput.
//
// The paper measured bulk-loading meter data into a commercial RDBMS on
// high-end servers against appending to HDFS on commodity nodes. Here the
// RDBMS write path is LocalDb (heap insert + B-tree index maintenance) and
// the HDFS path is MiniDfs append. Expected shape: HDFS >> DBMS-X without
// index > DBMS-X with index.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "hadoopdb/local_db.h"
#include "table/text_format.h"

namespace dgf::bench {
namespace {

void Run() {
  MeterBench::Options options = DefaultMeterOptions();
  // Write-path bench: a single stream of rows, sized by the usual knobs.
  workload::MeterConfig config = options.config;
  std::printf("Figure 3 reproduction: write throughput, %lld rows\n",
              static_cast<long long>(config.TotalRows()));

  // Pre-render the rows once so serialization cost is excluded from none of
  // the paths unfairly (each path still serializes what it stores).
  std::vector<table::Row> rows;
  rows.reserve(static_cast<size_t>(config.TotalRows()));
  CheckOk(workload::ForEachMeterRow(config,
                                    [&](const table::Row& row) {
                                      rows.push_back(row);
                                      return Status::OK();
                                    }),
          "generate");
  uint64_t payload_bytes = 0;
  for (const auto& row : rows) {
    payload_bytes += table::FormatRowText(row).size() + 1;
  }

  TablePrinter table("Figure 3: write throughput (MB/s, higher is better)",
                     {"system", "seconds", "MB/s"});

  // --- HDFS append path ---
  {
    MeterBench bench = MeterBench::Create("fig03_hdfs", options);
    Stopwatch watch;
    auto writer = CheckOk(table::TextFileWriter::Create(
                              bench.dfs(), "/ingest/meter.txt",
                              workload::MeterSchema(config)),
                          "create dfs file");
    for (const auto& row : rows) CheckOk(writer->Append(row), "append");
    CheckOk(writer->Close(), "close");
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({"HDFS (MiniDfs append)", Seconds(seconds),
                  Seconds(static_cast<double>(payload_bytes) / 1e6 / seconds)});
  }

  // --- DBMS-X paths ---
  // A transactional RDBMS persists every row twice (write-ahead log + heap
  // page) and, in the indexed configuration, also maintains the B-tree
  // inline. Both effects are real code here, not modelled constants.
  for (const bool with_index : {false, true}) {
    MeterBench bench = MeterBench::Create(
        with_index ? "fig03_dbx_idx" : "fig03_dbx", options);
    auto db = CheckOk(hadoopdb::LocalDb::Create(
                          workload::MeterSchema(config),
                          {"userId", "regionId", "time"}),
                      "create db");
    auto heap = CheckOk(bench.dfs()->Create("/dbx/heap"), "heap file");
    auto wal = CheckOk(bench.dfs()->Create("/dbx/wal"), "wal file");
    Stopwatch watch;
    for (const auto& row : rows) {
      const std::string line = table::FormatRowText(row) + "\n";
      CheckOk(wal->Append(line), "wal append");
      CheckOk(heap->Append(line), "heap append");
      CheckOk(db->Insert(row, with_index), "insert");
    }
    CheckOk(heap->Close(), "heap close");
    CheckOk(wal->Close(), "wal close");
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({with_index ? "DBMS-X with index" : "DBMS-X without index",
                  Seconds(seconds),
                  Seconds(static_cast<double>(payload_bytes) / 1e6 / seconds)});
  }

  table.Print();
  std::printf(
      "\nPaper shape: HDFS sustains several times the throughput of DBMS-X;\n"
      "index maintenance makes the RDBMS strictly slower.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
