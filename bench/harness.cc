#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/string_util.h"
#include "kv/mem_kv.h"
#include "table/rc_format.h"

namespace dgf::bench {

void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", context, status.ToString().c_str());
    std::abort();
  }
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

std::vector<int> EnvIntList(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') value = fallback;
  std::vector<int> out;
  const char* p = value;
  while (*p != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(p, &end, 10);
    if (end == p) break;
    if (parsed > 0) out.push_back(static_cast<int>(parsed));
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

void AppendBenchJson(const char* env_name, const char* fallback_path,
                     const std::string& json_object) {
  const char* path = std::getenv(env_name);
  if (path == nullptr || *path == '\0') path = fallback_path;
  std::FILE* file = std::fopen(path, "a");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot append bench json to %s\n", path);
    return;
  }
  std::fprintf(file, "%s\n", json_object.c_str());
  std::fclose(file);
}

const char* IntervalClassName(IntervalClass c) {
  switch (c) {
    case IntervalClass::kLarge:
      return "large";
    case IntervalClass::kMedium:
      return "medium";
    case IntervalClass::kSmall:
      return "small";
  }
  return "?";
}

int64_t IntervalCount(IntervalClass c) {
  switch (c) {
    case IntervalClass::kLarge:
      return 100;
    case IntervalClass::kMedium:
      return 1000;
    case IntervalClass::kSmall:
      return 10000;
  }
  return 100;
}

MeterBench MeterBench::Create(const std::string& tag, Options options) {
  MeterBench bench;
  bench.options_ = options;
  bench.root_ = (std::filesystem::temp_directory_path() /
                 ("dgf_bench_" + tag + "_" + std::to_string(::getpid())))
                    .string();
  std::filesystem::remove_all(bench.root_);
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = bench.root_;
  dfs_options.block_size = options.block_size;
  bench.dfs_ = CheckOk(fs::MiniDfs::Open(dfs_options), "open dfs");

  bench.meter_ = CheckOk(
      workload::GenerateMeterTable(bench.dfs_, "/warehouse/meterdata",
                                   options.config, table::FileFormat::kText,
                                   /*max_file_bytes=*/options.block_size * 4),
      "generate meter data");
  bench.users_ = CheckOk(workload::GenerateUserInfoTable(
                             bench.dfs_, "/warehouse/userinfo", options.config),
                         "generate userinfo");

  // RCFile copy for the Compact Index baselines (the paper builds Compact
  // over RCFile because it yields the smaller index table and better scans).
  bench.meter_rc_ = bench.meter_;
  bench.meter_rc_.format = table::FileFormat::kRcFile;
  bench.meter_rc_.dir = "/warehouse/meterdata_rc";
  {
    table::TableWriter::Options wopts;
    wopts.max_file_bytes = options.block_size * 4;
    auto writer = CheckOk(
        table::TableWriter::Create(bench.dfs_, bench.meter_rc_, wopts),
        "rc writer");
    CheckOk(workload::ForEachMeterRow(
                options.config,
                [&](const table::Row& row) { return writer->Append(row); }),
            "rc copy");
    CheckOk(writer->Close(), "rc close");
  }
  return bench;
}

MeterBench::~MeterBench() {
  for (auto& handle : dgf_) handle = {};
  compact_.reset();
  compact3_.reset();
  hadoopdb_.reset();
  dfs_.reset();
  if (!root_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
}

core::DgfIndex* MeterBench::Dgf(IntervalClass c, exec::JobResult* build_stats) {
  auto& handle = dgf_[static_cast<int>(c)];
  if (handle.index != nullptr) return handle.index.get();
  handle.store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options options;
  const int64_t interval =
      std::max<int64_t>(1, options_.config.num_users / IntervalCount(c));
  options.dims = {
      {"userId", table::DataType::kInt64, 0, static_cast<double>(interval)},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(options_.config.start_day), 1}};
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir =
      std::string("/warehouse/meterdata_dgf_") + IntervalClassName(c);
  options.job.cluster = options_.cluster;
  options.job.worker_threads = options_.worker_threads;
  exec::JobResult result;
  handle.index = CheckOk(
      core::DgfBuilder::Build(dfs_, handle.store, meter_, options, &result),
      "build dgf");
  if (build_stats != nullptr) *build_stats = result;
  return handle.index.get();
}

index::CompactIndex* MeterBench::Compact(exec::JobResult* build_stats) {
  if (compact_ == nullptr) {
    index::CompactIndex::BuildOptions options;
    options.dims = {"regionId", "time"};
    options.index_dir = "/warehouse/meterdata_ci2";
    options.index_format = table::FileFormat::kRcFile;
    options.job.cluster = options_.cluster;
    options.job.worker_threads = options_.worker_threads;
    exec::JobResult result;
    compact_ = CheckOk(
        index::CompactIndex::Build(dfs_, meter_rc_, options, &result),
        "build compact-2d");
    if (build_stats != nullptr) *build_stats = result;
  }
  return compact_.get();
}

index::CompactIndex* MeterBench::Compact3(exec::JobResult* build_stats) {
  if (compact3_ == nullptr) {
    index::CompactIndex::BuildOptions options;
    options.dims = {"userId", "regionId", "time"};
    options.index_dir = "/warehouse/meterdata_ci3";
    options.index_format = table::FileFormat::kRcFile;
    options.job.cluster = options_.cluster;
    options.job.worker_threads = options_.worker_threads;
    exec::JobResult result;
    compact3_ = CheckOk(
        index::CompactIndex::Build(dfs_, meter_rc_, options, &result),
        "build compact-3d");
    if (build_stats != nullptr) *build_stats = result;
  }
  return compact3_.get();
}

hadoopdb::HadoopDb* MeterBench::HadoopDb() {
  if (hadoopdb_ == nullptr) {
    hadoopdb::HadoopDbConfig config;
    config.cluster = options_.cluster;
    config.num_nodes = options_.cluster.num_nodes;
    config.chunks_per_node =
        static_cast<int>(EnvInt("DGF_BENCH_CHUNKS_PER_NODE", 2));
    hadoopdb_ = CheckOk(hadoopdb::HadoopDb::Load(dfs_, meter_, config),
                        "load hadoopdb");
    CheckOk(hadoopdb_->ReplicateArchive(dfs_, users_), "replicate archive");
  }
  return hadoopdb_.get();
}

std::unique_ptr<query::QueryExecutor> MeterBench::MakeDgfExecutor(
    IntervalClass c) {
  query::QueryExecutor::Options options;
  options.dfs = dfs_;
  options.cluster = options_.cluster;
  options.worker_threads = options_.worker_threads;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  executor->RegisterTable(meter_);
  executor->RegisterTable(users_);
  executor->RegisterDgfIndex(meter_.name, Dgf(c));
  return executor;
}

std::unique_ptr<query::QueryExecutor> MeterBench::MakeCompactExecutor(
    bool three_dim) {
  query::QueryExecutor::Options options;
  options.dfs = dfs_;
  options.cluster = options_.cluster;
  options.worker_threads = options_.worker_threads;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  // The Compact baseline's data is the RCFile copy; expose it under the
  // canonical table name so identical Query objects run on every path.
  table::TableDesc rc = meter_rc_;
  rc.name = meter_.name;
  executor->RegisterTable(rc);
  executor->RegisterTable(users_);
  executor->RegisterCompactIndex(meter_.name,
                                 three_dim ? Compact3() : Compact());
  return executor;
}

std::unique_ptr<query::QueryExecutor> MeterBench::MakeScanExecutor() {
  query::QueryExecutor::Options options;
  options.dfs = dfs_;
  options.cluster = options_.cluster;
  options.worker_threads = options_.worker_threads;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  executor->RegisterTable(meter_);
  executor->RegisterTable(users_);
  return executor;
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

TpchBench TpchBench::Create(const std::string& tag) {
  TpchBench bench;
  bench.config_.num_rows = EnvInt("DGF_BENCH_LINEITEM_ROWS", 150000);
  bench.config_.seed = static_cast<uint64_t>(EnvInt("DGF_BENCH_SEED", 2014));
  bench.worker_threads_ = static_cast<int>(EnvInt("DGF_BENCH_THREADS", 4));
  bench.cluster_.data_scale =
      static_cast<double>(EnvInt("DGF_BENCH_TPCH_TARGET_ROWS", 4100000000LL)) /
      static_cast<double>(bench.config_.num_rows);
  bench.root_ = (std::filesystem::temp_directory_path() /
                 ("dgf_bench_" + tag + "_" + std::to_string(::getpid())))
                    .string();
  std::filesystem::remove_all(bench.root_);
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = bench.root_;
  dfs_options.block_size =
      static_cast<uint64_t>(EnvInt("DGF_BENCH_BLOCK_BYTES", 1 << 20));
  bench.dfs_ = CheckOk(fs::MiniDfs::Open(dfs_options), "open dfs");

  bench.lineitem_ = CheckOk(
      workload::GenerateLineitemTable(bench.dfs_, "/warehouse/lineitem",
                                      bench.config_, table::FileFormat::kText,
                                      dfs_options.block_size * 4),
      "generate lineitem");
  bench.lineitem_rc_ = bench.lineitem_;
  bench.lineitem_rc_.format = table::FileFormat::kRcFile;
  bench.lineitem_rc_.dir = "/warehouse/lineitem_rc";
  {
    table::TableWriter::Options wopts;
    wopts.max_file_bytes = dfs_options.block_size * 4;
    auto writer = CheckOk(
        table::TableWriter::Create(bench.dfs_, bench.lineitem_rc_, wopts),
        "rc writer");
    CheckOk(workload::ForEachLineitemRow(
                bench.config_,
                [&](const table::Row& row) { return writer->Append(row); }),
            "rc copy");
    CheckOk(writer->Close(), "rc close");
  }
  return bench;
}

TpchBench::~TpchBench() {
  dgf_.reset();
  dgf_store_.reset();
  compact2_.reset();
  compact3_.reset();
  dfs_.reset();
  if (!root_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
}

core::DgfIndex* TpchBench::Dgf(exec::JobResult* build_stats) {
  if (dgf_ == nullptr) {
    dgf_store_ = std::make_shared<kv::MemKv>();
    core::DgfBuilder::Options options;
    options.dims = {
        {"l_discount", table::DataType::kDouble, 0.0, 0.01},
        {"l_quantity", table::DataType::kDouble, 0.0, 1.0},
        {"l_shipdate", table::DataType::kDate,
         static_cast<double>(table::DaysFromCivil(1992, 1, 1)), 100}};
    options.precompute = {"sum(l_extendedprice*l_discount)"};
    options.data_dir = "/warehouse/lineitem_dgf";
    options.job.cluster = cluster_;
    options.job.worker_threads = worker_threads_;
    exec::JobResult result;
    dgf_ = CheckOk(core::DgfBuilder::Build(dfs_, dgf_store_, lineitem_,
                                           options, &result),
                   "build tpch dgf");
    if (build_stats != nullptr) *build_stats = result;
  }
  return dgf_.get();
}

index::CompactIndex* TpchBench::Compact(bool three_dim,
                                        exec::JobResult* build_stats) {
  auto& slot = three_dim ? compact3_ : compact2_;
  if (slot == nullptr) {
    index::CompactIndex::BuildOptions options;
    options.dims = {"l_discount", "l_quantity"};
    if (three_dim) options.dims.push_back("l_shipdate");
    options.index_dir = three_dim ? "/warehouse/lineitem_ci3"
                                  : "/warehouse/lineitem_ci2";
    options.index_format = table::FileFormat::kRcFile;
    options.job.cluster = cluster_;
    options.job.worker_threads = worker_threads_;
    exec::JobResult result;
    slot = CheckOk(
        index::CompactIndex::Build(dfs_, lineitem_rc_, options, &result),
        "build tpch compact");
    if (build_stats != nullptr) *build_stats = result;
  }
  return slot.get();
}

std::unique_ptr<query::QueryExecutor> TpchBench::MakeDgfExecutor() {
  query::QueryExecutor::Options options;
  options.dfs = dfs_;
  options.cluster = cluster_;
  options.worker_threads = worker_threads_;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  executor->RegisterTable(lineitem_);
  executor->RegisterDgfIndex(lineitem_.name, Dgf());
  return executor;
}

std::unique_ptr<query::QueryExecutor> TpchBench::MakeCompactExecutor(
    bool three_dim) {
  query::QueryExecutor::Options options;
  options.dfs = dfs_;
  options.cluster = cluster_;
  options.worker_threads = worker_threads_;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  table::TableDesc rc = lineitem_rc_;
  rc.name = lineitem_.name;
  executor->RegisterTable(rc);
  executor->RegisterCompactIndex(lineitem_.name, Compact(three_dim));
  return executor;
}

std::unique_ptr<query::QueryExecutor> TpchBench::MakeScanExecutor() {
  query::QueryExecutor::Options options;
  options.dfs = dfs_;
  options.cluster = cluster_;
  options.worker_threads = worker_threads_;
  auto executor = std::make_unique<query::QueryExecutor>(options);
  executor->RegisterTable(lineitem_);
  return executor;
}

MeterBench::Options DefaultMeterOptions() {
  MeterBench::Options options;
  options.config.num_users = EnvInt("DGF_BENCH_USERS", 8000);
  options.config.num_days = static_cast<int>(EnvInt("DGF_BENCH_DAYS", 15));
  options.config.readings_per_day =
      static_cast<int>(EnvInt("DGF_BENCH_READINGS", 1));
  options.config.num_regions = 11;
  options.config.extra_metrics = 13;
  options.config.seed = static_cast<uint64_t>(EnvInt("DGF_BENCH_SEED", 2014));
  options.block_size = static_cast<uint64_t>(
      EnvInt("DGF_BENCH_BLOCK_BYTES", 1 << 20));
  options.worker_threads = static_cast<int>(EnvInt("DGF_BENCH_THREADS", 4));
  // The cost model treats the generated table as a sample of the paper's
  // 11-billion-row month of meter data: scale per-byte/per-record costs so
  // simulated durations land in the paper's regime (Section 5.1 cluster).
  const double target_rows =
      static_cast<double>(EnvInt("DGF_BENCH_TARGET_ROWS", 11000000000LL));
  options.cluster.data_scale =
      target_rows / static_cast<double>(options.config.TotalRows());
  return options;
}

std::string Seconds(double s) { return StringPrintf("%.2f", s); }

std::string Count(uint64_t n) { return WithCommas(static_cast<int64_t>(n)); }

}  // namespace dgf::bench
