// Reproduces Figure 18: TPC-H Q6 query cost with DGFIndex vs Compact-2D vs
// Compact-3D (plus the ScanTable reference the paper quotes as 632 s).
// On randomly-ordered lineitem data the Compact indexes filter nothing and
// end up slower than the plain scan; DGFIndex is ~25x faster.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/tpch_gen.h"

namespace dgf::bench {
namespace {

void Run() {
  TpchBench bench = TpchBench::Create("fig18");
  std::printf("Figure 18 reproduction: TPC-H Q6, %lld rows\n",
              static_cast<long long>(bench.config().num_rows));
  query::Query q6 = workload::MakeQ6(1994, 0.06, 24);

  TablePrinter table("Figure 18: TPC-H Q6 query cost (simulated s)",
                     {"system", "read index+other", "read data+process",
                      "total", "records read"});
  auto dgf = CheckOk(
      bench.MakeDgfExecutor()->Execute(q6, query::AccessPath::kDgfIndex),
      "dgf");
  table.AddRow({"DGFIndex", Seconds(dgf.stats.index_seconds),
                Seconds(dgf.stats.data_seconds),
                Seconds(dgf.stats.total_seconds),
                Count(dgf.stats.records_read)});
  auto compact2 = CheckOk(bench.MakeCompactExecutor(false)->Execute(
                              q6, query::AccessPath::kCompactIndex),
                          "compact2");
  table.AddRow({"Compact-2D", Seconds(compact2.stats.index_seconds),
                Seconds(compact2.stats.data_seconds),
                Seconds(compact2.stats.total_seconds),
                Count(compact2.stats.records_read)});
  auto compact3 = CheckOk(bench.MakeCompactExecutor(true)->Execute(
                              q6, query::AccessPath::kCompactIndex),
                          "compact3");
  table.AddRow({"Compact-3D", Seconds(compact3.stats.index_seconds),
                Seconds(compact3.stats.data_seconds),
                Seconds(compact3.stats.total_seconds),
                Count(compact3.stats.records_read)});
  auto scan = CheckOk(
      bench.MakeScanExecutor()->Execute(q6, query::AccessPath::kFullScan),
      "scan");
  table.AddRow({"ScanTable", Seconds(0.0), Seconds(scan.stats.data_seconds),
                Seconds(scan.stats.total_seconds),
                Count(scan.stats.records_read)});
  table.Print();
  std::printf(
      "\nPaper shape: both Compact variants >= ScanTable (no splits\n"
      "filtered, index table adds pure overhead; the 3-dim one is worst);\n"
      "DGFIndex ~25x faster than Compact.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
