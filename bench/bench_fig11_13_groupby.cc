// Reproduces Figures 11-13: Group By query time (Listing 5) at point, 5%,
// 12% selectivity. No pre-aggregation applies here: DGFIndex still wins by
// reading only the query region's Slices and skipping within splits, but its
// index-read time grows as intervals shrink (more GFU lookups) — the
// trade-off visible in the paper's figures.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("fig11_13", DefaultMeterOptions());
  std::printf("Figures 11-13 reproduction: group-by query, %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  auto scan_exec = bench.MakeScanExecutor();
  auto compact_exec = bench.MakeCompactExecutor();
  auto* hadoop = bench.HadoopDb();

  const Selectivity kSelectivities[] = {
      Selectivity::kPoint, Selectivity::kFivePercent,
      Selectivity::kTwelvePercent};
  const char* kFigure[] = {"Figure 11 (point)", "Figure 12 (5%)",
                           "Figure 13 (12%)"};

  for (int s = 0; s < 3; ++s) {
    query::Query q = workload::MakeMeterQuery(
        bench.config(), MeterQueryKind::kGroupBy, kSelectivities[s], 12);
    TablePrinter table(
        std::string(kFigure[s]) + ": group-by query cost (simulated s)",
        {"system", "read index+other", "read data+process", "total",
         "records read", "groups"});

    for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                            IntervalClass::kSmall}) {
      auto exec = bench.MakeDgfExecutor(c);
      auto dgf = CheckOk(exec->Execute(q, query::AccessPath::kDgfIndex), "dgf");
      table.AddRow({std::string("DGF-") + IntervalClassName(c),
                    Seconds(dgf.stats.index_seconds),
                    Seconds(dgf.stats.data_seconds),
                    Seconds(dgf.stats.total_seconds),
                    Count(dgf.stats.records_read), Count(dgf.rows.size())});
    }
    auto compact = CheckOk(
        compact_exec->Execute(q, query::AccessPath::kCompactIndex), "compact");
    table.AddRow({"Compact (2-dim)", Seconds(compact.stats.index_seconds),
                  Seconds(compact.stats.data_seconds),
                  Seconds(compact.stats.total_seconds),
                  Count(compact.stats.records_read),
                  Count(compact.rows.size())});
    auto hdb = CheckOk(hadoop->Execute(q), "hadoopdb");
    table.AddRow({"HadoopDB", Seconds(hdb.stats.mr_seconds),
                  Seconds(hdb.stats.db_seconds),
                  Seconds(hdb.stats.total_seconds),
                  Count(hdb.stats.rows_examined), Count(hdb.rows.size())});
    auto scan =
        CheckOk(scan_exec->Execute(q, query::AccessPath::kFullScan), "scan");
    table.AddRow({"ScanTable", Seconds(0.0), Seconds(scan.stats.data_seconds),
                  Seconds(scan.stats.total_seconds),
                  Count(scan.stats.records_read), Count(scan.rows.size())});
    table.Print();
  }
  std::printf(
      "\nPaper shape: DGF 2-5x faster than Compact/HadoopDB; Compact and\n"
      "HadoopDB approach (or exceed) ScanTable at 12%%; DGF index-read time\n"
      "grows as intervals shrink.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
