#ifndef DGF_BENCH_BENCH_UTIL_H_
#define DGF_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_index.h"
#include "exec/cluster.h"
#include "fs/mini_dfs.h"
#include "hadoopdb/hadoopdb.h"
#include "index/compact_index.h"
#include "kv/kv_store.h"
#include "query/executor.h"
#include "workload/meter_gen.h"
#include "workload/tpch_gen.h"
#include "workload/query_gen.h"

namespace dgf::bench {

/// Aborts with a message if `status` is not OK (bench binaries have no
/// recovery path; failing loudly beats printing bogus numbers).
void CheckOk(const Status& status, const char* context);

template <typename T>
T CheckOk(Result<T> result, const char* context) {
  CheckOk(result.status(), context);
  return std::move(result).value();
}

/// Reads an integer configuration knob from the environment (e.g.
/// DGF_BENCH_USERS) falling back to `fallback`. Lets the harness scale from
/// smoke-test to paper-shaped sizes without recompiling.
int64_t EnvInt(const char* name, int64_t fallback);

/// Reads a comma-separated integer list from the environment (e.g.
/// DGF_BENCH_BUILD_THREADS="1,2,4,8"); `fallback` uses the same syntax.
std::vector<int> EnvIntList(const char* name, const char* fallback);

/// Appends one JSON object (as a line) to the trajectory file named by env
/// var `env_name` (default `fallback_path`, relative to the working
/// directory). Benches use this to leave machine-readable results — one JSON
/// record per measurement — next to the human-readable tables.
void AppendBenchJson(const char* env_name, const char* fallback_path,
                     const std::string& json_object);

/// The paper's three interval-size classes for the userId dimension
/// (Section 5.3.1): large = 100 intervals, medium = 1000, small = 10000.
enum class IntervalClass { kLarge, kMedium, kSmall };
const char* IntervalClassName(IntervalClass c);
/// Number of userId intervals for the class.
int64_t IntervalCount(IntervalClass c);

/// A fully provisioned meter-data world for one bench binary: DFS, meter +
/// userInfo tables, and (on demand) DGFIndexes per interval class, Compact
/// indexes, and a HadoopDB deployment, all over the same generated data.
class MeterBench {
 public:
  struct Options {
    workload::MeterConfig config;
    uint64_t block_size = 4ULL << 20;  // scaled-down 64 MB HDFS block
    exec::ClusterConfig cluster;
    int worker_threads = 4;
  };

  /// Creates the DFS under a fresh temp directory and generates the data.
  static MeterBench Create(const std::string& tag, Options options);

  ~MeterBench();

  // Movable (the factory returns by value); moved-from instances own nothing.
  MeterBench(MeterBench&&) = default;
  MeterBench& operator=(MeterBench&&) = default;

  /// Builds (or returns the cached) DGFIndex with the class's userId
  /// interval; regionId interval 1 and time interval 1 day, precomputing
  /// sum(powerConsumed), as in the paper.
  core::DgfIndex* Dgf(IntervalClass c, exec::JobResult* build_stats = nullptr);

  /// 2-dim (regionId, time) Compact Index over an RCFile copy of the data —
  /// the baseline the paper actually uses after the 3-dim one blew up.
  index::CompactIndex* Compact(exec::JobResult* build_stats = nullptr);

  /// 3-dim Compact Index (userId, regionId, time) for Table 2's first row.
  index::CompactIndex* Compact3(exec::JobResult* build_stats = nullptr);

  /// HadoopDB deployment with the userInfo archive replicated.
  hadoopdb::HadoopDb* HadoopDb();

  /// Executor running queries through the DGFIndex of the given class (the
  /// scan path of this executor targets the TextFile table).
  std::unique_ptr<query::QueryExecutor> MakeDgfExecutor(IntervalClass c);

  /// Executor whose "meterdata" is the RCFile copy with a Compact Index
  /// registered (2-dim by default, 3-dim when `three_dim`). Its FullScan path
  /// is the paper's ScanTable baseline over RCFile.
  std::unique_ptr<query::QueryExecutor> MakeCompactExecutor(
      bool three_dim = false);

  /// Executor with no indexes, scanning the TextFile table.
  std::unique_ptr<query::QueryExecutor> MakeScanExecutor();

  const workload::MeterConfig& config() const { return options_.config; }
  const table::TableDesc& meter() const { return meter_; }
  const table::TableDesc& meter_rc() const { return meter_rc_; }
  const table::TableDesc& users() const { return users_; }
  const std::shared_ptr<fs::MiniDfs>& dfs() const { return dfs_; }
  const Options& options() const { return options_; }

 private:
  MeterBench() = default;

  Options options_;
  std::string root_;
  std::shared_ptr<fs::MiniDfs> dfs_;
  table::TableDesc meter_;
  table::TableDesc meter_rc_;  // RCFile copy (Compact Index base)
  table::TableDesc users_;
  struct DgfHandle {
    std::shared_ptr<kv::KvStore> store;
    std::unique_ptr<core::DgfIndex> index;
  };
  DgfHandle dgf_[3];
  std::unique_ptr<index::CompactIndex> compact_;
  std::unique_ptr<index::CompactIndex> compact3_;
  std::unique_ptr<hadoopdb::HadoopDb> hadoopdb_;
};

/// Markdown-ish table printer used by every bench binary.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds / counts for table cells.
std::string Seconds(double s);
std::string Count(uint64_t n);

/// TPC-H world for the Table 5/6 and Figure 18 benches: a lineitem table
/// (TextFile for DGF, RCFile copy for Compact), sized by
/// DGF_BENCH_LINEITEM_ROWS (default 150000), with data_scale targeting the
/// paper's 4.1-billion-row lineitem.
class TpchBench {
 public:
  static TpchBench Create(const std::string& tag);
  ~TpchBench();
  TpchBench(TpchBench&&) = default;
  TpchBench& operator=(TpchBench&&) = default;

  /// 3-dim DGFIndex on (l_discount, l_quantity, l_shipdate) with intervals
  /// 0.01 / 1.0 / 100 days, precomputing sum(l_extendedprice*l_discount).
  core::DgfIndex* Dgf(exec::JobResult* build_stats = nullptr);
  /// Compact Index over the RCFile copy: 2-dim (l_discount, l_quantity) or
  /// 3-dim (+ l_shipdate).
  index::CompactIndex* Compact(bool three_dim,
                               exec::JobResult* build_stats = nullptr);

  std::unique_ptr<query::QueryExecutor> MakeDgfExecutor();
  std::unique_ptr<query::QueryExecutor> MakeCompactExecutor(bool three_dim);
  std::unique_ptr<query::QueryExecutor> MakeScanExecutor();

  const table::TableDesc& lineitem() const { return lineitem_; }
  const table::TableDesc& lineitem_rc() const { return lineitem_rc_; }
  const std::shared_ptr<fs::MiniDfs>& dfs() const { return dfs_; }
  const workload::LineitemConfig& config() const { return config_; }
  const exec::ClusterConfig& cluster() const { return cluster_; }

 private:
  TpchBench() = default;

  std::string root_;
  std::shared_ptr<fs::MiniDfs> dfs_;
  workload::LineitemConfig config_;
  exec::ClusterConfig cluster_;
  int worker_threads_ = 4;
  table::TableDesc lineitem_;
  table::TableDesc lineitem_rc_;
  std::shared_ptr<kv::KvStore> dgf_store_;
  std::unique_ptr<core::DgfIndex> dgf_;
  std::unique_ptr<index::CompactIndex> compact2_;
  std::unique_ptr<index::CompactIndex> compact3_;
};

/// Standard bench sizing: reads DGF_BENCH_USERS / DGF_BENCH_DAYS /
/// DGF_BENCH_READINGS from the environment (defaults 8000 / 15 / 1) and uses
/// the paper's 28-worker cluster shape. All meter benches start from this so
/// their numbers compose.
MeterBench::Options DefaultMeterOptions();

}  // namespace dgf::bench

#endif  // DGF_BENCH_BENCH_UTIL_H_
