// Reproduces Figure 17: partial-specified query (Listing 7) — the userId
// condition (the dimension with the most distinct values) is dropped, and
// DGFIndex completes the predicate with the stored per-dimension min/max.
// Three systems per interval class: DGF with pre-computation, DGF without
// pre-computation (an index built with no precomputed UDFs, forcing the
// non-aggregation path), and the Compact Index.

#include <cstdio>

#include "bench/bench_util.h"
#include "kv/mem_kv.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("fig17", DefaultMeterOptions());
  std::printf("Figure 17 reproduction: partial-specified query, %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  // SELECT sum(powerConsumed) WHERE regionId=.. AND time=.. (no userId).
  query::Query q = workload::MakeMeterQuery(
      bench.config(), MeterQueryKind::kPartial, Selectivity::kPoint, 14);
  std::printf("query: %s\n", q.ToString().c_str());

  TablePrinter table("Figure 17: partial query cost (simulated s)",
                     {"interval size", "DGF-precompute", "DGF-noprecompute",
                      "Compact (2-dim)"});

  auto compact_exec = bench.MakeCompactExecutor();
  auto compact = CheckOk(
      compact_exec->Execute(q, query::AccessPath::kCompactIndex), "compact");

  for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                          IntervalClass::kSmall}) {
    auto exec = bench.MakeDgfExecutor(c);
    auto with_pre =
        CheckOk(exec->Execute(q, query::AccessPath::kDgfIndex), "dgf-pre");

    // Build a twin index with no precomputed UDFs: every query takes the
    // non-aggregation (slice scan) path.
    auto store = std::make_shared<kv::MemKv>();
    core::DgfBuilder::Options options;
    const int64_t interval =
        std::max<int64_t>(1, bench.config().num_users / IntervalCount(c));
    options.dims = {
        {"userId", table::DataType::kInt64, 0, static_cast<double>(interval)},
        {"regionId", table::DataType::kInt64, 0, 1},
        {"time", table::DataType::kDate,
         static_cast<double>(bench.config().start_day), 1}};
    options.data_dir =
        std::string("/warehouse/meterdata_dgf_nopre_") + IntervalClassName(c);
    auto nopre_index = CheckOk(
        core::DgfBuilder::Build(bench.dfs(), store, bench.meter(), options),
        "build nopre");
    query::QueryExecutor::Options exec_options;
    exec_options.dfs = bench.dfs();
    exec_options.cluster = bench.options().cluster;
    exec_options.worker_threads = bench.options().worker_threads;
    query::QueryExecutor nopre_exec(exec_options);
    nopre_exec.RegisterTable(bench.meter());
    nopre_exec.RegisterTable(bench.users());
    nopre_exec.RegisterDgfIndex(bench.meter().name, nopre_index.get());
    auto without_pre = CheckOk(
        nopre_exec.Execute(q, query::AccessPath::kDgfIndex), "dgf-nopre");

    table.AddRow({IntervalClassName(c),
                  Seconds(with_pre.stats.total_seconds),
                  Seconds(without_pre.stats.total_seconds),
                  Seconds(compact.stats.total_seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: DGF (both variants) 2-4.6x faster than Compact;\n"
      "pre-computation helps most at coarse intervals.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
