// Ablation C: Hive partitioning as the alternative "coarse-grained index"
// (Section 2.2 + Section 6).
//
// Part 1 — NameNode pressure: partitions the meter table by one, two, and
// three dimensions and reports directory counts and estimated NameNode heap
// (150 bytes per directory/file/block), reproducing the paper's argument
// that multidimensional partitioning overwhelms HDFS metadata (their
// example: 3 dimensions x 100 values = 1M directories = 143 MB before files
// and blocks).
//
// Part 2 — query cost: a (regionId, time)-partitioned layout prunes well on
// those dimensions but cannot subdivide userId, while DGFIndex handles all
// three; compares bytes that must be scanned.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "table/partition.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

void Run() {
  MeterBench::Options options = DefaultMeterOptions();
  // Partition variants rewrite the dataset; shrink it to keep this quick.
  options.config.num_users = EnvInt("DGF_BENCH_USERS", 8000) / 4;
  MeterBench bench = MeterBench::Create("abl_part", options);
  const workload::MeterConfig& config = bench.config();
  std::printf("Ablation: partitioning vs DGFIndex, %lld rows\n",
              static_cast<long long>(config.TotalRows()));

  TablePrinter meta_table(
      "Part 1: NameNode metadata pressure by partitioning depth",
      {"partition columns", "partitions", "DFS dirs", "NameNode heap"});

  const std::vector<std::vector<std::string>> schemes = {
      {"time"},
      {"time", "regionId"},
      // Three-dimensional partitioning buckets userId to 50 values — still
      // the explosive regime the paper warns about.
      {"time", "regionId", "userBucket"},
  };

  std::unique_ptr<table::PartitionedTable> two_dim_layout;
  for (const auto& scheme : schemes) {
    const bool with_bucket = scheme.size() == 3;
    table::TableDesc desc = bench.meter();
    desc.name = "meter_part" + std::to_string(scheme.size());
    desc.dir = "/warehouse/" + desc.name;
    if (with_bucket) {
      auto fields = desc.schema.fields();
      fields.push_back({"userBucket", table::DataType::kInt64});
      desc.schema = table::Schema(fields);
    }
    const uint64_t dirs_before = bench.dfs()->NumDirectories();
    const uint64_t heap_before = bench.dfs()->MetadataMemoryBytes();
    auto part = CheckOk(
        table::PartitionedTable::Create(bench.dfs(), desc, scheme), "create");
    CheckOk(workload::ForEachMeterRow(
                config,
                [&](const table::Row& row) {
                  if (!with_bucket) return part->Append(row);
                  table::Row extended = row;
                  extended.push_back(
                      table::Value::Int64(row[0].int64() % 50));
                  return part->Append(extended);
                }),
            "load");
    CheckOk(part->Close(), "close");
    meta_table.AddRow({JoinStrings(scheme, ","),
                       Count(static_cast<uint64_t>(part->NumPartitions())),
                       Count(bench.dfs()->NumDirectories() - dirs_before),
                       HumanBytes(bench.dfs()->MetadataMemoryBytes() -
                                  heap_before)});
    if (scheme.size() == 2) two_dim_layout = std::move(part);
  }
  meta_table.Print();

  // ---- Part 2: pruning power vs DGFIndex ----
  TablePrinter query_table(
      "Part 2: bytes to scan per access method (aggregation query)",
      {"selectivity", "partition(2-dim) bytes", "DGF-medium bytes",
       "partitions pruned"});
  auto* index = bench.Dgf(IntervalClass::kMedium);
  for (auto sel : {workload::Selectivity::kPoint,
                   workload::Selectivity::kFivePercent,
                   workload::Selectivity::kTwelvePercent}) {
    query::Query q = workload::MakeMeterQuery(
        config, workload::MeterQueryKind::kAggregation, sel, 31);
    int64_t pruned = 0;
    auto splits = CheckOk(two_dim_layout->PrunedSplits(q.where, 0, &pruned),
                          "prune");
    uint64_t partition_bytes = 0;
    for (const auto& split : splits) partition_bytes += split.length;
    auto lookup = CheckOk(index->Lookup(q.where, /*aggregation=*/true),
                          "lookup");
    uint64_t dgf_bytes = 0;
    for (const auto& slice : lookup.slices) dgf_bytes += slice.length();
    query_table.AddRow({workload::SelectivityName(sel),
                        HumanBytes(partition_bytes), HumanBytes(dgf_bytes),
                        Count(static_cast<uint64_t>(pruned))});
  }
  query_table.Print();
  std::printf(
      "\nExpected: metadata grows ~two orders of magnitude from 1-dim to\n"
      "3-dim partitioning; partitions prune regionId/time but cannot touch\n"
      "userId, so DGF scans far less for user-ranged queries.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
