// Ablation E: Slice file format — TextFile (the paper's implementation) vs
// RCFile (the paper's "easy to extend" claim, implemented). Compares index
// build, storage footprint, and aggregation/group-by query cost over the
// same data and grid.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "kv/mem_kv.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

struct Variant {
  const char* name;
  table::FileFormat format;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> index;
  std::unique_ptr<query::QueryExecutor> executor;
  double build_sim_s = 0;
};

void Run() {
  MeterBench bench = MeterBench::Create("abl_format", DefaultMeterOptions());
  std::printf("Ablation: DGF slice format (TextFile vs RCFile), %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  Variant variants[2] = {{"TextFile", table::FileFormat::kText, {}, {}, {}, 0},
                         {"RCFile", table::FileFormat::kRcFile, {}, {}, {}, 0}};
  for (Variant& v : variants) {
    v.store = std::make_shared<kv::MemKv>();
    core::DgfBuilder::Options options;
    const int64_t interval = std::max<int64_t>(
        1, bench.config().num_users / IntervalCount(IntervalClass::kMedium));
    options.dims = {
        {"userId", table::DataType::kInt64, 0, static_cast<double>(interval)},
        {"regionId", table::DataType::kInt64, 0, 1},
        {"time", table::DataType::kDate,
         static_cast<double>(bench.config().start_day), 1}};
    options.precompute = {"sum(powerConsumed)", "count(*)"};
    options.data_dir = std::string("/warehouse/meterdata_dgf_fmt_") + v.name;
    options.data_format = v.format;
    options.job.cluster = bench.options().cluster;
    options.job.worker_threads = bench.options().worker_threads;
    exec::JobResult build;
    v.index = CheckOk(core::DgfBuilder::Build(bench.dfs(), v.store,
                                              bench.meter(), options, &build),
                      "build");
    v.build_sim_s = build.simulated_seconds;

    query::QueryExecutor::Options exec_options;
    exec_options.dfs = bench.dfs();
    exec_options.cluster = bench.options().cluster;
    exec_options.worker_threads = bench.options().worker_threads;
    v.executor = std::make_unique<query::QueryExecutor>(exec_options);
    v.executor->RegisterTable(bench.meter());
    v.executor->RegisterDgfIndex(bench.meter().name, v.index.get());
  }

  TablePrinter table("Ablation E: slice format (medium intervals)",
                     {"format", "slice data bytes", "build (sim s)",
                      "agg 12% (sim s)", "group-by 12% (sim s)",
                      "gb records read"});
  for (Variant& v : variants) {
    uint64_t data_bytes = 0;
    for (const auto& file :
         bench.dfs()->ListFiles(v.index->data_dir() + "/")) {
      data_bytes += file.length;
    }
    query::Query agg = workload::MakeMeterQuery(
        bench.config(), workload::MeterQueryKind::kAggregation,
        workload::Selectivity::kTwelvePercent, 51);
    auto agg_result = CheckOk(
        v.executor->Execute(agg, query::AccessPath::kDgfIndex), "agg");
    query::Query gb = workload::MakeMeterQuery(
        bench.config(), workload::MeterQueryKind::kGroupBy,
        workload::Selectivity::kTwelvePercent, 51);
    auto gb_result =
        CheckOk(v.executor->Execute(gb, query::AccessPath::kDgfIndex), "gb");
    table.AddRow({v.name, HumanBytes(data_bytes), Seconds(v.build_sim_s),
                  Seconds(agg_result.stats.total_seconds),
                  Seconds(gb_result.stats.total_seconds),
                  Count(gb_result.stats.records_read)});
  }
  table.Print();
  std::printf(
      "\nExpected: identical records read (same grid); RCFile trades a\n"
      "per-group framing overhead at fine grids for columnar layout; both\n"
      "formats answer identically (asserted by tests).\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
