// Reproduces Table 5: index size and construction time on TPC-H lineitem.
// Rows: Compact-3D (l_discount, l_quantity, l_shipdate), Compact-2D
// (l_discount, l_quantity), and the 3-dim DGFIndex with intervals
// 0.01 / 1.0 / 100 days — the paper's configuration.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"

namespace dgf::bench {
namespace {

void Run() {
  TpchBench bench = TpchBench::Create("table5");
  const uint64_t base_bytes =
      CheckOk(table::TableDataBytes(bench.dfs(), bench.lineitem()), "bytes");
  std::printf("Table 5 reproduction: lineitem %lld rows, base table %s\n",
              static_cast<long long>(bench.config().num_rows),
              HumanBytes(base_bytes).c_str());

  TablePrinter table("Table 5: TPC-H index size and construction time",
                     {"index", "dims", "size", "size/base",
                      "construction (sim s)"});
  {
    exec::JobResult build;
    auto* compact3 = bench.Compact(/*three_dim=*/true, &build);
    const uint64_t size = CheckOk(compact3->IndexSizeBytes(), "size");
    table.AddRow({"Compact (RCFile)", "3", HumanBytes(size),
                  StringPrintf("%.4f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  {
    exec::JobResult build;
    auto* compact2 = bench.Compact(/*three_dim=*/false, &build);
    const uint64_t size = CheckOk(compact2->IndexSizeBytes(), "size");
    table.AddRow({"Compact (RCFile)", "2", HumanBytes(size),
                  StringPrintf("%.4f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  {
    exec::JobResult build;
    auto* dgf = bench.Dgf(&build);
    const uint64_t size = CheckOk(dgf->IndexSizeBytes(), "size");
    const uint64_t gfus = CheckOk(dgf->NumGfus(), "gfus");
    table.AddRow({StringPrintf("DGFIndex (%s GFUs)", Count(gfus).c_str()), "3",
                  HumanBytes(size),
                  StringPrintf("%.5f", static_cast<double>(size) / base_bytes),
                  Seconds(build.simulated_seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: Compact-3D is ~40%% of the base table (189 GB of\n"
      "468 GB); Compact-2D much smaller; DGFIndex a few MB; DGF build\n"
      "costs the most (reorganization).\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
