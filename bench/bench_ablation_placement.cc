// Ablation D: Slice placement optimization (the paper's second future-work
// item). Fragments the index with several incremental appends, measures the
// positional reads (seeks) a group-by query needs, optimizes placement, and
// measures again. Adjacent cubes become contiguous, so the sliced input
// format coalesces a query box into a few long reads.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "dgf/dgf_input_format.h"
#include "dgf/slice_optimizer.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

struct ReadProfile {
  uint64_t slices = 0;
  uint64_t reads = 0;  // after per-split coalescing
  uint64_t bytes = 0;
};

ReadProfile Profile(const MeterBench& bench, core::DgfIndex* index,
                    const query::Query& q) {
  ReadProfile profile;
  auto lookup = CheckOk(index->Lookup(q.where, /*aggregation=*/false),
                        "lookup");
  profile.slices = lookup.slices.size();
  for (const auto& slice : lookup.slices) profile.bytes += slice.length();
  auto planned = CheckOk(core::PlanSlicedSplits(bench.dfs(), lookup.slices),
                         "plan");
  for (const auto& sliced : planned) profile.reads += sliced.slices.size();
  return profile;
}

void Run() {
  MeterBench::Options options = DefaultMeterOptions();
  options.config.num_days = 5;  // per batch
  MeterBench bench = MeterBench::Create("abl_place", options);
  auto* index = bench.Dgf(IntervalClass::kMedium);

  // Fragment: three more 5-day batches over overlapping user/region cells.
  const int kBatches = 3;
  for (int b = 0; b < kBatches; ++b) {
    workload::MeterConfig batch = bench.config();
    batch.start_day = bench.config().start_day + (b + 1) * batch.num_days;
    batch.seed = bench.config().seed + static_cast<uint64_t>(b) + 1;
    auto staged = CheckOk(
        workload::GenerateMeterTable(bench.dfs(), "/staging/b" + std::to_string(b),
                                     batch),
        "stage");
    CheckOk(core::DgfBuilder::Append(index, staged).status(), "append");
  }
  std::printf("Ablation: slice placement, %lld rows across %d batches\n",
              static_cast<long long>(bench.config().TotalRows() * (kBatches + 1)),
              kBatches + 1);

  // A wide group-by query spanning all batches.
  workload::MeterConfig full = bench.config();
  full.num_days = bench.config().num_days * (kBatches + 1);
  query::Query q = workload::MakeMeterQuery(
      full, workload::MeterQueryKind::kGroupBy,
      workload::Selectivity::kTwelvePercent, 41);

  const ReadProfile before = Profile(bench, index, q);
  auto stats = CheckOk(core::SliceOptimizer::Optimize(index), "optimize");
  const ReadProfile after = Profile(bench, index, q);

  TablePrinter table("Ablation D: slice placement optimization",
                     {"", "slices in box", "positional reads", "bytes"});
  table.AddRow({"before (fragmented)", Count(before.slices),
                Count(before.reads), HumanBytes(before.bytes)});
  table.AddRow({"after (row-major)", Count(after.slices), Count(after.reads),
                HumanBytes(after.bytes)});
  table.Print();
  std::printf(
      "\nOptimizer: %s GFUs, %s -> %s slices, %s files -> %s files, "
      "%s rewritten.\n",
      Count(stats.gfus).c_str(), Count(stats.slices_before).c_str(),
      Count(stats.slices_after).c_str(), Count(stats.files_before).c_str(),
      Count(stats.files_after).c_str(),
      HumanBytes(stats.bytes_rewritten).c_str());
  std::printf(
      "Expected: same bytes, far fewer positional reads after placement\n"
      "optimization (each read costs a seek in the cost model).\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
