// Reproduces Table 4: number of records read for the Group By / Join query
// predicates. Unlike Table 3, pre-aggregated headers cannot answer any part
// of these queries, so DGF reads the full query region (all overlapping
// Slices) — its counts approach the accurate count from above as intervals
// shrink, instead of dropping below it.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("table4", DefaultMeterOptions());
  std::printf("Table 4 reproduction: records read, group-by query, %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  TablePrinter table("Table 4: records read for group by / join query",
                     {"index", "point", "5%", "12%"});
  const Selectivity kSelectivities[] = {
      Selectivity::kPoint, Selectivity::kFivePercent,
      Selectivity::kTwelvePercent};

  std::vector<std::string> accurate = {"Accurate"};
  {
    auto compact_exec = bench.MakeCompactExecutor();
    std::vector<std::string> row = {"Compact (2-dim)"};
    for (Selectivity sel : kSelectivities) {
      query::Query q = workload::MakeMeterQuery(
          bench.config(), MeterQueryKind::kGroupBy, sel, 12);
      auto result = CheckOk(
          compact_exec->Execute(q, query::AccessPath::kCompactIndex), "compact");
      row.push_back(Count(result.stats.records_read));
      accurate.push_back(Count(result.stats.records_matched));
    }
    table.AddRow(std::move(row));
  }
  for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                          IntervalClass::kSmall}) {
    auto exec = bench.MakeDgfExecutor(c);
    std::vector<std::string> row = {std::string("DGF-") + IntervalClassName(c)};
    for (Selectivity sel : kSelectivities) {
      query::Query q = workload::MakeMeterQuery(
          bench.config(), MeterQueryKind::kGroupBy, sel, 12);
      auto result =
          CheckOk(exec->Execute(q, query::AccessPath::kDgfIndex), "dgf");
      row.push_back(Count(result.stats.records_read));
    }
    table.AddRow(std::move(row));
  }
  table.AddRow(std::move(accurate));
  table.Print();
  std::printf(
      "\nPaper shape: DGF reads slightly more than accurate (whole GFUs at\n"
      "the boundary), converging to accurate as intervals shrink; Compact\n"
      "reads every record of every chosen split.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
