// Reproduces Figures 8-10: aggregation query time (Listing 4) at point, 5%,
// and 12% selectivity, for the three DGF interval classes, against the
// Compact Index and HadoopDB, with the paper's "read index and other" vs
// "read data and process" breakdown. The ScanTable baseline is printed once
// per selectivity.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("fig08_10", DefaultMeterOptions());
  std::printf("Figures 8-10 reproduction: aggregation query, %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  auto scan_exec = bench.MakeScanExecutor();
  auto compact_exec = bench.MakeCompactExecutor();
  auto* hadoop = bench.HadoopDb();

  const Selectivity kSelectivities[] = {
      Selectivity::kPoint, Selectivity::kFivePercent,
      Selectivity::kTwelvePercent};
  const char* kFigure[] = {"Figure 8 (point)", "Figure 9 (5%)",
                           "Figure 10 (12%)"};

  for (int s = 0; s < 3; ++s) {
    const Selectivity sel = kSelectivities[s];
    query::Query q = workload::MakeMeterQuery(
        bench.config(), MeterQueryKind::kAggregation, sel, 11);

    TablePrinter table(
        std::string(kFigure[s]) + ": aggregation query cost (simulated s)",
        {"system", "read index+other", "read data+process", "total",
         "records read", "matched"});

    auto scan = CheckOk(
        scan_exec->Execute(q, query::AccessPath::kFullScan), "scan");
    const double scan_total = scan.stats.total_seconds;

    for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                            IntervalClass::kSmall}) {
      auto exec = bench.MakeDgfExecutor(c);
      auto dgf = CheckOk(exec->Execute(q, query::AccessPath::kDgfIndex),
                         "dgf query");
      table.AddRow({std::string("DGF-") + IntervalClassName(c),
                    Seconds(dgf.stats.index_seconds),
                    Seconds(dgf.stats.data_seconds),
                    Seconds(dgf.stats.total_seconds),
                    Count(dgf.stats.records_read),
                    Count(dgf.stats.records_matched)});
    }
    auto compact = CheckOk(
        compact_exec->Execute(q, query::AccessPath::kCompactIndex), "compact");
    table.AddRow({"Compact (2-dim)", Seconds(compact.stats.index_seconds),
                  Seconds(compact.stats.data_seconds),
                  Seconds(compact.stats.total_seconds),
                  Count(compact.stats.records_read),
                  Count(compact.stats.records_matched)});

    auto hdb = CheckOk(hadoop->Execute(q), "hadoopdb");
    table.AddRow({"HadoopDB", Seconds(hdb.stats.mr_seconds),
                  Seconds(hdb.stats.db_seconds),
                  Seconds(hdb.stats.total_seconds),
                  Count(hdb.stats.rows_examined),
                  Count(hdb.stats.rows_matched)});

    table.AddRow({"ScanTable", Seconds(0.0),
                  Seconds(scan.stats.data_seconds), Seconds(scan_total),
                  Count(scan.stats.records_read),
                  Count(scan.stats.records_matched)});
    table.Print();
  }
  std::printf(
      "\nPaper shape: DGF time is nearly flat across selectivities\n"
      "(pre-aggregated inner region); Compact and HadoopDB degrade toward\n"
      "ScanTable as selectivity grows.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
