// Reproduces Figures 14-16: Join query time (Listing 6) — meter data joined
// with the userInfo archive table under the 3-dim range predicate, at point,
// 5%, 12% selectivity. Like Group By, this is a non-aggregation query: DGF
// wins purely through Slice filtering and skipping.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("fig14_16", DefaultMeterOptions());
  std::printf("Figures 14-16 reproduction: join query, %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  auto scan_exec = bench.MakeScanExecutor();
  auto compact_exec = bench.MakeCompactExecutor();
  auto* hadoop = bench.HadoopDb();

  const Selectivity kSelectivities[] = {
      Selectivity::kPoint, Selectivity::kFivePercent,
      Selectivity::kTwelvePercent};
  const char* kFigure[] = {"Figure 14 (point)", "Figure 15 (5%)",
                           "Figure 16 (12%)"};

  for (int s = 0; s < 3; ++s) {
    query::Query q = workload::MakeMeterQuery(
        bench.config(), MeterQueryKind::kJoin, kSelectivities[s], 13);
    TablePrinter table(
        std::string(kFigure[s]) + ": join query cost (simulated s)",
        {"system", "read index+other", "read data+process", "total",
         "records read", "joined rows"});

    for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                            IntervalClass::kSmall}) {
      auto exec = bench.MakeDgfExecutor(c);
      auto dgf = CheckOk(exec->Execute(q, query::AccessPath::kDgfIndex), "dgf");
      table.AddRow({std::string("DGF-") + IntervalClassName(c),
                    Seconds(dgf.stats.index_seconds),
                    Seconds(dgf.stats.data_seconds),
                    Seconds(dgf.stats.total_seconds),
                    Count(dgf.stats.records_read), Count(dgf.rows.size())});
    }
    auto compact = CheckOk(
        compact_exec->Execute(q, query::AccessPath::kCompactIndex), "compact");
    table.AddRow({"Compact (2-dim)", Seconds(compact.stats.index_seconds),
                  Seconds(compact.stats.data_seconds),
                  Seconds(compact.stats.total_seconds),
                  Count(compact.stats.records_read),
                  Count(compact.rows.size())});
    auto hdb = CheckOk(hadoop->Execute(q), "hadoopdb");
    table.AddRow({"HadoopDB", Seconds(hdb.stats.mr_seconds),
                  Seconds(hdb.stats.db_seconds),
                  Seconds(hdb.stats.total_seconds),
                  Count(hdb.stats.rows_examined), Count(hdb.rows.size())});
    auto scan =
        CheckOk(scan_exec->Execute(q, query::AccessPath::kFullScan), "scan");
    table.AddRow({"ScanTable", Seconds(0.0), Seconds(scan.stats.data_seconds),
                  Seconds(scan.stats.total_seconds),
                  Count(scan.stats.records_read), Count(scan.rows.size())});
    table.Print();
  }
  std::printf(
      "\nPaper shape: DGF 2-5x faster; Compact/HadoopDB roughly match or\n"
      "exceed ScanTable at high selectivity.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
