// Ablation B: what does slice skipping (the custom RecordReader, step 3 of
// the query path) buy over split filtering alone?
//
// For each selectivity, compares:
//   * full DGF: read exactly the query-related Slices;
//   * split-filter only: read every record of every split that contains at
//     least one related Slice (what a Compact-style index would read after
//     choosing the same splits).
// Reported from the same lookup, so the comparison is exact.

#include <cstdio>
#include <set>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "dgf/dgf_input_format.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("abl_skip", DefaultMeterOptions());
  std::printf("Ablation: slice skipping vs split filtering, %lld rows\n",
              static_cast<long long>(bench.config().TotalRows()));
  auto* index = bench.Dgf(IntervalClass::kMedium);
  const auto& cluster = bench.options().cluster;

  TablePrinter table(
      "Ablation B: slice skip vs split-filter-only (medium intervals)",
      {"selectivity", "slices", "slice bytes", "chosen splits", "split bytes",
       "skip saving", "est. scan s (slices)", "est. scan s (splits)"});

  for (Selectivity sel : {Selectivity::kPoint, Selectivity::kFivePercent,
                          Selectivity::kTwelvePercent}) {
    query::Query q = workload::MakeMeterQuery(
        bench.config(), MeterQueryKind::kGroupBy, sel, 22);
    auto lookup = CheckOk(index->Lookup(q.where, /*aggregation=*/false),
                          "lookup");
    auto planned = CheckOk(core::PlanSlicedSplits(bench.dfs(), lookup.slices),
                           "plan");
    uint64_t slice_bytes = 0;
    for (const auto& slice : lookup.slices) slice_bytes += slice.length();
    uint64_t split_bytes = 0;
    for (const auto& sliced : planned) split_bytes += sliced.split.length;

    const double slots = cluster.total_map_slots();
    const double slice_s = cluster.data_scale * static_cast<double>(slice_bytes) /
                           (1e6 * cluster.scan_mb_per_s) / slots;
    const double split_s = cluster.data_scale * static_cast<double>(split_bytes) /
                           (1e6 * cluster.scan_mb_per_s) / slots;
    table.AddRow({workload::SelectivityName(sel), Count(lookup.slices.size()),
                  HumanBytes(slice_bytes), Count(planned.size()),
                  HumanBytes(split_bytes),
                  split_bytes > 0
                      ? StringPrintf("%.1fx", static_cast<double>(split_bytes) /
                                                  std::max<uint64_t>(1, slice_bytes))
                      : "-",
                  Seconds(slice_s), Seconds(split_s)});
  }
  table.Print();
  std::printf(
      "\nExpected: slice skipping reads a small fraction of the chosen\n"
      "splits' bytes — the advantage DGFIndex holds over split-granular\n"
      "indexes even without pre-aggregation.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
