// Parallel-build perf smoke: a pass/fail gate (not a reporting bench) that
// fails when the 4-thread DGF build is not at least 1.5x faster than the
// 1-thread build of the same data. This is the regression tripwire for the
// write-path scaling work: a reintroduced global lock or serial merge shows
// up here long before anyone reads BENCH_build.json.
//
// The gate needs real cores to mean anything: on hosts with fewer than 4
// CPUs it prints a gtest-style "[  SKIPPED ]" line and exits 0 (the ctest
// entry matches that as a skip). Knobs: DGF_SMOKE_USERS, DGF_SMOKE_DAYS,
// DGF_SMOKE_MIN_SPEEDUP.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "kv/mem_kv.h"

namespace dgf::bench {
namespace {

/// One from-scratch DGF-Large build at `threads`; returns wall seconds.
double TimedBuild(MeterBench& bench, int threads, int variant) {
  core::DgfBuilder::Options options;
  const int64_t interval = std::max<int64_t>(
      1, bench.config().num_users / IntervalCount(IntervalClass::kLarge));
  options.dims = {
      {"userId", table::DataType::kInt64, 0, static_cast<double>(interval)},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(bench.config().start_day), 1}};
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir = StringPrintf("/warehouse/meterdata_smoke%02d", variant);
  options.job.cluster = bench.options().cluster;
  options.job.worker_threads = threads;
  options.build_threads = threads;
  options.split_size = 1ULL << 20;
  auto store = std::make_shared<kv::MemKv>();
  Stopwatch watch;
  CheckOk(core::DgfBuilder::Build(bench.dfs(), store, bench.meter(), options)
              .status(),
          "smoke build");
  return watch.ElapsedSeconds();
}

int Run() {
  const unsigned host_cpus = std::thread::hardware_concurrency();
  if (host_cpus < 4) {
    std::printf(
        "[  SKIPPED ] perf smoke needs >= 4 CPUs to measure a 4-thread "
        "speedup; host has %u\n",
        host_cpus);
    return 0;
  }

  MeterBench::Options options = DefaultMeterOptions();
  options.config.num_users =
      static_cast<int64_t>(EnvInt("DGF_SMOKE_USERS", 6000));
  options.config.num_days = static_cast<int>(EnvInt("DGF_SMOKE_DAYS", 10));
  const double min_speedup =
      static_cast<double>(EnvInt("DGF_SMOKE_MIN_SPEEDUP", 150)) / 100.0;
  MeterBench bench = MeterBench::Create("perf_smoke", options);

  // Interleave two rounds and keep the best of each arm: the gate compares
  // capability, not scheduler luck.
  double serial = 1e300, parallel = 1e300;
  int variant = 0;
  for (int round = 0; round < 2; ++round) {
    serial = std::min(serial, TimedBuild(bench, 1, variant++));
    parallel = std::min(parallel, TimedBuild(bench, 4, variant++));
  }
  const double speedup = serial / parallel;
  std::printf(
      "perf smoke: 1-thread %.3fs, 4-thread %.3fs, speedup %.2fx "
      "(floor %.2fx, host %u CPUs)\n",
      serial, parallel, speedup, min_speedup, host_cpus);
  if (speedup < min_speedup) {
    std::printf(
        "[  FAILED  ] parallel build speedup %.2fx below the %.2fx floor — "
        "a serialization point crept back into the build path\n",
        speedup, min_speedup);
    return 1;
  }
  std::printf("[  PASSED  ] parallel build speedup gate\n");
  return 0;
}

}  // namespace
}  // namespace dgf::bench

int main() { return dgf::bench::Run(); }
