// Reproduces Table 3: number of records read for the aggregation query
// (Listing 4) after index filtering, per selectivity and interval class,
// against the accurate (predicate-matching) count.
//
// Expected shape: Compact reads orders of magnitude more than DGF (it cannot
// skip inside splits); DGF reads less as intervals shrink; for ranged
// queries DGF reads *fewer records than match* (the inner region is answered
// from headers); point queries read a whole GFU (no inner region).

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/query_gen.h"

namespace dgf::bench {
namespace {

using workload::MeterQueryKind;
using workload::Selectivity;

void Run() {
  MeterBench bench = MeterBench::Create("table3", DefaultMeterOptions());
  std::printf("Table 3 reproduction: records read, aggregation query, %lld "
              "rows\n",
              static_cast<long long>(bench.config().TotalRows()));

  TablePrinter table("Table 3: records read for aggregation query",
                     {"index", "point", "5%", "12%"});

  const Selectivity kSelectivities[] = {
      Selectivity::kPoint, Selectivity::kFivePercent,
      Selectivity::kTwelvePercent};

  std::vector<std::string> accurate = {"Accurate"};
  {
    auto compact_exec = bench.MakeCompactExecutor();
    std::vector<std::string> row = {"Compact (2-dim)"};
    for (Selectivity sel : kSelectivities) {
      query::Query q = workload::MakeMeterQuery(
          bench.config(), MeterQueryKind::kAggregation, sel, 11);
      auto result = CheckOk(
          compact_exec->Execute(q, query::AccessPath::kCompactIndex), "compact");
      row.push_back(Count(result.stats.records_read));
      accurate.push_back(Count(result.stats.records_matched));
    }
    table.AddRow(std::move(row));
  }
  for (IntervalClass c : {IntervalClass::kLarge, IntervalClass::kMedium,
                          IntervalClass::kSmall}) {
    auto exec = bench.MakeDgfExecutor(c);
    std::vector<std::string> row = {std::string("DGF-") + IntervalClassName(c)};
    for (Selectivity sel : kSelectivities) {
      query::Query q = workload::MakeMeterQuery(
          bench.config(), MeterQueryKind::kAggregation, sel, 11);
      auto result =
          CheckOk(exec->Execute(q, query::AccessPath::kDgfIndex), "dgf");
      row.push_back(Count(result.stats.records_read));
    }
    table.AddRow(std::move(row));
  }
  table.AddRow(std::move(accurate));
  table.Print();
  std::printf(
      "\nPaper shape: Compact >> DGF; DGF shrinks with interval size; ranged\n"
      "DGF reads fewer records than match (inner region pre-aggregated);\n"
      "point queries read the whole containing GFU.\n");
}

}  // namespace
}  // namespace dgf::bench

int main() {
  dgf::bench::Run();
  return 0;
}
