// Workflow scheduler demo — Section 3's migration target: the RDBMS stored
// procedures become DAGs of HiveQL statements, scheduled at fixed
// frequencies by an Oozie-style coordinator, with DGFIndex accelerating the
// multidimensional-range steps.
//
// Builds a "line loss analysis" workflow (the paper's example module):
//   acquisition_rate  -> per-day record counts (data completeness check)
//   region_consumption-> per-region totals for yesterday (needs acquisition)
//   peak_scan         -> heavy consumers yesterday   (needs acquisition)
//   loss_report       -> joins meter data with the archive (needs both)
// and fires it daily for a simulated week.
//
//   ./example_workflow_scheduler [workdir]

#include <cstdio>
#include <filesystem>

#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "query/parser.h"
#include "workflow/workflow.h"
#include "workload/meter_gen.h"

using namespace dgf;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "dgf_workflow")
                     .string();
  std::filesystem::remove_all(root);
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = root;
  dfs_options.block_size = 1 << 20;
  auto dfs = *fs::MiniDfs::Open(dfs_options);

  workload::MeterConfig config;
  config.num_users = 1000;
  config.num_days = 14;
  config.extra_metrics = 2;
  auto meter = *workload::GenerateMeterTable(dfs, "/warehouse/meterdata",
                                             config);
  auto users = *workload::GenerateUserInfoTable(dfs, "/warehouse/userinfo",
                                                config);

  auto store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options build;
  build.dims = {{"userId", table::DataType::kInt64, 0, 50},
                {"regionId", table::DataType::kInt64, 0, 1},
                {"time", table::DataType::kDate,
                 static_cast<double>(config.start_day), 1}};
  build.precompute = {"sum(powerConsumed)", "count(*)"};
  build.data_dir = "/warehouse/meterdata_dgf";
  auto index = *core::DgfBuilder::Build(dfs, store, meter, build);

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs;
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(meter);
  executor.RegisterTable(users);
  executor.RegisterDgfIndex(meter.name, index.get());

  const auto action = [&](const std::string& name, const std::string& sql,
                          std::vector<std::string> deps,
                          const table::Schema* right = nullptr) {
    workflow::Action a;
    a.name = name;
    auto q = query::ParseQuery(sql, meter.schema, right);
    if (!q.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", name.c_str(),
                   q.status().ToString().c_str());
      std::exit(1);
    }
    a.query = *q;
    a.depends_on = std::move(deps);
    return a;
  };

  auto line_loss = workflow::Workflow::Create(
      "line_loss_analysis",
      {action("acquisition_rate",
              "SELECT time, count(*) FROM meterdata WHERE time >= "
              "'2012-12-01' AND time < '2012-12-15' GROUP BY time",
              {}),
       action("region_consumption",
              "SELECT regionId, sum(powerConsumed) FROM meterdata WHERE "
              "time = '2012-12-07' AND regionId >= 1 AND regionId <= 11 "
              "GROUP BY regionId",
              {"acquisition_rate"}),
       action("peak_scan",
              "SELECT count(*) FROM meterdata WHERE powerConsumed >= 450 "
              "AND time = '2012-12-07' AND regionId >= 1 AND regionId <= 11",
              {"acquisition_rate"}),
       action("loss_report",
              "SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN "
              "userinfo t2 ON t1.userId = t2.userId WHERE t1.userId >= 0 AND "
              "t1.userId < 40 AND t1.regionId >= 1 AND t1.regionId <= 11 AND "
              "t1.time = '2012-12-07'",
              {"region_consumption", "peak_scan"}, &users.schema)});
  if (!line_loss.ok()) {
    std::fprintf(stderr, "%s\n", line_loss.status().ToString().c_str());
    return 1;
  }

  // One run, inspected.
  auto report = line_loss->Run(&executor);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("line_loss_analysis: %s\n",
              report->succeeded ? "SUCCEEDED" : "FAILED");
  for (const auto& [name, outcome] : report->actions) {
    std::printf("  %-20s %s (%zu rows)\n", name.c_str(),
                outcome.state == workflow::ActionResult::State::kSucceeded
                    ? "ok"
                    : "NOT OK",
                outcome.result.rows.size());
  }
  std::printf("  sequential: %.1f sim-s, critical path: %.1f sim-s "
              "(parallelizable branches)\n",
              report->sequential_seconds, report->critical_path_seconds);

  // A simulated week under the coordinator.
  workflow::Coordinator coordinator(&executor);
  coordinator.Schedule(std::move(*line_loss), /*period_s=*/86400.0);
  auto firings = coordinator.RunUntil(6 * 86400.0);
  if (!firings.ok()) {
    std::fprintf(stderr, "%s\n", firings.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncoordinator: %zu daily firings over a simulated week, all "
              "%s\n",
              firings->size(),
              std::all_of(firings->begin(), firings->end(),
                          [](const auto& f) { return f.report.succeeded; })
                  ? "succeeded"
                  : "NOT ok");
  std::filesystem::remove_all(root);
  return 0;
}
