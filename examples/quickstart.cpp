// Quickstart: build a DGFIndex over a small table and answer a
// multidimensional range aggregation through it.
//
//   ./example_quickstart [workdir]
//
// Walks through the whole public API surface in ~100 lines: MiniDfs, table
// creation, DGFIndex construction (the MapReduce reorganization), and a SQL
// query executed through the index.

#include <cstdio>
#include <filesystem>

#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "query/parser.h"
#include "table/table.h"

using namespace dgf;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "dgf_quickstart")
                     .string();
  std::filesystem::remove_all(root);

  // 1. A mini distributed filesystem.
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = root;
  dfs_options.block_size = 1 << 20;
  auto dfs = *fs::MiniDfs::Open(dfs_options);

  // 2. A meter-data table: userId, regionId, collection date, consumption.
  table::TableDesc meter;
  meter.name = "meterdata";
  meter.schema = table::Schema({{"userId", table::DataType::kInt64},
                                {"regionId", table::DataType::kInt64},
                                {"time", table::DataType::kDate},
                                {"powerConsumed", table::DataType::kDouble}});
  meter.format = table::FileFormat::kText;
  meter.dir = "/warehouse/meterdata";
  {
    auto writer = *table::TableWriter::Create(dfs, meter);
    for (int64_t user = 0; user < 500; ++user) {
      for (int day = 0; day < 10; ++day) {
        auto st = writer->Append(
            {table::Value::Int64(user), table::Value::Int64(user % 5 + 1),
             table::Value::Date(*table::ParseDate("2013-01-01") + day),
             table::Value::Double(10.0 + static_cast<double>((user * 7 + day) % 40))});
        if (!st.ok()) {
          std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    (void)writer->Close();
  }

  // 3. Build the DGFIndex: grid (userId/100, regionId/1, time/1 day),
  //    precomputing sum(powerConsumed) per grid cell.
  auto store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options build;
  build.dims = {{"userId", table::DataType::kInt64, 0, 100},
                {"regionId", table::DataType::kInt64, 0, 1},
                {"time", table::DataType::kDate,
                 static_cast<double>(*table::ParseDate("2013-01-01")), 1}};
  build.precompute = {"sum(powerConsumed)", "count(*)"};
  build.data_dir = "/warehouse/meterdata_dgf";
  auto index = core::DgfBuilder::Build(dfs, store, meter, build);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("DGFIndex built: %llu GFUs, %llu bytes of index\n",
              static_cast<unsigned long long>(*(*index)->NumGfus()),
              static_cast<unsigned long long>(*(*index)->IndexSizeBytes()));

  // 4. Run the paper's Listing-4 query through the index.
  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs;
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(meter);
  executor.RegisterDgfIndex(meter.name, index->get());

  const char* sql =
      "SELECT sum(powerConsumed), count(*) FROM meterdata "
      "WHERE userId >= 120 AND userId < 380 AND regionId >= 2 AND "
      "regionId <= 4 AND time >= '2013-01-03' AND time < '2013-01-08'";
  auto query = query::ParseQuery(sql, meter.schema);
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  auto result = executor.Execute(*query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", sql);
  std::printf("-> sum = %s, count = %s (via %s)\n",
              result->rows[0][0].ToText().c_str(),
              result->rows[0][1].ToText().c_str(),
              query::AccessPathName(result->stats.path));
  std::printf("   records read from disk: %llu of 5000 "
              "(inner region answered from pre-computed headers)\n",
              static_cast<unsigned long long>(result->stats.records_read));
  std::filesystem::remove_all(root);
  return 0;
}
