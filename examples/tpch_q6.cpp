// TPC-H Q6 through a DGFIndex — the paper's "general case" (Section 5.4):
// lineitem rows arrive in random order, which defeats split-granular
// indexes; the DGFIndex reorganization restores locality along
// (l_discount, l_quantity, l_shipdate).
//
//   ./example_tpch_q6 [workdir]

#include <cstdio>
#include <filesystem>

#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "table/table.h"
#include "workload/tpch_gen.h"

using namespace dgf;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "dgf_tpch").string();
  std::filesystem::remove_all(root);
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = root;
  dfs_options.block_size = 1 << 20;
  auto dfs = *fs::MiniDfs::Open(dfs_options);

  workload::LineitemConfig config;
  config.num_rows = 100000;
  std::printf("Generating lineitem (%lld rows, random order)...\n",
              static_cast<long long>(config.num_rows));
  auto lineitem =
      *workload::GenerateLineitemTable(dfs, "/warehouse/lineitem", config);

  std::printf("Building DGFIndex on (l_discount/0.01, l_quantity/1, "
              "l_shipdate/100 days)...\n");
  auto store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options build;
  build.dims = {{"l_discount", table::DataType::kDouble, 0.0, 0.01},
                {"l_quantity", table::DataType::kDouble, 0.0, 1.0},
                {"l_shipdate", table::DataType::kDate,
                 static_cast<double>(table::DaysFromCivil(1992, 1, 1)), 100}};
  build.precompute = {"sum(l_extendedprice*l_discount)"};
  build.data_dir = "/warehouse/lineitem_dgf";
  auto index = core::DgfBuilder::Build(dfs, store, lineitem, build);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs;
  // Simulated durations treat this dataset as a sample of the paper's
  // 4.1-billion-row lineitem.
  exec_options.cluster.data_scale =
      4.1e9 / static_cast<double>(config.num_rows);
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(lineitem);
  executor.RegisterDgfIndex(lineitem.name, index->get());

  query::Query q6 = workload::MakeQ6(1994, 0.06, 24);
  std::printf("\n%s\n", q6.ToString().c_str());
  for (auto path : {query::AccessPath::kDgfIndex,
                    query::AccessPath::kFullScan}) {
    auto result = executor.Execute(q6, path);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s revenue = %-14s records read = %8llu   sim time = "
                "%7.1f s\n",
                query::AccessPathName(path),
                result->rows[0][0].ToText().c_str(),
                static_cast<unsigned long long>(result->stats.records_read),
                result->stats.total_seconds);
  }
  std::filesystem::remove_all(root);
  return 0;
}
