// Splitting-policy advisor demo — the paper's future work ("an algorithm to
// find the best splitting policy based on the distribution of the meter data
// and the query history"), implemented and exercised:
//
//   1. Collect a query history (narrow userId windows, day-scale time windows).
//   2. Ask the PolicyAdvisor for interval sizes under a cell budget.
//   3. Build DGFIndexes with the recommended policy and with a naive one.
//   4. Replay the history through both; compare records read.
//
//   ./example_policy_advisor_demo [workdir]

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/policy_advisor.h"
#include "kv/mem_kv.h"
#include "table/statistics.h"
#include "query/executor.h"
#include "table/table.h"
#include "workload/meter_gen.h"

using namespace dgf;  // NOLINT: example brevity

namespace {

query::Predicate HistoryQuery(const workload::MeterConfig& config,
                              Random& rng) {
  // The deployment's typical shape: ~2% of users, ~5-day window, all regions.
  const int64_t span = config.num_users / 50;
  const int64_t lo = rng.UniformRange(0, config.num_users - span - 1);
  const int64_t day = config.start_day + rng.UniformRange(0, config.num_days - 6);
  query::Predicate pred;
  pred.And(query::ColumnRange::Between("userId", table::Value::Int64(lo), true,
                                       table::Value::Int64(lo + span), false));
  pred.And(query::ColumnRange::Between("time", table::Value::Date(day), true,
                                       table::Value::Date(day + 5), false));
  return pred;
}

uint64_t ReplayHistory(query::QueryExecutor& executor,
                       const std::vector<query::Predicate>& history) {
  uint64_t total_records = 0;
  for (const auto& pred : history) {
    query::Query q;
    q.table = "meterdata";
    q.select.push_back(query::SelectItem::Aggregation(
        *core::AggSpec::Parse("sum(powerConsumed)")));
    q.where = pred;
    auto result = executor.Execute(q, query::AccessPath::kDgfIndex);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    total_records += result->stats.records_read;
  }
  return total_records;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "dgf_advisor")
                     .string();
  std::filesystem::remove_all(root);
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = root;
  dfs_options.block_size = 1 << 20;
  auto dfs = *fs::MiniDfs::Open(dfs_options);

  workload::MeterConfig config;
  config.num_users = 5000;
  config.num_days = 20;
  config.extra_metrics = 2;
  auto meter = *workload::GenerateMeterTable(dfs, "/warehouse/meterdata",
                                             config);

  // 1. Query history.
  Random rng(99);
  std::vector<query::Predicate> history;
  for (int i = 0; i < 20; ++i) history.push_back(HistoryQuery(config, rng));
  std::printf("History: %zu aggregation queries, e.g. %s\n", history.size(),
              history.front().ToString().c_str());

  // 2. ANALYZE the table (min/max + HyperLogLog distinct estimates per
  //    column) and hand the measured distribution to the advisor.
  auto stats = table::AnalyzeTable(dfs, meter);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("ANALYZE: %llu rows, avg %.0f bytes/row\n",
              static_cast<unsigned long long>(stats->num_rows),
              stats->avg_row_bytes);
  std::vector<core::PolicyAdvisor::DimensionStats> dims;
  for (const char* column : {"userId", "regionId", "time"}) {
    auto dim = stats->AdvisorDimension(column);
    if (!dim.ok()) {
      std::fprintf(stderr, "%s\n", dim.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-10s min=%.0f max=%.0f distinct~%.0f\n",
                dim->column.c_str(), dim->min, dim->max, dim->distinct);
    dims.push_back(*dim);
  }
  core::PolicyAdvisor::Options advisor_options;
  advisor_options.max_cells = 50000;
  // Cost the plan as if this table were a production-scale sample.
  advisor_options.cluster.data_scale = 1000.0;
  advisor_options.total_records = static_cast<double>(stats->num_rows);
  advisor_options.record_bytes = stats->avg_row_bytes;
  core::PolicyAdvisor advisor(dims, advisor_options);
  auto rec = advisor.Recommend(history);
  if (!rec.ok()) {
    std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("Advisor: expected cells %.0f, expected cost %.2f s/query\n",
              rec->expected_cells, rec->expected_query_cost);
  for (const auto& dim : rec->dims) {
    std::printf("  %-10s interval %.2f\n", dim.column.c_str(), dim.interval);
  }

  // 3. Build recommended and naive indexes.
  const auto build_index = [&](std::vector<core::DimensionPolicy> dims,
                               const std::string& dir) {
    auto mem = std::make_shared<kv::MemKv>();
    core::DgfBuilder::Options build;
    build.dims = std::move(dims);
    build.precompute = {"sum(powerConsumed)"};
    build.data_dir = dir;
    auto index = core::DgfBuilder::Build(dfs, mem, meter, build);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      std::exit(1);
    }
    return std::make_pair(std::move(*index), mem);
  };

  auto [recommended, rec_store] = build_index(rec->dims, "/warehouse/dgf_rec");
  auto [naive, naive_store] = build_index(
      {{"userId", table::DataType::kInt64, 0,
        static_cast<double>(config.num_users) / 10},  // coarse 10 intervals
       {"regionId", table::DataType::kInt64, 0,
        static_cast<double>(config.num_regions)},
       {"time", table::DataType::kDate, static_cast<double>(config.start_day),
        static_cast<double>(config.num_days)}},
      "/warehouse/dgf_naive");

  // 4. Replay.
  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs;
  query::QueryExecutor rec_exec(exec_options);
  rec_exec.RegisterTable(meter);
  rec_exec.RegisterDgfIndex(meter.name, recommended.get());
  query::QueryExecutor naive_exec(exec_options);
  naive_exec.RegisterTable(meter);
  naive_exec.RegisterDgfIndex(meter.name, naive.get());

  const uint64_t rec_records = ReplayHistory(rec_exec, history);
  const uint64_t naive_records = ReplayHistory(naive_exec, history);
  std::printf("\nReplaying the history:\n");
  std::printf("  recommended policy: %llu records read (%llu GFUs)\n",
              static_cast<unsigned long long>(rec_records),
              static_cast<unsigned long long>(*recommended->NumGfus()));
  std::printf("  naive policy:       %llu records read (%llu GFUs)\n",
              static_cast<unsigned long long>(naive_records),
              static_cast<unsigned long long>(*naive->NumGfus()));
  std::printf(naive_records > rec_records
                  ? "  -> advisor policy reads %.1fx fewer records\n"
                  : "  -> policies comparable at this scale\n",
              static_cast<double>(naive_records) /
                  static_cast<double>(std::max<uint64_t>(1, rec_records)));
  std::filesystem::remove_all(root);
  return 0;
}
