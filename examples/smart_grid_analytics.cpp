// Smart-grid analytics walkthrough: the paper's Zhejiang Grid scenario
// end-to-end — generate a month of meter data plus the userInfo archive,
// build a DGFIndex, run the three workload shapes (aggregation, group-by,
// join) through the index and through a full scan, then ingest a new day's
// batch (incremental append, no rebuild) and query across old + new data.
//
//   ./example_smart_grid_analytics [workdir]

#include <cstdio>
#include <filesystem>

#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "query/parser.h"
#include "table/table.h"
#include "workload/meter_gen.h"

using namespace dgf;  // NOLINT: example brevity

namespace {

void RunBoth(query::QueryExecutor& executor, const std::string& label,
             const query::Query& q) {
  auto dgf = executor.Execute(q, query::AccessPath::kDgfIndex);
  auto scan = executor.Execute(q, query::AccessPath::kFullScan);
  if (!dgf.ok() || !scan.ok()) {
    std::fprintf(stderr, "%s failed: %s %s\n", label.c_str(),
                 dgf.status().ToString().c_str(),
                 scan.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%-12s rows=%-4zu  DGF: %6llu records read, %7.1f sim-s   "
              "Scan: %6llu records, %7.1f sim-s\n",
              label.c_str(), dgf->rows.size(),
              static_cast<unsigned long long>(dgf->stats.records_read),
              dgf->stats.total_seconds,
              static_cast<unsigned long long>(scan->stats.records_read),
              scan->stats.total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "dgf_smartgrid")
                     .string();
  std::filesystem::remove_all(root);
  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = root;
  dfs_options.block_size = 1 << 20;
  auto dfs = *fs::MiniDfs::Open(dfs_options);

  // A month of readings for 2000 meters across 11 regions.
  workload::MeterConfig config;
  config.num_users = 2000;
  config.num_days = 30;
  config.num_regions = 11;
  config.extra_metrics = 13;  // the 17-field record of Figure 1
  std::printf("Generating %lld meter records + archive data...\n",
              static_cast<long long>(config.TotalRows()));
  auto meter = *workload::GenerateMeterTable(dfs, "/warehouse/meterdata",
                                             config);
  auto users = *workload::GenerateUserInfoTable(dfs, "/warehouse/userinfo",
                                                config);

  std::printf("Building DGFIndex (userId/20, regionId/1, time/1 day)...\n");
  auto store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options build;
  build.dims = {{"userId", table::DataType::kInt64, 0, 20},
                {"regionId", table::DataType::kInt64, 0, 1},
                {"time", table::DataType::kDate,
                 static_cast<double>(config.start_day), 1}};
  build.precompute = {"sum(powerConsumed)", "count(*)", "max(powerConsumed)"};
  build.data_dir = "/warehouse/meterdata_dgf";
  auto index = core::DgfBuilder::Build(dfs, store, meter, build);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = dfs;
  // Simulated durations treat this dataset as a sample of the paper's
  // 11-billion-row month (see DESIGN.md on the cluster cost model).
  exec_options.cluster.data_scale =
      11e9 / static_cast<double>(config.TotalRows());
  query::QueryExecutor executor(exec_options);
  executor.RegisterTable(meter);
  executor.RegisterTable(users);
  executor.RegisterDgfIndex(meter.name, index->get());

  std::printf("\nWorkload (each query via DGFIndex and via full scan):\n");
  auto agg = *query::ParseQuery(
      "SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 100 AND "
      "userId < 400 AND regionId >= 2 AND regionId <= 8 AND "
      "time >= '2012-12-05' AND time < '2012-12-15'",
      meter.schema);
  RunBoth(executor, "aggregation", agg);

  auto group = *query::ParseQuery(
      "SELECT time, sum(powerConsumed) FROM meterdata WHERE userId >= 100 "
      "AND userId < 400 AND regionId >= 2 AND regionId <= 8 AND "
      "time >= '2012-12-05' AND time < '2012-12-15' GROUP BY time",
      meter.schema);
  RunBoth(executor, "group-by", group);

  auto join = *query::ParseQuery(
      "SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userinfo "
      "t2 ON t1.userId = t2.userId WHERE t1.userId >= 100 AND t1.userId < "
      "130 AND t1.regionId >= 1 AND t1.regionId <= 11 AND t1.time = "
      "'2012-12-10'",
      meter.schema, &users.schema);
  RunBoth(executor, "join", join);

  // Incremental ingest: a new day arrives; the index extends along the time
  // dimension — no rebuild, load throughput unaffected.
  std::printf("\nIngesting one new day of readings (incremental append)...\n");
  workload::MeterConfig new_day = config;
  new_day.num_days = 1;
  new_day.start_day = config.start_day + config.num_days;
  new_day.seed = config.seed + 1;
  auto batch = *workload::GenerateMeterTable(dfs, "/staging/day31", new_day);
  auto append = core::DgfBuilder::Append(index->get(), batch);
  if (!append.ok()) {
    std::fprintf(stderr, "%s\n", append.status().ToString().c_str());
    return 1;
  }

  auto fresh = *query::ParseQuery(
      "SELECT count(*), max(powerConsumed) FROM meterdata WHERE "
      "regionId >= 1 AND regionId <= 11 AND userId >= 0 AND userId < 2000 "
      "AND time >= '2012-12-28' AND time <= '2012-12-31'",
      meter.schema);
  auto result = executor.Execute(fresh, query::AccessPath::kDgfIndex);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("last-4-days count=%s max=%s — new day is queryable without a "
              "rebuild\n",
              result->rows[0][0].ToText().c_str(),
              result->rows[0][1].ToText().c_str());
  std::filesystem::remove_all(root);
  return 0;
}
