#ifndef DGF_OBS_METRICS_H_
#define DGF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dgf::obs {

/// Adds `v` to `a` with relaxed ordering (reporting-only accumulators).
/// CAS loop rather than std::atomic<double>::fetch_add so the hot path does
/// not depend on the toolchain's C++20 atomic-float support.
inline void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

/// Monotonic event counter. Increment is one relaxed fetch_add; callers hold
/// the pointer returned by MetricsRegistry::GetCounter so the hot path never
/// touches the registry lock.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double, with an additive mode for accumulated seconds
/// (the append pipeline's per-stage totals).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { AtomicAddDouble(value_, v); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log-bucketed latency histogram: exact bucket counts, approximate
/// quantiles.
///
/// Bucket bounds grow by a factor of sqrt(2) from 1 microsecond, 64 buckets
/// (the last is the +Inf overflow), covering ~1us .. ~50 minutes. Observe is
/// a ~6-step binary search plus two relaxed atomic adds — no lock, no
/// allocation, safe from any thread. Quantile walks a snapshot of the bucket
/// counts and interpolates linearly inside the winning bucket, so the
/// estimate is within one bucket width (a factor of sqrt(2)) of the exact
/// order statistic; the obs tests assert that bound against a sorted sample.
///
/// This replaces the services' bespoke sliding-window percentile code, which
/// copied and sorted a 4096-entry window under the service lock on every
/// STATS request (O(n log n) per report).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;
  /// Upper bound of bucket i (i < kNumBuckets - 1); the last bucket is +Inf.
  static double BucketBound(size_t i);

  void Observe(double value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    AtomicAddDouble(sum_, value);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Approximate q-quantile (q in [0,1]) of everything observed so far;
  /// 0 when empty. Within a factor of sqrt(2) of the exact order statistic.
  double Quantile(double q) const;

  /// Bucket counts snapshot, index-aligned with BucketBound.
  std::array<uint64_t, kNumBuckets> Buckets() const;

  static size_t BucketIndex(double value);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Thread-safe registry of named metrics.
///
/// Get* registers on first use and returns a pointer that stays valid for
/// the registry's lifetime — components resolve their metrics once at wiring
/// time and then increment lock-free. SetCallback registers a gauge whose
/// value is computed at snapshot time (the bridge for pre-existing atomic
/// counters like MiniDfs's failover/checksum totals, which keep their own
/// storage).
///
/// Naming scheme: lowercase dotted paths, `<component>.<what>[_<unit>]` —
/// `queries.admitted`, `appends.staging_s`, `fs.read_failovers`,
/// `coord.replica_retries`. Histograms flatten into `<name>.count`,
/// `<name>.sum`, `<name>.p50/.p95/.p99` in snapshots; the Prometheus
/// renderer emits them as real histogram series with `le` buckets.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry a daemon's components share (never destroyed).
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  /// Registers (or replaces) a snapshot-time gauge computed by `fn`.
  void SetCallback(const std::string& name, std::function<double()> fn);

  /// Every metric flattened to (name, value), sorted by name. Histograms
  /// contribute `<name>.count`, `<name>.sum`, `<name>.p50/.p95/.p99`.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  /// Prometheus text exposition (dots become underscores, `dgf_` prefix).
  std::string RenderPrometheus() const;

  /// Flat JSON object `{"queries.admitted": 12, ...}` from Snapshot().
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> callbacks_;
};

}  // namespace dgf::obs

#endif  // DGF_OBS_METRICS_H_
