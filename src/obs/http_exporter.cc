#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dgf::obs {
namespace {

/// HttpGet refuses to buffer more than this much response.
constexpr size_t kHttpGetMaxResponseBytes = 8u << 20;

Result<int> HttpListenTcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") + std::strerror(err));
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

void SetSocketTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAllBytes(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string MakeHttpResponse(int code, const std::string& reason,
                             const std::string& content_type,
                             const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Result<std::unique_ptr<HttpExporter>> HttpExporter::Start(Options options) {
  if (options.registry == nullptr) {
    return Status::InvalidArgument("HttpExporter requires a MetricsRegistry");
  }
  std::unique_ptr<HttpExporter> exporter(new HttpExporter(options));
  DGF_ASSIGN_OR_RETURN(exporter->listen_fd_,
                       HttpListenTcp(options.port, &exporter->port_));
  {
    std::lock_guard<std::mutex> lock(exporter->mu_);
    exporter->threads_.emplace_back([e = exporter.get()] { e->AcceptLoop(); });
  }
  return exporter;
}

HttpExporter::~HttpExporter() { Shutdown(); }

void HttpExporter::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed or broken
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (torn_down_) {
      ::close(fd);
      return;
    }
    open_fds_.push_back(fd);
    threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void HttpExporter::HandleConnection(int fd) {
  SetSocketTimeout(fd, options_.recv_timeout_seconds);
  // Read until the end of the request head; everything past the blank line
  // (there is no legitimate GET body) is ignored. The byte budget caps how
  // much a header flood can make us buffer.
  std::string head;
  bool complete = false;
  bool overflow = false;
  char buf[1024];
  while (!complete && !overflow) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed early, timed out, or errored
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
    } else if (head.size() > options_.max_request_bytes) {
      overflow = true;
    }
  }

  std::string response;
  if (overflow) {
    response = MakeHttpResponse(431, "Request Header Fields Too Large",
                                "text/plain", "request too large\n");
  } else if (!complete) {
    response = MakeHttpResponse(408, "Request Timeout", "text/plain",
                                "incomplete request\n");
  } else {
    response = RespondTo(head);
  }
  SendAllBytes(fd, response);
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

std::string HttpExporter::RespondTo(const std::string& head) const {
  // Parse "METHOD SP PATH SP VERSION" from the first line; be strict —
  // anything else is a 400, never a crash.
  const size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    return MakeHttpResponse(400, "Bad Request", "text/plain",
                            "malformed request line\n");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method = line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? line.substr(sp1 + 1)
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method.empty() || path.empty() || path[0] != '/') {
    return MakeHttpResponse(400, "Bad Request", "text/plain",
                            "malformed request line\n");
  }
  if (method != "GET") {
    return MakeHttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  }
  const size_t query_pos = path.find('?');
  if (query_pos != std::string::npos) path.resize(query_pos);

  if (path == "/healthz") {
    return MakeHttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    return MakeHttpResponse(200, "OK", "text/plain; version=0.0.4",
                            options_.registry->RenderPrometheus());
  }
  if (path == "/stats") {
    return MakeHttpResponse(200, "OK", "application/json",
                            options_.registry->RenderJson());
  }
  if (path == "/trace") {
    const std::string body =
        options_.trace_log ? options_.trace_log->RenderJson() : "[]";
    return MakeHttpResponse(200, "OK", "application/json", body);
  }
  return MakeHttpResponse(404, "Not Found", "text/plain",
                          "unknown path " + path + "\n");
}

void HttpExporter::Shutdown() {
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (torn_down_) return;
    torn_down_ = true;
    threads.swap(threads_);
    fds.swap(open_fds_);
  }
  stopping_.store(true, std::memory_order_release);
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  // Connection handlers own their fds and close them on exit; shutdown just
  // interrupts any blocked recv so the joins below cannot hang.
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& thread : threads) thread.join();
}

Result<HttpResponse> HttpGet(int port, const std::string& path,
                             double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  SetSocketTimeout(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("connect: ") + std::strerror(err));
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (!SendAllBytes(fd, request)) {
    ::close(fd);
    return Status::IOError("send failed");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
    if (raw.size() > kHttpGetMaxResponseBytes) break;
  }
  ::close(fd);

  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    return Status::IOError("short or malformed HTTP response");
  }
  const std::string status_line = raw.substr(0, line_end);
  const size_t sp = status_line.find(' ');
  if (sp == std::string::npos || sp + 4 > status_line.size()) {
    return Status::IOError("malformed HTTP status line: " + status_line);
  }
  HttpResponse response;
  response.status_code = std::atoi(status_line.c_str() + sp + 1);
  const size_t body_start = raw.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    response.body = raw.substr(body_start + 4);
  }
  return response;
}

}  // namespace dgf::obs
