#ifndef DGF_OBS_TRACE_H_
#define DGF_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace dgf::obs {

/// One timed phase of a query, offsets in seconds from the query's start.
/// Carried inside QueryStats across the wire: a coordinator prefixes the
/// spans a shard returns with `shard<N>.` and rebases their starts onto its
/// own clock, so a cross-shard trace reads as one timeline.
struct SpanTiming {
  std::string name;
  double start_seconds = 0;
  double duration_seconds = 0;
};

/// A completed query's trace as kept by the /trace ring buffer.
struct QueryTrace {
  uint64_t trace_id = 0;
  std::string sql;
  double total_seconds = 0;
  std::vector<SpanTiming> spans;
};

/// Fresh process-unique trace id: services assign one when a request arrives
/// without (wire trace_id 0), so a trace exists whether or not the client
/// asked for it. Seeded from the clock so ids from coordinator and shards
/// don't collide visually in logs.
uint64_t NextTraceId();

/// Bounded ring of recently completed query traces, served at /trace.
/// Records are mutex-guarded but queries only touch it once at completion,
/// so it is nowhere near any hot path.
class TraceLog {
 public:
  struct Options {
    size_t capacity = 64;
    /// Only queries at least this slow are kept (0 keeps everything).
    double min_seconds = 0;
  };

  TraceLog() : TraceLog(Options{}) {}
  explicit TraceLog(Options options) : options_(options) {}

  void Record(QueryTrace trace);

  /// Most recent first.
  std::vector<QueryTrace> Traces() const;

  /// JSON array of traces, most recent first.
  std::string RenderJson() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::deque<QueryTrace> traces_;
};

}  // namespace dgf::obs

#endif  // DGF_OBS_TRACE_H_
