#ifndef DGF_OBS_HTTP_EXPORTER_H_
#define DGF_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dgf::obs {

/// Minimal embedded HTTP/1.0 observability endpoint.
///
///   GET /metrics  -> Prometheus text exposition of the registry
///   GET /stats    -> the same snapshot as flat JSON
///   GET /trace    -> JSON ring buffer of recent query traces
///   GET /healthz  -> "ok"
///
/// Deliberately not a web server: every response closes the connection
/// (HTTP/1.0, `Connection: close`), request lines are parsed with a byte
/// budget and a receive timeout so malformed peers, header floods, and
/// half-open sockets cannot wedge an accept slot, and anything that is not
/// `GET <known-path>` gets a 400/404/405. Same thread-per-connection /
/// stopping-flag shutdown discipline as server::Server, sharing its socket
/// conventions (127.0.0.1, SO_REUSEADDR, ephemeral port via getsockname).
class HttpExporter {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see `port()`).
    int port = 0;
    /// Borrowed; must outlive the exporter.
    MetricsRegistry* registry = nullptr;
    /// Optional; /trace returns [] when null.
    TraceLog* trace_log = nullptr;
    /// A connection that has not produced a full request within this window
    /// is answered 408 and closed.
    double recv_timeout_seconds = 5.0;
    /// Request head (request line + headers) byte budget; 431 beyond it.
    size_t max_request_bytes = 8192;
  };

  static Result<std::unique_ptr<HttpExporter>> Start(Options options);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Bound TCP port.
  int port() const { return port_; }

  /// Stops accepting, closes every connection, joins all threads. Idempotent.
  void Shutdown();

 private:
  explicit HttpExporter(Options options) : options_(options) {}

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Full response bytes (status line + headers + body) for one request
  /// head; never fails — protocol errors become 4xx responses.
  std::string RespondTo(const std::string& head) const;

  Options options_;
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  bool torn_down_ = false;
  std::vector<int> open_fds_;
  std::vector<std::thread> threads_;  // accept thread + one per connection
};

/// Tiny blocking HTTP/1.0 GET against 127.0.0.1:`port` — the client side for
/// dgf_cli stats, the obs tests, the wire-fuzz HTTP stage, and the bench
/// responsiveness probe. Returns the status code and body.
struct HttpResponse {
  int status_code = 0;
  std::string body;
};
Result<HttpResponse> HttpGet(int port, const std::string& path,
                             double timeout_seconds = 5.0);

}  // namespace dgf::obs

#endif  // DGF_OBS_HTTP_EXPORTER_H_
