#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dgf::obs {

namespace {

std::string JsonEscapeTrace(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count())
      << 16};
  uint64_t id;
  do {
    id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  } while (id == 0);
  return id;
}

void TraceLog::Record(QueryTrace trace) {
  if (trace.total_seconds < options_.min_seconds) return;
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(trace));
  while (traces_.size() > options_.capacity) traces_.pop_front();
}

std::vector<QueryTrace> TraceLog::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryTrace>(traces_.rbegin(), traces_.rend());
}

std::string TraceLog::RenderJson() const {
  const auto traces = Traces();
  std::string out = "[";
  for (size_t i = 0; i < traces.size(); ++i) {
    const auto& t = traces[i];
    if (i > 0) out += ",";
    out += "{\"trace_id\":" + std::to_string(t.trace_id);
    out += ",\"sql\":\"" + JsonEscapeTrace(t.sql) + "\"";
    out += ",\"total_seconds\":" + Num(t.total_seconds);
    out += ",\"spans\":[";
    for (size_t j = 0; j < t.spans.size(); ++j) {
      const auto& s = t.spans[j];
      if (j > 0) out += ",";
      out += "{\"name\":\"" + JsonEscapeTrace(s.name) + "\"";
      out += ",\"start_s\":" + Num(s.start_seconds);
      out += ",\"duration_s\":" + Num(s.duration_seconds) + "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace dgf::obs
