#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dgf::obs {

namespace {

// Bounds table shared by BucketIndex and Quantile; bound[i] = 1e-6 * 2^(i/2).
const std::array<double, Histogram::kNumBuckets - 1>& Bounds() {
  static const std::array<double, Histogram::kNumBuckets - 1> bounds = [] {
    std::array<double, Histogram::kNumBuckets - 1> b{};
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = 1e-6 * std::pow(2.0, static_cast<double>(i) / 2.0);
    }
    return b;
  }();
  return bounds;
}

std::string FormatValue(double v) {
  char buf[64];
  // Counters dominate; render integral values without an exponent.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string PromName(const std::string& name) {
  std::string out = "dgf_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

double Histogram::BucketBound(size_t i) { return Bounds()[i]; }

size_t Histogram::BucketIndex(double value) {
  const auto& bounds = Bounds();
  // First bucket whose upper bound admits the value; overflow otherwise.
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<size_t>(it - bounds.begin());
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::Buckets() const {
  std::array<uint64_t, kNumBuckets> out{};
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const auto counts = Buckets();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // Rank of the order statistic we are estimating (0-based, inclusive).
  const double rank = q * static_cast<double>(total - 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double first = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (rank >= static_cast<double>(cumulative)) continue;

    const double lo = i == 0 ? 0.0 : BucketBound(i - 1);
    // The overflow bucket has no upper bound; report its lower edge.
    if (i == kNumBuckets - 1) return lo;
    const double hi = BucketBound(i);
    const double frac =
        counts[i] == 1 ? 0.5
                       : (rank - first) / static_cast<double>(counts[i] - 1);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return BucketBound(kNumBuckets - 2);
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::SetCallback(const std::string& name,
                                  std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(fn);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot() const {
  // Copy the pointers / callbacks out so metric evaluation (callbacks may
  // take component locks) happens outside the registry lock.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, std::function<double()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
    for (const auto& [name, fn] : callbacks_) callbacks.emplace_back(name, fn);
  }

  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters.size() + gauges.size() + callbacks.size() +
              histograms.size() * 5);
  for (const auto& [name, c] : counters)
    out.emplace_back(name, static_cast<double>(c->Value()));
  for (const auto& [name, g] : gauges) out.emplace_back(name, g->Value());
  for (const auto& [name, fn] : callbacks) out.emplace_back(name, fn());
  for (const auto& [name, h] : histograms) {
    out.emplace_back(name + ".count", static_cast<double>(h->Count()));
    out.emplace_back(name + ".sum", h->Sum());
    out.emplace_back(name + ".p50", h->Quantile(0.50));
    out.emplace_back(name + ".p95", h->Quantile(0.95));
    out.emplace_back(name + ".p99", h->Quantile(0.99));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, std::function<double()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
    for (const auto& [name, fn] : callbacks_) callbacks.emplace_back(name, fn);
  }

  std::string out;
  for (const auto& [name, c] : counters) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + FormatValue(static_cast<double>(c->Value())) + "\n";
  }
  for (const auto& [name, g] : gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatValue(g->Value()) + "\n";
  }
  for (const auto& [name, fn] : callbacks) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatValue(fn()) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = PromName(name);
    const auto counts = h->Buckets();
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += counts[i];
      if (counts[i] == 0 && i + 1 < Histogram::kNumBuckets) continue;
      const std::string le = i + 1 < Histogram::kNumBuckets
                                 ? FormatValue(Histogram::BucketBound(i))
                                 : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    out += prom + "_sum " + FormatValue(h->Sum()) + "\n";
    out += prom + "_count " + FormatValue(static_cast<double>(h->Count())) +
           "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  const auto snapshot = Snapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FormatValue(value);
  }
  out += "}";
  return out;
}

}  // namespace dgf::obs
