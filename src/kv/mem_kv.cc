#include "kv/mem_kv.h"

#include <algorithm>
#include <vector>

namespace dgf::kv {
namespace {

using Materialized = std::vector<std::pair<std::string, std::string>>;

// Binary search over a sorted entry vector; returns nullptr if absent.
const std::string* FindIn(const Materialized& data, std::string_view key) {
  auto it = std::lower_bound(data.begin(), data.end(), key,
                             [](const auto& entry, std::string_view t) {
                               return entry.first < t;
                             });
  if (it == data.end() || it->first != key) return nullptr;
  return &it->second;
}

/// Iterator over a shared immutable entry vector. Holding the shared_ptr
/// keeps the snapshot alive for the iterator's lifetime.
class SharedVecIterator : public Iterator {
 public:
  explicit SharedVecIterator(std::shared_ptr<const Materialized> data)
      : data_(std::move(data)), pos_(data_->size()) {}

  void Seek(std::string_view target) override {
    pos_ = static_cast<size_t>(
        std::lower_bound(data_->begin(), data_->end(), target,
                         [](const auto& entry, std::string_view t) {
                           return entry.first < t;
                         }) -
        data_->begin());
  }

  void SeekToFirst() override { pos_ = 0; }
  void Next() override { ++pos_; }
  bool Valid() const override { return pos_ < data_->size(); }
  std::string_view key() const override { return (*data_)[pos_].first; }
  std::string_view value() const override { return (*data_)[pos_].second; }

 private:
  std::shared_ptr<const Materialized> data_;
  size_t pos_;
};

/// Immutable view: a shared sorted vector plus the version it was taken at.
class MemKvSnapshot : public KvSnapshot {
 public:
  MemKvSnapshot(std::shared_ptr<const Materialized> data, uint64_t version)
      : data_(std::move(data)), version_(version) {}

  Result<std::string> Get(std::string_view key) const override {
    const std::string* value = FindIn(*data_, key);
    if (value == nullptr) return Status::NotFound("key not found");
    return *value;
  }

  std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) const override {
    std::vector<Result<std::string>> results;
    results.reserve(keys.size());
    for (const std::string& key : keys) results.push_back(Get(key));
    return results;
  }

  std::unique_ptr<Iterator> NewIterator() const override {
    return std::make_unique<SharedVecIterator>(data_);
  }

  uint64_t version() const override { return version_; }

 private:
  std::shared_ptr<const Materialized> data_;
  uint64_t version_;
};

}  // namespace

std::shared_ptr<const Materialized> MemKv::MaterializedLocked() {
  if (!materialized_) {
    materialized_ = std::make_shared<const Materialized>(data_.begin(),
                                                         data_.end());
  }
  return materialized_;
}

Status MemKv::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[std::string(key)] = std::string(value);
  ++version_;
  materialized_.reset();
  return Status::OK();
}

Result<std::string> MemKv::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(std::string(key));
  if (it == data_.end()) return Status::NotFound("key not found");
  return it->second;
}

std::vector<Result<std::string>> MemKv::MultiGet(
    std::span<const std::string> keys) {
  std::vector<Result<std::string>> results;
  results.reserve(keys.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& key : keys) {
    auto it = data_.find(key);
    if (it == data_.end()) {
      results.push_back(Status::NotFound("key not found"));
    } else {
      results.push_back(it->second);
    }
  }
  return results;
}

Status MemKv::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.erase(std::string(key));
  ++version_;
  materialized_.reset();
  return Status::OK();
}

Status MemKv::ApplyBatch(const WriteBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const WriteBatch::Entry& entry : batch.entries()) {
    if (entry.is_delete) {
      data_.erase(entry.key);
    } else {
      data_[entry.key] = entry.value;
    }
  }
  ++version_;
  materialized_.reset();
  return Status::OK();
}

std::shared_ptr<const KvSnapshot> MemKv::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<MemKvSnapshot>(MaterializedLocked(), version_);
}

uint64_t MemKv::version() {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::unique_ptr<Iterator> MemKv::NewIterator() {
  std::shared_ptr<const Materialized> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = MaterializedLocked();
  }
  return std::make_unique<SharedVecIterator>(snapshot);
}

Result<uint64_t> MemKv::Count() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint64_t>(data_.size());
}

Result<uint64_t> MemKv::ApproximateSizeBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, value] : data_) total += key.size() + value.size();
  return total;
}

}  // namespace dgf::kv
