#include "kv/mem_kv.h"

#include <algorithm>
#include <vector>

namespace dgf::kv {
namespace {

/// Snapshot-backed iterator: copies the entries once at creation.
class MemKvIterator : public Iterator {
 public:
  explicit MemKvIterator(std::vector<std::pair<std::string, std::string>> data)
      : data_(std::move(data)), pos_(data_.size()) {}

  void Seek(std::string_view target) override {
    pos_ = static_cast<size_t>(
        std::lower_bound(data_.begin(), data_.end(), target,
                         [](const auto& entry, std::string_view t) {
                           return entry.first < t;
                         }) -
        data_.begin());
  }

  void SeekToFirst() override { pos_ = 0; }
  void Next() override { ++pos_; }
  bool Valid() const override { return pos_ < data_.size(); }
  std::string_view key() const override { return data_[pos_].first; }
  std::string_view value() const override { return data_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> data_;
  size_t pos_;
};

}  // namespace

Status MemKv::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[std::string(key)] = std::string(value);
  return Status::OK();
}

Result<std::string> MemKv::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(std::string(key));
  if (it == data_.end()) return Status::NotFound("key not found");
  return it->second;
}

std::vector<Result<std::string>> MemKv::MultiGet(
    std::span<const std::string> keys) {
  std::vector<Result<std::string>> results;
  results.reserve(keys.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& key : keys) {
    auto it = data_.find(key);
    if (it == data_.end()) {
      results.push_back(Status::NotFound("key not found"));
    } else {
      results.push_back(it->second);
    }
  }
  return results;
}

Status MemKv::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.erase(std::string(key));
  return Status::OK();
}

std::unique_ptr<Iterator> MemKv::NewIterator() {
  std::vector<std::pair<std::string, std::string>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.assign(data_.begin(), data_.end());
  }
  return std::make_unique<MemKvIterator>(std::move(snapshot));
}

Result<uint64_t> MemKv::Count() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint64_t>(data_.size());
}

Result<uint64_t> MemKv::ApproximateSizeBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, value] : data_) total += key.size() + value.size();
  return total;
}

}  // namespace dgf::kv
