#include "kv/lsm_kv.h"

#include <algorithm>
#include <set>

#include "common/encoding.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "testing/crash_point.h"

namespace dgf::kv {
namespace {

using MemVec = std::vector<std::pair<std::string, std::optional<std::string>>>;

// WAL record: varint(key_len) key varint(value_len+1) value; 0 = tombstone.
void EncodeWalRecord(std::string* out, std::string_view key,
                     std::string_view value, bool tombstone) {
  PutLengthPrefixed(out, key);
  if (tombstone) {
    PutVarint64(out, 0);
  } else {
    PutVarint64(out, value.size() + 1);
    out->append(value);
  }
}

/// Merging iterator over memtable snapshot + runs with newest-wins dedup.
/// Holds its sources by shared_ptr so it stays valid after the store moves
/// on (flush, compaction, or further writes).
class LsmIterator : public Iterator {
 public:
  LsmIterator(std::shared_ptr<const MemVec> memtable_snapshot,
              std::vector<std::shared_ptr<SstableReader>> runs)
      : memtable_holder_(std::move(memtable_snapshot)),
        memtable_(*memtable_holder_),
        runs_(std::move(runs)) {
    // Source 0 is the memtable (newest); then runs newest to oldest.
    for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
      run_iters_.push_back(std::make_unique<SstableIterator>(
          std::shared_ptr<const SstableReader>(*it)));
    }
  }

  void Seek(std::string_view target) override {
    mem_pos_ = static_cast<size_t>(
        std::lower_bound(memtable_.begin(), memtable_.end(), target,
                         [](const auto& entry, std::string_view t) {
                           return entry.first < t;
                         }) -
        memtable_.begin());
    for (auto& it : run_iters_) it->Seek(target);
    FindNextLive(/*skip_current=*/false);
  }

  void SeekToFirst() override {
    mem_pos_ = 0;
    for (auto& it : run_iters_) it->SeekToFirst();
    FindNextLive(/*skip_current=*/false);
  }

  void Next() override { FindNextLive(/*skip_current=*/true); }

  bool Valid() const override { return valid_; }
  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }

 private:
  // Advances every source past `key` (used after emitting or shadowing it).
  void SkipKeyEverywhere(std::string_view key) {
    if (mem_pos_ < memtable_.size() && memtable_[mem_pos_].first == key) {
      ++mem_pos_;
    }
    for (auto& it : run_iters_) {
      if (it->Valid() && it->key() == key) it->Next();
    }
  }

  void FindNextLive(bool skip_current) {
    if (skip_current && valid_) SkipKeyEverywhere(key_);
    for (;;) {
      // Pick the smallest key across sources; ties resolve to the newest
      // source (memtable first, then newer runs).
      int best = -1;  // -1 = none, 0 = memtable, i>0 = run_iters_[i-1]
      std::string_view best_key;
      if (mem_pos_ < memtable_.size()) {
        best = 0;
        best_key = memtable_[mem_pos_].first;
      }
      for (size_t i = 0; i < run_iters_.size(); ++i) {
        if (!run_iters_[i]->Valid()) continue;
        const std::string_view k = run_iters_[i]->key();
        if (best == -1 || k < best_key) {
          best = static_cast<int>(i) + 1;
          best_key = k;
        }
      }
      if (best == -1) {
        valid_ = false;
        return;
      }
      bool tombstone;
      if (best == 0) {
        tombstone = !memtable_[mem_pos_].second.has_value();
        key_buf_.assign(best_key);
        if (!tombstone) value_buf_ = *memtable_[mem_pos_].second;
      } else {
        auto& it = run_iters_[static_cast<size_t>(best) - 1];
        tombstone = it->IsTombstone();
        key_buf_.assign(best_key);
        if (!tombstone) value_buf_.assign(it->value());
      }
      SkipKeyEverywhere(key_buf_);
      if (!tombstone) {
        key_ = key_buf_;
        value_ = value_buf_;
        valid_ = true;
        return;
      }
      // Tombstone: the key is dead; continue with the next smallest key.
    }
  }

  std::shared_ptr<const MemVec> memtable_holder_;
  const MemVec& memtable_;
  std::vector<std::shared_ptr<SstableReader>> runs_;
  std::vector<std::unique_ptr<SstableIterator>> run_iters_;
  size_t mem_pos_ = 0;
  bool valid_ = false;
  std::string key_buf_;
  std::string value_buf_;
  std::string_view key_;
  std::string_view value_;
};

// Binary search over a sorted memtable copy; returns nullptr when the key is
// not present (a present tombstone returns a pointer to the nullopt).
const std::optional<std::string>* FindInMemVec(const MemVec& mem,
                                               std::string_view key) {
  auto it = std::lower_bound(mem.begin(), mem.end(), key,
                             [](const auto& entry, std::string_view t) {
                               return entry.first < t;
                             });
  if (it == mem.end() || it->first != key) return nullptr;
  return &it->second;
}

// Resolves the keys at `pending` indices against `runs` (newest last): each
// run serves the batch in one forward merge-join pass over sorted keys.
// Results for keys a run resolves are written into `results`; keys no run
// knows keep their initial NotFound.
void ProbeRunsSorted(std::span<const std::string> keys,
                     std::vector<size_t> pending,
                     const std::vector<std::shared_ptr<SstableReader>>& runs,
                     std::vector<Result<std::string>>* results) {
  if (pending.empty()) return;
  std::sort(pending.begin(), pending.end(),
            [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  for (auto run = runs.rbegin(); run != runs.rend() && !pending.empty();
       ++run) {
    std::vector<std::string_view> sorted_keys;
    sorted_keys.reserve(pending.size());
    for (size_t idx : pending) sorted_keys.push_back(keys[idx]);
    auto probes = (*run)->MultiGet(sorted_keys);
    if (!probes.ok()) {
      for (size_t idx : pending) (*results)[idx] = probes.status();
      return;
    }
    std::vector<size_t> still_pending;
    for (size_t i = 0; i < pending.size(); ++i) {
      SstableReader::ProbeResult& probe = (*probes)[i];
      switch (probe.state) {
        case SstableReader::ProbeResult::kFound:
          (*results)[pending[i]] = std::move(probe.value);
          break;
        case SstableReader::ProbeResult::kTombstone:
          (*results)[pending[i]] = Status::NotFound("deleted");
          break;
        case SstableReader::ProbeResult::kAbsent:
          still_pending.push_back(pending[i]);
          break;
      }
    }
    pending = std::move(still_pending);
  }
}

/// Immutable view of the store: a shared memtable copy plus the run set that
/// was live when the snapshot was taken. The shared_ptrs keep both alive —
/// SstableReader maps the whole run into memory at open, so even a run whose
/// file compaction has since deleted stays fully readable.
class LsmSnapshot : public KvSnapshot {
 public:
  LsmSnapshot(std::shared_ptr<const MemVec> mem,
              std::vector<std::shared_ptr<SstableReader>> runs,
              uint64_t version)
      : mem_(std::move(mem)), runs_(std::move(runs)), version_(version) {}

  Result<std::string> Get(std::string_view key) const override {
    if (const auto* slot = FindInMemVec(*mem_, key)) {
      if (!slot->has_value()) return Status::NotFound("deleted");
      return **slot;
    }
    for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
      bool deleted = false;
      auto value = (*run)->Get(key, &deleted);
      if (value.ok()) {
        if (deleted) return Status::NotFound("deleted");
        return value;
      }
      if (!value.status().IsNotFound()) return value.status();
    }
    return Status::NotFound("key not found");
  }

  std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) const override {
    std::vector<Result<std::string>> results;
    results.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      results.push_back(Status::NotFound("key not found"));
    }
    std::vector<size_t> pending;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (const auto* slot = FindInMemVec(*mem_, keys[i])) {
        if (slot->has_value()) {
          results[i] = **slot;
        } else {
          results[i] = Status::NotFound("deleted");
        }
      } else {
        pending.push_back(i);
      }
    }
    ProbeRunsSorted(keys, std::move(pending), runs_, &results);
    return results;
  }

  std::unique_ptr<Iterator> NewIterator() const override {
    return std::make_unique<LsmIterator>(mem_, runs_);
  }

  uint64_t version() const override { return version_; }

 private:
  std::shared_ptr<const MemVec> mem_;
  std::vector<std::shared_ptr<SstableReader>> runs_;
  uint64_t version_;
};

}  // namespace

LsmKv::LsmKv(Options options) : options_(std::move(options)) {}

LsmKv::~LsmKv() {
  if (wal_) {
    Status st = wal_->Close();
    if (!st.ok()) {
      DGF_LOG(kWarn) << "WAL close failed: " << st.ToString();
    }
  }
}

Result<std::unique_ptr<LsmKv>> LsmKv::Open(Options options) {
  if (options.dfs == nullptr) {
    return Status::InvalidArgument("LsmKv requires a MiniDfs");
  }
  if (options.dir.empty() || options.dir.front() != '/') {
    return Status::InvalidArgument("LsmKv dir must be absolute");
  }
  std::unique_ptr<LsmKv> store(new LsmKv(std::move(options)));
  DGF_RETURN_IF_ERROR(store->Recover());
  return store;
}

std::string LsmKv::RunPath(uint64_t id) const {
  return options_.dir + "/" + StringPrintf("run-%06llu.sst",
                                           static_cast<unsigned long long>(id));
}

Status LsmKv::Recover() {
  auto& dfs = *options_.dfs;
  const std::string manifest_path = options_.dir + "/MANIFEST";
  const std::string tmp_path = options_.dir + "/MANIFEST.tmp";
  // Roll forward a crash that landed between deleting the old MANIFEST and
  // renaming the new one into place: MANIFEST.tmp is written and closed
  // before the old manifest is touched, so when only the tmp exists it is
  // complete and authoritative. Without this, such a crash would silently
  // drop every run — the WAL only covers records since the last flush.
  if (!dfs.Exists(manifest_path) && dfs.Exists(tmp_path)) {
    DGF_RETURN_IF_ERROR(dfs.Rename(tmp_path, manifest_path));
  } else if (dfs.Exists(tmp_path)) {
    // A tmp next to a live manifest is a crash leftover; it may reference
    // runs the orphan cleanup below deletes, so drop it.
    DGF_RETURN_IF_ERROR(dfs.Delete(tmp_path));
  }
  std::set<std::string> live_runs;
  if (dfs.Exists(manifest_path)) {
    DGF_ASSIGN_OR_RETURN(auto reader, dfs.OpenForRead(manifest_path));
    std::string contents;
    DGF_RETURN_IF_ERROR(reader->Pread(0, reader->Length(), &contents));
    for (std::string_view line : SplitString(contents, '\n')) {
      line = TrimString(line);
      if (line.empty()) continue;
      if (line.front() == '#') {
        // Header line. `#epoch N` restores the mutation epoch recorded at the
        // last manifest write; unknown headers are ignored for forward
        // compatibility. Manifests from before epochs existed simply have no
        // header and recover with epoch 0.
        if (line.substr(0, 7) == "#epoch ") {
          auto epoch = ParseInt64(TrimString(line.substr(7)));
          if (epoch.ok()) version_ = static_cast<uint64_t>(*epoch);
        }
        continue;
      }
      DGF_ASSIGN_OR_RETURN(
          auto run, SstableReader::Open(options_.dfs, std::string(line)));
      runs_.push_back(std::move(run));
      live_runs.insert(std::string(line));
    }
  }
  // Scan the directory for run files. Every id ever used — including orphans
  // a crash sealed but never adopted into the manifest — must stay retired,
  // or the next flush would collide with AlreadyExists. Orphans themselves
  // are deleted: nothing references them and their records are still in the
  // WAL.
  for (const fs::FileStatus& file : dfs.ListFiles(options_.dir + "/run-")) {
    const size_t dash = file.path.rfind('-');
    const size_t dot = file.path.rfind('.');
    if (dash != std::string::npos && dot != std::string::npos && dash < dot) {
      auto id = ParseInt64(
          std::string_view(file.path).substr(dash + 1, dot - dash - 1));
      if (id.ok()) next_run_id_ = std::max<uint64_t>(next_run_id_, *id + 1);
    }
    if (live_runs.count(file.path) == 0) {
      Status st = dfs.Delete(file.path);
      if (!st.ok()) {
        DGF_LOG(kWarn) << "orphan run delete: " << st.ToString();
      }
    }
  }
  wal_path_ = options_.dir + "/WAL";
  if (dfs.Exists(wal_path_)) {
    DGF_RETURN_IF_ERROR(ReplayWal(wal_path_));
    DGF_ASSIGN_OR_RETURN(wal_, dfs.Append(wal_path_));
  } else {
    DGF_ASSIGN_OR_RETURN(wal_, dfs.Create(wal_path_));
  }
  return Status::OK();
}

Status LsmKv::ReplayWal(const std::string& path) {
  DGF_ASSIGN_OR_RETURN(auto reader, options_.dfs->OpenForRead(path));
  std::string contents;
  DGF_RETURN_IF_ERROR(reader->Pread(0, reader->Length(), &contents));
  std::string_view cursor(contents);
  while (!cursor.empty()) {
    auto key = GetLengthPrefixed(&cursor);
    if (!key.ok()) break;  // torn tail write: stop replay, keep prefix
    auto vlen = GetVarint64(&cursor);
    if (!vlen.ok()) break;
    if (*vlen == 0) {
      memtable_[std::string(*key)] = std::nullopt;
      memtable_bytes_ += key->size() + 1;
      ++version_;  // keep the epoch monotonic across restarts
      continue;
    }
    if (cursor.size() < *vlen - 1) break;
    memtable_[std::string(*key)] = std::string(cursor.substr(0, *vlen - 1));
    memtable_bytes_ += key->size() + *vlen;
    ++version_;
    cursor.remove_prefix(*vlen - 1);
  }
  return Status::OK();
}

Status LsmKv::WriteWal(std::string_view key, std::string_view value,
                       bool tombstone) {
  std::string record;
  EncodeWalRecord(&record, key, value, tombstone);
  return wal_->Append(record);
}

Status LsmKv::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  DGF_RETURN_IF_ERROR(WriteWal(key, value, /*tombstone=*/false));
  memtable_[std::string(key)] = std::string(value);
  memtable_bytes_ += key.size() + value.size() + 1;
  ++version_;
  mem_snapshot_.reset();
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

Status LsmKv::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  DGF_RETURN_IF_ERROR(WriteWal(key, {}, /*tombstone=*/true));
  memtable_[std::string(key)] = std::nullopt;
  memtable_bytes_ += key.size() + 1;
  ++version_;
  mem_snapshot_.reset();
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

Status LsmKv::ApplyBatch(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  // One concatenated WAL append makes the batch a single durability unit:
  // a torn tail during replay drops a suffix of records, never interleaves
  // a later writer's records inside ours.
  std::string records;
  for (const WriteBatch::Entry& entry : batch.entries()) {
    EncodeWalRecord(&records, entry.key, entry.value, entry.is_delete);
  }
  DGF_RETURN_IF_ERROR(wal_->Append(records));
  for (const WriteBatch::Entry& entry : batch.entries()) {
    if (entry.is_delete) {
      memtable_[entry.key] = std::nullopt;
      memtable_bytes_ += entry.key.size() + 1;
    } else {
      memtable_[entry.key] = entry.value;
      memtable_bytes_ += entry.key.size() + entry.value.size() + 1;
    }
  }
  ++version_;  // one bump: the batch is one logical mutation
  mem_snapshot_.reset();
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

std::shared_ptr<const LsmKv::MemVec> LsmKv::MemSnapshotLocked() {
  if (!mem_snapshot_) {
    mem_snapshot_ =
        std::make_shared<const MemVec>(memtable_.begin(), memtable_.end());
  }
  return mem_snapshot_;
}

std::shared_ptr<const KvSnapshot> LsmKv::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<LsmSnapshot>(MemSnapshotLocked(), runs_, version_);
}

uint64_t LsmKv::version() {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

Result<std::string> LsmKv::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memtable_.find(std::string(key));
  if (it != memtable_.end()) {
    if (!it->second.has_value()) return Status::NotFound("deleted");
    return *it->second;
  }
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    bool deleted = false;
    auto value = (*run)->Get(key, &deleted);
    if (value.ok()) {
      if (deleted) return Status::NotFound("deleted");
      return value;
    }
    if (!value.status().IsNotFound()) return value.status();
  }
  return Status::NotFound("key not found");
}

std::vector<Result<std::string>> LsmKv::MultiGet(
    std::span<const std::string> keys) {
  std::vector<Result<std::string>> results;
  results.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    results.push_back(Status::NotFound("key not found"));
  }

  // One lock acquisition resolves every memtable hit and snapshots the run
  // set; the (immutable) runs are then probed outside the lock.
  std::vector<size_t> pending;
  std::vector<std::shared_ptr<SstableReader>> runs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      auto it = memtable_.find(keys[i]);
      if (it == memtable_.end()) {
        pending.push_back(i);
      } else if (it->second.has_value()) {
        results[i] = *it->second;
      } else {
        results[i] = Status::NotFound("deleted");
      }
    }
    runs = runs_;
  }
  ProbeRunsSorted(keys, std::move(pending), runs, &results);
  return results;
}

std::unique_ptr<Iterator> LsmKv::NewIterator() {
  std::shared_ptr<const MemVec> snapshot;
  std::vector<std::shared_ptr<SstableReader>> runs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = MemSnapshotLocked();
    runs = runs_;
  }
  return std::make_unique<LsmIterator>(std::move(snapshot), std::move(runs));
}

Status LsmKv::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  DGF_CRASH_POINT("lsm.flush.before_sstable");
  const uint64_t run_id = next_run_id_++;
  DGF_ASSIGN_OR_RETURN(auto writer,
                       SstableWriter::Create(options_.dfs, RunPath(run_id)));
  for (const auto& [key, value] : memtable_) {
    DGF_RETURN_IF_ERROR(writer->Add(key, value.value_or(std::string()),
                                    /*tombstone=*/!value.has_value()));
  }
  DGF_RETURN_IF_ERROR(writer->Finish());
  DGF_CRASH_POINT("lsm.flush.after_sstable");
  DGF_ASSIGN_OR_RETURN(auto run,
                       SstableReader::Open(options_.dfs, RunPath(run_id)));
  runs_.push_back(std::move(run));
  DGF_CRASH_POINT("lsm.flush.before_manifest");
  if (Status st = WriteManifest(); !st.ok()) {
    // The run never became visible on disk; drop it from the in-memory view
    // too so a caller that survives the error keeps a consistent store (the
    // WAL still holds every memtable record).
    runs_.pop_back();
    return st;
  }
  // Only forget the memtable once the manifest has adopted the run; an error
  // in between must not make acknowledged records unreadable in memory.
  memtable_.clear();
  memtable_bytes_ = 0;
  mem_snapshot_.reset();
  DGF_CRASH_POINT("lsm.flush.before_wal_truncate");
  // Truncate the WAL: everything in it is now durable in a run.
  DGF_RETURN_IF_ERROR(wal_->Close());
  DGF_RETURN_IF_ERROR(options_.dfs->Delete(wal_path_));
  DGF_CRASH_POINT("lsm.flush.after_wal_delete");
  DGF_ASSIGN_OR_RETURN(wal_, options_.dfs->Create(wal_path_));
  if (static_cast<int>(runs_.size()) > options_.max_runs) {
    // Compact inline; the store is small relative to the data it indexes.
    std::vector<std::shared_ptr<SstableReader>> old_runs = runs_;
    DGF_RETURN_IF_ERROR([&]() -> Status {
      DGF_CRASH_POINT("lsm.compact.before_merge");
      const uint64_t merged_id = next_run_id_++;
      DGF_ASSIGN_OR_RETURN(
          auto merged_writer,
          SstableWriter::Create(options_.dfs, RunPath(merged_id)));
      LsmIterator merge_it(std::make_shared<const MemVec>(), runs_);
      // Keep tombstones out: a full compaction covers the whole history.
      for (merge_it.SeekToFirst(); merge_it.Valid(); merge_it.Next()) {
        DGF_RETURN_IF_ERROR(merged_writer->Add(merge_it.key(), merge_it.value()));
      }
      DGF_RETURN_IF_ERROR(merged_writer->Finish());
      DGF_CRASH_POINT("lsm.compact.after_merge");
      DGF_ASSIGN_OR_RETURN(
          auto merged, SstableReader::Open(options_.dfs, RunPath(merged_id)));
      runs_.clear();
      runs_.push_back(std::move(merged));
      if (Status st = WriteManifest(); !st.ok()) {
        runs_ = old_runs;  // the manifest still lists the pre-merge runs
        return st;
      }
      DGF_CRASH_POINT("lsm.compact.before_delete_stale");
      return Status::OK();
    }());
    for (const auto& run : old_runs) {
      Status st = options_.dfs->Delete(run->path());
      if (!st.ok()) {
        DGF_LOG(kWarn) << "stale run delete: " << st.ToString();
      }
    }
  }
  return Status::OK();
}

Status LsmKv::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status LsmKv::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  DGF_RETURN_IF_ERROR(FlushLocked());
  if (runs_.size() <= 1) return Status::OK();
  std::vector<std::shared_ptr<SstableReader>> old_runs = runs_;
  DGF_CRASH_POINT("lsm.compact.before_merge");
  const uint64_t merged_id = next_run_id_++;
  DGF_ASSIGN_OR_RETURN(auto writer,
                       SstableWriter::Create(options_.dfs, RunPath(merged_id)));
  LsmIterator merge_it(std::make_shared<const MemVec>(), runs_);
  for (merge_it.SeekToFirst(); merge_it.Valid(); merge_it.Next()) {
    DGF_RETURN_IF_ERROR(writer->Add(merge_it.key(), merge_it.value()));
  }
  DGF_RETURN_IF_ERROR(writer->Finish());
  DGF_CRASH_POINT("lsm.compact.after_merge");
  DGF_ASSIGN_OR_RETURN(auto merged,
                       SstableReader::Open(options_.dfs, RunPath(merged_id)));
  runs_.clear();
  runs_.push_back(std::move(merged));
  if (Status st = WriteManifest(); !st.ok()) {
    runs_ = std::move(old_runs);  // the manifest still lists the old runs
    return st;
  }
  DGF_CRASH_POINT("lsm.compact.before_delete_stale");
  for (const auto& run : old_runs) {
    Status st = options_.dfs->Delete(run->path());
    if (!st.ok()) {
      DGF_LOG(kWarn) << "stale run delete: " << st.ToString();
    }
  }
  return Status::OK();
}

Status LsmKv::WriteManifest() {
  const std::string tmp_path = options_.dir + "/MANIFEST.tmp";
  const std::string manifest_path = options_.dir + "/MANIFEST";
  DGF_CRASH_POINT("lsm.manifest.before_tmp");
  if (options_.dfs->Exists(tmp_path)) {
    DGF_RETURN_IF_ERROR(options_.dfs->Delete(tmp_path));
  }
  DGF_ASSIGN_OR_RETURN(auto writer, options_.dfs->Create(tmp_path));
  // Header first, then one run path per line. Recover treats '#' lines as
  // headers, so pre-epoch manifests (no header) stay readable.
  DGF_RETURN_IF_ERROR(writer->Append(
      StringPrintf("#epoch %llu\n", static_cast<unsigned long long>(version_))));
  for (const auto& run : runs_) {
    DGF_RETURN_IF_ERROR(writer->Append(run->path() + "\n"));
  }
  DGF_RETURN_IF_ERROR(writer->Close());
  DGF_CRASH_POINT("lsm.manifest.after_tmp");
  if (options_.dfs->Exists(manifest_path)) {
    DGF_RETURN_IF_ERROR(options_.dfs->Delete(manifest_path));
  }
  DGF_CRASH_POINT("lsm.manifest.before_rename");
  return options_.dfs->Rename(tmp_path, manifest_path);
}

Result<uint64_t> LsmKv::Count() {
  uint64_t count = 0;
  auto it = NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
  return count;
}

Result<uint64_t> LsmKv::ApproximateSizeBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = memtable_bytes_;
  for (const auto& run : runs_) total += run->file_size();
  return total;
}

int LsmKv::NumRuns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(runs_.size());
}

}  // namespace dgf::kv
