#include "kv/sstable.h"

#include <algorithm>

#include "common/encoding.h"

namespace dgf::kv {
namespace {

constexpr uint64_t kMagic = 0xD6F1DE11D6F1DE11ULL;
constexpr uint64_t kFooterSize = 24;
constexpr int kIndexInterval = 16;

}  // namespace

SstableWriter::SstableWriter(std::unique_ptr<fs::DfsWriter> writer)
    : writer_(std::move(writer)) {}

Result<std::unique_ptr<SstableWriter>> SstableWriter::Create(
    std::shared_ptr<fs::MiniDfs> dfs, const std::string& path) {
  DGF_ASSIGN_OR_RETURN(auto writer, dfs->Create(path));
  return std::unique_ptr<SstableWriter>(new SstableWriter(std::move(writer)));
}

Status SstableWriter::Add(std::string_view key, std::string_view value,
                          bool tombstone) {
  if (num_records_ > 0 && std::string_view(last_key_) >= key) {
    return Status::InvalidArgument("sstable keys must be strictly increasing");
  }
  if (num_records_ % kIndexInterval == 0) {
    PutLengthPrefixed(&index_, key);
    PutFixed64(&index_, writer_->Offset());
  }
  std::string record;
  PutLengthPrefixed(&record, key);
  if (tombstone) {
    PutVarint64(&record, 0);
  } else {
    PutVarint64(&record, value.size() + 1);
    record.append(value);
  }
  DGF_RETURN_IF_ERROR(writer_->Append(record));
  last_key_.assign(key);
  ++num_records_;
  return Status::OK();
}

Status SstableWriter::Finish() {
  const uint64_t index_offset = writer_->Offset();
  DGF_RETURN_IF_ERROR(writer_->Append(index_));
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, num_records_);
  PutFixed64(&footer, kMagic);
  DGF_RETURN_IF_ERROR(writer_->Append(footer));
  return writer_->Close();
}

Result<std::shared_ptr<SstableReader>> SstableReader::Open(
    std::shared_ptr<fs::MiniDfs> dfs, const std::string& path) {
  std::shared_ptr<SstableReader> reader(new SstableReader());
  DGF_RETURN_IF_ERROR(reader->Load(std::move(dfs), path));
  return reader;
}

Status SstableReader::Load(std::shared_ptr<fs::MiniDfs> dfs,
                           const std::string& path) {
  path_ = path;
  DGF_ASSIGN_OR_RETURN(auto file, dfs->OpenForRead(path));
  const uint64_t file_size = file->Length();
  if (file_size < kFooterSize) return Status::Corruption("sstable too small");
  DGF_RETURN_IF_ERROR(file->Pread(0, file_size, &data_));
  if (data_.size() != file_size) return Status::Corruption("short read");

  const char* footer = data_.data() + file_size - kFooterSize;
  const uint64_t index_offset = DecodeFixed64(footer);
  num_records_ = DecodeFixed64(footer + 8);
  if (DecodeFixed64(footer + 16) != kMagic) {
    return Status::Corruption("bad sstable magic: " + path);
  }
  if (index_offset > file_size - kFooterSize) {
    return Status::Corruption("bad index offset: " + path);
  }
  data_end_ = index_offset;

  std::string_view index_block(data_.data() + index_offset,
                               file_size - kFooterSize - index_offset);
  while (!index_block.empty()) {
    DGF_ASSIGN_OR_RETURN(std::string_view key, GetLengthPrefixed(&index_block));
    if (index_block.size() < 8) return Status::Corruption("truncated index");
    const uint64_t offset = DecodeFixed64(index_block.data());
    index_block.remove_prefix(8);
    index_.emplace_back(std::string(key), offset);
  }
  return Status::OK();
}

uint64_t SstableReader::IndexLowerBound(std::string_view key) const {
  // Find the last index entry with entry.key <= key; scanning starts there.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const auto& entry) { return k < entry.first; });
  if (it == index_.begin()) return 0;
  return std::prev(it)->second;
}

Result<std::string> SstableReader::Get(std::string_view key,
                                       bool* deleted) const {
  *deleted = false;
  if (index_.empty()) return Status::NotFound("empty sstable");
  std::string_view cursor(data_.data(), data_end_);
  cursor.remove_prefix(IndexLowerBound(key));
  while (!cursor.empty()) {
    DGF_ASSIGN_OR_RETURN(std::string_view rec_key, GetLengthPrefixed(&cursor));
    DGF_ASSIGN_OR_RETURN(uint64_t vlen, GetVarint64(&cursor));
    std::string_view value;
    if (vlen > 0) {
      if (cursor.size() < vlen - 1) return Status::Corruption("truncated value");
      value = cursor.substr(0, vlen - 1);
      cursor.remove_prefix(vlen - 1);
    }
    if (rec_key == key) {
      if (vlen == 0) {
        *deleted = true;
        return std::string();
      }
      return std::string(value);
    }
    if (rec_key > key) break;  // sorted: key is absent
  }
  return Status::NotFound("key not in sstable");
}

Result<std::vector<SstableReader::ProbeResult>> SstableReader::MultiGet(
    std::span<const std::string_view> sorted_keys) const {
  std::vector<ProbeResult> results(sorted_keys.size());
  if (index_.empty()) return results;
  // `cur` is the offset of the next record worth parsing; it only advances,
  // so the batch costs one forward pass regardless of how many keys land in
  // the same index stretch.
  uint64_t cur = 0;
  for (size_t i = 0; i < sorted_keys.size(); ++i) {
    const std::string_view key = sorted_keys[i];
    const uint64_t lb = IndexLowerBound(key);
    if (lb > cur) cur = lb;
    while (cur < data_end_) {
      std::string_view cursor(data_.data() + cur, data_end_ - cur);
      DGF_ASSIGN_OR_RETURN(std::string_view rec_key,
                           GetLengthPrefixed(&cursor));
      DGF_ASSIGN_OR_RETURN(uint64_t vlen, GetVarint64(&cursor));
      std::string_view value;
      if (vlen > 0) {
        if (cursor.size() < vlen - 1) {
          return Status::Corruption("truncated value");
        }
        value = cursor.substr(0, vlen - 1);
        cursor.remove_prefix(vlen - 1);
      }
      if (rec_key < key) {
        cur = static_cast<uint64_t>(cursor.data() - data_.data());
        continue;
      }
      if (rec_key == key) {
        results[i].state =
            (vlen == 0) ? ProbeResult::kTombstone : ProbeResult::kFound;
        if (vlen > 0) results[i].value.assign(value);
      }
      // Stop without consuming this record: a duplicate key (or the next
      // sorted key, if it equals rec_key) must see it again.
      break;
    }
  }
  return results;
}

std::unique_ptr<Iterator> SstableReader::NewIterator() const {
  // shared_from_this is avoided by requiring callers to hold the reader via
  // shared_ptr; LsmKv does. For standalone use, re-open the table.
  return std::make_unique<SstableIterator>(
      std::shared_ptr<const SstableReader>(this, [](const SstableReader*) {}));
}

SstableIterator::SstableIterator(std::shared_ptr<const SstableReader> table)
    : table_(std::move(table)) {}

void SstableIterator::ParseAt(uint64_t offset) {
  if (offset >= table_->data_end_) {
    valid_ = false;
    return;
  }
  std::string_view cursor(table_->data_.data() + offset,
                          table_->data_end_ - offset);
  auto key = GetLengthPrefixed(&cursor);
  if (!key.ok()) {
    valid_ = false;
    return;
  }
  auto vlen = GetVarint64(&cursor);
  if (!vlen.ok()) {
    valid_ = false;
    return;
  }
  key_ = *key;
  tombstone_ = (*vlen == 0);
  value_ = tombstone_ ? std::string_view() : cursor.substr(0, *vlen - 1);
  offset_ = offset;
  next_offset_ = static_cast<uint64_t>(
      (tombstone_ ? cursor.data() : value_.data() + value_.size()) -
      table_->data_.data());
  valid_ = true;
}

void SstableIterator::Seek(std::string_view target) {
  ParseAt(table_->IndexLowerBound(target));
  while (valid_ && key_ < target) Next();
}

void SstableIterator::SeekToFirst() { ParseAt(0); }

void SstableIterator::Next() { ParseAt(next_offset_); }

bool SstableIterator::Valid() const { return valid_; }

}  // namespace dgf::kv
