#ifndef DGF_KV_LSM_KV_H_
#define DGF_KV_LSM_KV_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fs/mini_dfs.h"
#include "kv/kv_store.h"
#include "kv/sstable.h"

namespace dgf::kv {

/// Persistent ordered KV store: memtable + write-ahead log + sorted runs.
///
/// This is the production-shaped stand-in for HBase: DGFIndex keeps its
/// GFUKey -> GFUValue pairs here. Writes go to a WAL and an in-memory
/// memtable; when the memtable exceeds `memtable_flush_bytes` it is flushed
/// to an immutable SSTable on the backing MiniDfs. When the number of runs
/// exceeds `max_runs` they are merge-compacted into one. A manifest file
/// records the live run set and is replaced atomically via rename.
///
/// Reads consult memtable first, then runs newest-to-oldest; range scans
/// merge all sources with newest-wins semantics. Recovery replays the WAL
/// over the runs listed in the manifest, rolls a completed MANIFEST.tmp
/// forward when a crash landed between the old manifest's deletion and the
/// rename, and deletes orphan run files a crash left unadopted (their
/// records are still covered by the WAL).
///
/// Concurrency: GetSnapshot pins an immutable view (materialized memtable
/// copy + ref-counted run set + version). Runs are mapped fully into memory
/// by SstableReader, so a snapshot's shared_ptr keeps a run readable even
/// after compaction deletes its file. version() counts mutations (Put /
/// Delete / ApplyBatch) and is persisted in the manifest as a `#epoch N`
/// header line so epochs stay monotonic across restarts; flush and
/// compaction reorganize storage without changing the logical contents and
/// do not bump it.
///
/// The flush/compaction/manifest paths are instrumented with
/// DGF_CRASH_POINT markers; the crash-consistency sweep in src/testing/
/// kills-and-reopens the store at every such boundary and checks the
/// recovered state against a shadow oracle.
class LsmKv : public KvStore {
 public:
  struct Options {
    std::shared_ptr<fs::MiniDfs> dfs;
    /// DFS directory holding WAL, manifest, and runs, e.g. "/index/meter".
    std::string dir;
    uint64_t memtable_flush_bytes = 4ULL << 20;
    /// Compact when the run count exceeds this.
    int max_runs = 6;
  };

  /// Opens (and recovers, if state exists) a store under `options.dir`.
  static Result<std::unique_ptr<LsmKv>> Open(Options options);

  ~LsmKv() override;

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) override;
  Status ApplyBatch(const WriteBatch& batch) override;
  std::shared_ptr<const KvSnapshot> GetSnapshot() override;
  uint64_t version() override;
  std::unique_ptr<Iterator> NewIterator() override;
  Result<uint64_t> Count() override;
  Result<uint64_t> ApproximateSizeBytes() override;

  /// Flushes the memtable to a run (no-op when empty). Exposed for tests and
  /// for sealing an index after a build.
  Status Flush();

  /// Merges all runs into one. Exposed for tests.
  Status Compact();

  int NumRuns() const;

 private:
  explicit LsmKv(Options options);

  // Sorted materialized copy of the memtable, shared between snapshots and
  // iterators taken while the memtable is unchanged.
  using MemVec = std::vector<std::pair<std::string, std::optional<std::string>>>;

  Status Recover();
  Status ReplayWal(const std::string& path);
  Status WriteWal(std::string_view key, std::string_view value, bool tombstone);
  Status WriteManifest();  // callers hold mu_
  Status FlushLocked();    // callers hold mu_
  std::string RunPath(uint64_t id) const;
  // Returns the cached memtable copy, rebuilding it after a mutation
  // invalidated it. Caller must hold mu_.
  std::shared_ptr<const MemVec> MemSnapshotLocked();

  Options options_;
  mutable std::mutex mu_;
  // value == nullopt encodes a tombstone in the memtable.
  std::map<std::string, std::optional<std::string>> memtable_;
  uint64_t memtable_bytes_ = 0;
  std::unique_ptr<fs::DfsWriter> wal_;
  std::string wal_path_;
  uint64_t next_run_id_ = 1;
  // Newest run last.
  std::vector<std::shared_ptr<SstableReader>> runs_;
  // Mutation epoch; see the class comment. Guarded by mu_.
  uint64_t version_ = 0;
  // Cached memtable copy; null after any memtable change. Guarded by mu_.
  std::shared_ptr<const MemVec> mem_snapshot_;
};

}  // namespace dgf::kv

#endif  // DGF_KV_LSM_KV_H_
