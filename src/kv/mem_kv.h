#ifndef DGF_KV_MEM_KV_H_
#define DGF_KV_MEM_KV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "kv/kv_store.h"

namespace dgf::kv {

/// In-memory ordered KV store.
///
/// The default index store for unit tests and small benches; iterators and
/// snapshots take a point-in-time copy of the map, so reads are stable under
/// concurrent writes (matching the snapshot behaviour DGFIndex expects).
/// The materialized copy is cached behind a shared_ptr and invalidated on
/// mutation, so repeated GetSnapshot/NewIterator calls between writes share
/// one immutable vector instead of copying the map each time.
class MemKv : public KvStore {
 public:
  MemKv() = default;

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) override;
  Status ApplyBatch(const WriteBatch& batch) override;
  std::shared_ptr<const KvSnapshot> GetSnapshot() override;
  uint64_t version() override;
  std::unique_ptr<Iterator> NewIterator() override;
  Result<uint64_t> Count() override;
  Result<uint64_t> ApproximateSizeBytes() override;

 private:
  using Materialized = std::vector<std::pair<std::string, std::string>>;

  // Returns the cached sorted copy of data_, rebuilding it if a mutation
  // invalidated it. Caller must hold mu_.
  std::shared_ptr<const Materialized> MaterializedLocked();

  std::mutex mu_;
  std::map<std::string, std::string> data_;
  uint64_t version_ = 0;
  std::shared_ptr<const Materialized> materialized_;  // null after a mutation
};

}  // namespace dgf::kv

#endif  // DGF_KV_MEM_KV_H_
