#ifndef DGF_KV_MEM_KV_H_
#define DGF_KV_MEM_KV_H_

#include <map>
#include <mutex>
#include <string>

#include "kv/kv_store.h"

namespace dgf::kv {

/// In-memory ordered KV store.
///
/// The default index store for unit tests and small benches; iterators take a
/// point-in-time snapshot of the map, so scans are stable under concurrent
/// writes (matching the read-committed behaviour DGFIndex expects of HBase).
class MemKv : public KvStore {
 public:
  MemKv() = default;

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) override;
  std::unique_ptr<Iterator> NewIterator() override;
  Result<uint64_t> Count() override;
  Result<uint64_t> ApproximateSizeBytes() override;

 private:
  std::mutex mu_;
  std::map<std::string, std::string> data_;
};

}  // namespace dgf::kv

#endif  // DGF_KV_MEM_KV_H_
