#ifndef DGF_KV_KV_STORE_H_
#define DGF_KV_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dgf::kv {

/// Forward cursor over an ordered key space.
///
/// Usage:
///   auto it = store->NewIterator();
///   for (it->Seek(start); it->Valid() && it->key() < end; it->Next()) ...
class Iterator {
 public:
  virtual ~Iterator() = default;

  /// Positions on the first key >= `target`.
  virtual void Seek(std::string_view target) = 0;
  /// Positions on the first key in the store.
  virtual void SeekToFirst() = 0;
  /// Advances to the next key. Requires Valid().
  virtual void Next() = 0;
  /// True while positioned on a live entry.
  virtual bool Valid() const = 0;

  /// Current key/value. Valid until the next mutation of the iterator.
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
};

/// Ordered key-value store interface — the stand-in for HBase in DGFIndex.
///
/// Keys sort in lexicographic byte order; GFU keys are encoded so that byte
/// order matches grid order (see dgf::GfuKey). All methods are thread-safe.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  /// Returns NotFound if absent or deleted.
  virtual Result<std::string> Get(std::string_view key) = 0;
  virtual Status Delete(std::string_view key) = 0;

  /// Batched lookup: one result per key, in key order (NotFound for absent or
  /// deleted keys). The HBase multi-get analogue — one round trip amortizes
  /// locking and block reads across the whole batch, which is what makes the
  /// point-get strategy of DgfIndex::Lookup cheap. The base implementation
  /// just loops over Get; stores override it with a genuinely batched probe.
  virtual std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) {
    std::vector<Result<std::string>> results;
    results.reserve(keys.size());
    for (const std::string& key : keys) results.push_back(Get(key));
    return results;
  }

  /// Snapshot cursor over the live entries.
  virtual std::unique_ptr<Iterator> NewIterator() = 0;

  /// Number of live entries.
  virtual Result<uint64_t> Count() = 0;

  /// Approximate bytes occupied by the live data (index-size experiments).
  virtual Result<uint64_t> ApproximateSizeBytes() = 0;
};

}  // namespace dgf::kv

#endif  // DGF_KV_KV_STORE_H_
