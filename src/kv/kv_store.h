#ifndef DGF_KV_KV_STORE_H_
#define DGF_KV_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dgf::kv {

/// Forward cursor over an ordered key space.
///
/// Usage:
///   auto it = store->NewIterator();
///   for (it->Seek(start); it->Valid() && it->key() < end; it->Next()) ...
class Iterator {
 public:
  virtual ~Iterator() = default;

  /// Positions on the first key >= `target`.
  virtual void Seek(std::string_view target) = 0;
  /// Positions on the first key in the store.
  virtual void SeekToFirst() = 0;
  /// Advances to the next key. Requires Valid().
  virtual void Next() = 0;
  /// True while positioned on a live entry.
  virtual bool Valid() const = 0;

  /// Current key/value. Valid until the next mutation of the iterator.
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
};

/// An ordered set of writes applied atomically by KvStore::ApplyBatch.
///
/// Readers either see none of the batch or all of it: the batch is the unit
/// of publication for index mutations (Build/Append/optimize), which is what
/// makes snapshot isolation possible above the store.
class WriteBatch {
 public:
  struct Entry {
    std::string key;
    std::string value;  // ignored when is_delete
    bool is_delete = false;
  };

  void Put(std::string_view key, std::string_view value) {
    approximate_bytes_ += key.size() + value.size() + kEntryOverheadBytes;
    entries_.push_back({std::string(key), std::string(value), false});
  }
  void Delete(std::string_view key) {
    approximate_bytes_ += key.size() + kEntryOverheadBytes;
    entries_.push_back({std::string(key), std::string(), true});
  }
  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void Clear() {
    entries_.clear();
    approximate_bytes_ = 0;
  }

  /// Pre-sizes the entry vector: batch producers that know their key count
  /// up front (the parallel index build stages one Put per GFU) avoid
  /// reallocation churn while staging tens of thousands of entries.
  void Reserve(size_t entries) { entries_.reserve(entries); }

  /// Approximate staged payload (keys + values + per-entry bookkeeping).
  /// Used for batch-size accounting in build/append counters and by callers
  /// sizing group-commit flushes.
  uint64_t ApproximateBytes() const { return approximate_bytes_; }

  /// Appends every entry of `other` (in order) after this batch's entries.
  /// The group-commit and parallel-build paths stage per-worker batches and
  /// concatenate them in a deterministic order before the atomic publish.
  void Append(const WriteBatch& other) {
    entries_.reserve(entries_.size() + other.entries_.size());
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
    approximate_bytes_ += other.approximate_bytes_;
  }

 private:
  static constexpr uint64_t kEntryOverheadBytes = 16;

  std::vector<Entry> entries_;
  uint64_t approximate_bytes_ = 0;
};

/// Immutable point-in-time view of a store.
///
/// A snapshot is safe to read from any thread without synchronization and
/// keeps every resource it references (LSM runs, materialized memtables)
/// alive for its own lifetime, even if the store mutates, flushes, or
/// compacts after the snapshot was taken.
class KvSnapshot {
 public:
  virtual ~KvSnapshot() = default;

  /// Returns NotFound if absent or deleted as of the snapshot.
  virtual Result<std::string> Get(std::string_view key) const = 0;

  /// Batched lookup against the snapshot; same contract as KvStore::MultiGet.
  virtual std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) const = 0;

  /// Cursor over the snapshot's live entries.
  virtual std::unique_ptr<Iterator> NewIterator() const = 0;

  /// The store version (mutation epoch) this snapshot was taken at.
  virtual uint64_t version() const = 0;
};

/// Ordered key-value store interface — the stand-in for HBase in DGFIndex.
///
/// Keys sort in lexicographic byte order; GFU keys are encoded so that byte
/// order matches grid order (see dgf::GfuKey). All methods are thread-safe.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  /// Returns NotFound if absent or deleted.
  virtual Result<std::string> Get(std::string_view key) = 0;
  virtual Status Delete(std::string_view key) = 0;

  /// Applies every entry of `batch` atomically: a concurrent GetSnapshot
  /// observes either none of the batch or all of it. Bumps version() once.
  virtual Status ApplyBatch(const WriteBatch& batch) = 0;

  /// Pins an immutable point-in-time view. Cheap (shares internal state with
  /// the store); the snapshot stays valid after arbitrary later mutations.
  virtual std::shared_ptr<const KvSnapshot> GetSnapshot() = 0;

  /// Monotonic mutation counter: bumped by Put/Delete/ApplyBatch (once per
  /// call), never by internal reorganization (flush/compaction). Used as the
  /// index epoch for cache tagging and snapshot identity.
  virtual uint64_t version() = 0;

  /// Batched lookup: one result per key, in key order (NotFound for absent or
  /// deleted keys). The HBase multi-get analogue — one round trip amortizes
  /// locking and block reads across the whole batch, which is what makes the
  /// point-get strategy of DgfIndex::Lookup cheap. The base implementation
  /// just loops over Get; stores override it with a genuinely batched probe.
  virtual std::vector<Result<std::string>> MultiGet(
      std::span<const std::string> keys) {
    std::vector<Result<std::string>> results;
    results.reserve(keys.size());
    for (const std::string& key : keys) results.push_back(Get(key));
    return results;
  }

  /// Snapshot cursor over the live entries.
  virtual std::unique_ptr<Iterator> NewIterator() = 0;

  /// Number of live entries.
  virtual Result<uint64_t> Count() = 0;

  /// Approximate bytes occupied by the live data (index-size experiments).
  virtual Result<uint64_t> ApproximateSizeBytes() = 0;
};

}  // namespace dgf::kv

#endif  // DGF_KV_KV_STORE_H_
