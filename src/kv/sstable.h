#ifndef DGF_KV_SSTABLE_H_
#define DGF_KV_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "fs/mini_dfs.h"
#include "kv/kv_store.h"

namespace dgf::kv {

/// Immutable sorted-run file ("SSTable") used by LsmKv.
///
/// Layout:
///   [records]      varint(key_len) key varint(value_len+1) value
///                  (value_len field 0 encodes a tombstone, no value bytes)
///   [sparse index] every kIndexInterval-th record: varint(key_len) key
///                  fixed64(file_offset)
///   [footer]       fixed64(index_offset) fixed64(record_count)
///                  fixed64(kMagic)
///
/// Keys must be appended in strictly increasing order.
class SstableWriter {
 public:
  /// Creates `path` on `dfs` and returns a writer for it.
  static Result<std::unique_ptr<SstableWriter>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, const std::string& path);

  /// Appends one entry; `tombstone` marks a deletion marker.
  Status Add(std::string_view key, std::string_view value,
             bool tombstone = false);

  /// Writes index + footer and seals the file.
  Status Finish();

  uint64_t num_records() const { return num_records_; }

 private:
  explicit SstableWriter(std::unique_ptr<fs::DfsWriter> writer);

  std::unique_ptr<fs::DfsWriter> writer_;
  std::string index_;
  std::string last_key_;
  uint64_t num_records_ = 0;
};

/// Read handle for one SSTable. Thread-safe for concurrent reads.
class SstableReader {
 public:
  static Result<std::shared_ptr<SstableReader>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, const std::string& path);

  /// Point lookup. A tombstone is reported as found with `*deleted = true`.
  /// Returns NotFound when the key is absent from this run.
  Result<std::string> Get(std::string_view key, bool* deleted) const;

  /// Outcome of one key in a MultiGet batch.
  struct ProbeResult {
    enum State { kAbsent, kFound, kTombstone };
    State state = kAbsent;
    std::string value;  // set only for kFound
  };

  /// Batched point lookup. `sorted_keys` must be ascending (duplicates
  /// allowed). A single merge-join pass over the record stream serves the
  /// whole batch: the read cursor only moves forward, so index probes and
  /// record parses are shared between nearby keys instead of restarting from
  /// an index block per key the way repeated Get calls do.
  Result<std::vector<ProbeResult>> MultiGet(
      std::span<const std::string_view> sorted_keys) const;

  /// Cursor over the run. Tombstones are surfaced (LsmKv's merge needs them);
  /// `IsTombstone()` on the concrete type reports them.
  std::unique_ptr<Iterator> NewIterator() const;

  uint64_t num_records() const { return num_records_; }
  uint64_t file_size() const { return data_end_; }
  const std::string& path() const { return path_; }

 private:
  friend class SstableIterator;

  SstableReader() = default;

  Status Load(std::shared_ptr<fs::MiniDfs> dfs, const std::string& path);

  /// Largest indexed offset whose key is <= `key` (scan start for Seek/Get).
  uint64_t IndexLowerBound(std::string_view key) const;

  std::string path_;
  // The whole run is mapped into memory on open: index files are small
  // relative to data (the paper's point), and this keeps reads simple.
  std::string data_;
  uint64_t data_end_ = 0;  // offset where records end / index begins
  uint64_t num_records_ = 0;
  std::vector<std::pair<std::string, uint64_t>> index_;
};

/// Iterator over an SSTable that also exposes tombstones.
class SstableIterator : public Iterator {
 public:
  explicit SstableIterator(std::shared_ptr<const SstableReader> table);

  void Seek(std::string_view target) override;
  void SeekToFirst() override;
  void Next() override;
  bool Valid() const override;
  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }

  bool IsTombstone() const { return tombstone_; }

 private:
  void ParseAt(uint64_t offset);

  std::shared_ptr<const SstableReader> table_;
  uint64_t offset_ = 0;       // offset of the current record
  uint64_t next_offset_ = 0;  // offset of the following record
  bool valid_ = false;
  std::string_view key_;
  std::string_view value_;
  bool tombstone_ = false;
};

}  // namespace dgf::kv

#endif  // DGF_KV_SSTABLE_H_
