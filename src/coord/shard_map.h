#ifndef DGF_COORD_SHARD_MAP_H_
#define DGF_COORD_SHARD_MAP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/query.h"

namespace dgf::coord {

/// Network address of one shard server.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Non-empty: connect over this Unix socket path instead of TCP.
  std::string unix_path;

  std::string ToString() const;
};

/// Partition of a table's grid across N shard servers along one grid
/// dimension — in the paper's terms, each shard owns a contiguous band of
/// grid cells, so any query box decomposes into at most one sub-box per
/// shard and every row routes to exactly one shard.
///
/// The canonical partition dimension is time (`ByTimeRange`): smart-meter
/// data arrives in collection order, so cross-shard appends route whole days
/// to their owning shard and recent-time queries touch few shards. The cut
/// points split the day span into contiguous ranges; shard 0 is unbounded
/// below and shard N-1 unbounded above, so out-of-range values (e.g. days
/// appended after the initial load window) still route somewhere instead of
/// failing.
class ShardMap {
 public:
  /// Single implicit shard owning everything.
  ShardMap() = default;

  /// Splits days [first_day, last_day] into `num_shards` contiguous,
  /// non-empty ranges (cut points at balanced day boundaries). A shard must
  /// own at least one day, so `num_shards` is clamped to the day count —
  /// check `num_shards()` for the effective value.
  static ShardMap ByTimeRange(std::string time_column, int64_t first_day,
                              int64_t last_day, int num_shards);

  /// Explicit cut points over `column` (values of `type`): shard i owns
  /// [cuts[i-1], cuts[i]) with the outer shards unbounded. `cuts` must be
  /// strictly increasing; num_shards() == cuts.size() + 1. This is the
  /// generalization to any int-valued grid dimension ("or grid region").
  static ShardMap ByCuts(std::string column, table::DataType type,
                         std::vector<int64_t> cuts);

  int num_shards() const { return static_cast<int>(cuts_.size()) + 1; }
  const std::string& column() const { return column_; }
  table::DataType type() const { return type_; }
  const std::vector<int64_t>& cuts() const { return cuts_; }

  /// The shard owning partition-dimension value `v` (total: every value maps
  /// to exactly one shard).
  int ShardForValue(int64_t v) const;

  /// Inclusive bounds of `shard`'s band; nullopt = unbounded on that side.
  std::optional<int64_t> LowerBound(int shard) const;
  std::optional<int64_t> UpperBound(int shard) const;

  /// `q` restricted to `shard`'s band: the query's predicate intersected
  /// with the shard's partition-dimension range (the per-shard sub-box).
  /// nullopt when the intersection is provably empty — the shard cannot
  /// contribute any row and is skipped entirely.
  std::optional<query::Query> Restrict(const query::Query& q,
                                       int shard) const;

 private:
  std::string column_ = "time";
  table::DataType type_ = table::DataType::kDate;
  /// Strictly increasing; shard i owns [cuts_[i-1], cuts_[i]).
  std::vector<int64_t> cuts_;
};

}  // namespace dgf::coord

#endif  // DGF_COORD_SHARD_MAP_H_
