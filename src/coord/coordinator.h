#ifndef DGF_COORD_COORDINATOR_H_
#define DGF_COORD_COORDINATOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "coord/shard_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/service_interface.h"
#include "table/table.h"

namespace dgf::coord {

/// Scatter-gather query coordinator over N shard servers.
///
/// Implements the same `WireService` interface a local QueryService does, so
/// a `Server` can front it and clients cannot tell a coordinator from a
/// single node. Per query: the SQL is parsed against the coordinator's
/// catalog, the query box is decomposed by the ShardMap into per-shard
/// sub-boxes, each sub-query fans out over the wire protocol on its own
/// connection (with the remaining deadline attached), and the partial
/// results merge:
///
///  - row streams (projections, joins) by sorted merge — shard row sets are
///    disjoint, so concatenation + canonical order is the exact answer;
///  - aggregates exactly, by the same additive fold the GFU headers use:
///    sum/count/sum-product add, min/max fold, and avg is rewritten into
///    sum + count at the shards and divided at the coordinator (partial avgs
///    do not merge; partial sums do);
///  - group-bys by key: per-group aggregate states from different shards
///    fold with the same rules;
///  - QueryStats field-wise (sums), wall time being the coordinator's own.
///
/// Failure policy: a shard that cannot be reached, dies mid-query, or stays
/// silent past `shard_response_timeout_seconds` fails the whole query with a
/// structured Unavailable — a partial result is never silently returned.
/// Coordinator-level CANCEL and deadline expiry fan out as CANCELs to every
/// shard still working.
///
/// Cross-shard APPEND parses each row's partition-dimension value, routes
/// whole row groups to their owning shards, and rides each shard's
/// group-commit pipeline; per shard a batch is atomic (readers see a shard's
/// slice of the batch entirely or not at all).
class Coordinator : public server::WireService {
 public:
  struct Options {
    ShardMap shard_map;
    /// One endpoint per shard; size must equal shard_map.num_shards().
    std::vector<ShardEndpoint> shards;
    /// Optional replica endpoint per shard (empty vector, or same size as
    /// `shards`; an entry with port 0 and no unix path means "no replica
    /// for this shard"). When a shard's primary connection cannot be
    /// established, dies mid-query, or goes unresponsive, an *idempotent
    /// read* sub-query is retried exactly once against the replica before
    /// the query fails Unavailable. Appends are never retried on a replica
    /// (routing writes through one endpoint keeps the at-least-once append
    /// contract single-homed).
    std::vector<ShardEndpoint> replicas;
    /// Fan-out workers == queries the coordinator runs at once.
    int max_concurrent = 4;
    /// Admitted-but-not-running queries beyond that; one more is
    /// Unavailable (same backpressure contract as QueryService).
    int max_pending = 16;
    /// Bounds the TCP handshake to a shard (dead endpoint fails fast).
    double connect_timeout_seconds = 2.0;
    /// A shard producing no response for this long (while one is due) is
    /// declared dead and the query fails Unavailable. Distinct from the
    /// query deadline: this guards against a hung shard, not a slow query.
    double shard_response_timeout_seconds = 30.0;
    /// Await slice between checks of the coordinator's own cancel token.
    double poll_interval_seconds = 0.02;
    /// Registry the coordinator's metrics land in; null gives it a private
    /// one (same contract as QueryService::Options::metrics).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit Coordinator(Options options);
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Catalog registration (schema only — the data lives on the shards).
  /// Call before serving traffic.
  void RegisterTable(const table::TableDesc& desc);

  // WireService:
  Status SubmitQuery(uint64_t request_id, std::string sql,
                     double deadline_seconds, uint64_t trace_id,
                     server::WireService::QueryDone done) override;
  bool CancelQuery(uint64_t request_id) override;
  Result<uint64_t> Append(const std::string& table,
                          const std::vector<std::string>& rows) override;
  std::vector<std::pair<std::string, double>> StatsSnapshot() const override;
  void BeginDrain() override;
  void Drain() override;

  /// The registry this coordinator reports into (Options.metrics or the
  /// private one) — what an HTTP exporter should serve.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  /// Ring buffer of recent cross-shard query traces (per-shard RPC spans).
  obs::TraceLog* trace_log() { return &trace_log_; }

 private:
  /// One shard's in-flight sub-query during a fan-out.
  struct ShardCall {
    int shard = 0;
    std::string sub_sql;
    std::unique_ptr<server::ServerClient> client;
    uint64_t request_id = 0;
    bool done = false;
    server::Response response;
    bool cancel_sent = false;
    /// Transport-level failure: the connection is not returned to the pool.
    bool broken = false;
    /// The call's answer came from (or is being retried on) the shard's
    /// replica endpoint; at most one failover per call.
    bool on_replica = false;
    /// Trace bookkeeping: offsets (on the scatter stopwatch) when the
    /// sub-query was dispatched and when its response was observed. The
    /// difference is the shard's RPC span.
    double dispatch_seconds = 0;
    double response_seconds = 0;
  };

  bool HasReplica(int shard) const;
  Result<std::unique_ptr<server::ServerClient>> Checkout(int shard,
                                                         bool replica);
  void Checkin(int shard, bool replica,
               std::unique_ptr<server::ServerClient> client);
  /// Re-runs `call`'s read sub-query synchronously against the shard's
  /// replica endpoint (once per call). On success fills call.response/done
  /// and swaps in the replica connection; on any failure the caller's
  /// original Unavailable stands.
  bool TryReplicaRetry(ShardCall& call, double deadline_seconds,
                       uint64_t trace_id, const Stopwatch& elapsed,
                       CancelToken* token);

  /// `queued` was started at admission; its elapsed time when the fan-out
  /// worker picks the query up is the admission-wait span.
  void RunQuery(uint64_t request_id, std::string sql, double deadline_seconds,
                uint64_t trace_id, Stopwatch queued,
                std::shared_ptr<CancelToken> token,
                server::WireService::QueryDone done);
  Result<query::Query> Parse(const std::string& sql) const;
  /// The scatter-gather proper: decompose, fan out, gather, merge.
  /// `trace_id` rides every sub-query so shard executions join this trace;
  /// the merged stats carry per-shard RPC spans plus the shards' own spans
  /// prefixed `shard<N>.`.
  Result<query::QueryResult> ExecuteScatterGather(const query::Query& q,
                                                  double deadline_seconds,
                                                  uint64_t trace_id,
                                                  CancelToken* token);
  /// Sends CANCEL for every still-pending call (best effort).
  void FanOutCancel(std::vector<ShardCall>& calls);

  Options options_;
  /// Backing storage when Options.metrics is null.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, table::TableDesc> catalog_;
  ThreadPool pool_;
  obs::TraceLog trace_log_;

  /// Idle pooled connections, one free list per shard.
  mutable std::mutex pool_mu_;
  std::vector<std::vector<std::unique_ptr<server::ServerClient>>> free_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  bool draining_ = false;
  int in_flight_ = 0;
  std::map<uint64_t, std::shared_ptr<CancelToken>> tokens_;

  // Registry-backed counters (relaxed atomics; no mu_ needed), mirroring
  // QueryService's STATS names so dashboards work unchanged, plus coord.*
  // fan-out counters.
  obs::Counter* c_admitted_ = nullptr;
  obs::Counter* c_served_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_deadline_exceeded_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_subqueries_ = nullptr;
  obs::Counter* c_shards_skipped_ = nullptr;
  obs::Counter* c_shard_errors_ = nullptr;
  obs::Counter* c_appends_ = nullptr;
  obs::Counter* c_rows_appended_ = nullptr;
  obs::Counter* c_append_shard_batches_ = nullptr;
  obs::Counter* c_replica_retries_ = nullptr;
  obs::Counter* c_replica_successes_ = nullptr;
  /// Coordinator-side query wall time (seconds); replaces the old window.
  obs::Histogram* latency_ = nullptr;
};

}  // namespace dgf::coord

#endif  // DGF_COORD_COORDINATOR_H_
