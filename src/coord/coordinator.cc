#include "coord/coordinator.h"

#include <algorithm>
#include <thread>

#include "common/stopwatch.h"
#include "query/parser.h"
#include "server/query_service.h"

namespace dgf::coord {
namespace {

using server::Response;
using server::ServerClient;

/// How the merged result is assembled from shard-level rows.
///
/// The shard query equals the original except every avg(c) is replaced by
/// sum(c), with one shared count(*) appended to the select — partial avgs do
/// not merge, partial sums and counts do.
///
/// Shard row layout mirrors the executor's output modes exactly:
///  - GROUP BY: [group value, aggregations in select order] — the group
///    column leads regardless of its select position;
///  - aggregation, no GROUP BY: [aggregations in select order] only;
///  - projection/join: select order.
struct MergePlan {
  query::Query shard_query;
  /// Group-merge (group-by or aggregation) vs sorted row merge (projection).
  bool group_merge = false;
  /// Shard-row slots forming the group key (the leading group value, if
  /// any); empty key = plain aggregation = a single global group.
  std::vector<size_t> key_slots;
  /// One per merged output column, in the oracle's output order.
  struct Item {
    bool is_agg = false;
    bool is_avg = false;
    core::AggFunc func = core::AggFunc::kCount;
    /// Spec of the *original* aggregation (names the merged output column).
    core::AggSpec spec;
    /// Shard-row slot (for avg: the rewritten sum's slot).
    size_t slot = 0;
  };
  std::vector<Item> items;
  /// Shard-row slot of the shared count(*) for avg; unused when no avg.
  size_t count_slot = 0;
};

MergePlan PlanMerge(const query::Query& q) {
  MergePlan plan;
  plan.shard_query = q;
  bool has_aggs = false;
  bool any_avg = false;
  for (const query::SelectItem& item : q.select) {
    if (!item.is_aggregation()) continue;
    has_aggs = true;
    if (item.agg->func == core::AggFunc::kAvg) any_avg = true;
  }
  plan.group_merge = has_aggs || q.group_by.has_value();
  if (!plan.group_merge) return plan;

  // Rewrite avgs in place; select positions are otherwise preserved, so the
  // shard-side Aggregations() order equals the original's.
  for (query::SelectItem& item : plan.shard_query.select) {
    if (item.is_aggregation() && item.agg->func == core::AggFunc::kAvg) {
      item.agg->func = core::AggFunc::kSum;
    }
  }

  const size_t base = q.group_by.has_value() ? 1 : 0;
  if (q.group_by.has_value()) plan.key_slots.push_back(0);

  size_t agg_index = 0;
  if (q.group_by.has_value()) {
    MergePlan::Item group;
    group.slot = 0;
    plan.items.push_back(group);
  }
  for (const query::SelectItem& item : q.select) {
    if (!item.is_aggregation()) continue;
    MergePlan::Item out;
    out.is_agg = true;
    out.func = item.agg->func;
    out.spec = *item.agg;
    out.is_avg = item.agg->func == core::AggFunc::kAvg;
    out.slot = base + agg_index++;
    plan.items.push_back(out);
  }
  if (any_avg) {
    plan.count_slot = base + agg_index;
    plan.shard_query.select.push_back(query::SelectItem::Aggregation(
        core::AggSpec{core::AggFunc::kCount, "", ""}));
  }
  return plan;
}

/// Lexicographic canonical row order (same key DescribeResultMismatch sorts
/// by): deterministic output independent of shard arrival order.
bool RowLess(const table::Row& x, const table::Row& y) {
  const size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = x[i].Compare(y[i]);
    if (c != 0) return c < 0;
  }
  return x.size() < y.size();
}

/// Folds one shard's aggregate cell into the accumulator cell — the same
/// additive merge the GFU headers use, over final result values. Counts stay
/// int64; sums/min/max are doubles (AggResultValue's output types).
table::Value FoldCell(core::AggFunc func, const table::Value& acc,
                      const table::Value& next) {
  switch (func) {
    case core::AggFunc::kCount:
      return table::Value::Int64(acc.int64() + next.int64());
    case core::AggFunc::kSum:
    case core::AggFunc::kSumProduct:
    case core::AggFunc::kAvg:  // shard slot holds the rewritten partial sum
      return table::Value::Double(acc.AsDouble() + next.AsDouble());
    case core::AggFunc::kMin:
      return next.Compare(acc) < 0 ? next : acc;
    case core::AggFunc::kMax:
      return next.Compare(acc) > 0 ? next : acc;
  }
  return acc;
}

Result<std::vector<table::Row>> ParseShardRows(
    const server::QueryResultPayload& payload) {
  std::vector<table::Row> rows;
  rows.reserve(payload.rows.size());
  for (const std::string& line : payload.rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row,
                         table::ParseRowText(line, payload.schema));
    rows.push_back(std::move(row));
  }
  return rows;
}

void FoldStats(query::QueryStats* into, const query::QueryStats& part) {
  into->records_read += part.records_read;
  into->records_matched += part.records_matched;
  into->bytes_read += part.bytes_read;
  into->splits_scanned += part.splits_scanned;
  into->kv_gets += part.kv_gets;
  into->cache_hits += part.cache_hits;
  into->cache_misses += part.cache_misses;
  into->index_seconds += part.index_seconds;
  into->data_seconds += part.data_seconds;
  into->total_seconds += part.total_seconds;
}

}  // namespace

Coordinator::Coordinator(Options options)
    : options_(std::move(options)),
      pool_(std::max(1, options_.max_concurrent)),
      // One free list per shard primary, plus one per shard replica.
      free_(2 * std::max<size_t>(1, options_.shards.size())) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  c_admitted_ = metrics_->GetCounter("queries.admitted");
  c_served_ = metrics_->GetCounter("queries.served");
  c_rejected_ = metrics_->GetCounter("queries.rejected");
  c_cancelled_ = metrics_->GetCounter("queries.cancelled");
  c_deadline_exceeded_ = metrics_->GetCounter("queries.deadline_exceeded");
  c_failed_ = metrics_->GetCounter("queries.failed");
  c_subqueries_ = metrics_->GetCounter("coord.subqueries");
  c_shards_skipped_ = metrics_->GetCounter("coord.shards_skipped");
  c_shard_errors_ = metrics_->GetCounter("coord.shard_errors");
  c_appends_ = metrics_->GetCounter("appends.batches");
  c_rows_appended_ = metrics_->GetCounter("appends.rows");
  c_append_shard_batches_ = metrics_->GetCounter("appends.shard_batches");
  c_replica_retries_ = metrics_->GetCounter("coord.replica_retries");
  c_replica_successes_ = metrics_->GetCounter("coord.replica_successes");
  latency_ = metrics_->GetHistogram("latency");
  metrics_->GetGauge("coord.shards")
      ->Set(static_cast<double>(options_.shard_map.num_shards()));
  metrics_->SetCallback("queries.in_flight", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(in_flight_);
  });
}

Coordinator::~Coordinator() {
  BeginDrain();
  Drain();
}

void Coordinator::RegisterTable(const table::TableDesc& desc) {
  catalog_[desc.name] = desc;
}

Result<query::Query> Coordinator::Parse(const std::string& sql) const {
  const std::string from = server::TableAfterKeyword(sql, "from");
  if (from.empty()) return Status::InvalidArgument("no FROM table in: " + sql);
  auto it = catalog_.find(from);
  if (it == catalog_.end()) {
    return Status::NotFound("table not registered: " + from);
  }
  const table::Schema* right = nullptr;
  const std::string join = server::TableAfterKeyword(sql, "join");
  if (!join.empty()) {
    auto jt = catalog_.find(join);
    if (jt == catalog_.end()) {
      return Status::NotFound("join table not registered: " + join);
    }
    right = &jt->second.schema;
  }
  return query::ParseQuery(sql, it->second.schema, right);
}

bool Coordinator::HasReplica(int shard) const {
  if (options_.replicas.size() != options_.shards.size()) return false;
  const ShardEndpoint& endpoint =
      options_.replicas[static_cast<size_t>(shard)];
  return endpoint.port != 0 || !endpoint.unix_path.empty();
}

Result<std::unique_ptr<ServerClient>> Coordinator::Checkout(int shard,
                                                            bool replica) {
  const size_t slot = static_cast<size_t>(shard) +
                      (replica ? options_.shards.size() : 0);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    auto& idle = free_[slot];
    if (!idle.empty()) {
      auto client = std::move(idle.back());
      idle.pop_back();
      return client;
    }
  }
  const ShardEndpoint& endpoint =
      replica ? options_.replicas[static_cast<size_t>(shard)]
              : options_.shards[static_cast<size_t>(shard)];
  Result<std::unique_ptr<ServerClient>> client =
      endpoint.unix_path.empty()
          ? ServerClient::ConnectTcp(endpoint.host, endpoint.port,
                                     options_.connect_timeout_seconds)
          : ServerClient::ConnectUnix(endpoint.unix_path);
  if (!client.ok()) return client;
  // A shard that accepts the connection but then stalls mid-frame must not
  // wedge a fan-out thread forever.
  DGF_RETURN_IF_ERROR((*client)->SetRecvTimeout(
      std::max(1.0, options_.shard_response_timeout_seconds)));
  return client;
}

void Coordinator::Checkin(int shard, bool replica,
                          std::unique_ptr<ServerClient> client) {
  const size_t slot = static_cast<size_t>(shard) +
                      (replica ? options_.shards.size() : 0);
  std::lock_guard<std::mutex> lock(pool_mu_);
  free_[slot].push_back(std::move(client));
}

bool Coordinator::TryReplicaRetry(ShardCall& call, double deadline_seconds,
                                  uint64_t trace_id, const Stopwatch& elapsed,
                                  CancelToken* token) {
  if (call.on_replica || !HasReplica(call.shard)) return false;
  if (token != nullptr && !token->Check().ok()) return false;
  call.on_replica = true;  // at most one failover per call, success or not
  c_replica_retries_->Increment();
  auto client = Checkout(call.shard, /*replica=*/true);
  if (!client.ok()) return false;
  const double remaining =
      deadline_seconds > 0
          ? std::max(0.001, deadline_seconds - elapsed.ElapsedSeconds())
          : 0;
  auto started = (*client)->StartQuery(call.sub_sql, remaining, trace_id);
  if (!started.ok()) return false;
  // Await synchronously, honoring our token and the shard-response timeout;
  // a replica that also fails leaves the caller's original Unavailable in
  // place (the retry is strictly one-shot).
  Stopwatch silent;
  while (true) {
    auto got = (*client)->AwaitFor(*started, options_.poll_interval_seconds);
    if (!got.ok()) return false;
    if (got->has_value()) {
      call.response = std::move(**got);
      call.request_id = *started;
      call.client = std::move(*client);
      call.response_seconds = elapsed.ElapsedSeconds();
      call.done = true;
      call.broken = false;
      call.cancel_sent = false;
      c_replica_successes_->Increment();
      return true;
    }
    if (token != nullptr && !token->Check().ok()) {
      (void)(*client)->StartCancel(*started);
      return false;
    }
    if (silent.ElapsedSeconds() > options_.shard_response_timeout_seconds) {
      return false;
    }
  }
}

Status Coordinator::SubmitQuery(uint64_t request_id, std::string sql,
                                double deadline_seconds, uint64_t trace_id,
                                server::WireService::QueryDone done) {
  auto token = std::make_shared<CancelToken>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      c_rejected_->Increment();
      return Status::Unavailable("coordinator is draining");
    }
    if (in_flight_ >= options_.max_concurrent + options_.max_pending) {
      c_rejected_->Increment();
      return Status::Unavailable("admission queue full (" +
                                 std::to_string(in_flight_) + " in flight)");
    }
    if (!tokens_.emplace(request_id, token).second) {
      c_rejected_->Increment();
      return Status::InvalidArgument("duplicate in-flight request id");
    }
    ++in_flight_;
    c_admitted_->Increment();
  }
  if (deadline_seconds > 0) token->SetDeadlineAfter(deadline_seconds);
  Stopwatch queued;
  pool_.Submit([this, request_id, sql = std::move(sql), deadline_seconds,
                trace_id, queued, token, done = std::move(done)]() mutable {
    RunQuery(request_id, std::move(sql), deadline_seconds, trace_id, queued,
             std::move(token), std::move(done));
  });
  return Status::OK();
}

void Coordinator::RunQuery(uint64_t request_id, std::string sql,
                           double deadline_seconds, uint64_t trace_id,
                           Stopwatch queued,
                           std::shared_ptr<CancelToken> token,
                           server::WireService::QueryDone done) {
  if (trace_id == 0) trace_id = obs::NextTraceId();
  const double wait_seconds = queued.ElapsedSeconds();
  Stopwatch wall;
  Result<query::QueryResult> result = [&]() -> Result<query::QueryResult> {
    DGF_ASSIGN_OR_RETURN(query::Query q, Parse(sql));
    return ExecuteScatterGather(q, deadline_seconds, trace_id, token.get());
  }();
  if (result.ok()) {
    result->stats.wall_seconds = wall.ElapsedSeconds();
    result->stats.trace_id = trace_id;
    // The scatter-gather spans are offsets on its own clock, which started
    // after the admission wait; rebase onto the query's start.
    for (obs::SpanTiming& span : result->stats.spans) {
      span.start_seconds += wait_seconds;
    }
    result->stats.spans.insert(result->stats.spans.begin(),
                               {"admission_wait", 0.0, wait_seconds});
    trace_log_.Record({trace_id, sql,
                       wait_seconds + result->stats.wall_seconds,
                       result->stats.spans});
    c_served_->Increment();
  } else if (result.status().IsCancelled()) {
    c_cancelled_->Increment();
  } else if (result.status().IsDeadlineExceeded()) {
    c_deadline_exceeded_->Increment();
  } else {
    c_failed_->Increment();
  }
  latency_->Observe(wall.ElapsedSeconds());
  {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_.erase(request_id);
    --in_flight_;
    if (in_flight_ == 0) drained_.notify_all();
  }
  done(std::move(result));
}

void Coordinator::FanOutCancel(std::vector<ShardCall>& calls) {
  for (ShardCall& call : calls) {
    if (call.done || call.broken || call.cancel_sent) continue;
    call.cancel_sent = true;
    // A CANCEL leaves its own ack in flight on the connection, so the
    // connection is retired after this query either way; failure to send
    // just means the shard finishes on its own.
    if (!call.client->StartCancel(call.request_id).ok()) call.broken = true;
  }
}

Result<query::QueryResult> Coordinator::ExecuteScatterGather(
    const query::Query& q, double deadline_seconds, uint64_t trace_id,
    CancelToken* token) {
  const int num_shards = options_.shard_map.num_shards();
  if (options_.shards.size() != static_cast<size_t>(num_shards)) {
    return Status::InvalidArgument(
        "shard map has " + std::to_string(num_shards) + " shards but " +
        std::to_string(options_.shards.size()) + " endpoints configured");
  }

  const MergePlan plan = PlanMerge(q);

  // Decompose the query box into per-shard sub-boxes. A shard whose band
  // cannot intersect the box is skipped. When *no* shard intersects (the
  // query's own range is empty), shard 0 serves the full query: its answer —
  // zero rows, or identity aggregates — is already the global answer.
  std::vector<std::pair<int, std::string>> targets;
  for (int shard = 0; shard < num_shards; ++shard) {
    std::optional<query::Query> sub =
        options_.shard_map.Restrict(plan.shard_query, shard);
    if (!sub) continue;
    targets.emplace_back(shard, sub->ToSql());
  }
  if (targets.empty()) targets.emplace_back(0, plan.shard_query.ToSql());

  c_subqueries_->Increment(targets.size());
  c_shards_skipped_->Increment(static_cast<uint64_t>(num_shards) -
                               targets.size());

  // Scatter: start every sub-query before awaiting any, so shard-side
  // execution overlaps; each call owns its connection (ServerClient is
  // single-threaded, and one in-flight query per connection keeps CANCEL
  // routing trivial).
  Stopwatch elapsed;
  std::vector<ShardCall> calls;
  calls.reserve(targets.size());
  Status failure;
  for (const auto& [shard, sub_sql] : targets) {
    ShardCall call;
    call.shard = shard;
    call.sub_sql = sub_sql;
    Status scatter_error;
    auto client = Checkout(shard, /*replica=*/false);
    if (!client.ok()) {
      scatter_error = Status::Unavailable(
          "shard " + std::to_string(shard) + " (" +
          options_.shards[static_cast<size_t>(shard)].ToString() +
          ") unavailable: " + client.status().message());
    } else {
      call.client = std::move(*client);
      const double remaining =
          deadline_seconds > 0
              ? std::max(0.001, deadline_seconds - elapsed.ElapsedSeconds())
              : 0;
      call.dispatch_seconds = elapsed.ElapsedSeconds();
      auto started = call.client->StartQuery(sub_sql, remaining, trace_id);
      if (!started.ok()) {
        scatter_error = Status::Unavailable(
            "shard " + std::to_string(shard) + " (" +
            options_.shards[static_cast<size_t>(shard)].ToString() +
            ") unavailable: " + started.status().message());
      } else {
        call.request_id = *started;
      }
    }
    if (!scatter_error.ok()) {
      // Unreachable primary: run this read sub-query once against the
      // shard's replica endpoint (synchronously) before failing the query.
      if (!TryReplicaRetry(call, deadline_seconds, trace_id, elapsed,
                           token)) {
        failure = std::move(scatter_error);
        break;
      }
    }
    calls.push_back(std::move(call));
  }

  // Gather: await each pending call in short slices, checking our own token
  // between slices. The first failure (transport error, shard timeout, or
  // our own cancel/deadline) fans a CANCEL out to every other shard and
  // wins; stragglers' connections are simply not pooled again.
  bool token_tripped = false;
  Stopwatch cancel_wait;
  for (size_t i = 0; failure.ok() && i < calls.size(); ++i) {
    ShardCall& call = calls[i];
    Stopwatch silent;
    while (!call.done) {
      auto got =
          call.client->AwaitFor(call.request_id,
                                options_.poll_interval_seconds);
      if (!got.ok()) {
        call.broken = true;
        // The primary died mid-query; the sub-query is an idempotent read,
        // so retry it once on the shard's replica before giving up. (Not
        // attempted when our own cancel/deadline tripped — the failure to
        // report is the token's.)
        if (!token_tripped &&
            TryReplicaRetry(call, deadline_seconds, trace_id, elapsed,
                            token)) {
          break;  // call.done is set; gather proceeds to the next call
        }
        failure = Status::Unavailable(
            "shard " + std::to_string(call.shard) + " (" +
            options_.shards[static_cast<size_t>(call.shard)].ToString() +
            ") died mid-query: " + got.status().message());
        break;
      }
      if (got->has_value()) {
        call.response = std::move(**got);
        call.response_seconds = elapsed.ElapsedSeconds();
        call.done = true;
        break;
      }
      if (!token_tripped && !token->Check().ok()) {
        // Our own cancel or deadline: tell every shard to stop, then keep
        // draining so the failure we report is the token's, not a fake
        // shard timeout.
        token_tripped = true;
        cancel_wait.Restart();
        FanOutCancel(calls);
      }
      if (call.broken) {
        // FanOutCancel could not reach this shard; stop waiting on it.
        failure = token->Check();
        break;
      }
      const double silent_for =
          token_tripped ? cancel_wait.ElapsedSeconds() : silent.ElapsedSeconds();
      if (silent_for > options_.shard_response_timeout_seconds) {
        call.broken = true;
        if (!token_tripped &&
            TryReplicaRetry(call, deadline_seconds, trace_id, elapsed,
                            token)) {
          break;  // the replica answered the hung primary's sub-query
        }
        failure =
            token_tripped
                ? token->Check()
                : Status::Unavailable(
                      "shard " + std::to_string(call.shard) + " (" +
                      options_.shards[static_cast<size_t>(call.shard)]
                          .ToString() +
                      ") unresponsive after " +
                      std::to_string(
                          options_.shard_response_timeout_seconds) +
                      "s");
        break;
      }
    }
  }

  if (failure.ok() && !token->Check().ok()) {
    // Token tripped after the last response arrived: still honor it.
    failure = token->Check();
  }

  if (!failure.ok()) {
    FanOutCancel(calls);
    c_shard_errors_->Increment();
  } else {
    // All shards answered. A non-OK shard response propagates as-is (it is
    // already a structured error; Cancelled/DeadlineExceeded from a shard's
    // own deadline included).
    for (ShardCall& call : calls) {
      if (call.response.ok()) continue;
      failure = server::ResponseStatus(call.response);
      break;
    }
  }

  // Connections with no leftover in-flight traffic go back to the pool.
  for (ShardCall& call : calls) {
    if (call.done && !call.broken && !call.cancel_sent) {
      Checkin(call.shard, call.on_replica, std::move(call.client));
    }
  }
  DGF_RETURN_IF_ERROR(failure);

  // Merge. Shard schemas must agree (same catalog everywhere).
  const table::Schema& schema = calls.front().response.result.schema;
  for (const ShardCall& call : calls) {
    if (call.response.result.schema.num_fields() != schema.num_fields()) {
      return Status::Internal("shard result schemas disagree");
    }
  }

  query::QueryResult merged;
  merged.stats = calls.front().response.result.stats;
  for (size_t i = 1; i < calls.size(); ++i) {
    FoldStats(&merged.stats, calls[i].response.result.stats);
  }

  // Rebuild the trace from scratch (the first shard's spans rode along in
  // the stats copy above): one RPC span per shard call, then each shard's
  // own spans prefixed `shard<N>.` and rebased onto its dispatch offset, so
  // the cross-shard timeline reads in coordinator time.
  merged.stats.spans.clear();
  for (const ShardCall& call : calls) {
    const std::string prefix = "shard" + std::to_string(call.shard) + ".";
    merged.stats.spans.push_back(
        {prefix + "rpc", call.dispatch_seconds,
         std::max(0.0, call.response_seconds - call.dispatch_seconds)});
    for (const obs::SpanTiming& span : call.response.result.stats.spans) {
      merged.stats.spans.push_back(
          {prefix + span.name, call.dispatch_seconds + span.start_seconds,
           span.duration_seconds});
    }
  }
  const double merge_start = elapsed.ElapsedSeconds();
  Stopwatch merge_watch;

  if (!plan.group_merge) {
    // Sorted row merge: shard row sets are disjoint, so the union is exact.
    merged.schema = schema;
    for (ShardCall& call : calls) {
      DGF_ASSIGN_OR_RETURN(std::vector<table::Row> rows,
                           ParseShardRows(call.response.result));
      merged.rows.insert(merged.rows.end(),
                         std::make_move_iterator(rows.begin()),
                         std::make_move_iterator(rows.end()));
    }
    std::sort(merged.rows.begin(), merged.rows.end(), RowLess);
    merged.stats.spans.push_back(
        {"merge", merge_start, merge_watch.ElapsedSeconds()});
    return merged;
  }

  // Group-merge (a plain aggregation is the empty-key case: every shard
  // returns exactly one row and all fold into one group). Keyed by the
  // leading group value; aggregate slots fold additively — the rewritten avg
  // slots as sums, the shared count(*) once per incoming row.
  const bool any_avg = std::any_of(
      plan.items.begin(), plan.items.end(),
      [](const MergePlan::Item& item) { return item.is_avg; });
  std::map<std::string, table::Row> groups;
  for (ShardCall& call : calls) {
    DGF_ASSIGN_OR_RETURN(std::vector<table::Row> rows,
                         ParseShardRows(call.response.result));
    for (table::Row& row : rows) {
      std::string key;
      for (size_t slot : plan.key_slots) {
        key += row[slot].ToText();
        key.push_back('\x1f');
      }
      auto [it, inserted] = groups.emplace(std::move(key), std::move(row));
      if (inserted) continue;
      table::Row& acc = it->second;
      for (const MergePlan::Item& item : plan.items) {
        if (!item.is_agg) continue;
        acc[item.slot] = FoldCell(item.func, acc[item.slot], row[item.slot]);
      }
      if (any_avg) {
        acc[plan.count_slot] = FoldCell(core::AggFunc::kCount,
                                        acc[plan.count_slot],
                                        row[plan.count_slot]);
      }
    }
  }

  // Project back to the oracle's output layout — [group column,] one column
  // per requested aggregation, named by the *original* spec (so a rewritten
  // avg reads "avg(col)", not "sum(col)") — dividing out rewritten avgs.
  std::vector<table::Field> fields;
  for (const MergePlan::Item& item : plan.items) {
    if (!item.is_agg) {
      fields.push_back(schema.fields()[item.slot]);
    } else {
      fields.push_back({item.spec.ToString(),
                        item.func == core::AggFunc::kCount
                            ? table::DataType::kInt64
                            : table::DataType::kDouble});
    }
  }
  merged.schema = table::Schema(std::move(fields));
  for (auto& [key, row] : groups) {
    table::Row out;
    out.reserve(plan.items.size());
    for (const MergePlan::Item& item : plan.items) {
      if (item.is_avg) {
        const double count = row[plan.count_slot].AsDouble();
        out.push_back(table::Value::Double(
            count > 0 ? row[item.slot].AsDouble() / count : 0.0));
      } else {
        out.push_back(row[item.slot]);
      }
    }
    merged.rows.push_back(std::move(out));
  }
  std::sort(merged.rows.begin(), merged.rows.end(), RowLess);
  merged.stats.spans.push_back(
      {"merge", merge_start, merge_watch.ElapsedSeconds()});
  return merged;
}

bool Coordinator::CancelQuery(uint64_t request_id) {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tokens_.find(request_id);
    if (it == tokens_.end()) return false;
    token = it->second;
  }
  token->Cancel();
  return true;
}

Result<uint64_t> Coordinator::Append(const std::string& table,
                                     const std::vector<std::string>& rows) {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  const table::Schema& schema = it->second.schema;
  int part_col = -1;
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (table::ColumnNameEquals(schema.fields()[static_cast<size_t>(i)].name,
                                options_.shard_map.column())) {
      part_col = i;
      break;
    }
  }
  if (part_col < 0) {
    return Status::InvalidArgument("table " + table +
                                   " has no partition column " +
                                   options_.shard_map.column());
  }

  // Route each row by its partition-dimension value. One bucket per shard;
  // each non-empty bucket becomes exactly one APPEND to its shard, riding
  // that shard's group-commit pipeline, so a shard's slice of this call
  // publishes atomically.
  std::vector<std::vector<std::string>> buckets(
      static_cast<size_t>(options_.shard_map.num_shards()));
  for (const std::string& line : rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row, table::ParseRowText(line, schema));
    const table::Value& v = row[static_cast<size_t>(part_col)];
    const int64_t key = (v.is_int64() || v.is_date())
                            ? v.int64()
                            : static_cast<int64_t>(v.AsDouble());
    buckets[static_cast<size_t>(options_.shard_map.ShardForValue(key))]
        .push_back(line);
  }

  // Fan out: one thread per target shard so the shards' group-commit
  // pipelines overlap (they are independent machines).
  std::mutex result_mu;
  Status failure;
  uint64_t appended = 0;
  int shard_batches = 0;
  std::vector<std::thread> threads;
  for (size_t shard = 0; shard < buckets.size(); ++shard) {
    if (buckets[shard].empty()) continue;
    ++shard_batches;
    threads.emplace_back([this, shard, &buckets, &table, &result_mu, &failure,
                          &appended] {
      Status status;
      auto client = Checkout(static_cast<int>(shard), /*replica=*/false);
      if (!client.ok()) {
        status = Status::Unavailable(
            "shard " + std::to_string(shard) + " (" +
            options_.shards[shard].ToString() +
            ") unavailable: " + client.status().message());
      } else {
        auto response = (*client)->Append(table, buckets[shard]);
        if (!response.ok()) {
          status = Status::Unavailable(
              "shard " + std::to_string(shard) + " (" +
              options_.shards[shard].ToString() +
              ") died mid-append: " + response.status().message());
        } else if (!response->ok()) {
          status = server::ResponseStatus(*response);
        } else {
          Checkin(static_cast<int>(shard), /*replica=*/false,
                  std::move(*client));
        }
      }
      std::lock_guard<std::mutex> lock(result_mu);
      if (status.ok()) {
        appended += buckets[shard].size();
      } else if (failure.ok()) {
        failure = status;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  c_appends_->Increment();
  c_rows_appended_->Increment(rows.size());
  c_append_shard_batches_->Increment(static_cast<uint64_t>(shard_batches));
  // Partial failure is reported, never hidden: some shards may have
  // published their slice (each atomically); the caller knows the batch as
  // a whole did not commit and can retry — re-appending is the documented
  // at-least-once contract, same as a retried single-node APPEND.
  DGF_RETURN_IF_ERROR(failure);
  return appended;
}

std::vector<std::pair<std::string, double>> Coordinator::StatsSnapshot()
    const {
  return server::StatsFromRegistry(metrics_);
}

void Coordinator::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void Coordinator::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace dgf::coord
