#include "coord/shard_map.h"

#include <algorithm>

namespace dgf::coord {
namespace {

table::Value DimValue(table::DataType type, int64_t v) {
  return type == table::DataType::kDate ? table::Value::Date(v)
                                        : table::Value::Int64(v);
}

}  // namespace

std::string ShardEndpoint::ToString() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  return host + ":" + std::to_string(port);
}

ShardMap ShardMap::ByTimeRange(std::string time_column, int64_t first_day,
                               int64_t last_day, int num_shards) {
  const int64_t days = std::max<int64_t>(1, last_day - first_day + 1);
  const auto n = static_cast<int64_t>(
      std::max(1, std::min<int>(num_shards, static_cast<int>(days))));
  std::vector<int64_t> cuts;
  cuts.reserve(static_cast<size_t>(n - 1));
  // Balanced contiguous day bands: the first `days % n` bands take one extra
  // day. (Ceil-sized bands would exhaust the span early — 5 days over 4
  // shards is 2,2,1,0 — leaving trailing shards with no days at all.)
  const int64_t base = days / n;
  const int64_t extra = days % n;
  int64_t cursor = first_day;
  for (int64_t i = 0; i < n - 1; ++i) {
    cursor += base + (i < extra ? 1 : 0);
    cuts.push_back(cursor);
  }
  return ByCuts(std::move(time_column), table::DataType::kDate,
                std::move(cuts));
}

ShardMap ShardMap::ByCuts(std::string column, table::DataType type,
                          std::vector<int64_t> cuts) {
  ShardMap map;
  map.column_ = std::move(column);
  map.type_ = type;
  map.cuts_ = std::move(cuts);
  return map;
}

int ShardMap::ShardForValue(int64_t v) const {
  // First cut strictly greater than v bounds v's band from above.
  const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), v);
  return static_cast<int>(it - cuts_.begin());
}

std::optional<int64_t> ShardMap::LowerBound(int shard) const {
  if (shard <= 0) return std::nullopt;
  return cuts_[static_cast<size_t>(shard) - 1];
}

std::optional<int64_t> ShardMap::UpperBound(int shard) const {
  if (shard >= static_cast<int>(cuts_.size())) return std::nullopt;
  return cuts_[static_cast<size_t>(shard)] - 1;
}

std::optional<query::Query> ShardMap::Restrict(const query::Query& q,
                                               int shard) const {
  const std::optional<int64_t> lo = LowerBound(shard);
  const std::optional<int64_t> hi = UpperBound(shard);
  if (!lo && !hi) return q;  // single shard: the sub-box is the whole box

  // Skip the shard when the query's own range on the partition dimension
  // cannot intersect the shard's band.
  if (const query::ColumnRange* qr = q.where.FindColumn(column_)) {
    if (hi && qr->lower) {
      const table::Value band_hi = DimValue(type_, *hi);
      const int c = qr->lower->value.Compare(band_hi);
      if (c > 0 || (c == 0 && !qr->lower->inclusive)) return std::nullopt;
    }
    if (lo && qr->upper) {
      const table::Value band_lo = DimValue(type_, *lo);
      const int c = qr->upper->value.Compare(band_lo);
      if (c < 0 || (c == 0 && !qr->upper->inclusive)) return std::nullopt;
    }
  }

  query::Query sub = q;
  query::ColumnRange band;
  band.column = column_;
  if (lo) band.lower = query::Bound{DimValue(type_, *lo), true};
  if (hi) band.upper = query::Bound{DimValue(type_, *hi), true};
  // Predicate::And intersects with any existing range on the column, so the
  // sub-query's box is exactly (query box) ∩ (shard band).
  sub.where.And(std::move(band));
  return sub;
}

}  // namespace dgf::coord
