#ifndef DGF_QUERY_PREDICATE_H_
#define DGF_QUERY_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace dgf::query {

/// One endpoint of a range condition.
struct Bound {
  table::Value value;
  bool inclusive = true;
};

/// Conjunctive range condition on a single column:
/// lower/upper may each be absent (half-open or unbounded ranges).
/// Equality is both bounds inclusive at the same value.
struct ColumnRange {
  std::string column;
  std::optional<Bound> lower;
  std::optional<Bound> upper;

  static ColumnRange Equal(std::string column, table::Value value) {
    ColumnRange range;
    range.column = std::move(column);
    range.lower = Bound{value, true};
    range.upper = Bound{std::move(value), true};
    return range;
  }
  static ColumnRange Between(std::string column, table::Value lo, bool lo_inc,
                             table::Value hi, bool hi_inc) {
    ColumnRange range;
    range.column = std::move(column);
    range.lower = Bound{std::move(lo), lo_inc};
    range.upper = Bound{std::move(hi), hi_inc};
    return range;
  }

  /// True if `value` satisfies this range.
  bool Matches(const table::Value& value) const;

  std::string ToString() const;
  /// Like ToString but renders date/string literals quoted so the output
  /// re-parses through ParseQuery (ToString's bare `2012-12-01` does not
  /// tokenize as one literal). The wire clients serialize predicates with
  /// this form.
  std::string ToSql() const;
};

/// A conjunction of per-column ranges — the multidimensional range predicate
/// shape the paper targets (WHERE a>=.. AND a<.. AND b>=.. AND b<..).
class Predicate {
 public:
  Predicate() = default;

  /// Adds a condition, intersecting it with any existing range on the same
  /// column.
  void And(ColumnRange range);

  const std::vector<ColumnRange>& ranges() const { return ranges_; }
  bool empty() const { return ranges_.empty(); }

  /// The range on `column` if the predicate constrains it.
  const ColumnRange* FindColumn(const std::string& column) const;

  /// Resolves column names against `schema` for fast row evaluation.
  Result<class BoundPredicate> Bind(const table::Schema& schema) const;

  std::string ToString() const;
  /// ParseQuery-compatible rendering (quoted date/string literals).
  std::string ToSql() const;

 private:
  std::vector<ColumnRange> ranges_;
};

/// A predicate resolved to column ordinals; row evaluation is allocation-free.
class BoundPredicate {
 public:
  bool Matches(const table::Row& row) const {
    for (const auto& [idx, range] : bound_) {
      if (!range.Matches(row[static_cast<size_t>(idx)])) return false;
    }
    return true;
  }

  int num_conditions() const { return static_cast<int>(bound_.size()); }

 private:
  friend class Predicate;
  std::vector<std::pair<int, ColumnRange>> bound_;
};

}  // namespace dgf::query

#endif  // DGF_QUERY_PREDICATE_H_
