#ifndef DGF_QUERY_EXECUTOR_H_
#define DGF_QUERY_EXECUTOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "dgf/dgf_index.h"
#include "exec/mapreduce.h"
#include "index/bitmap_index.h"
#include "index/compact_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query.h"
#include "table/table.h"

namespace dgf::query {

/// How a query's data access was (or should be) performed.
enum class AccessPath {
  kFullScan,
  kCompactIndex,
  kBitmapIndex,
  kDgfIndex,
  /// Aggregate Index "index as data" rewrite (COUNT group-bys only).
  kAggregateRewrite,
};

const char* AccessPathName(AccessPath path);

/// Work and cost accounting for one executed query, split the way the
/// paper's stacked bars are: index consultation vs data scan.
struct QueryStats {
  AccessPath path = AccessPath::kFullScan;
  /// Records deserialized by the data-scan job (Tables 3/4/6).
  uint64_t records_read = 0;
  /// Records satisfying the predicate.
  uint64_t records_matched = 0;
  uint64_t bytes_read = 0;
  int splits_scanned = 0;
  uint64_t kv_gets = 0;
  /// Decoded-GFU cache outcomes during index consultation (DGF path only).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Simulated cluster seconds: consulting the index ("read index and other",
  /// includes per-job fixed overheads) and scanning data ("read data and
  /// process").
  double index_seconds = 0.0;
  double data_seconds = 0.0;
  double total_seconds = 0.0;
  /// Real elapsed time on this machine.
  double wall_seconds = 0.0;
  /// Distributed trace: the id travels with the query (coordinator -> shard
  /// sub-queries share their parent's id) and each hop appends its timed
  /// spans. Both ride the wire as optional trailing fields of the QUERY
  /// frames, so old peers interoperate.
  uint64_t trace_id = 0;
  std::vector<obs::SpanTiming> spans;
};

/// One executed query: output rows plus accounting.
struct QueryResult {
  table::Schema schema;
  std::vector<table::Row> rows;
  QueryStats stats;
};

/// Runs the paper's query shapes over MiniMR with a pluggable access path.
///
/// Indexes are registered per table; `Execute` picks the best registered path
/// (DGFIndex > Bitmap > Compact > scan) unless one is forced. All paths
/// re-apply the full predicate during the data scan, so results are identical
/// across paths — only the work differs. This invariant is what the
/// cross-path property tests assert.
class QueryExecutor {
 public:
  struct Options {
    std::shared_ptr<fs::MiniDfs> dfs;
    exec::ClusterConfig cluster;
    int worker_threads = 4;
    /// Split size for data scans (0 = DFS block size).
    uint64_t split_size = 0;
    int group_by_reducers = 8;
    /// Optional: per-GFU access totals and per-query selectivity land here
    /// (the feeder for adaptive grid maintenance). Borrowed; may be null.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit QueryExecutor(Options options) : options_(std::move(options)) {}

  /// Registers the table itself (required before querying it).
  void RegisterTable(const table::TableDesc& desc);
  /// Registers index structures (optional, per table).
  void RegisterDgfIndex(const std::string& table, core::DgfIndex* index);
  void RegisterCompactIndex(const std::string& table,
                            index::CompactIndex* index);
  void RegisterBitmapIndex(const std::string& table, index::BitmapIndex* index);
  void RegisterAggregateIndex(const std::string& table,
                              index::AggregateIndex* index);

  /// Executes `query`, optionally forcing an access path (benchmarks compare
  /// paths on identical queries). Forcing a path whose index is not
  /// registered is an InvalidArgument error.
  ///
  /// `cancel` (optional, borrowed for the call) is polled cooperatively in
  /// the scan and merge loops; a tripped token aborts the query with
  /// Cancelled or DeadlineExceeded. The query server arms one per request.
  Result<QueryResult> Execute(const Query& query,
                              std::optional<AccessPath> force = std::nullopt,
                              const CancelToken* cancel = nullptr);

 private:
  struct TableState {
    table::TableDesc desc;
    core::DgfIndex* dgf = nullptr;
    index::CompactIndex* compact = nullptr;
    index::BitmapIndex* bitmap = nullptr;
    index::AggregateIndex* aggregate = nullptr;
  };

  Result<TableState*> GetState(const std::string& table);
  AccessPath ChoosePath(const TableState& state, const Query& query) const;

  Result<QueryResult> ExecuteDgf(TableState* state, const Query& query,
                                 const CancelToken* cancel);
  Result<QueryResult> ExecuteSplitScan(TableState* state, const Query& query,
                                       AccessPath path,
                                       const CancelToken* cancel);
  Result<QueryResult> ExecuteAggregateRewrite(TableState* state,
                                              const Query& query);

  /// Runs the data-scan job over prepared inputs and assembles the result.
  struct ScanInputs;
  Result<QueryResult> RunDataJob(TableState* state, const Query& query,
                                 const ScanInputs& inputs, QueryStats stats,
                                 const CancelToken* cancel);

  Options options_;
  std::map<std::string, TableState> tables_;
};

}  // namespace dgf::query

#endif  // DGF_QUERY_EXECUTOR_H_
