#ifndef DGF_QUERY_PARSER_H_
#define DGF_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/query.h"
#include "table/schema.h"

namespace dgf::query {

/// Parses the HiveQL subset the paper's workloads use:
///
///   SELECT <item> [, <item>]*
///   FROM <table> [<alias>]
///   [JOIN <table> [<alias>] ON <col> = <col>]
///   [WHERE <col> <op> <literal> [AND ...]*]
///   [GROUP BY <col>]
///
/// where <item> is a column, `count(*)`, `sum|min|max(col)`, or `sum(a*b)`,
/// and <op> is one of = < <= > >=. Table aliases may qualify columns
/// (`t1.userId`); qualifiers are resolved and stripped. Literals are typed
/// against the referenced column's schema type, so `time > '2013-01-01'`
/// becomes a date comparison.
///
/// `left` is the FROM table's schema; `right` (nullable) is the JOIN
/// table's. Keywords and identifiers are case-insensitive.
Result<Query> ParseQuery(std::string_view sql, const table::Schema& left,
                         const table::Schema* right = nullptr);

}  // namespace dgf::query

#endif  // DGF_QUERY_PARSER_H_
