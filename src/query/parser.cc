#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace dgf::query {
namespace {

using table::DataType;
using table::Schema;
using table::Value;

enum class TokenType { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // identifiers lowercased; symbols verbatim
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < sql_.size()) {
      const char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '_')) {
          ++pos_;
        }
        std::string text(sql_.substr(start, pos_ - start));
        std::transform(text.begin(), text.end(), text.begin(), [](unsigned char ch) {
          return std::tolower(ch);
        });
        out.push_back({TokenType::kIdent, std::move(text)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        size_t start = pos_;
        ++pos_;
        while (pos_ < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
                (sql_[pos_] == '-' &&
                 (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
          ++pos_;
        }
        out.push_back({TokenType::kNumber,
                       std::string(sql_.substr(start, pos_ - start))});
        continue;
      }
      if (c == '\'') {
        size_t end = sql_.find('\'', pos_ + 1);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        out.push_back({TokenType::kString,
                       std::string(sql_.substr(pos_ + 1, end - pos_ - 1))});
        pos_ = end + 1;
        continue;
      }
      // Two-char operators first.
      if ((c == '<' || c == '>') && pos_ + 1 < sql_.size() &&
          sql_[pos_ + 1] == '=') {
        out.push_back({TokenType::kSymbol, std::string(sql_.substr(pos_, 2))});
        pos_ += 2;
        continue;
      }
      if (std::string_view("(),.*=<>;").find(c) != std::string_view::npos) {
        out.push_back({TokenType::kSymbol, std::string(1, c)});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument(StringPrintf("bad character '%c'", c));
    }
    out.push_back({TokenType::kEnd, ""});
    return out;
  }

 private:
  std::string_view sql_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema& left, const Schema* right)
      : tokens_(std::move(tokens)), left_(left), right_(right) {}

  Result<Query> Parse() {
    Query query;
    DGF_RETURN_IF_ERROR(ExpectKeyword("select"));
    DGF_RETURN_IF_ERROR(ParseSelectList(&query));
    DGF_RETURN_IF_ERROR(ExpectKeyword("from"));
    DGF_ASSIGN_OR_RETURN(query.table, ExpectIdent());
    MaybeAlias(&left_alias_);
    if (AcceptKeyword("join")) {
      JoinClause join;
      DGF_ASSIGN_OR_RETURN(join.right_table, ExpectIdent());
      MaybeAlias(&right_alias_);
      DGF_RETURN_IF_ERROR(ExpectKeyword("on"));
      DGF_ASSIGN_OR_RETURN(QualifiedColumn a, ParseColumnRef());
      DGF_RETURN_IF_ERROR(ExpectSymbol("="));
      DGF_ASSIGN_OR_RETURN(QualifiedColumn b, ParseColumnRef());
      // Orient the equi-join: the side qualified with the right alias (or
      // found only in the right schema) is the right column.
      const bool a_is_right = RefersToRight(a);
      join.left_column = a_is_right ? b.column : a.column;
      join.right_column = a_is_right ? a.column : b.column;
      query.join = std::move(join);
    }
    if (AcceptKeyword("where")) {
      DGF_RETURN_IF_ERROR(ParseConjunction(&query));
    }
    if (AcceptKeyword("group")) {
      DGF_RETURN_IF_ERROR(ExpectKeyword("by"));
      DGF_ASSIGN_OR_RETURN(QualifiedColumn col, ParseColumnRef());
      query.group_by = col.column;
    }
    AcceptSymbol(";");
    if (!AtEnd()) {
      return Status::InvalidArgument("unexpected trailing tokens near '" +
                                     Peek().text + "'");
    }
    return query;
  }

 private:
  struct QualifiedColumn {
    std::string qualifier;  // table alias, may be empty
    std::string column;
  };

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().type == TokenType::kIdent && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected '" + std::string(kw) +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }

  bool AcceptSymbol(std::string_view sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument("expected '" + std::string(sym) +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return tokens_[pos_++].text;
  }

  /// Consumes "alias" after a table name when present (and not a keyword).
  void MaybeAlias(std::string* alias) {
    static constexpr const char* kKeywords[] = {"join", "on", "where", "group"};
    if (Peek().type != TokenType::kIdent) return;
    for (const char* kw : kKeywords) {
      if (Peek().text == kw) return;
    }
    *alias = tokens_[pos_++].text;
  }

  Result<QualifiedColumn> ParseColumnRef() {
    QualifiedColumn col;
    DGF_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    if (AcceptSymbol(".")) {
      col.qualifier = std::move(first);
      DGF_ASSIGN_OR_RETURN(col.column, ExpectIdent());
    } else {
      col.column = std::move(first);
    }
    return col;
  }

  bool RefersToRight(const QualifiedColumn& col) const {
    if (!col.qualifier.empty()) return col.qualifier == right_alias_;
    return !left_.HasField(col.column) && right_ != nullptr &&
           right_->HasField(col.column);
  }

  Status ParseSelectList(Query* query) {
    do {
      static constexpr const char* kAggNames[] = {"sum", "count", "min", "max",
                                                  "avg"};
      const bool is_agg =
          Peek().type == TokenType::kIdent &&
          pos_ + 1 < tokens_.size() &&
          tokens_[pos_ + 1].type == TokenType::kSymbol &&
          tokens_[pos_ + 1].text == "(" &&
          std::any_of(std::begin(kAggNames), std::end(kAggNames),
                      [&](const char* name) { return Peek().text == name; });
      if (is_agg) {
        DGF_ASSIGN_OR_RETURN(std::string func, ExpectIdent());
        DGF_RETURN_IF_ERROR(ExpectSymbol("("));
        std::string arg;
        if (AcceptSymbol("*")) {
          arg = "*";
        } else {
          DGF_ASSIGN_OR_RETURN(QualifiedColumn col, ParseColumnRef());
          arg = col.column;
          if (AcceptSymbol("*")) {
            DGF_ASSIGN_OR_RETURN(QualifiedColumn col_b, ParseColumnRef());
            arg += "*" + col_b.column;
          }
        }
        DGF_RETURN_IF_ERROR(ExpectSymbol(")"));
        DGF_ASSIGN_OR_RETURN(core::AggSpec spec,
                             core::AggSpec::Parse(func + "(" + arg + ")"));
        query->select.push_back(SelectItem::Aggregation(std::move(spec)));
      } else {
        DGF_ASSIGN_OR_RETURN(QualifiedColumn col, ParseColumnRef());
        query->select.push_back(SelectItem::Column(col.column));
      }
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  /// Type of `column` looked up in the appropriate schema.
  Result<DataType> ColumnType(const QualifiedColumn& col) const {
    if (RefersToRight(col)) {
      DGF_ASSIGN_OR_RETURN(int idx, right_->FieldIndex(col.column));
      return right_->field(idx).type;
    }
    DGF_ASSIGN_OR_RETURN(int idx, left_.FieldIndex(col.column));
    return left_.field(idx).type;
  }

  /// Parses one literal token typed against `col`'s schema type.
  Result<Value> ParseTypedLiteral(const QualifiedColumn& col) {
    const Token literal = Peek();
    if (literal.type != TokenType::kNumber &&
        literal.type != TokenType::kString) {
      return Status::InvalidArgument("expected literal near '" + literal.text +
                                     "'");
    }
    ++pos_;
    DGF_ASSIGN_OR_RETURN(DataType type, ColumnType(col));
    return table::ParseValue(literal.text, type);
  }

  Status ParseConjunction(Query* query) {
    do {
      DGF_ASSIGN_OR_RETURN(QualifiedColumn col, ParseColumnRef());
      // col BETWEEN lo AND hi (both bounds inclusive, per SQL).
      if (AcceptKeyword("between")) {
        DGF_ASSIGN_OR_RETURN(Value lo, ParseTypedLiteral(col));
        DGF_RETURN_IF_ERROR(ExpectKeyword("and"));
        DGF_ASSIGN_OR_RETURN(Value hi, ParseTypedLiteral(col));
        query->where.And(ColumnRange::Between(col.column, std::move(lo), true,
                                              std::move(hi), true));
        continue;
      }
      if (Peek().type != TokenType::kSymbol) {
        return Status::InvalidArgument("expected comparison near '" +
                                       Peek().text + "'");
      }
      const std::string op = tokens_[pos_++].text;
      const Token literal = Peek();
      if (literal.type != TokenType::kNumber &&
          literal.type != TokenType::kString) {
        return Status::InvalidArgument("expected literal after '" + op + "'");
      }
      ++pos_;
      DGF_ASSIGN_OR_RETURN(DataType type, ColumnType(col));
      DGF_ASSIGN_OR_RETURN(Value value, table::ParseValue(literal.text, type));

      ColumnRange range;
      range.column = col.column;
      if (op == "=") {
        range = ColumnRange::Equal(col.column, std::move(value));
      } else if (op == "<") {
        range.upper = Bound{std::move(value), false};
      } else if (op == "<=") {
        range.upper = Bound{std::move(value), true};
      } else if (op == ">") {
        range.lower = Bound{std::move(value), false};
      } else if (op == ">=") {
        range.lower = Bound{std::move(value), true};
      } else {
        return Status::InvalidArgument("unsupported operator '" + op + "'");
      }
      query->where.And(std::move(range));
    } while (AcceptKeyword("and"));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Schema& left_;
  const Schema* right_;
  std::string left_alias_;
  std::string right_alias_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view sql, const Schema& left,
                         const Schema* right) {
  Lexer lexer(sql);
  DGF_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), left, right);
  return parser.Parse();
}

}  // namespace dgf::query
