#include "query/executor.h"

#include <algorithm>
#include <charconv>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "dgf/dgf_input_format.h"
#include "table/rc_format.h"

namespace dgf::query {
namespace {

using core::AggregatorList;
using core::AggSpec;
using table::DataType;
using table::Row;
using table::Schema;
using table::TableDesc;
using table::Value;

const char* kRowKey = "r";

std::string EncodeHeader(const std::vector<double>& header) {
  std::string out;
  for (size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out.push_back(',');
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), header[i]);
    (void)ec;
    out.append(buf, end);
  }
  return out;
}

Result<std::vector<double>> DecodeHeader(std::string_view text, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::string_view part : SplitString(text, ',')) {
    if (part.empty()) continue;
    DGF_ASSIGN_OR_RETURN(double v, ParseDouble(part));
    out.push_back(v);
  }
  if (out.size() != n) return Status::Corruption("partial header arity");
  return out;
}

/// Broadcast hash table of the join's right side, shared by all map tasks
/// (Hive's map-side join with a distributed-cache small table).
struct BroadcastTable {
  Schema schema;
  std::unordered_multimap<std::string, Row> by_key;
  uint64_t bytes = 0;
};

enum class ScanMode { kAggregate, kGroupBy, kProject };

/// The shared data-scan mapper: reads its split (through a path-specific
/// reader factory), filters with the predicate, and either folds aggregation
/// partials, folds per-group partials, or emits projected/joined rows.
class ScanMapper : public exec::Mapper {
 public:
  using ReaderFactory = std::function<Result<std::unique_ptr<table::RecordReader>>(
      const fs::FileSplit&, exec::MapContext*)>;

  ScanMapper(ReaderFactory factory, BoundPredicate predicate, ScanMode mode,
             const AggregatorList* aggs, int group_field,
             std::vector<int> left_project, int join_left_field,
             std::shared_ptr<const BroadcastTable> broadcast,
             std::vector<int> right_project, const CancelToken* cancel)
      : factory_(std::move(factory)),
        predicate_(std::move(predicate)),
        mode_(mode),
        aggs_(aggs),
        group_field_(group_field),
        left_project_(std::move(left_project)),
        join_left_field_(join_left_field),
        broadcast_(std::move(broadcast)),
        right_project_(std::move(right_project)),
        cancel_(cancel) {}

  Status Map(const fs::FileSplit& split, exec::MapContext* ctx) override {
    DGF_ASSIGN_OR_RETURN(auto reader, factory_(split, ctx));
    Row row;
    std::vector<double> agg_partial;
    if (aggs_ != nullptr) agg_partial = aggs_->Identity();
    std::unordered_map<std::string, std::vector<double>> groups;
    uint64_t matched = 0;
    uint64_t cancel_poll = 0;

    for (;;) {
      DGF_RETURN_IF_ERROR(CancelToken::CheckEvery(cancel_, &cancel_poll));
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      ctx->AddRecords(1);
      if (!predicate_.Matches(row)) continue;
      ++matched;
      switch (mode_) {
        case ScanMode::kAggregate:
          aggs_->Update(&agg_partial, row);
          break;
        case ScanMode::kGroupBy: {
          const std::string key =
              row[static_cast<size_t>(group_field_)].ToText();
          auto [it, inserted] = groups.try_emplace(key);
          if (inserted) it->second = aggs_->Identity();
          aggs_->Update(&it->second, row);
          break;
        }
        case ScanMode::kProject: {
          DGF_RETURN_IF_ERROR(EmitProjected(row, ctx));
          break;
        }
      }
    }
    ctx->AddBytesRead(reader->BytesRead());
    ctx->counters().Add("scan.matched", static_cast<int64_t>(matched));
    if (mode_ == ScanMode::kAggregate && matched > 0) {
      ctx->Emit("", EncodeHeader(agg_partial));
    } else if (mode_ == ScanMode::kGroupBy) {
      for (const auto& [key, partial] : groups) {
        ctx->Emit(key, EncodeHeader(partial));
      }
    }
    return Status::OK();
  }

 private:
  Status EmitProjected(const Row& row, exec::MapContext* ctx) {
    Row out;
    const Row* right_row = nullptr;
    if (broadcast_ != nullptr) {
      const std::string key =
          row[static_cast<size_t>(join_left_field_)].ToText();
      auto it = broadcast_->by_key.find(key);
      if (it == broadcast_->by_key.end()) return Status::OK();  // inner join
      right_row = &it->second;
    }
    for (size_t i = 0; i < left_project_.size(); ++i) {
      if (left_project_[i] >= 0) {
        out.push_back(row[static_cast<size_t>(left_project_[i])]);
      } else {
        out.push_back(
            (*right_row)[static_cast<size_t>(right_project_[i])]);
      }
    }
    ctx->Emit(kRowKey, table::FormatRowText(out));
    return Status::OK();
  }

  ReaderFactory factory_;
  BoundPredicate predicate_;
  ScanMode mode_;
  const AggregatorList* aggs_;
  int group_field_;
  /// Output projection: left_project_[i] >= 0 selects that left column;
  /// -1 means take right_project_[i] from the joined right row.
  std::vector<int> left_project_;
  int join_left_field_;
  std::shared_ptr<const BroadcastTable> broadcast_;
  std::vector<int> right_project_;
  const CancelToken* cancel_;
};

/// Reducer merging per-group partial headers.
class GroupMergeReducer : public exec::Reducer {
 public:
  GroupMergeReducer(const AggregatorList* aggs, const CancelToken* cancel)
      : aggs_(aggs), cancel_(cancel) {}

  Status Reduce(const std::string& key, const std::vector<std::string>& values,
                exec::ReduceContext* ctx) override {
    std::vector<double> acc = aggs_->Identity();
    for (const std::string& value : values) {
      DGF_RETURN_IF_ERROR(CancelToken::CheckEvery(cancel_, &cancel_poll_));
      DGF_ASSIGN_OR_RETURN(
          std::vector<double> partial,
          DecodeHeader(value, static_cast<size_t>(aggs_->size())));
      aggs_->Merge(&acc, partial);
    }
    ctx->Collect(key, EncodeHeader(acc));
    return Status::OK();
  }

 private:
  const AggregatorList* aggs_;
  const CancelToken* cancel_;
  uint64_t cancel_poll_ = 0;
};

Value AggResultValue(const AggSpec& spec, double value) {
  if (spec.func == core::AggFunc::kCount) {
    return Value::Int64(static_cast<int64_t>(value + (value >= 0 ? 0.5 : -0.5)));
  }
  return Value::Double(value);
}

/// Rewrites the requested aggregations into additive "physical" ones:
/// avg(c) expands to sum(c) / count(*); duplicates are computed once.
/// `outputs[i]` says how to produce the i-th requested value from the
/// physical accumulator vector.
struct AggPlan {
  std::vector<AggSpec> physical;
  struct Output {
    bool is_avg = false;
    size_t a = 0;  // physical slot (numerator for avg)
    size_t b = 0;  // denominator slot for avg
  };
  std::vector<Output> outputs;

  size_t AddPhysical(const AggSpec& spec) {
    for (size_t i = 0; i < physical.size(); ++i) {
      if (physical[i] == spec) return i;
    }
    physical.push_back(spec);
    return physical.size() - 1;
  }

  static AggPlan Create(const std::vector<AggSpec>& requested) {
    AggPlan plan;
    for (const AggSpec& spec : requested) {
      Output output;
      if (spec.func == core::AggFunc::kAvg) {
        output.is_avg = true;
        AggSpec sum = spec;
        sum.func = core::AggFunc::kSum;
        output.a = plan.AddPhysical(sum);
        output.b = plan.AddPhysical(AggSpec{core::AggFunc::kCount, "", ""});
      } else {
        output.a = plan.AddPhysical(spec);
      }
      plan.outputs.push_back(output);
    }
    return plan;
  }

  /// The i-th requested value from the physical accumulators.
  Value OutputValue(size_t i, const std::vector<AggSpec>& requested,
                    const std::vector<double>& acc) const {
    const Output& output = outputs[i];
    if (output.is_avg) {
      const double count = acc[output.b];
      return Value::Double(count > 0 ? acc[output.a] / count : 0.0);
    }
    return AggResultValue(requested[i], acc[output.a]);
  }
};

}  // namespace

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "FullScan";
    case AccessPath::kCompactIndex:
      return "CompactIndex";
    case AccessPath::kBitmapIndex:
      return "BitmapIndex";
    case AccessPath::kDgfIndex:
      return "DGFIndex";
    case AccessPath::kAggregateRewrite:
      return "AggregateRewrite";
  }
  return "?";
}

void QueryExecutor::RegisterTable(const TableDesc& desc) {
  tables_[desc.name].desc = desc;
}

void QueryExecutor::RegisterDgfIndex(const std::string& table,
                                     core::DgfIndex* index) {
  tables_[table].dgf = index;
}

void QueryExecutor::RegisterCompactIndex(const std::string& table,
                                         index::CompactIndex* index) {
  tables_[table].compact = index;
}

void QueryExecutor::RegisterBitmapIndex(const std::string& table,
                                        index::BitmapIndex* index) {
  tables_[table].bitmap = index;
}

void QueryExecutor::RegisterAggregateIndex(const std::string& table,
                                           index::AggregateIndex* index) {
  tables_[table].aggregate = index;
}

Result<QueryExecutor::TableState*> QueryExecutor::GetState(
    const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end() || it->second.desc.name.empty()) {
    return Status::NotFound("table not registered: " + table);
  }
  return &it->second;
}

AccessPath QueryExecutor::ChoosePath(const TableState& state,
                                     const Query& query) const {
  (void)query;
  if (state.dgf != nullptr) return AccessPath::kDgfIndex;
  if (state.bitmap != nullptr) return AccessPath::kBitmapIndex;
  if (state.compact != nullptr) return AccessPath::kCompactIndex;
  return AccessPath::kFullScan;
}

// Inputs for the shared data-scan job, prepared by the access path.
struct QueryExecutor::ScanInputs {
  std::vector<fs::FileSplit> splits;
  // DGF path: slices per split (keyed by the split); empty for others.
  std::map<fs::FileSplit, std::vector<core::SliceLocation>> slices;
  // Bitmap path: row filters per file.
  std::map<std::string, std::vector<std::pair<uint64_t, std::vector<uint64_t>>>>
      row_filters;
  // DGF aggregation path: header merged from inner GFUs, in index agg order,
  // plus the index's aggregator specs.
  std::vector<double> dgf_inner_header;
  const AggregatorList* dgf_aggs = nullptr;
  uint64_t dgf_inner_records = 0;
  // Which table descriptor the splits refer to (base table or DGF data dir).
  TableDesc scan_desc;
};

Result<QueryResult> QueryExecutor::Execute(const Query& query,
                                           std::optional<AccessPath> force,
                                           const CancelToken* cancel) {
  Stopwatch wall;
  if (cancel != nullptr) DGF_RETURN_IF_ERROR(cancel->Check());
  DGF_ASSIGN_OR_RETURN(TableState * state, GetState(query.table));
  const AccessPath path = force.value_or(ChoosePath(*state, query));

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (path) {
      case AccessPath::kDgfIndex:
        if (state->dgf == nullptr) {
          return Status::InvalidArgument("no DGFIndex registered for " +
                                         query.table);
        }
        return ExecuteDgf(state, query, cancel);
      case AccessPath::kAggregateRewrite:
        return ExecuteAggregateRewrite(state, query);
      case AccessPath::kCompactIndex:
        if (state->compact == nullptr && state->aggregate == nullptr) {
          return Status::InvalidArgument("no Compact Index registered for " +
                                         query.table);
        }
        return ExecuteSplitScan(state, query, path, cancel);
      case AccessPath::kBitmapIndex:
        if (state->bitmap == nullptr) {
          return Status::InvalidArgument("no Bitmap Index registered for " +
                                         query.table);
        }
        return ExecuteSplitScan(state, query, path, cancel);
      case AccessPath::kFullScan:
        return ExecuteSplitScan(state, query, path, cancel);
    }
    return Status::Internal("unreachable");
  }();
  if (result.ok()) {
    result->stats.path = path;
    result->stats.wall_seconds = wall.ElapsedSeconds();
    result->stats.total_seconds =
        result->stats.index_seconds + result->stats.data_seconds;
    if (options_.metrics != nullptr && result->stats.records_read > 0) {
      // Observed selectivity (matched / read). A distribution skewing toward
      // 1.0 on the DGF path means boundary slices are tight; mass near 0
      // flags over-wide cells — the adaptive-grid maintenance signal.
      options_.metrics->GetHistogram("query.selectivity")
          ->Observe(static_cast<double>(result->stats.records_matched) /
                    static_cast<double>(result->stats.records_read));
    }
  }
  return result;
}

Result<QueryResult> QueryExecutor::ExecuteDgf(TableState* state,
                                              const Query& query,
                                              const CancelToken* cancel) {
  core::DgfIndex* index = state->dgf;
  // Pin one immutable snapshot for the whole query: the lookup, the slice
  // scan below, and the aggregator list all come from the same epoch, so a
  // concurrent Append/optimize/AddAggregation publish cannot tear the
  // result. The snapshot (held to the end of this scope) also keeps any
  // since-retired data files alive until the scan finishes.
  DGF_ASSIGN_OR_RETURN(core::DgfIndex::Snapshot snap, index->Pin());

  const AggPlan plan = AggPlan::Create(query.Aggregations());
  // Precomputed inner-GFU headers are only valid when every predicate
  // condition is on an indexed dimension: Lookup ignores non-dimension
  // conditions and only boundary slices are re-filtered by the scan. A
  // predicate on a non-indexed column forces the slice-scan path, which
  // re-applies the whole predicate row by row.
  bool pred_covered = true;
  for (const auto& range : query.where.ranges()) {
    if (!index->policy().DimIndex(range.column).ok()) {
      pred_covered = false;
      break;
    }
  }
  const bool agg_path =
      query.IsPlainAggregation() && pred_covered &&
      core::DgfIndex::CoversAggregations(*snap.aggs, plan.physical);

  DGF_ASSIGN_OR_RETURN(auto lookup, index->Lookup(snap, query.where, agg_path));
  if (options_.metrics != nullptr) {
    // Per-query-box GFU classification totals: a rising boundary/inner ratio
    // is the signal the grid is too coarse for the workload's query boxes.
    options_.metrics->GetCounter("gfu.inner_accesses")
        ->Increment(lookup.inner_gfus);
    options_.metrics->GetCounter("gfu.boundary_accesses")
        ->Increment(lookup.boundary_gfus);
  }

  ScanInputs inputs;
  inputs.scan_desc = index->DataDesc();
  // Coalesce before planning so split assignment, per-split slice lists, and
  // the seek accounting all see merged read ranges rather than per-GFU
  // fragments.
  lookup.slices = core::CoalesceSlices(std::move(lookup.slices));
  DGF_ASSIGN_OR_RETURN(
      auto planned,
      core::PlanSlicedSplits(options_.dfs, lookup.slices, options_.split_size));
  for (auto& sliced : planned) {
    inputs.splits.push_back(sliced.split);
    inputs.slices[sliced.split] = std::move(sliced.slices);
  }
  if (agg_path) {
    inputs.dgf_inner_header = std::move(lookup.inner_header);
    inputs.dgf_aggs = snap.aggs.get();
    inputs.dgf_inner_records = lookup.inner_records;
  }

  QueryStats stats;
  stats.kv_gets = lookup.kv_gets + lookup.kv_scan_entries;
  stats.cache_hits = lookup.cache_hits;
  stats.cache_misses = lookup.cache_misses;
  stats.index_seconds =
      static_cast<double>(lookup.kv_gets) * options_.cluster.kv_get_s +
      static_cast<double>(lookup.kv_scan_entries) *
          options_.cluster.kv_scan_entry_s;
  return RunDataJob(state, query, inputs, stats, cancel);
}

Result<QueryResult> QueryExecutor::ExecuteSplitScan(TableState* state,
                                                    const Query& query,
                                                    AccessPath path,
                                                    const CancelToken* cancel) {
  ScanInputs inputs;
  inputs.scan_desc = state->desc;
  QueryStats stats;

  if (path == AccessPath::kCompactIndex) {
    index::CompactIndex* compact =
        state->compact != nullptr
            ? state->compact
            : static_cast<index::CompactIndex*>(state->aggregate);
    DGF_ASSIGN_OR_RETURN(auto lookup,
                         compact->Lookup(query.where, options_.split_size));
    inputs.splits = std::move(lookup.splits);
    stats.index_seconds = lookup.index_scan.simulated_seconds;
  } else if (path == AccessPath::kBitmapIndex) {
    DGF_ASSIGN_OR_RETURN(auto lookup,
                         state->bitmap->Lookup(query.where, options_.split_size));
    inputs.splits = std::move(lookup.splits);
    for (auto& filter : lookup.row_filters) {
      inputs.row_filters[filter.file] = std::move(filter.blocks);
    }
    stats.index_seconds = lookup.index_scan.simulated_seconds;
  } else {
    DGF_ASSIGN_OR_RETURN(
        inputs.splits,
        table::GetTableSplits(options_.dfs, state->desc, options_.split_size));
  }
  return RunDataJob(state, query, inputs, stats, cancel);
}

Result<QueryResult> QueryExecutor::ExecuteAggregateRewrite(TableState* state,
                                                           const Query& query) {
  if (state->aggregate == nullptr) {
    return Status::InvalidArgument("no Aggregate Index registered for " +
                                   query.table);
  }
  if (!query.group_by.has_value() || query.select.size() != 2) {
    return Status::NotSupported("rewrite requires SELECT <col>, count(*)");
  }
  const std::vector<AggSpec> aggs = query.Aggregations();
  if (aggs.size() != 1 || aggs[0].func != core::AggFunc::kCount) {
    return Status::NotSupported("rewrite only covers count(*)");
  }
  exec::JobResult index_scan;
  DGF_ASSIGN_OR_RETURN(auto groups,
                       state->aggregate->RewriteGroupByCount(
                           query.where, *query.group_by, &index_scan));
  QueryResult result;
  DGF_ASSIGN_OR_RETURN(int group_field,
                       state->desc.schema.FieldIndex(*query.group_by));
  const DataType group_type = state->desc.schema.field(group_field).type;
  result.schema = Schema({{*query.group_by, group_type},
                          {"count(*)", DataType::kInt64}});
  for (const auto& [text, count] : groups) {
    DGF_ASSIGN_OR_RETURN(Value group_value, table::ParseValue(text, group_type));
    result.rows.push_back({std::move(group_value), Value::Int64(count)});
  }
  result.stats.index_seconds = index_scan.simulated_seconds;
  result.stats.records_read = 0;  // the whole point: no base-table read
  return result;
}

Result<QueryResult> QueryExecutor::RunDataJob(TableState* state,
                                              const Query& query,
                                              const ScanInputs& inputs,
                                              QueryStats stats,
                                              const CancelToken* cancel) {
  (void)state;  // access-path branches already resolved the table
  const TableDesc& scan_desc = inputs.scan_desc;
  DGF_ASSIGN_OR_RETURN(BoundPredicate predicate,
                       query.where.Bind(scan_desc.schema));

  // Resolve select list.
  ScanMode mode;
  std::optional<AggregatorList> aggs;
  int group_field = -1;
  std::vector<int> left_project;
  std::vector<int> right_project;
  int join_left_field = -1;
  std::shared_ptr<BroadcastTable> broadcast;

  const std::vector<AggSpec> requested = query.Aggregations();
  const AggPlan plan = AggPlan::Create(requested);
  if (query.group_by.has_value()) {
    mode = ScanMode::kGroupBy;
    if (requested.empty()) {
      return Status::NotSupported("GROUP BY requires aggregations");
    }
    DGF_ASSIGN_OR_RETURN(group_field,
                         scan_desc.schema.FieldIndex(*query.group_by));
    DGF_ASSIGN_OR_RETURN(
        auto list, AggregatorList::Create(plan.physical, scan_desc.schema));
    aggs = std::move(list);
  } else if (query.IsPlainAggregation()) {
    mode = ScanMode::kAggregate;
    DGF_ASSIGN_OR_RETURN(
        auto list, AggregatorList::Create(plan.physical, scan_desc.schema));
    aggs = std::move(list);
  } else {
    mode = ScanMode::kProject;
    if (!requested.empty()) {
      return Status::NotSupported(
          "mixing plain columns and aggregations needs GROUP BY");
    }
    // Load the broadcast table if joining.
    const Schema* right_schema = nullptr;
    if (query.join.has_value()) {
      DGF_ASSIGN_OR_RETURN(TableState * right_state,
                           GetState(query.join->right_table));
      broadcast = std::make_shared<BroadcastTable>();
      broadcast->schema = right_state->desc.schema;
      right_schema = &broadcast->schema;
      DGF_ASSIGN_OR_RETURN(int right_key,
                           right_schema->FieldIndex(query.join->right_column));
      DGF_ASSIGN_OR_RETURN(
          auto right_splits,
          table::GetTableSplits(options_.dfs, right_state->desc,
                                options_.split_size));
      for (const auto& split : right_splits) {
        DGF_ASSIGN_OR_RETURN(
            auto reader,
            table::OpenSplitReader(options_.dfs, right_state->desc, split));
        Row row;
        for (;;) {
          DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
          if (!more) break;
          broadcast->by_key.emplace(
              row[static_cast<size_t>(right_key)].ToText(), row);
        }
        broadcast->bytes += reader->BytesRead();
      }
      DGF_ASSIGN_OR_RETURN(join_left_field,
                           scan_desc.schema.FieldIndex(query.join->left_column));
      // Broadcasting the small table costs one read per map wave; charge one
      // full read against the simulated index/other time.
      stats.index_seconds +=
          static_cast<double>(broadcast->bytes) /
          (1e6 * options_.cluster.scan_mb_per_s);
      stats.bytes_read += broadcast->bytes;
    }
    for (const SelectItem& item : query.select) {
      auto left = scan_desc.schema.FieldIndex(item.column);
      if (left.ok()) {
        left_project.push_back(*left);
        right_project.push_back(-1);
        continue;
      }
      if (right_schema != nullptr) {
        auto right = right_schema->FieldIndex(item.column);
        if (right.ok()) {
          left_project.push_back(-1);
          right_project.push_back(*right);
          continue;
        }
      }
      return Status::NotFound("unknown select column: " + item.column);
    }
  }

  // Reader factory per access path.
  const auto& dfs = options_.dfs;
  const auto* slices = &inputs.slices;
  const auto* row_filters = &inputs.row_filters;
  ScanMapper::ReaderFactory factory =
      [dfs, scan_desc, slices, row_filters](
          const fs::FileSplit& split,
          exec::MapContext* ctx) -> Result<std::unique_ptr<table::RecordReader>> {
    auto slice_it = slices->find(split);
    if (slice_it != slices->end()) {
      core::SlicedSplit sliced{split, slice_it->second};
      DGF_ASSIGN_OR_RETURN(
          auto reader, core::SliceRecordReader::Open(dfs, sliced,
                                                     scan_desc.schema,
                                                     scan_desc.format));
      ctx->AddSeeks(slice_it->second.size());
      return std::unique_ptr<table::RecordReader>(std::move(reader));
    }
    if (scan_desc.format == table::FileFormat::kRcFile) {
      DGF_ASSIGN_OR_RETURN(
          auto reader,
          table::RcSplitReader::Open(dfs, split, scan_desc.schema));
      auto filter_it = row_filters->find(split.path);
      if (filter_it != row_filters->end()) {
        // Restrict to the blocks inside this split.
        std::vector<std::pair<uint64_t, std::vector<uint64_t>>> in_split;
        for (const auto& [offset, rows] : filter_it->second) {
          if (offset >= split.offset && offset < split.end()) {
            in_split.emplace_back(offset, rows);
          }
        }
        reader->SetRowFilter(std::move(in_split));
      }
      return std::unique_ptr<table::RecordReader>(std::move(reader));
    }
    return table::OpenSplitReader(dfs, scan_desc, split);
  };

  exec::JobRunner::Options job;
  job.cluster = options_.cluster;
  job.worker_threads = options_.worker_threads;
  job.num_reducers = (mode == ScanMode::kGroupBy) ? options_.group_by_reducers : 0;
  exec::JobRunner runner(job);
  const AggregatorList* aggs_ptr = aggs.has_value() ? &*aggs : nullptr;
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult data_job,
      runner.Run(
          inputs.splits,
          [&] {
            return std::make_unique<ScanMapper>(
                factory, predicate, mode, aggs_ptr, group_field, left_project,
                join_left_field, broadcast, right_project, cancel);
          },
          mode == ScanMode::kGroupBy
              ? exec::ReducerFactory([&](int) {
                  return std::make_unique<GroupMergeReducer>(aggs_ptr, cancel);
                })
              : exec::ReducerFactory(nullptr)));

  stats.records_read +=
      static_cast<uint64_t>(data_job.counters.Get(exec::kCounterMapInputRecords));
  stats.records_matched +=
      static_cast<uint64_t>(data_job.counters.Get("scan.matched")) +
      inputs.dgf_inner_records;
  stats.bytes_read +=
      static_cast<uint64_t>(data_job.counters.Get(exec::kCounterMapInputBytes));
  stats.splits_scanned = data_job.num_map_tasks;
  stats.data_seconds = data_job.simulated_seconds;

  if (cancel != nullptr) DGF_RETURN_IF_ERROR(cancel->Check());

  // Assemble output rows.
  QueryResult result;
  result.stats = stats;
  switch (mode) {
    case ScanMode::kAggregate: {
      std::vector<double> acc = aggs->Identity();
      for (const auto& [key, partial] : data_job.reduce_output) {
        (void)key;
        DGF_ASSIGN_OR_RETURN(
            std::vector<double> header,
            DecodeHeader(partial, static_cast<size_t>(aggs->size())));
        aggs->Merge(&acc, header);
      }
      // Fold in the DGF inner region (header slots matched by spec).
      if (inputs.dgf_aggs != nullptr) {
        for (size_t i = 0; i < plan.physical.size(); ++i) {
          DGF_ASSIGN_OR_RETURN(int slot,
                               inputs.dgf_aggs->IndexOf(plan.physical[i]));
          std::vector<double> delta = aggs->Identity();
          delta[i] = inputs.dgf_inner_header[static_cast<size_t>(slot)];
          aggs->Merge(&acc, delta);
        }
      }
      std::vector<table::Field> fields;
      Row row;
      for (size_t i = 0; i < requested.size(); ++i) {
        fields.push_back({requested[i].ToString(),
                          requested[i].func == core::AggFunc::kCount
                              ? DataType::kInt64
                              : DataType::kDouble});
        row.push_back(plan.OutputValue(i, requested, acc));
      }
      result.schema = Schema(std::move(fields));
      result.rows.push_back(std::move(row));
      break;
    }
    case ScanMode::kGroupBy: {
      DGF_ASSIGN_OR_RETURN(int base_group_field,
                           scan_desc.schema.FieldIndex(*query.group_by));
      const DataType group_type = scan_desc.schema.field(base_group_field).type;
      std::vector<table::Field> fields = {{*query.group_by, group_type}};
      for (const AggSpec& spec : requested) {
        fields.push_back({spec.ToString(),
                          spec.func == core::AggFunc::kCount ? DataType::kInt64
                                                             : DataType::kDouble});
      }
      result.schema = Schema(std::move(fields));
      std::vector<std::pair<std::string, std::string>> sorted =
          data_job.reduce_output;
      std::sort(sorted.begin(), sorted.end());
      for (const auto& [key, partial] : sorted) {
        DGF_ASSIGN_OR_RETURN(
            std::vector<double> header,
            DecodeHeader(partial, static_cast<size_t>(aggs->size())));
        DGF_ASSIGN_OR_RETURN(Value group_value,
                             table::ParseValue(key, group_type));
        Row row = {std::move(group_value)};
        for (size_t i = 0; i < requested.size(); ++i) {
          row.push_back(plan.OutputValue(i, requested, header));
        }
        result.rows.push_back(std::move(row));
      }
      break;
    }
    case ScanMode::kProject: {
      std::vector<table::Field> fields;
      for (size_t i = 0; i < query.select.size(); ++i) {
        DataType type;
        if (left_project[i] >= 0) {
          type = scan_desc.schema.field(left_project[i]).type;
        } else {
          type = broadcast->schema.field(right_project[i]).type;
        }
        fields.push_back({query.select[i].column, type});
      }
      result.schema = Schema(std::move(fields));
      for (const auto& [key, text] : data_job.reduce_output) {
        (void)key;
        DGF_ASSIGN_OR_RETURN(Row row, table::ParseRowText(text, result.schema));
        result.rows.push_back(std::move(row));
      }
      break;
    }
  }
  return result;
}

}  // namespace dgf::query
