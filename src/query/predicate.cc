#include "query/predicate.h"

namespace dgf::query {

bool ColumnRange::Matches(const table::Value& value) const {
  if (lower.has_value()) {
    const int cmp = value.Compare(lower->value);
    if (cmp < 0 || (cmp == 0 && !lower->inclusive)) return false;
  }
  if (upper.has_value()) {
    const int cmp = value.Compare(upper->value);
    if (cmp > 0 || (cmp == 0 && !upper->inclusive)) return false;
  }
  return true;
}

namespace {

/// `sql` quotes date/string literals so the rendering re-parses (the parser
/// cannot tokenize a bare 2012-12-01); `!sql` keeps the terser diagnostic
/// form ToString always printed.
std::string LiteralText(const table::Value& value, bool sql) {
  if (sql && (value.is_string() || value.is_date())) {
    return "'" + value.ToText() + "'";
  }
  return value.ToText();
}

std::string RangeText(const ColumnRange& range, bool sql) {
  std::string out = range.column;
  if (range.lower.has_value() && range.upper.has_value() &&
      range.lower->value == range.upper->value && range.lower->inclusive &&
      range.upper->inclusive) {
    return out + " = " + LiteralText(range.lower->value, sql);
  }
  if (range.lower.has_value()) {
    out += range.lower->inclusive ? " >= " : " > ";
    out += LiteralText(range.lower->value, sql);
  }
  if (range.upper.has_value()) {
    if (range.lower.has_value()) out += " AND " + range.column;
    out += range.upper->inclusive ? " <= " : " < ";
    out += LiteralText(range.upper->value, sql);
  }
  return out;
}

}  // namespace

std::string ColumnRange::ToString() const { return RangeText(*this, false); }

std::string ColumnRange::ToSql() const { return RangeText(*this, true); }

void Predicate::And(ColumnRange range) {
  for (auto& existing : ranges_) {
    if (!table::ColumnNameEquals(existing.column, range.column)) continue;
    // Intersect: keep the tighter bound on each side.
    if (range.lower.has_value()) {
      if (!existing.lower.has_value()) {
        existing.lower = range.lower;
      } else {
        const int cmp = range.lower->value.Compare(existing.lower->value);
        if (cmp > 0 || (cmp == 0 && !range.lower->inclusive)) {
          existing.lower = range.lower;
        }
      }
    }
    if (range.upper.has_value()) {
      if (!existing.upper.has_value()) {
        existing.upper = range.upper;
      } else {
        const int cmp = range.upper->value.Compare(existing.upper->value);
        if (cmp < 0 || (cmp == 0 && !range.upper->inclusive)) {
          existing.upper = range.upper;
        }
      }
    }
    return;
  }
  ranges_.push_back(std::move(range));
}

const ColumnRange* Predicate::FindColumn(const std::string& column) const {
  for (const auto& range : ranges_) {
    if (table::ColumnNameEquals(range.column, column)) return &range;
  }
  return nullptr;
}

Result<BoundPredicate> Predicate::Bind(const table::Schema& schema) const {
  BoundPredicate bound;
  for (const auto& range : ranges_) {
    DGF_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(range.column));
    bound.bound_.emplace_back(idx, range);
  }
  return bound;
}

std::string Predicate::ToString() const {
  if (ranges_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += ranges_[i].ToString();
  }
  return out;
}

std::string Predicate::ToSql() const {
  std::string out;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += ranges_[i].ToSql();
  }
  return out;
}

}  // namespace dgf::query
