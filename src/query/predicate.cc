#include "query/predicate.h"

namespace dgf::query {

bool ColumnRange::Matches(const table::Value& value) const {
  if (lower.has_value()) {
    const int cmp = value.Compare(lower->value);
    if (cmp < 0 || (cmp == 0 && !lower->inclusive)) return false;
  }
  if (upper.has_value()) {
    const int cmp = value.Compare(upper->value);
    if (cmp > 0 || (cmp == 0 && !upper->inclusive)) return false;
  }
  return true;
}

std::string ColumnRange::ToString() const {
  std::string out = column;
  if (lower.has_value() && upper.has_value() &&
      lower->value == upper->value && lower->inclusive && upper->inclusive) {
    return out + " = " + lower->value.ToText();
  }
  if (lower.has_value()) {
    out += lower->inclusive ? " >= " : " > ";
    out += lower->value.ToText();
  }
  if (upper.has_value()) {
    if (lower.has_value()) out += " AND " + column;
    out += upper->inclusive ? " <= " : " < ";
    out += upper->value.ToText();
  }
  return out;
}

void Predicate::And(ColumnRange range) {
  for (auto& existing : ranges_) {
    if (!table::ColumnNameEquals(existing.column, range.column)) continue;
    // Intersect: keep the tighter bound on each side.
    if (range.lower.has_value()) {
      if (!existing.lower.has_value()) {
        existing.lower = range.lower;
      } else {
        const int cmp = range.lower->value.Compare(existing.lower->value);
        if (cmp > 0 || (cmp == 0 && !range.lower->inclusive)) {
          existing.lower = range.lower;
        }
      }
    }
    if (range.upper.has_value()) {
      if (!existing.upper.has_value()) {
        existing.upper = range.upper;
      } else {
        const int cmp = range.upper->value.Compare(existing.upper->value);
        if (cmp < 0 || (cmp == 0 && !range.upper->inclusive)) {
          existing.upper = range.upper;
        }
      }
    }
    return;
  }
  ranges_.push_back(std::move(range));
}

const ColumnRange* Predicate::FindColumn(const std::string& column) const {
  for (const auto& range : ranges_) {
    if (table::ColumnNameEquals(range.column, column)) return &range;
  }
  return nullptr;
}

Result<BoundPredicate> Predicate::Bind(const table::Schema& schema) const {
  BoundPredicate bound;
  for (const auto& range : ranges_) {
    DGF_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(range.column));
    bound.bound_.emplace_back(idx, range);
  }
  return bound;
}

std::string Predicate::ToString() const {
  if (ranges_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += ranges_[i].ToString();
  }
  return out;
}

}  // namespace dgf::query
