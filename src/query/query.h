#ifndef DGF_QUERY_QUERY_H_
#define DGF_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "dgf/aggregators.h"
#include "query/predicate.h"

namespace dgf::query {

/// One item of a SELECT list: either a plain column reference or an
/// aggregation.
struct SelectItem {
  /// Column name (unqualified; table aliases are resolved at parse time).
  /// Empty when `agg` is set.
  std::string column;
  std::optional<core::AggSpec> agg;

  static SelectItem Column(std::string name) {
    SelectItem item;
    item.column = std::move(name);
    return item;
  }
  static SelectItem Aggregation(core::AggSpec spec) {
    SelectItem item;
    item.agg = std::move(spec);
    return item;
  }

  bool is_aggregation() const { return agg.has_value(); }

  std::string ToString() const;
};

/// Equi-join against a (small) dimension table, the paper's
/// `meterdata JOIN userInfo ON t1.userId = t2.userId` shape. The executor
/// broadcasts the right table to every map task.
struct JoinClause {
  std::string right_table;
  std::string left_column;
  std::string right_column;
};

/// The query shapes the paper evaluates: multidimensional range predicates
/// under an aggregation, a GROUP BY, a broadcast join, or a plain projection.
struct Query {
  std::string table;
  std::vector<SelectItem> select;
  Predicate where;
  std::optional<std::string> group_by;
  std::optional<JoinClause> join;

  /// All aggregations in the select list.
  std::vector<core::AggSpec> Aggregations() const;

  /// True when the query is a pure aggregation over the base table (no group
  /// by, no join, no plain columns) — the shape eligible for DGFIndex's
  /// pre-computed-header path.
  bool IsPlainAggregation() const;

  std::string ToString() const;

  /// Renders the query as SQL that round-trips through ParseQuery: identical
  /// to ToString except date and string literals are single-quoted. This is
  /// what ServerClient sends over the wire.
  std::string ToSql() const;
};

}  // namespace dgf::query

#endif  // DGF_QUERY_QUERY_H_
