#include "query/query.h"

namespace dgf::query {

std::string SelectItem::ToString() const {
  return is_aggregation() ? agg->ToString() : column;
}

std::vector<core::AggSpec> Query::Aggregations() const {
  std::vector<core::AggSpec> out;
  for (const SelectItem& item : select) {
    if (item.is_aggregation()) out.push_back(*item.agg);
  }
  return out;
}

bool Query::IsPlainAggregation() const {
  if (group_by.has_value() || join.has_value() || select.empty()) return false;
  for (const SelectItem& item : select) {
    if (!item.is_aggregation()) return false;
  }
  return true;
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].ToString();
  }
  out += " FROM " + table;
  if (join.has_value()) {
    out += " JOIN " + join->right_table + " ON " + join->left_column + " = " +
           join->right_column;
  }
  if (!where.empty()) out += " WHERE " + where.ToString();
  if (group_by.has_value()) out += " GROUP BY " + *group_by;
  return out;
}

std::string Query::ToSql() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].ToString();
  }
  out += " FROM " + table;
  if (join.has_value()) {
    out += " JOIN " + join->right_table + " ON " + join->left_column + " = " +
           join->right_column;
  }
  if (!where.empty()) out += " WHERE " + where.ToSql();
  if (group_by.has_value()) out += " GROUP BY " + *group_by;
  return out;
}

}  // namespace dgf::query
