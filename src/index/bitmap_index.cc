#include "index/bitmap_index.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace dgf::index {
namespace {

using table::DataType;
using table::Row;
using table::Schema;
using table::TableDesc;
using table::Value;

constexpr char kKeySep = '\x01';

class BitmapBuildMapper : public exec::Mapper {
 public:
  BitmapBuildMapper(std::shared_ptr<fs::MiniDfs> dfs, TableDesc base,
                    std::vector<int> dim_fields)
      : dfs_(std::move(dfs)),
        base_(std::move(base)),
        dim_fields_(std::move(dim_fields)) {}

  Status Map(const fs::FileSplit& split, exec::MapContext* ctx) override {
    DGF_ASSIGN_OR_RETURN(auto reader, table::OpenSplitReader(dfs_, base_, split));
    Row row;
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      std::string key;
      for (int field : dim_fields_) {
        key += row[static_cast<size_t>(field)].ToText();
        key.push_back(kKeySep);
      }
      key += split.path;
      key.push_back(kKeySep);
      key += std::to_string(reader->CurrentBlockOffset());
      ctx->Emit(std::move(key), std::to_string(reader->CurrentRowInBlock()));
      ctx->AddRecords(1);
    }
    ctx->AddBytesRead(reader->BytesRead());
    return Status::OK();
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  TableDesc base_;
  std::vector<int> dim_fields_;
};

class BitmapBuildReducer : public exec::Reducer {
 public:
  BitmapBuildReducer(std::shared_ptr<fs::MiniDfs> dfs, TableDesc index_table,
                     int num_dims, int reducer_id)
      : num_dims_(num_dims) {
    table::TableWriter::Options options;
    options.first_file_index = reducer_id;
    options.max_file_bytes = ~0ULL;
    auto writer = table::TableWriter::Create(std::move(dfs), index_table, options);
    if (writer.ok()) {
      writer_ = std::move(*writer);
    } else {
      init_error_ = writer.status();
    }
  }

  Status Reduce(const std::string& key, const std::vector<std::string>& values,
                exec::ReduceContext* ctx) override {
    DGF_RETURN_IF_ERROR(init_error_);
    auto parts = SplitString(key, kKeySep);
    if (static_cast<int>(parts.size()) != num_dims_ + 2) {
      return Status::Internal("bad bitmap build key");
    }
    std::set<int64_t> rows;
    for (const std::string& v : values) {
      DGF_ASSIGN_OR_RETURN(int64_t row_ord, ParseInt64(v));
      rows.insert(row_ord);
    }
    std::vector<std::string> sorted;
    sorted.reserve(rows.size());
    for (int64_t r : rows) sorted.push_back(std::to_string(r));

    Row out;
    for (int d = 0; d < num_dims_; ++d) {
      out.push_back(Value::String(std::string(parts[static_cast<size_t>(d)])));
    }
    out.push_back(Value::String(
        std::string(parts[static_cast<size_t>(num_dims_)])));  // bucket
    DGF_ASSIGN_OR_RETURN(int64_t offset,
                         ParseInt64(parts[static_cast<size_t>(num_dims_) + 1]));
    out.push_back(Value::Int64(offset));
    out.push_back(Value::String(JoinStrings(sorted, ",")));
    ctx->counters().Add("index.entries", 1);
    return writer_->Append(out);
  }

  Status Finish(exec::ReduceContext*) override {
    DGF_RETURN_IF_ERROR(init_error_);
    return writer_->Close();
  }

 private:
  int num_dims_;
  std::unique_ptr<table::TableWriter> writer_;
  Status init_error_;
};

Schema BitmapTableSchema(const std::vector<std::string>& dims) {
  std::vector<table::Field> fields;
  for (const std::string& dim : dims) fields.push_back({dim, DataType::kString});
  fields.push_back({"_bucketname", DataType::kString});
  fields.push_back({"_offset", DataType::kInt64});
  fields.push_back({"_bitmaps", DataType::kString});
  return Schema(std::move(fields));
}

class BitmapScanMapper : public exec::Mapper {
 public:
  BitmapScanMapper(std::shared_ptr<fs::MiniDfs> dfs, TableDesc index_table,
                   std::vector<std::pair<int, query::ColumnRange>> conditions,
                   std::vector<DataType> dim_types)
      : dfs_(std::move(dfs)),
        index_table_(std::move(index_table)),
        conditions_(std::move(conditions)),
        dim_types_(std::move(dim_types)) {}

  Status Map(const fs::FileSplit& split, exec::MapContext* ctx) override {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::OpenSplitReader(dfs_, index_table_, split));
    Row row;
    const size_t num_dims = dim_types_.size();
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      ctx->AddRecords(1);
      bool match = true;
      for (const auto& [dim, range] : conditions_) {
        DGF_ASSIGN_OR_RETURN(
            Value value,
            table::ParseValue(row[static_cast<size_t>(dim)].str(),
                              dim_types_[static_cast<size_t>(dim)]));
        if (!range.Matches(value)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      // key = bucket \x01 offset ; value = row list
      std::string key = row[num_dims].str();
      key.push_back(kKeySep);
      key += row[num_dims + 1].ToText();
      ctx->Emit(std::move(key), row[num_dims + 2].str());
    }
    ctx->AddBytesRead(reader->BytesRead());
    return Status::OK();
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  TableDesc index_table_;
  std::vector<std::pair<int, query::ColumnRange>> conditions_;
  std::vector<DataType> dim_types_;
};

}  // namespace

Result<std::unique_ptr<BitmapIndex>> BitmapIndex::Build(
    std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
    const BuildOptions& options, exec::JobResult* job_result) {
  if (base.format != table::FileFormat::kRcFile) {
    return Status::NotSupported(
        "Bitmap Index only improves RCFile tables (every TextFile line is its "
        "own block)");
  }
  if (options.dims.empty()) {
    return Status::InvalidArgument("index needs at least one dimension");
  }
  std::vector<int> dim_fields;
  for (const std::string& dim : options.dims) {
    DGF_ASSIGN_OR_RETURN(int field, base.schema.FieldIndex(dim));
    dim_fields.push_back(field);
  }
  TableDesc index_table;
  index_table.name = base.name + "_bitmap_idx";
  index_table.schema = BitmapTableSchema(options.dims);
  index_table.format = table::FileFormat::kText;
  index_table.dir = options.index_dir;

  DGF_ASSIGN_OR_RETURN(auto splits,
                       table::GetTableSplits(dfs, base, options.split_size));
  exec::JobRunner::Options job = options.job;
  if (job.num_reducers <= 0) job.num_reducers = 8;
  exec::JobRunner runner(job);
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult result,
      runner.Run(
          splits,
          [&] {
            return std::make_unique<BitmapBuildMapper>(dfs, base, dim_fields);
          },
          [&](int reducer_id) {
            return std::make_unique<BitmapBuildReducer>(
                dfs, index_table, static_cast<int>(options.dims.size()),
                reducer_id);
          }));
  if (job_result != nullptr) *job_result = result;
  return std::unique_ptr<BitmapIndex>(
      new BitmapIndex(std::move(dfs), base, std::move(index_table),
                      options.dims, job));
}

Result<BitmapIndex::LookupResult> BitmapIndex::Lookup(
    const query::Predicate& pred, uint64_t base_split_size) {
  std::vector<std::pair<int, query::ColumnRange>> conditions;
  std::vector<DataType> dim_types;
  for (size_t d = 0; d < dims_.size(); ++d) {
    DGF_ASSIGN_OR_RETURN(int base_field, base_.schema.FieldIndex(dims_[d]));
    dim_types.push_back(base_.schema.field(base_field).type);
    const query::ColumnRange* range = pred.FindColumn(dims_[d]);
    if (range != nullptr) conditions.emplace_back(static_cast<int>(d), *range);
  }

  DGF_ASSIGN_OR_RETURN(auto index_splits,
                       table::GetTableSplits(dfs_, index_table_));
  exec::JobRunner::Options scan_job = job_;
  scan_job.num_reducers = 0;
  exec::JobRunner runner(scan_job);
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult scan,
      runner.Run(index_splits, [&] {
        return std::make_unique<BitmapScanMapper>(dfs_, index_table_,
                                                  conditions, dim_types);
      }));

  LookupResult result;
  // file -> block offset -> merged row set.
  std::map<std::string, std::map<uint64_t, std::set<uint64_t>>> merged;
  for (const auto& [key, rows_text] : scan.reduce_output) {
    auto parts = SplitString(key, kKeySep);
    if (parts.size() != 2) return Status::Internal("bad bitmap scan key");
    DGF_ASSIGN_OR_RETURN(int64_t offset, ParseInt64(parts[1]));
    auto& rows = merged[std::string(parts[0])][static_cast<uint64_t>(offset)];
    for (std::string_view row_text : SplitString(rows_text, ',')) {
      if (row_text.empty()) continue;
      DGF_ASSIGN_OR_RETURN(int64_t row_ord, ParseInt64(row_text));
      if (rows.insert(static_cast<uint64_t>(row_ord)).second) {
        ++result.matching_rows;
      }
    }
  }
  result.index_scan = std::move(scan);

  for (auto& [file, blocks] : merged) {
    FileRowFilter filter;
    filter.file = file;
    std::vector<uint64_t> offsets;
    for (auto& [offset, rows] : blocks) {
      filter.blocks.emplace_back(
          offset, std::vector<uint64_t>(rows.begin(), rows.end()));
      offsets.push_back(offset);
    }
    result.row_filters.push_back(std::move(filter));
    // Split filter: any block offset inside the split selects it.
    DGF_ASSIGN_OR_RETURN(auto splits, dfs_->GetSplits(file, base_split_size));
    size_t cursor = 0;
    for (const fs::FileSplit& split : splits) {
      while (cursor < offsets.size() && offsets[cursor] < split.offset) ++cursor;
      if (cursor < offsets.size() && offsets[cursor] < split.end()) {
        result.splits.push_back(split);
      }
      if (cursor >= offsets.size()) break;
    }
  }
  return result;
}

Result<uint64_t> BitmapIndex::IndexSizeBytes() const {
  return table::TableDataBytes(dfs_, index_table_);
}

}  // namespace dgf::index
