#ifndef DGF_INDEX_BITMAP_INDEX_H_
#define DGF_INDEX_BITMAP_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/mapreduce.h"
#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "query/predicate.h"
#include "table/table.h"

namespace dgf::index {

/// Hive's Bitmap Index over RCFile tables.
///
/// Extends the Compact Index by recording, per (dimension values, file,
/// block), the set of row ordinals within the block. On RCFile data this lets
/// the reader skip non-matching rows inside a row group; on TextFile every
/// line is its own block, so the bitmap degenerates (the paper's observation
/// that Bitmap only helps RCFile).
class BitmapIndex {
 public:
  struct BuildOptions {
    std::vector<std::string> dims;
    std::string index_dir;
    exec::JobRunner::Options job;
    uint64_t split_size = 0;
  };

  /// Builds from an RCFile base table (TextFile is rejected: the row bitmap
  /// would be meaningless).
  static Result<std::unique_ptr<BitmapIndex>> Build(
      std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
      const BuildOptions& options, exec::JobResult* job_result = nullptr);

  /// Per-file row filter: block offset -> sorted row ordinals.
  struct FileRowFilter {
    std::string file;
    std::vector<std::pair<uint64_t, std::vector<uint64_t>>> blocks;
  };

  struct LookupResult {
    std::vector<fs::FileSplit> splits;
    std::vector<FileRowFilter> row_filters;
    exec::JobResult index_scan;
    uint64_t matching_rows = 0;
  };

  /// Scans the index table with `pred`; returns the chosen splits plus the
  /// per-block row sets the RCFile reader should honour.
  Result<LookupResult> Lookup(const query::Predicate& pred,
                              uint64_t base_split_size = 0);

  Result<uint64_t> IndexSizeBytes() const;
  const table::TableDesc& index_table() const { return index_table_; }

 private:
  BitmapIndex(std::shared_ptr<fs::MiniDfs> dfs, table::TableDesc base,
              table::TableDesc index_table, std::vector<std::string> dims,
              exec::JobRunner::Options job)
      : dfs_(std::move(dfs)),
        base_(std::move(base)),
        index_table_(std::move(index_table)),
        dims_(std::move(dims)),
        job_(job) {}

  std::shared_ptr<fs::MiniDfs> dfs_;
  table::TableDesc base_;
  table::TableDesc index_table_;
  std::vector<std::string> dims_;
  exec::JobRunner::Options job_;
};

}  // namespace dgf::index

#endif  // DGF_INDEX_BITMAP_INDEX_H_
