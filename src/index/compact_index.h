#ifndef DGF_INDEX_COMPACT_INDEX_H_
#define DGF_INDEX_COMPACT_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/mapreduce.h"
#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "query/predicate.h"
#include "table/table.h"

namespace dgf::index {

/// Hive's Compact Index, reimplemented over MiniMR (the paper's baseline).
///
/// The index is itself a table: one row per combination of indexed dimension
/// values and data file, holding the list of block offsets where records with
/// those values occur (Listing 1's INSERT OVERWRITE ... GROUP BY). Because it
/// stores *every value combination*, its size grows with the number of
/// distinct value tuples — the weakness DGFIndex attacks (Table 2).
///
/// Query processing scans the index table with the query's predicate, then
/// keeps only the base-table splits containing at least one matching offset.
/// It cannot skip data *within* a split.
class CompactIndex {
 public:
  struct BuildOptions {
    /// Indexed dimension column names (in order).
    std::vector<std::string> dims;
    /// Directory of the index table.
    std::string index_dir;
    /// Store the index table as RCFile (smaller, what the paper uses for its
    /// Compact baselines) or TextFile.
    table::FileFormat index_format = table::FileFormat::kRcFile;
    exec::JobRunner::Options job;
    uint64_t split_size = 0;
  };

  /// Populates the index table from `base` via a MapReduce job.
  static Result<std::unique_ptr<CompactIndex>> Build(
      std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
      const BuildOptions& options, exec::JobResult* job_result = nullptr);

  /// Outcome of consulting the index for one predicate.
  struct LookupResult {
    /// Base-table splits that must be scanned.
    std::vector<fs::FileSplit> splits;
    /// Stats of the index-table scan job ("read index" time in the figures).
    exec::JobResult index_scan;
    /// Matching (file, offset) entries found.
    uint64_t matching_offsets = 0;
    /// Aggregate-index path: sum of per-entry counts (valid when the build
    /// precomputed counts and the caller asked for them).
    int64_t precomputed_count = 0;
  };

  /// Scans the index table with `pred` (conditions on non-indexed columns are
  /// ignored) and returns the base-table splits to read.
  Result<LookupResult> Lookup(const query::Predicate& pred,
                              uint64_t base_split_size = 0);

  /// Size of the index table's data files.
  Result<uint64_t> IndexSizeBytes() const;

  const table::TableDesc& index_table() const { return index_table_; }
  const std::vector<std::string>& dims() const { return dims_; }

  /// Constructor argument bundle produced by the shared build machinery;
  /// public so both index flavours (and std::make_unique) can construct.
  struct Parts {
    std::shared_ptr<fs::MiniDfs> dfs;
    table::TableDesc base;
    table::TableDesc index_table;
    std::vector<std::string> dims;
    exec::JobRunner::Options job;
    bool with_count = false;
  };

  explicit CompactIndex(Parts parts)
      : CompactIndex(std::move(parts.dfs), std::move(parts.base),
                     std::move(parts.index_table), std::move(parts.dims),
                     parts.job, parts.with_count) {}

 protected:
  CompactIndex(std::shared_ptr<fs::MiniDfs> dfs, table::TableDesc base,
               table::TableDesc index_table, std::vector<std::string> dims,
               exec::JobRunner::Options job, bool with_count)
      : dfs_(std::move(dfs)),
        base_(std::move(base)),
        index_table_(std::move(index_table)),
        dims_(std::move(dims)),
        job_(job),
        with_count_(with_count) {}

  /// Shared build machinery; `with_count` adds the Aggregate Index's
  /// precomputed _count column.
  static Result<Parts> BuildInternal(std::shared_ptr<fs::MiniDfs> dfs,
                                     const table::TableDesc& base,
                                     const BuildOptions& options,
                                     bool with_count,
                                     exec::JobResult* job_result);

  std::shared_ptr<fs::MiniDfs> dfs_;
  table::TableDesc base_;
  table::TableDesc index_table_;
  std::vector<std::string> dims_;
  exec::JobRunner::Options job_;
  bool with_count_;
};

/// Hive's Aggregate Index: a Compact Index whose rows carry a precomputed
/// count, enabling the "index as data" rewrite for COUNT group-bys whose
/// SELECT/WHERE/GROUP BY columns are all indexed dimensions.
class AggregateIndex : public CompactIndex {
 public:
  static Result<std::unique_ptr<AggregateIndex>> Build(
      std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
      const BuildOptions& options, exec::JobResult* job_result = nullptr);

  /// Answers SELECT <group_col>, count(*) ... GROUP BY <group_col> purely
  /// from the index table when the restrictions hold. Returns rows of
  /// (group value text, count); fails with NotSupported when the query shape
  /// is outside the Aggregate Index's narrow applicability window.
  Result<std::vector<std::pair<std::string, int64_t>>> RewriteGroupByCount(
      const query::Predicate& pred, const std::string& group_col,
      exec::JobResult* index_scan);

  explicit AggregateIndex(Parts parts) : CompactIndex(std::move(parts)) {}
};

}  // namespace dgf::index

#endif  // DGF_INDEX_COMPACT_INDEX_H_
