#include "index/compact_index.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "table/schema.h"

namespace dgf::index {
namespace {

using table::DataType;
using table::Row;
using table::Schema;
using table::TableDesc;
using table::Value;

// Separator inside shuffle keys (never occurs in generated data).
constexpr char kKeySep = '\x01';

/// Map side of Listing 1: emit (dim values + file) -> block offset.
class IndexBuildMapper : public exec::Mapper {
 public:
  IndexBuildMapper(std::shared_ptr<fs::MiniDfs> dfs, TableDesc base,
                   std::vector<int> dim_fields)
      : dfs_(std::move(dfs)),
        base_(std::move(base)),
        dim_fields_(std::move(dim_fields)) {}

  Status Map(const fs::FileSplit& split, exec::MapContext* ctx) override {
    DGF_ASSIGN_OR_RETURN(auto reader, table::OpenSplitReader(dfs_, base_, split));
    Row row;
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      std::string key;
      for (int field : dim_fields_) {
        key += row[static_cast<size_t>(field)].ToText();
        key.push_back(kKeySep);
      }
      key += split.path;
      ctx->Emit(std::move(key),
                std::to_string(reader->CurrentBlockOffset()));
      ctx->AddRecords(1);
    }
    ctx->AddBytesRead(reader->BytesRead());
    return Status::OK();
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  TableDesc base_;
  std::vector<int> dim_fields_;
};

/// Reduce side: collect_set(offsets) -> one index-table row per key.
class IndexBuildReducer : public exec::Reducer {
 public:
  IndexBuildReducer(std::shared_ptr<fs::MiniDfs> dfs, TableDesc index_table,
                    int num_dims, bool with_count, int reducer_id)
      : num_dims_(num_dims), with_count_(with_count) {
    table::TableWriter::Options options;
    options.first_file_index = reducer_id;
    options.max_file_bytes = ~0ULL;  // one file per reducer
    auto writer = table::TableWriter::Create(std::move(dfs), index_table, options);
    if (writer.ok()) {
      writer_ = std::move(*writer);
    } else {
      init_error_ = writer.status();
    }
  }

  Status Reduce(const std::string& key, const std::vector<std::string>& values,
                exec::ReduceContext* ctx) override {
    DGF_RETURN_IF_ERROR(init_error_);
    auto parts = SplitString(key, kKeySep);
    if (static_cast<int>(parts.size()) != num_dims_ + 1) {
      return Status::Internal("bad index build key");
    }
    std::set<std::string> offsets(values.begin(), values.end());
    Row row;
    for (int d = 0; d < num_dims_; ++d) {
      row.push_back(Value::String(std::string(parts[static_cast<size_t>(d)])));
    }
    row.push_back(Value::String(std::string(parts.back())));  // bucketname
    std::vector<std::string> sorted(offsets.begin(), offsets.end());
    row.push_back(Value::String(JoinStrings(sorted, ",")));
    if (with_count_) {
      row.push_back(Value::Int64(static_cast<int64_t>(values.size())));
    }
    ctx->counters().Add("index.entries", 1);
    return writer_->Append(row);
  }

  Status Finish(exec::ReduceContext*) override {
    DGF_RETURN_IF_ERROR(init_error_);
    return writer_->Close();
  }

 private:
  int num_dims_;
  bool with_count_;
  std::unique_ptr<table::TableWriter> writer_;
  Status init_error_;
};

/// Schema of the index table: dims are stored as text (the index scan
/// re-parses them with the base types for range evaluation).
Schema IndexTableSchema(const std::vector<std::string>& dims, bool with_count) {
  std::vector<table::Field> fields;
  for (const std::string& dim : dims) {
    fields.push_back({dim, DataType::kString});
  }
  fields.push_back({"_bucketname", DataType::kString});
  fields.push_back({"_offsets", DataType::kString});
  if (with_count) fields.push_back({"_count", DataType::kInt64});
  return Schema(std::move(fields));
}

/// Map-only job over the index table: evaluate the predicate on the (typed)
/// dimension values, emit matching (bucket, offsets[, count]) entries.
class IndexScanMapper : public exec::Mapper {
 public:
  IndexScanMapper(std::shared_ptr<fs::MiniDfs> dfs, TableDesc index_table,
                  std::vector<std::pair<int, query::ColumnRange>> conditions,
                  std::vector<DataType> dim_types, bool with_count)
      : dfs_(std::move(dfs)),
        index_table_(std::move(index_table)),
        conditions_(std::move(conditions)),
        dim_types_(std::move(dim_types)),
        with_count_(with_count) {}

  Status Map(const fs::FileSplit& split, exec::MapContext* ctx) override {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::OpenSplitReader(dfs_, index_table_, split));
    Row row;
    const int num_dims = static_cast<int>(dim_types_.size());
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      ctx->AddRecords(1);
      bool match = true;
      for (const auto& [dim, range] : conditions_) {
        DGF_ASSIGN_OR_RETURN(
            Value value,
            table::ParseValue(row[static_cast<size_t>(dim)].str(),
                              dim_types_[static_cast<size_t>(dim)]));
        if (!range.Matches(value)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      const std::string& bucket = row[static_cast<size_t>(num_dims)].str();
      const std::string& offsets = row[static_cast<size_t>(num_dims) + 1].str();
      std::string payload = offsets;
      if (with_count_) {
        payload += ";";
        payload += row[static_cast<size_t>(num_dims) + 2].ToText();
      }
      ctx->Emit(bucket, std::move(payload));
    }
    ctx->AddBytesRead(reader->BytesRead());
    return Status::OK();
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  TableDesc index_table_;
  std::vector<std::pair<int, query::ColumnRange>> conditions_;
  std::vector<DataType> dim_types_;
  bool with_count_;
};

}  // namespace

Result<CompactIndex::Parts> CompactIndex::BuildInternal(
    std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
    const BuildOptions& options, bool with_count, exec::JobResult* job_result) {
  if (options.dims.empty()) {
    return Status::InvalidArgument("index needs at least one dimension");
  }
  if (options.index_dir.empty() || options.index_dir.front() != '/') {
    return Status::InvalidArgument("index_dir must be absolute");
  }
  std::vector<int> dim_fields;
  for (const std::string& dim : options.dims) {
    DGF_ASSIGN_OR_RETURN(int field, base.schema.FieldIndex(dim));
    dim_fields.push_back(field);
  }
  TableDesc index_table;
  index_table.name = base.name + "_idx";
  index_table.schema = IndexTableSchema(options.dims, with_count);
  index_table.format = options.index_format;
  index_table.dir = options.index_dir;

  DGF_ASSIGN_OR_RETURN(auto splits,
                       table::GetTableSplits(dfs, base, options.split_size));
  exec::JobRunner::Options job = options.job;
  if (job.num_reducers <= 0) job.num_reducers = 8;
  exec::JobRunner runner(job);
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult result,
      runner.Run(
          splits,
          [&] {
            return std::make_unique<IndexBuildMapper>(dfs, base, dim_fields);
          },
          [&](int reducer_id) {
            return std::make_unique<IndexBuildReducer>(
                dfs, index_table, static_cast<int>(options.dims.size()),
                with_count, reducer_id);
          }));
  if (job_result != nullptr) *job_result = result;
  return Parts{std::move(dfs),   base, std::move(index_table),
               options.dims,     job,  with_count};
}

Result<std::unique_ptr<CompactIndex>> CompactIndex::Build(
    std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
    const BuildOptions& options, exec::JobResult* job_result) {
  DGF_ASSIGN_OR_RETURN(Parts parts,
                       BuildInternal(std::move(dfs), base, options,
                                     /*with_count=*/false, job_result));
  return std::make_unique<CompactIndex>(std::move(parts));
}

Result<CompactIndex::LookupResult> CompactIndex::Lookup(
    const query::Predicate& pred, uint64_t base_split_size) {
  // Conditions restricted to indexed dimensions (others are re-checked by the
  // data scan, exactly as Hive does).
  std::vector<std::pair<int, query::ColumnRange>> conditions;
  std::vector<DataType> dim_types;
  for (size_t d = 0; d < dims_.size(); ++d) {
    DGF_ASSIGN_OR_RETURN(int base_field, base_.schema.FieldIndex(dims_[d]));
    dim_types.push_back(base_.schema.field(base_field).type);
    const query::ColumnRange* range = pred.FindColumn(dims_[d]);
    if (range != nullptr) {
      conditions.emplace_back(static_cast<int>(d), *range);
    }
  }

  DGF_ASSIGN_OR_RETURN(auto index_splits,
                       table::GetTableSplits(dfs_, index_table_));
  exec::JobRunner::Options scan_job = job_;
  scan_job.num_reducers = 0;
  exec::JobRunner runner(scan_job);
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult scan,
      runner.Run(index_splits, [&] {
        return std::make_unique<IndexScanMapper>(dfs_, index_table_, conditions,
                                                 dim_types, with_count_);
      }));

  LookupResult result;
  // bucket -> sorted offsets that matched.
  std::map<std::string, std::vector<uint64_t>> by_file;
  for (const auto& [bucket, payload] : scan.reduce_output) {
    std::string_view offsets_text = payload;
    if (with_count_) {
      const size_t semi = payload.rfind(';');
      offsets_text = std::string_view(payload).substr(0, semi);
      DGF_ASSIGN_OR_RETURN(
          int64_t count,
          ParseInt64(std::string_view(payload).substr(semi + 1)));
      result.precomputed_count += count;
    }
    auto& offsets = by_file[bucket];
    for (std::string_view offset_text : SplitString(offsets_text, ',')) {
      if (offset_text.empty()) continue;
      DGF_ASSIGN_OR_RETURN(int64_t offset, ParseInt64(offset_text));
      offsets.push_back(static_cast<uint64_t>(offset));
      ++result.matching_offsets;
    }
  }
  result.index_scan = std::move(scan);

  // getSplits-style filter: keep base splits containing >= 1 matching offset.
  for (auto& [file, offsets] : by_file) {
    std::sort(offsets.begin(), offsets.end());
    DGF_ASSIGN_OR_RETURN(auto splits, dfs_->GetSplits(file, base_split_size));
    size_t cursor = 0;
    for (const fs::FileSplit& split : splits) {
      while (cursor < offsets.size() && offsets[cursor] < split.offset) ++cursor;
      if (cursor < offsets.size() && offsets[cursor] < split.end()) {
        result.splits.push_back(split);
      }
      if (cursor >= offsets.size()) break;
    }
  }
  return result;
}

Result<uint64_t> CompactIndex::IndexSizeBytes() const {
  return table::TableDataBytes(dfs_, index_table_);
}

Result<std::unique_ptr<AggregateIndex>> AggregateIndex::Build(
    std::shared_ptr<fs::MiniDfs> dfs, const table::TableDesc& base,
    const BuildOptions& options, exec::JobResult* job_result) {
  DGF_ASSIGN_OR_RETURN(Parts parts,
                       BuildInternal(std::move(dfs), base, options,
                                     /*with_count=*/true, job_result));
  return std::make_unique<AggregateIndex>(std::move(parts));
}

Result<std::vector<std::pair<std::string, int64_t>>>
AggregateIndex::RewriteGroupByCount(const query::Predicate& pred,
                                    const std::string& group_col,
                                    exec::JobResult* index_scan) {
  // Restrictions (Section 2.2): every referenced column must be an indexed
  // dimension, and the only aggregation is count.
  const auto in_dims = [&](const std::string& column) {
    return std::any_of(dims_.begin(), dims_.end(),
                       [&](const std::string& dim) {
                         return table::ColumnNameEquals(dim, column);
                       });
  };
  if (!in_dims(group_col)) {
    return Status::NotSupported("group column not in index dimensions");
  }
  for (const auto& range : pred.ranges()) {
    if (!in_dims(range.column)) {
      return Status::NotSupported("predicate column not in index dimensions");
    }
  }

  DGF_ASSIGN_OR_RETURN(LookupResult lookup, Lookup(pred));
  if (index_scan != nullptr) *index_scan = lookup.index_scan;

  // Second pass over the matching entries, grouped by the group column: redo
  // the scan but emit (group value, count). We reuse the generic scan output:
  // Lookup discarded group values, so run a dedicated pass here.
  std::vector<std::pair<int, query::ColumnRange>> conditions;
  std::vector<DataType> dim_types;
  int group_dim = -1;
  for (size_t d = 0; d < dims_.size(); ++d) {
    DGF_ASSIGN_OR_RETURN(int base_field, base_.schema.FieldIndex(dims_[d]));
    dim_types.push_back(base_.schema.field(base_field).type);
    if (table::ColumnNameEquals(dims_[d], group_col)) {
      group_dim = static_cast<int>(d);
    }
    const query::ColumnRange* range = pred.FindColumn(dims_[d]);
    if (range != nullptr) conditions.emplace_back(static_cast<int>(d), *range);
  }

  DGF_ASSIGN_OR_RETURN(auto index_splits,
                       table::GetTableSplits(dfs_, index_table_));
  std::map<std::string, int64_t> groups;
  for (const fs::FileSplit& split : index_splits) {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::OpenSplitReader(dfs_, index_table_, split));
    Row row;
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      bool match = true;
      for (const auto& [dim, range] : conditions) {
        DGF_ASSIGN_OR_RETURN(
            Value value,
            table::ParseValue(row[static_cast<size_t>(dim)].str(),
                              dim_types[static_cast<size_t>(dim)]));
        if (!range.Matches(value)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      groups[row[static_cast<size_t>(group_dim)].str()] +=
          row[dims_.size() + 2].int64();
    }
  }
  return std::vector<std::pair<std::string, int64_t>>(groups.begin(),
                                                      groups.end());
}

}  // namespace dgf::index
