#ifndef DGF_EXEC_MAPREDUCE_H_
#define DGF_EXEC_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stage_timer.h"
#include "common/status.h"
#include "exec/cluster.h"
#include "fs/split.h"

namespace dgf::exec {

/// Named counters aggregated across the tasks of one job (Hadoop-style).
class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) : values_(other.Snapshot()) {}
  Counters& operator=(const Counters& other) {
    if (this != &other) {
      auto snapshot = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      values_ = std::move(snapshot);
    }
    return *this;
  }

  void Add(const std::string& name, int64_t delta);
  int64_t Get(const std::string& name) const;
  std::map<std::string, int64_t> Snapshot() const;
  void MergeFrom(const Counters& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> values_;
};

/// Well-known counter names.
inline constexpr char kCounterMapInputRecords[] = "map.input.records";
inline constexpr char kCounterMapInputBytes[] = "map.input.bytes";
inline constexpr char kCounterMapOutputRecords[] = "map.output.records";
inline constexpr char kCounterReduceInputKeys[] = "reduce.input.keys";
inline constexpr char kCounterSlicesRead[] = "dgf.slices.read";
inline constexpr char kCounterKvGets[] = "index.kv.gets";

/// Per-map-task context: shuffle emission plus work accounting that feeds the
/// simulated cluster cost.
class MapContext {
 public:
  /// Sends (key, value) to the shuffle; the key's hash picks the reducer.
  void Emit(std::string key, std::string value);

  /// Reports bytes pulled from the DFS by this task (charged against scan
  /// bandwidth in the cost model).
  void AddBytesRead(uint64_t bytes) { bytes_read_ += bytes; }
  /// Reports a positional jump within the input (slice skipping).
  void AddSeeks(uint64_t count) { seeks_ += count; }
  void AddRecords(uint64_t count) { records_ += count; }

  Counters& counters() { return counters_; }
  const fs::FileSplit& split() const { return split_; }

 private:
  friend class JobRunner;
  explicit MapContext(fs::FileSplit split) : split_(std::move(split)) {}

  fs::FileSplit split_;
  std::vector<std::pair<std::string, std::string>> emitted_;
  uint64_t bytes_read_ = 0;
  uint64_t seeks_ = 0;
  uint64_t records_ = 0;
  Counters counters_;
};

/// Per-reduce-task context.
class ReduceContext {
 public:
  int reducer_id() const { return reducer_id_; }
  Counters& counters() { return counters_; }

  /// Collects one output record (gathered into JobResult::reduce_output).
  void Collect(std::string key, std::string value);

  /// Reports bytes this reduce task wrote to the DFS (charged against scan
  /// bandwidth in the cost model; e.g. reorganized slice files).
  void AddBytesWritten(uint64_t bytes) { bytes_written_ += bytes; }

 private:
  friend class JobRunner;
  explicit ReduceContext(int id) : reducer_id_(id) {}

  int reducer_id_;
  std::vector<std::pair<std::string, std::string>> output_;
  uint64_t bytes_written_ = 0;
  Counters counters_;
};

/// User map function: processes one split.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual Status Map(const fs::FileSplit& split, MapContext* ctx) = 0;
};

/// User reduce function: processes one key group.
class Reducer {
 public:
  virtual ~Reducer() = default;
  /// Called once before the first key of this reducer's partition.
  virtual Status Start(ReduceContext* ctx) {
    (void)ctx;
    return Status::OK();
  }
  virtual Status Reduce(const std::string& key,
                        const std::vector<std::string>& values,
                        ReduceContext* ctx) = 0;
  /// Called after the last key (flush point for file-writing reducers).
  virtual Status Finish(ReduceContext* ctx) {
    (void)ctx;
    return Status::OK();
  }
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>(int reducer_id)>;

/// Outcome of one job: counters plus measured and simulated durations.
struct JobResult {
  Counters counters;
  /// (key, value) pairs collected by reducers, merged across partitions.
  std::vector<std::pair<std::string, std::string>> reduce_output;
  int num_map_tasks = 0;
  int num_reduce_tasks = 0;
  double wall_seconds = 0.0;
  /// Cluster-model duration (see ClusterConfig). The quantity the benches
  /// report as "query cost time".
  double simulated_seconds = 0.0;
  double simulated_map_seconds = 0.0;
  double simulated_shuffle_reduce_seconds = 0.0;
  /// Measured wall seconds of every parallel task of the job (map tasks then
  /// reduce/writer tasks, in task order). Replaying these through
  /// SimulateMakespan(tasks, N) projects the local wall time the same work
  /// would take with N worker slots — the build benches report that
  /// projection next to the measured wall time, which on a single-core host
  /// cannot show the parallel speedup directly.
  std::vector<double> local_task_seconds;
  /// Wall-clock breakdown of the job by pipeline stage (shard, merge,
  /// slice_write, bounds, ...): the Amdahl evidence for which stages run
  /// serially. Benches embed this next to the end-to-end wall time.
  StageTimes stage_seconds;
};

/// Deterministic multi-threaded MapReduce engine over MiniDfs splits.
///
/// A job = one map task per input split, an in-memory sort/shuffle, and
/// `num_reducers` reduce tasks. Tasks run on a thread pool; the simulated
/// duration is computed by replaying per-task costs through the
/// ClusterConfig's slot model (SimulateMakespan).
class JobRunner {
 public:
  struct Options {
    ClusterConfig cluster;
    /// Local worker threads actually executing tasks.
    int worker_threads = 4;
    int num_reducers = 0;  // 0 = map-only job
  };

  explicit JobRunner(Options options) : options_(options) {}

  /// Runs the job to completion. Any task error fails the job.
  Result<JobResult> Run(const std::vector<fs::FileSplit>& splits,
                        const MapperFactory& mapper_factory,
                        const ReducerFactory& reducer_factory = nullptr);

 private:
  Options options_;
};

}  // namespace dgf::exec

#endif  // DGF_EXEC_MAPREDUCE_H_
