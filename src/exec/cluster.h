#ifndef DGF_EXEC_CLUSTER_H_
#define DGF_EXEC_CLUSTER_H_

#include <vector>

namespace dgf::exec {

/// Cost model of the simulated Hadoop cluster.
///
/// The reproduction runs on one machine, so wall-clock times cannot match the
/// paper's 29-node cluster. Every job therefore also reports a *simulated*
/// duration computed from real work counters (tasks launched, bytes read,
/// bytes shuffled) charged against this model. Defaults approximate the
/// paper's setup: 28 workers x 5 map slots / 3 reduce slots, 64 MB blocks,
/// multi-second job start (Hive parse + JobTracker scheduling).
struct ClusterConfig {
  int num_nodes = 28;
  int map_slots_per_node = 5;
  int reduce_slots_per_node = 3;

  /// Fixed cost of launching one task attempt (JVM start, localization).
  double task_launch_overhead_s = 2.0;
  /// Fixed per-job cost (HiveQL parse, plan, JobTracker submit) — the paper's
  /// "other time" floor visible even for point queries.
  double job_overhead_s = 12.0;
  /// Effective throughput of one map task scanning + deserializing TextFile
  /// data (Hadoop-1.x text processing is CPU-bound well below raw disk
  /// speed; 5 concurrent tasks also share each node's disks).
  double scan_mb_per_s = 6.0;
  /// When data_scale inflates a task's bytes past this, the cost model
  /// splits it into virtual 64 MB map tasks (the real deployment would have
  /// had that many splits), so slot waves amortize correctly.
  double virtual_split_bytes = 64.0 * 1024 * 1024;
  /// Extra seek penalty charged per distinct slice read within a split
  /// (DGFIndex's slice-skip turns a scan into a few short reads).
  double seek_cost_s = 0.005;
  /// Shuffle+merge bandwidth per reduce task.
  double shuffle_mb_per_s = 12.0;
  /// Per-record CPU cost beyond the byte-rate charge (predicate eval etc.).
  double record_cpu_s = 2.0e-8;
  /// One key-value store round trip (HBase get) as seen by the index handler.
  double kv_get_s = 0.0008;
  /// Per-entry cost of a streaming KV range scan (HBase scanner); large GFU
  /// lookups use scans instead of point gets.
  double kv_scan_entry_s = 5.0e-6;

  /// Interprets each local byte/record as `data_scale` bytes/records of the
  /// full-size deployment. Benches set this to paper_rows / generated_rows so
  /// the simulated durations land in the paper's regime while every count
  /// stays a real measurement. Fixed costs (task launch, job overhead, KV
  /// round trips) do NOT scale: grid resolution is scale-independent.
  double data_scale = 1.0;

  int total_map_slots() const { return num_nodes * map_slots_per_node; }
  int total_reduce_slots() const { return num_nodes * reduce_slots_per_node; }
};

/// Greedy multiprocessor makespan: assigns tasks in order to the earliest-
/// free of `slots` slots and returns the finish time of the last one. This is
/// how both MiniMR and the HadoopDB engine turn per-task costs into a
/// simulated cluster duration.
double SimulateMakespan(const std::vector<double>& task_seconds, int slots);

}  // namespace dgf::exec

#endif  // DGF_EXEC_CLUSTER_H_
