#include "exec/cluster.h"

#include <algorithm>
#include <queue>

namespace dgf::exec {

double SimulateMakespan(const std::vector<double>& task_seconds, int slots) {
  if (task_seconds.empty()) return 0.0;
  slots = std::max(1, slots);
  // Min-heap of slot free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int i = 0; i < slots; ++i) free_at.push(0.0);
  double makespan = 0.0;
  for (double cost : task_seconds) {
    const double start = free_at.top();
    free_at.pop();
    const double end = start + std::max(0.0, cost);
    free_at.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

}  // namespace dgf::exec
