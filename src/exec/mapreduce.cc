#include "exec/mapreduce.h"

#include <algorithm>
#include <cmath>
#include <atomic>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace dgf::exec {

void Counters::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] += delta;
}

int64_t Counters::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> Counters::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

void Counters::MergeFrom(const Counters& other) {
  for (const auto& [name, value] : other.Snapshot()) Add(name, value);
}

void MapContext::Emit(std::string key, std::string value) {
  emitted_.emplace_back(std::move(key), std::move(value));
}

void ReduceContext::Collect(std::string key, std::string value) {
  output_.emplace_back(std::move(key), std::move(value));
}

namespace {

uint64_t HashKey(const std::string& key) {
  // FNV-1a; stable across runs so reducer partitions are deterministic.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Result<JobResult> JobRunner::Run(const std::vector<fs::FileSplit>& splits,
                                 const MapperFactory& mapper_factory,
                                 const ReducerFactory& reducer_factory) {
  if (options_.num_reducers > 0 && reducer_factory == nullptr) {
    return Status::InvalidArgument("reducers requested without a factory");
  }
  JobResult result;
  result.num_map_tasks = static_cast<int>(splits.size());
  result.num_reduce_tasks = options_.num_reducers;
  Stopwatch wall;

  // ---- Map phase ----
  std::vector<std::unique_ptr<MapContext>> contexts;
  contexts.reserve(splits.size());
  for (const auto& split : splits) {
    contexts.emplace_back(new MapContext(split));
  }
  std::mutex error_mu;
  Status first_error;
  std::vector<double> map_task_seconds(splits.size(), 0.0);
  {
    ThreadPool pool(options_.worker_threads);
    for (size_t i = 0; i < splits.size(); ++i) {
      MapContext* ctx = contexts[i].get();
      pool.Submit([&, ctx, i] {
        Stopwatch task_watch;
        auto mapper = mapper_factory();
        Status st = mapper->Map(ctx->split(), ctx);
        map_task_seconds[i] = task_watch.ElapsedSeconds();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
        }
      });
    }
    pool.WaitIdle();
  }
  DGF_RETURN_IF_ERROR(first_error);
  result.local_task_seconds = std::move(map_task_seconds);

  // Aggregate per-task accounting into counters and the cost model.
  const ClusterConfig& cluster = options_.cluster;
  std::vector<double> map_costs;
  map_costs.reserve(contexts.size());
  uint64_t shuffle_bytes = 0;
  for (const auto& ctx : contexts) {
    result.counters.MergeFrom(ctx->counters_);
    result.counters.Add(kCounterMapInputBytes,
                        static_cast<int64_t>(ctx->bytes_read_));
    result.counters.Add(kCounterMapInputRecords,
                        static_cast<int64_t>(ctx->records_));
    result.counters.Add(kCounterMapOutputRecords,
                        static_cast<int64_t>(ctx->emitted_.size()));
    // Under data_scale, one local task stands for the many 64 MB map tasks
    // the full-size deployment would have run over the same data; expand it
    // so slot waves amortize as they really would.
    const double scaled_bytes =
        cluster.data_scale * static_cast<double>(ctx->bytes_read_);
    const double scaled_records =
        cluster.data_scale * static_cast<double>(ctx->records_);
    const auto virtual_tasks = static_cast<int64_t>(std::clamp(
        std::ceil(scaled_bytes / cluster.virtual_split_bytes), 1.0, 1.0e6));
    const double per_task =
        cluster.task_launch_overhead_s +
        scaled_bytes / virtual_tasks / (1e6 * cluster.scan_mb_per_s) +
        scaled_records / virtual_tasks * cluster.record_cpu_s +
        static_cast<double>(ctx->seeks_) * cluster.seek_cost_s / virtual_tasks;
    for (int64_t v = 0; v < virtual_tasks; ++v) map_costs.push_back(per_task);
    for (const auto& [key, value] : ctx->emitted_) {
      shuffle_bytes += key.size() + value.size();
    }
  }
  result.simulated_map_seconds =
      SimulateMakespan(map_costs, cluster.total_map_slots());

  // ---- Shuffle + reduce phase ----
  if (options_.num_reducers > 0) {
    const int num_reducers = options_.num_reducers;
    // Parallel shuffle, in two deterministic steps. Step 1 partitions each
    // map task's emissions locally (one task per map context, no shared
    // state). Step 2 merges the per-context partitions per reducer, always
    // iterating contexts in split order — so a reducer's key groups hold
    // their values in exactly the order a sequential shuffle would produce,
    // regardless of worker count or scheduling.
    using Partition = std::map<std::string, std::vector<std::string>>;
    std::vector<std::vector<Partition>> local(contexts.size());
    std::vector<Partition> partitions(static_cast<size_t>(num_reducers));
    {
      ThreadPool pool(options_.worker_threads);
      for (size_t i = 0; i < contexts.size(); ++i) {
        pool.Submit([&, i] {
          MapContext* ctx = contexts[i].get();
          local[i].resize(static_cast<size_t>(num_reducers));
          for (auto& [key, value] : ctx->emitted_) {
            const auto part = static_cast<size_t>(
                HashKey(key) % static_cast<uint64_t>(num_reducers));
            local[i][part][std::move(key)].push_back(std::move(value));
          }
          ctx->emitted_.clear();
        });
      }
      pool.WaitIdle();
      for (int r = 0; r < num_reducers; ++r) {
        pool.Submit([&, r] {
          Partition& merged = partitions[static_cast<size_t>(r)];
          for (size_t i = 0; i < local.size(); ++i) {
            for (auto& [key, values] : local[i][static_cast<size_t>(r)]) {
              auto& dst = merged[key];
              dst.insert(dst.end(), std::make_move_iterator(values.begin()),
                         std::make_move_iterator(values.end()));
            }
            local[i][static_cast<size_t>(r)].clear();
          }
        });
      }
      pool.WaitIdle();
    }
    local.clear();

    std::vector<std::unique_ptr<ReduceContext>> reduce_contexts;
    std::vector<uint64_t> partition_bytes(static_cast<size_t>(num_reducers), 0);
    for (int r = 0; r < num_reducers; ++r) {
      reduce_contexts.emplace_back(new ReduceContext(r));
      for (const auto& [key, values] : partitions[static_cast<size_t>(r)]) {
        uint64_t bytes = key.size() * values.size();
        for (const auto& value : values) bytes += value.size();
        partition_bytes[static_cast<size_t>(r)] += bytes;
      }
    }
    std::vector<double> reduce_task_seconds(static_cast<size_t>(num_reducers),
                                            0.0);
    {
      ThreadPool pool(options_.worker_threads);
      for (int r = 0; r < num_reducers; ++r) {
        pool.Submit([&, r] {
          Stopwatch task_watch;
          auto reducer = reducer_factory(r);
          ReduceContext* ctx = reduce_contexts[static_cast<size_t>(r)].get();
          Status st = reducer->Start(ctx);
          if (st.ok()) {
            for (const auto& [key, values] : partitions[static_cast<size_t>(r)]) {
              st = reducer->Reduce(key, values, ctx);
              if (!st.ok()) break;
              ctx->counters().Add(kCounterReduceInputKeys, 1);
            }
          }
          if (st.ok()) st = reducer->Finish(ctx);
          reduce_task_seconds[static_cast<size_t>(r)] =
              task_watch.ElapsedSeconds();
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = st;
          }
        });
      }
      pool.WaitIdle();
    }
    DGF_RETURN_IF_ERROR(first_error);
    result.local_task_seconds.insert(result.local_task_seconds.end(),
                                     reduce_task_seconds.begin(),
                                     reduce_task_seconds.end());

    std::vector<double> reduce_costs;
    reduce_costs.reserve(static_cast<size_t>(num_reducers));
    for (int r = 0; r < num_reducers; ++r) {
      ReduceContext* ctx = reduce_contexts[static_cast<size_t>(r)].get();
      // Like map tasks, a scaled-up reducer stands for the many reducers the
      // full-size job would have configured; expand it into virtual tasks.
      const double scaled_shuffle =
          cluster.data_scale *
          static_cast<double>(partition_bytes[static_cast<size_t>(r)]);
      const double scaled_written =
          cluster.data_scale * static_cast<double>(ctx->bytes_written_);
      const auto virtual_tasks = static_cast<int64_t>(std::clamp(
          std::ceil((scaled_shuffle + scaled_written) /
                    cluster.virtual_split_bytes),
          1.0, 1.0e6));
      const double per_task =
          cluster.task_launch_overhead_s +
          scaled_shuffle / virtual_tasks / (1e6 * cluster.shuffle_mb_per_s) +
          scaled_written / virtual_tasks / (1e6 * cluster.scan_mb_per_s);
      for (int64_t v = 0; v < virtual_tasks; ++v) {
        reduce_costs.push_back(per_task);
      }
      result.counters.MergeFrom(ctx->counters_);
      for (auto& kv : ctx->output_) result.reduce_output.push_back(std::move(kv));
    }
    result.simulated_shuffle_reduce_seconds =
        SimulateMakespan(reduce_costs, cluster.total_reduce_slots());
  } else {
    // Map-only job: mapper emissions become the job output directly.
    for (auto& ctx : contexts) {
      for (auto& kv : ctx->emitted_) {
        result.reduce_output.push_back(std::move(kv));
      }
    }
  }

  result.simulated_seconds = cluster.job_overhead_s +
                             result.simulated_map_seconds +
                             result.simulated_shuffle_reduce_seconds;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace dgf::exec
