#ifndef DGF_TESTING_LSM_CRASH_SWEEP_H_
#define DGF_TESTING_LSM_CRASH_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dgf::testing {

/// Crash-consistency sweep over LsmKv.
///
/// A recording pass runs a seeded Put/Delete/Flush/Compact workload once and
/// enumerates every (crash point, occurrence) boundary it crosses. The sweep
/// then replays the workload once per boundary with that boundary armed: the
/// store "dies" there (the op errors, all in-memory state is discarded), is
/// re-opened from disk, and the recovered contents are checked against a
/// shadow oracle:
///
///   * every acknowledged op survives exactly (durability),
///   * the one in-doubt op (the op that crashed) reads as either its old or
///     its new state (atomicity),
///   * no other key exists (no phantoms),
///   * and the re-opened store accepts new writes, flushes, and compactions
///     (no leaked run ids / stale files).
struct CrashSweepOptions {
  uint64_t seed = 1;
  /// Ops in the workload; sized so every flush/compact/manifest boundary is
  /// crossed several times.
  int num_ops = 220;
  /// Cap per crash point so pathological schedules stay bounded.
  int max_occurrences_per_point = 32;
  bool verbose = false;
};

struct CrashSweepReport {
  /// Distinct crash points the recording pass reached.
  int points_covered = 0;
  /// (point, occurrence) schedules replayed.
  int schedules_run = 0;
  /// Human-readable failures, each with a seed repro.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

Result<CrashSweepReport> RunLsmCrashSweep(const CrashSweepOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_LSM_CRASH_SWEEP_H_
