#ifndef DGF_TESTING_FAULT_SCHEDULE_H_
#define DGF_TESTING_FAULT_SCHEDULE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/random.h"
#include "fs/mini_dfs.h"

namespace dgf::testing {

/// Seed-replayable read-fault schedule for MiniDfs.
///
/// Every decision is a pure function of (seed, decision ordinal), so running
/// the same single-threaded workload twice against the same schedule injects
/// byte-identical faults — a failing run is reproduced by its seed alone.
/// The schedule mixes transient errors (retried by the reader up to its
/// budget; bursts longer than the budget surface as structured IOErrors) and
/// short reads (absorbed by the reader's loop; wrong data is impossible by
/// construction, the point is to prove callers never bypass the loop).
class SeededFaultSchedule : public fs::ReadFaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Probability that one read attempt fails transiently.
    double transient_rate = 0.05;
    /// Probability that one read attempt is truncated.
    double short_read_rate = 0.10;
    /// Once a transient fault fires, the chance the *next* attempt fails
    /// too — bursts are what exhaust the reader's retry budget.
    double burst_continue = 0.5;
  };

  explicit SeededFaultSchedule(Options options)
      : options_(options), rng_(options.seed ^ 0xFA57F417ULL) {}

  fs::ReadFault NextFault(const std::string& path, uint64_t offset,
                          uint64_t length) override;

  uint64_t decisions() const { return decisions_.load(); }
  uint64_t transient_faults() const { return transient_faults_.load(); }
  uint64_t short_reads() const { return short_reads_.load(); }

 private:
  Options options_;
  std::mutex mu_;
  Random rng_;
  bool in_burst_ = false;
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> transient_faults_{0};
  std::atomic<uint64_t> short_reads_{0};
};

}  // namespace dgf::testing

#endif  // DGF_TESTING_FAULT_SCHEDULE_H_
