#ifndef DGF_TESTING_DIFFERENTIAL_H_
#define DGF_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/executor.h"
#include "workload/meter_gen.h"

namespace dgf::testing {

struct World;

/// Handle over one seeded differential world — the schema-varied meter
/// dataset with every access path built over it that `RunDifferential`
/// checks. Re-exported so the query-server tests and load harness can serve
/// the exact worlds the differential oracle validates: the server's answers
/// are diffed against `Oracle()` (a sequential full scan) with the same
/// mismatch report the differential run uses.
class SeededWorld {
 public:
  /// Deterministic for a fixed seed (same dataset, grid, and indexes the
  /// differential harness would build).
  static Result<SeededWorld> Build(uint64_t seed, int worker_threads = 2);

  SeededWorld(SeededWorld&&) noexcept;
  SeededWorld& operator=(SeededWorld&&) noexcept;
  ~SeededWorld();

  const std::shared_ptr<fs::MiniDfs>& dfs() const;
  const table::TableDesc& meter() const;
  const workload::MeterConfig& config() const;
  /// The seed's randomized grid policy (the shard sweep rebuilds per-shard
  /// indexes over the identical grid).
  const std::vector<core::DimensionPolicy>& dims() const;
  /// The DGFIndex over TextFile slices (what a server registers).
  core::DgfIndex* dgf_text() const;

  /// Sequential full-scan oracle answer for `q`.
  Result<query::QueryResult> Oracle(const query::Query& q) const;

  /// Case `case_id` of seed `seed`'s generated workload (paper templates
  /// mixed with randomized multidimensional ranges).
  query::Query GenerateQuery(uint64_t seed, int case_id) const;

 private:
  explicit SeededWorld(std::unique_ptr<World> world);
  std::unique_ptr<World> world_;
};

/// Empty string when the two results agree (row order ignored, tight
/// tolerance on doubles); else a description of the first difference.
std::string DescribeResultMismatch(const query::QueryResult& oracle,
                                   const query::QueryResult& other);

/// One confirmed disagreement between two access paths (or an unexpected
/// execution error). `repro` is a standalone command line that replays
/// exactly this case.
struct Divergence {
  uint64_t seed = 0;
  int case_id = 0;
  /// Textual form of the (possibly shrunk) query that diverged.
  std::string query;
  /// The two access paths that disagreed (path_a is the oracle).
  std::string path_a;
  std::string path_b;
  /// First mismatching cell / row-count mismatch / error status.
  std::string detail;
  std::string repro;

  std::string ToString() const;
};

/// Cross-engine differential run: every generated query is executed through
/// brute-force scan (the oracle), Compact Index, Bitmap Index, DGFIndex over
/// TextFile slices, DGFIndex over RCFile slices, and — when the query shape
/// qualifies — the Aggregate Index count rewrite. All paths re-apply the full
/// predicate during their data scan, so any difference in results is a bug.
struct DiffOptions {
  uint64_t seed = 1;
  int num_queries = 100;
  /// >= 0: generate and run only this case id (seed replay of one failure).
  int only_case = -1;
  /// Bisect a diverging query down to a smaller one before reporting.
  bool shrink = true;
  bool verbose = false;
  /// > 1: run the case set concurrently on this many reader threads, each
  /// case diffed against an oracle result computed sequentially up front.
  /// Exercises the snapshot-isolated read path (shared executors, shared
  /// decoded-GFU cache) under real thread interleavings; results must be
  /// byte-identical to a sequential run. Ignored when only_case is set.
  int threads = 1;
};

struct DiffReport {
  int queries_run = 0;
  /// Path executions compared against the oracle (>= queries_run * 4).
  int comparisons = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

/// Builds a seeded random world (schema variation, dataset, grid policy, all
/// five access paths) and differentially checks `num_queries` generated
/// queries. Deterministic for a fixed (seed, case) pair.
Result<DiffReport> RunDifferential(const DiffOptions& options);

/// Fault sweep: the same differential worlds queried while a seed-replayable
/// SeededFaultSchedule injects transient read errors and short reads into
/// every MiniDfs read. Queries must either succeed with exactly the oracle's
/// rows or fail with the injected structured IOError — never return wrong
/// data.
struct FaultSweepOptions {
  uint64_t seed = 1;
  int num_queries = 40;
  bool verbose = false;
};

struct FaultReport {
  int queries_run = 0;
  /// Path executions attempted under injection.
  int executions = 0;
  /// Executions that failed with the injected structured error (retried
  /// transient bursts longer than the reader's budget).
  int structured_errors = 0;
  uint64_t faults_injected = 0;
  uint64_t short_reads = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

Result<FaultReport> RunFaultSweep(const FaultSweepOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_DIFFERENTIAL_H_
