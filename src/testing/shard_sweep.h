#ifndef DGF_TESTING_SHARD_SWEEP_H_
#define DGF_TESTING_SHARD_SWEEP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "coord/coordinator.h"
#include "coord/shard_map.h"
#include "dgf/splitting_policy.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "testing/differential.h"
#include "workload/meter_gen.h"

namespace dgf::testing {

/// An in-process sharded cluster: N shard servers, each a full QueryService
/// over its contiguous day band of the meter dataset (own MiniDfs, own DGF
/// index built over the same grid policy), fronted by a Coordinator behind
/// its own wire-protocol Server. Clients connect to the front server and
/// cannot tell the cluster from a single node — which is exactly what the
/// shard sweep verifies.
class ShardedCluster {
 public:
  struct Options {
    workload::MeterConfig config;
    /// Grid policy shared by every shard's index (use the oracle world's).
    std::vector<core::DimensionPolicy> dims;
    std::vector<std::string> precompute = {"sum(powerConsumed)", "count(*)"};
    /// Requested shard count; clamped to the day span (`num_shards()` is the
    /// effective value).
    int num_shards = 2;
    /// Replicate the userInfo archive to every shard (broadcast joins).
    bool with_user_info = false;
    /// MiniDfs replication factor for every shard's DFS: k replica stores
    /// with chunk checksums and failover reads (1 = legacy single copy).
    int replication = 1;
    /// Start a second wire server per shard over the same QueryService (the
    /// shard's replica endpoint) and hand those endpoints to the
    /// coordinator, arming its one-shot read retry.
    bool replica_servers = false;
    /// Back each shard with LsmKv (WAL + SSTable runs through the shard's
    /// MiniDfs, so the metadata/epoch log rides DFS replication) instead of
    /// MemKv — required for kill-and-reopen recovery checks to be real.
    bool use_lsm = false;
    int max_concurrent = 4;
    int max_pending = 16;
    double connect_timeout_seconds = 2.0;
    double shard_response_timeout_seconds = 30.0;
  };

  static Result<std::unique_ptr<ShardedCluster>> Start(const Options& options);
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const coord::ShardMap& shard_map() const { return shard_map_; }
  coord::Coordinator* coordinator() { return coordinator_.get(); }
  /// The coordinator-fronting server clients talk to.
  server::Server* front() { return front_.get(); }
  server::Server* shard_server(int i);
  /// The shard's replica wire server (null unless Options::replica_servers).
  server::Server* shard_replica_server(int i);
  server::QueryService* shard_service(int i);
  const std::shared_ptr<fs::MiniDfs>& shard_dfs(int i);
  /// Local filesystem directory backing shard i's DFS (survives daemon
  /// kills; removed when the cluster is destroyed).
  std::string shard_dir(int i) const;
  /// The grid policy / table descriptor every shard shares.
  const table::TableDesc& meter_desc() const;

  /// Abruptly stops shard i's primary server. The replica server (if any)
  /// keeps serving the same QueryService, so coordinator reads survive via
  /// its one-shot replica retry; appends to the shard fail Unavailable.
  void KillShardPrimary(int i);
  /// Stops every server of shard i and tears down its service, index, KV
  /// store, and DFS handle, leaving only the on-disk state — the sweep then
  /// reopens that state to check recovery equals the acknowledged prefix.
  void KillShardDaemon(int i);

  Result<std::unique_ptr<server::ServerClient>> Connect() const;

 private:
  struct Shard;
  ShardedCluster() = default;

  coord::ShardMap shard_map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<coord::Coordinator> coordinator_;
  std::unique_ptr<server::Server> front_;
};

/// Parses a wire query payload back into typed rows against its schema (the
/// client-side inverse of the server's result encoding).
Result<query::QueryResult> ResultFromPayload(
    const server::QueryResultPayload& payload);

/// The marker rows a sweep appends: userIds >= num_users (disjoint from the
/// base data, so `userId >= num_users` selects exactly them), spread across
/// every base day so the batch crosses every shard band. `days` / `powers`
/// record each row's routing dimension and aggregate contribution so a
/// caller can compute per-shard expectations without re-parsing lines.
struct MarkerBatch {
  std::vector<std::string> lines;
  std::vector<int64_t> days;
  std::vector<double> powers;
  int64_t expected_count = 0;
  double expected_sum = 0;
};

MarkerBatch MakeMarkerBatch(const workload::MeterConfig& config, int rows);

/// Runs the marker-append check against a live cluster: append, then probe
/// with and without an explicit full-range time predicate. Both probes must
/// see exactly the whole batch; a row routed to the wrong shard would be
/// visible to the open probe but missing from the banded one.
Status CheckMarkerAppend(server::ServerClient* client,
                         const workload::MeterConfig& config,
                         const MarkerBatch& batch);

/// Sharded-vs-oracle differential sweep (the PR's acceptance gate): for each
/// seeded world, every generated paper-template query is answered by an
/// in-process 1/2/4-shard cluster through the coordinator and must match the
/// single-node full-scan oracle exactly (rows, aggregates, and the stats
/// invariants DGF execution guarantees). Each cluster then takes a
/// cross-shard APPEND of marker rows spanning every day band and is probed
/// for exact routing: the marker aggregate must be identical with and
/// without an explicit full-range time predicate (a misrouted row would be
/// invisible to the banded probe).
struct ShardSweepOptions {
  uint64_t seed = 1;
  /// Worlds swept: seeds [seed, seed + count).
  int count = 1;
  int num_queries = 20;
  /// >= 0: replay only this case id.
  int only_case = -1;
  /// > 0: run only this shard count (replay); else 1, 2, and 4.
  int only_shards = 0;
  bool verbose = false;
};

struct ShardSweepReport {
  int seeds_run = 0;
  int clusters_run = 0;
  int queries_run = 0;
  int appends_checked = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

Result<ShardSweepReport> RunShardSweep(const ShardSweepOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_SHARD_SWEEP_H_
