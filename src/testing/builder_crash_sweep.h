#ifndef DGF_TESTING_BUILDER_CRASH_SWEEP_H_
#define DGF_TESTING_BUILDER_CRASH_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dgf::testing {

/// Crash-consistency sweep over the DGFIndex build & append pipeline.
///
/// A recording pass runs a seeded workload once — Build, two direct
/// DgfBuilder::Appends, one QueryService group-commit append — and
/// enumerates every `dgf.*` crash boundary it crosses (shard merge, slice
/// writing, the publish points, the group-commit flush). The sweep then
/// replays the workload once per (point, occurrence) with that boundary
/// armed: the op dies there, all in-memory state (index handle, KV store)
/// is discarded, and the store is re-opened from disk. The recovered index
/// must be exactly the acknowledged prefix:
///
///   * an interrupted Build publishes nothing — the store re-opens empty
///     (slice files already on the DFS are unreferenced orphans);
///   * an interrupted Append leaves the index at the acknowledged batch
///     prefix — full slice scans return exactly the rows of the base table
///     plus every acknowledged batch, never a torn batch;
///   * the batch counter matches the acknowledged publishes;
///   * recovery is live: a retry (re-Build, or a fresh Append) over the
///     crashed state succeeds — orphan slice files of the dead attempt are
///     reclaimed — and yields the correct rows.
///
/// One extra schedule truncates an orphan slice file (testing/corruption.h)
/// after a pre-publish build crash, asserting a truncated in-progress build
/// never publishes and does not poison the retry.
///
/// Single-threaded by design (crash points are not thread-safe); the
/// parallel pipeline's determinism is covered by RunBuildEquivalenceSweep.
struct BuilderCrashSweepOptions {
  uint64_t seed = 1;
  /// Cap per crash point so pathological schedules stay bounded.
  int max_occurrences_per_point = 8;
  bool verbose = false;
};

struct BuilderCrashSweepReport {
  /// Distinct dgf.* crash points the recording pass reached.
  int points_covered = 0;
  /// (point, occurrence) schedules replayed (plus the truncation schedule).
  int schedules_run = 0;
  /// Human-readable failures, each with a seed repro.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

Result<BuilderCrashSweepReport> RunBuilderCrashSweep(
    const BuilderCrashSweepOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_BUILDER_CRASH_SWEEP_H_
