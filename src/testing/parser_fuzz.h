#ifndef DGF_TESTING_PARSER_FUZZ_H_
#define DGF_TESTING_PARSER_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dgf::testing {

/// Seeded mutation fuzzer for the HiveQL-subset parser. Each case takes a
/// valid query from a small corpus and applies 1-4 random mutations
/// (truncation, byte splices, keyword swaps, quote imbalance, huge literals,
/// raw high bytes). The invariant: ParseQuery either succeeds — and then the
/// query binds against the schema and prints without crashing — or returns a
/// structured non-empty error. It must never crash or abort.
struct ParserFuzzOptions {
  uint64_t seed = 1;
  int num_cases = 500;
  /// >= 0: run only this case (seed replay of one input).
  int only_case = -1;
  bool verbose = false;
};

struct ParserFuzzReport {
  int cases_run = 0;
  int parse_ok = 0;
  int parse_error = 0;
  /// Inputs whose outcome broke the invariant (empty error message, or a
  /// parsed query that fails to bind/print), each with a repro line.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

/// The exact fuzz input for (seed, case_id); the repro path for a crash
/// observed in RunParserFuzz.
std::string GenerateFuzzQuery(uint64_t seed, int case_id);

Result<ParserFuzzReport> RunParserFuzz(const ParserFuzzOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_PARSER_FUZZ_H_
