#include "testing/wire_fuzz.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/encoding.h"
#include "common/random.h"
#include "common/status.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service_interface.h"
#include "server/wire.h"
#include "table/schema.h"
#include "table/value.h"

namespace dgf::testing {
namespace {

/// Valid encoded request and response bodies covering every opcode and every
/// payload shape the codec knows; mutation starts from these so the fuzz
/// inputs stay near the interesting boundaries (length prefixes, varints,
/// type/opcode bytes) instead of being rejected at the first byte.
std::vector<std::string> BuildCorpus() {
  std::vector<std::string> corpus;

  {
    server::Request r;
    r.opcode = server::Opcode::kQuery;
    r.request_id = 7;
    r.query.sql =
        "SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 100 AND "
        "userId < 200 AND time >= '2012-12-01' AND time < '2012-12-11'";
    r.query.deadline_seconds = 2.5;
    corpus.push_back(server::EncodeRequest(r));
  }
  {
    server::Request r;
    r.opcode = server::Opcode::kAppend;
    r.request_id = 8;
    r.append.table = "meterdata";
    r.append.rows = {"101|3|2012-12-04|7.25|0.5", "102|1|2012-12-05|8.75|1.0"};
    corpus.push_back(server::EncodeRequest(r));
  }
  {
    server::Request r;
    r.opcode = server::Opcode::kCancel;
    r.request_id = 9;
    r.cancel_target = 7;
    corpus.push_back(server::EncodeRequest(r));
  }
  for (const server::Opcode opcode :
       {server::Opcode::kStats, server::Opcode::kPing,
        server::Opcode::kShutdown}) {
    server::Request r;
    r.opcode = opcode;
    r.request_id = 10;
    corpus.push_back(server::EncodeRequest(r));
  }

  {
    server::Response r;
    r.opcode = server::Opcode::kQuery;
    r.request_id = 7;
    r.result.schema = table::Schema({{"userId", table::DataType::kInt64},
                                     {"time", table::DataType::kDate},
                                     {"powerConsumed", table::DataType::kDouble}});
    r.result.rows = {"101|2012-12-04|7.25", "102|2012-12-05|8.75"};
    r.result.stats.path = query::AccessPath::kDgfIndex;
    r.result.stats.records_read = 128;
    r.result.stats.records_matched = 2;
    r.result.stats.bytes_read = 4096;
    r.result.stats.splits_scanned = 3;
    r.result.stats.kv_gets = 5;
    r.result.stats.cache_hits = 4;
    r.result.stats.cache_misses = 1;
    r.result.stats.index_seconds = 0.25;
    r.result.stats.data_seconds = 1.5;
    r.result.stats.total_seconds = 1.75;
    r.result.stats.wall_seconds = 0.01;
    corpus.push_back(server::EncodeResponse(r));
  }
  corpus.push_back(server::EncodeResponse(server::MakeErrorResponse(
      server::Opcode::kQuery, 7,
      Status::InvalidArgument("parse error near 'FROM'"))));
  {
    server::Response r;
    r.opcode = server::Opcode::kAppend;
    r.request_id = 8;
    r.rows_appended = 2;
    corpus.push_back(server::EncodeResponse(r));
  }
  {
    server::Response r;
    r.opcode = server::Opcode::kStats;
    r.request_id = 10;
    r.stats = {{"queries.admitted", 12.0},
               {"queries.in_flight", 1.0},
               {"latency.p99_ms", 42.5}};
    corpus.push_back(server::EncodeResponse(r));
  }
  for (const server::Opcode opcode :
       {server::Opcode::kCancel, server::Opcode::kPing,
        server::Opcode::kShutdown}) {
    server::Response r;
    r.opcode = opcode;
    r.request_id = 11;
    corpus.push_back(server::EncodeResponse(r));
  }
  return corpus;
}

/// Varint64 with every continuation bit set: maximally hostile to any
/// length/count field it lands on.
constexpr char kHugeVarint[] =
    "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f";

void MutateBytes(std::string* body, Random* rng) {
  if (body->empty()) {
    body->push_back(static_cast<char>(rng->Uniform(256)));
    return;
  }
  switch (rng->Uniform(7)) {
    case 0:  // truncate
      body->resize(rng->Uniform(body->size() + 1));
      break;
    case 1: {  // delete a span
      const size_t at = rng->Uniform(body->size());
      body->erase(at, 1 + rng->Uniform(8));
      break;
    }
    case 2: {  // duplicate a span
      const size_t at = rng->Uniform(body->size());
      const size_t len =
          std::min<size_t>(1 + rng->Uniform(12), body->size() - at);
      body->insert(at, body->substr(at, len));
      break;
    }
    case 3: {  // splice raw bytes
      const size_t at = rng->Uniform(body->size() + 1);
      const size_t count = 1 + rng->Uniform(6);
      std::string noise;
      for (size_t i = 0; i < count; ++i) {
        noise.push_back(static_cast<char>(rng->Uniform(256)));
      }
      body->insert(at, noise);
      break;
    }
    case 4: {  // swap two bytes
      const size_t a = rng->Uniform(body->size());
      const size_t b = rng->Uniform(body->size());
      std::swap((*body)[a], (*body)[b]);
      break;
    }
    case 5: {  // saturate a short run with 0xFF (poisons fixed-width fields)
      const size_t at = rng->Uniform(body->size());
      const size_t len = std::min<size_t>(1 + rng->Uniform(4),
                                          body->size() - at);
      for (size_t i = 0; i < len; ++i) (*body)[at + i] = '\xff';
      break;
    }
    default: {  // splice an enormous varint over a length/count field
      const size_t at = rng->Uniform(body->size() + 1);
      body->insert(at, kHugeVarint, sizeof(kHugeVarint) - 1);
      break;
    }
  }
}

/// Trivial WireService behind the live-stage server: answers every query
/// synchronously with a fixed one-row result so the fuzz run never depends
/// on catalog state — the subject under test is the framing and codec layer,
/// not execution.
class StubService final : public server::WireService {
 public:
  Status SubmitQuery(uint64_t /*request_id*/, std::string /*sql*/,
                     double /*deadline_seconds*/, uint64_t /*trace_id*/,
                     QueryDone done) override {
    query::QueryResult result;
    result.schema = table::Schema({{"userId", table::DataType::kInt64},
                                   {"powerConsumed", table::DataType::kDouble}});
    result.rows.push_back(
        {table::Value::Int64(42), table::Value::Double(6.5)});
    result.stats.path = query::AccessPath::kFullScan;
    result.stats.records_read = 1;
    result.stats.records_matched = 1;
    done(std::move(result));
    return Status::OK();
  }
  bool CancelQuery(uint64_t /*request_id*/) override { return false; }
  Result<uint64_t> Append(const std::string& /*table*/,
                          const std::vector<std::string>& rows) override {
    return static_cast<uint64_t>(rows.size());
  }
  std::vector<std::pair<std::string, double>> StatsSnapshot() const override {
    return {{"stub.up", 1.0}};
  }
  void BeginDrain() override {}
  void Drain() override {}
};

Result<int> RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("connect: ") + std::strerror(err));
  }
  return fd;
}

/// Best-effort write: the server dropping us mid-write (it saw garbage and
/// closed) surfaces as EPIPE/ECONNRESET, which is an acceptable outcome for
/// a poisoned connection — callers ignore the status.
Status SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string Framed(std::string_view body, uint32_t claimed_length) {
  std::string framed;
  PutFixed32(&framed, claimed_length);
  framed.append(body);
  return framed;
}

/// One poisoned connection against the live server. The invariant is
/// two-sided: any frame the server *does* write back must decode, and the
/// server itself must stay healthy for the next client regardless of what
/// this connection fed it.
void RunLiveCase(int port, uint64_t seed, int case_id,
                 const std::string& repro, WireFuzzReport* report) {
  Random rng((seed ^ 0xC0FFEEULL) +
             0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(case_id) + 1));
  std::string body = GenerateWireFuzzBody(seed, case_id);

  // Frame it with a prefix that sometimes lies.
  uint32_t claimed;
  switch (rng.Uniform(4)) {
    case 0:  // honest
      claimed = static_cast<uint32_t>(body.size());
      break;
    case 1:  // claims more than we will ever send: server must keep waiting
      claimed = static_cast<uint32_t>(body.size() + 1 + rng.Uniform(4096));
      break;
    case 2:  // beyond kMaxFrameBytes: server must drop the connection
      claimed = static_cast<uint32_t>(server::kMaxFrameBytes + 1 +
                                      rng.Uniform(1u << 30));
      break;
    default:  // claims less: the tail re-parses as garbage frame headers
      claimed = static_cast<uint32_t>(rng.Uniform(body.size() + 1));
      break;
  }
  std::string framed = Framed(body, claimed);
  // Sometimes die mid-frame instead of probing.
  const bool chop = rng.Uniform(4) == 0;
  if (chop && framed.size() > 5) {
    framed.resize(5 + rng.Uniform(framed.size() - 5));
  }

  auto fd = RawConnect(port);
  if (!fd.ok()) {
    report->failures.push_back("live case " + std::to_string(case_id) +
                               ": server refused a new connection (" +
                               fd.status().ToString() + ") repro: " + repro);
    return;
  }
  (void)SendAll(*fd, framed);
  if (!chop) {
    // Probe the same connection with a valid PING. Three outcomes are
    // acceptable: a decodable response frame (possibly to a request the
    // mutant happened to spell), a dropped connection, or silence (a lying
    // length prefix legitimately leaves the server waiting for more bytes).
    server::Request ping;
    ping.opcode = server::Opcode::kPing;
    ping.request_id = 0xF0F0;
    const std::string ping_body = server::EncodeRequest(ping);
    (void)SendAll(*fd, Framed(ping_body,
                              static_cast<uint32_t>(ping_body.size())));
    (void)server::SetRecvTimeout(*fd, 1.0);
    auto readable = server::WaitReadable(*fd, 1.0);
    if (readable.ok() && *readable) {
      std::string resp;
      auto got = server::ReadFrame(*fd, &resp);
      if (got.ok() && *got) {
        auto decoded = server::DecodeResponse(resp);
        if (!decoded.ok()) {
          report->failures.push_back(
              "live case " + std::to_string(case_id) +
              ": server wrote an undecodable frame (" +
              decoded.status().ToString() + ") repro: " + repro);
        }
      }
      // EOF or read error: the server dropped us. Acceptable.
    }
  }
  ::close(*fd);
  ++report->live_cases_run;

  // Whatever happened above, a fresh connection must be served promptly.
  auto client = server::ServerClient::ConnectTcp("127.0.0.1", port, 2.0);
  if (!client.ok()) {
    report->failures.push_back("live case " + std::to_string(case_id) +
                               ": server unreachable afterwards (" +
                               client.status().ToString() +
                               ") repro: " + repro);
    return;
  }
  (void)(*client)->SetRecvTimeout(5.0);
  auto pong = (*client)->Ping();
  if (!pong.ok() || !pong->ok()) {
    report->failures.push_back(
        "live case " + std::to_string(case_id) +
        ": fresh-connection PING failed afterwards (" +
        (pong.ok() ? server::ResponseStatus(*pong).ToString()
                   : pong.status().ToString()) +
        ") repro: " + repro);
  }
}

/// One hostile connection against the HTTP exporter. Acceptable outcomes:
/// any HTTP response, or a dropped connection. Unacceptable: a crash (takes
/// the binary down) or the exporter going unhealthy for the next client —
/// both are checked by the clean /healthz probe the caller runs after.
void RunHttpCase(int port, uint64_t seed, int case_id,
                 WireFuzzReport* report) {
  Random rng((seed ^ 0xDECAFBADULL) +
             0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(case_id) + 1));
  std::string payload;
  switch (rng.Uniform(6)) {
    case 0:  // malformed request line
      payload = "GET\r\n\r\n";
      break;
    case 1: {  // request line with garbage method / missing version
      static const char* kLines[] = {
          "BREW /metrics HTTP/1.0\r\n\r\n", "GET  \r\n\r\n",
          "GET /metrics\r\n\r\n", "\r\n\r\n",
          "GET /metrics HTTP/1.0\r\nHost:\x01\x02\r\n\r\n"};
      payload = kLines[rng.Uniform(5)];
      break;
    }
    case 2: {  // header flood past the head-read budget
      payload = "GET /metrics HTTP/1.0\r\n";
      for (int i = 0; i < 512; ++i) {
        payload += "X-Flood-" + std::to_string(i) + ": " +
                   std::string(64, 'a') + "\r\n";
      }
      payload += "\r\n";
      break;
    }
    case 3: {  // one absurdly long request line
      payload = "GET /" + std::string(64 * 1024, 'a') + " HTTP/1.0\r\n\r\n";
      break;
    }
    case 4: {  // raw binary noise, never a valid head terminator
      const size_t n = 1 + rng.Uniform(2048);
      for (size_t i = 0; i < n; ++i) {
        char c = static_cast<char>(rng.Uniform(256));
        if (c == '\n') c = 'x';  // keep it from accidentally terminating
        payload.push_back(c);
      }
      break;
    }
    default:  // valid prefix, then the connection dies mid-request
      payload = "GET /stats HT";
      break;
  }

  auto fd = RawConnect(port);
  if (!fd.ok()) {
    report->failures.push_back("http case " + std::to_string(case_id) +
                               ": exporter refused a new connection (" +
                               fd.status().ToString() + ")");
    return;
  }
  (void)SendAll(*fd, payload);
  // Half the time read whatever comes back (bounded); otherwise close
  // immediately — the early-abort client.
  if (rng.Uniform(2) == 0) {
    (void)server::SetRecvTimeout(*fd, 1.0);
    char buf[1024];
    while (::recv(*fd, buf, sizeof(buf), 0) > 0) {
    }
  }
  ::close(*fd);
  ++report->http_cases_run;

  // The exporter must still serve a clean client promptly.
  auto health = obs::HttpGet(port, "/healthz", 5.0);
  if (!health.ok() || health->status_code != 200) {
    report->failures.push_back(
        "http case " + std::to_string(case_id) +
        ": /healthz failed afterwards (" +
        (health.ok() ? "status " + std::to_string(health->status_code)
                     : health.status().ToString()) +
        ")");
  }
}

}  // namespace

std::string GenerateWireFuzzBody(uint64_t seed, int case_id) {
  static const std::vector<std::string>& corpus =
      *new std::vector<std::string>(BuildCorpus());
  Random rng(seed +
             0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(case_id) + 1));
  std::string body = corpus[rng.Uniform(corpus.size())];
  const int mutations = 1 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < mutations; ++i) MutateBytes(&body, &rng);
  return body;
}

Result<WireFuzzReport> RunWireFuzz(const WireFuzzOptions& options) {
  WireFuzzReport report;
  const std::string repro_prefix =
      "dgf_difftest --wire-fuzz --seed=" + std::to_string(options.seed) +
      " --case=";

  // Codec stage: both decoders on every mutated body.
  const int begin = options.only_case >= 0 ? options.only_case : 0;
  const int end =
      options.only_case >= 0 ? options.only_case + 1 : options.num_cases;
  for (int case_id = begin; case_id < end; ++case_id) {
    const std::string body = GenerateWireFuzzBody(options.seed, case_id);
    const std::string repro = repro_prefix + std::to_string(case_id);
    if (options.verbose) {
      std::fprintf(stderr, "[wire-fuzz] case %d: %zu bytes\n", case_id,
                   body.size());
    }
    ++report.cases_run;
    // A crash/abort here takes down the binary — that *is* the detection;
    // the repro is the case id.
    auto request = server::DecodeRequest(body);
    if (request.ok()) {
      ++report.decode_ok;
      // An accepted decode must survive its own round trip.
      auto again = server::DecodeRequest(server::EncodeRequest(*request));
      if (!again.ok()) {
        report.failures.push_back(
            "accepted request fails re-encode round trip (" +
            again.status().ToString() + ") repro: " + repro);
      }
    } else {
      ++report.decode_error;
      if (request.status().message().empty()) {
        report.failures.push_back(
            "empty request decode error message, repro: " + repro);
      }
    }
    auto response = server::DecodeResponse(body);
    if (response.ok()) {
      ++report.decode_ok;
      auto again = server::DecodeResponse(server::EncodeResponse(*response));
      if (!again.ok()) {
        report.failures.push_back(
            "accepted response fails re-encode round trip (" +
            again.status().ToString() + ") repro: " + repro);
      }
    } else {
      ++report.decode_error;
      if (response.status().message().empty()) {
        report.failures.push_back(
            "empty response decode error message, repro: " + repro);
      }
    }
  }

  // Live stage: the same bodies, framed with sometimes-lying prefixes,
  // against a real server.
  StubService stub;
  server::Server::Options server_options;
  server_options.service = &stub;
  DGF_ASSIGN_OR_RETURN(auto server,
                       server::Server::Start(server_options));
  const int live_begin = options.only_case >= 0 ? options.only_case : 0;
  const int live_end = options.only_case >= 0 ? options.only_case + 1
                                              : options.num_live_cases;
  for (int case_id = live_begin; case_id < live_end; ++case_id) {
    RunLiveCase(server->port(), options.seed, case_id,
                repro_prefix + std::to_string(case_id), &report);
  }
  server->Shutdown();

  // HTTP stage: hostile clients against the observability exporter.
  if (options.only_case < 0 && options.num_http_cases > 0) {
    obs::MetricsRegistry registry;
    registry.GetCounter("fuzz.sentinel")->Increment();
    obs::TraceLog trace_log;
    obs::HttpExporter::Options http_options;
    http_options.registry = &registry;
    http_options.trace_log = &trace_log;
    http_options.recv_timeout_seconds = 1.0;
    DGF_ASSIGN_OR_RETURN(auto exporter,
                         obs::HttpExporter::Start(http_options));
    for (int case_id = 0; case_id < options.num_http_cases; ++case_id) {
      RunHttpCase(exporter->port(), options.seed, case_id, &report);
    }
    exporter->Shutdown();
  }
  return report;
}

}  // namespace dgf::testing
