#include "testing/crash_point.h"

#include <algorithm>
#include <map>

namespace dgf::testing {
namespace {

constexpr const char* kCrashMessagePrefix = "injected crash at ";

enum class Mode { kOff, kRecording, kArmed };

struct State {
  Mode mode = Mode::kOff;
  std::string armed_point;
  int armed_occurrence = 0;
  bool fired = false;
  std::map<std::string, int> hits;
};

State& GetState() {
  static State state;
  return state;
}

}  // namespace

std::atomic<bool> CrashPoints::active_{false};

void CrashPoints::Arm(std::string point, int occurrence) {
  State& s = GetState();
  s.mode = Mode::kArmed;
  s.armed_point = std::move(point);
  s.armed_occurrence = occurrence;
  s.fired = false;
  s.hits.clear();
  active_.store(true, std::memory_order_relaxed);
}

void CrashPoints::Disarm() {
  State& s = GetState();
  s.mode = Mode::kOff;
  s.armed_point.clear();
  s.armed_occurrence = 0;
  s.hits.clear();
  active_.store(false, std::memory_order_relaxed);
}

void CrashPoints::StartRecording() {
  State& s = GetState();
  s.mode = Mode::kRecording;
  s.fired = false;
  s.hits.clear();
  active_.store(true, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, int>> CrashPoints::StopRecording() {
  State& s = GetState();
  std::vector<std::pair<std::string, int>> out(s.hits.begin(), s.hits.end());
  Disarm();
  return out;
}

bool CrashPoints::Fired() { return GetState().fired; }

Status CrashPoints::Check(const char* point) {
  State& s = GetState();
  if (s.mode == Mode::kOff) return Status::OK();
  const int hit = ++s.hits[point];
  if (s.mode == Mode::kArmed && !s.fired && s.armed_point == point &&
      hit == s.armed_occurrence) {
    s.fired = true;
    return Status::IOError(kCrashMessagePrefix + s.armed_point + "#" +
                           std::to_string(hit));
  }
  return Status::OK();
}

bool CrashPoints::IsInjectedCrash(const Status& status) {
  return status.IsIOError() &&
         status.message().rfind(kCrashMessagePrefix, 0) == 0;
}

}  // namespace dgf::testing
