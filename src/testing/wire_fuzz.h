#ifndef DGF_TESTING_WIRE_FUZZ_H_
#define DGF_TESTING_WIRE_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dgf::testing {

/// Seeded mutation fuzzer for the wire protocol, both sides.
///
/// Codec stage: valid encoded request and response bodies from a corpus get
/// 1-4 random byte-level mutations (truncation, splices, byte flips, span
/// duplication, huge length claims) and are fed to DecodeRequest and
/// DecodeResponse. The invariant: each decoder either succeeds — and then
/// re-encoding the decoded message and decoding it again must also succeed —
/// or returns a structured non-empty error. Never a crash.
///
/// Live stage: the same mutated bytes, framed with sometimes-lying length
/// prefixes, are written to a real Server (stub service) on fresh
/// connections, followed by a valid PING on the same connection. The server
/// must answer the ping or drop the connection within a bounded wait — and
/// afterwards a brand-new connection's PING must always succeed (one
/// poisoned peer never wedges or kills the server).
///
/// HTTP stage: the same hostility against the observability exporter —
/// malformed request lines, header floods past the head budget, raw binary
/// noise, and connections closed mid-request. The exporter must answer each
/// with an HTTP error or drop the connection, and a clean GET /healthz on a
/// fresh connection must return 200 after every case.
struct WireFuzzOptions {
  uint64_t seed = 1;
  /// Codec-stage cases.
  int num_cases = 400;
  /// Live-server cases (slower: one connection each).
  int num_live_cases = 48;
  /// HTTP-exporter cases (one connection each).
  int num_http_cases = 48;
  /// >= 0: run only this codec case (seed replay of one input).
  int only_case = -1;
  bool verbose = false;
};

struct WireFuzzReport {
  int cases_run = 0;
  int decode_ok = 0;
  int decode_error = 0;
  int live_cases_run = 0;
  int http_cases_run = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

/// The exact mutated body for (seed, case_id); the repro path for a crash
/// observed in RunWireFuzz.
std::string GenerateWireFuzzBody(uint64_t seed, int case_id);

Result<WireFuzzReport> RunWireFuzz(const WireFuzzOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_WIRE_FUZZ_H_
