#include "testing/fault_schedule.h"

#include <algorithm>

namespace dgf::testing {

fs::ReadFault SeededFaultSchedule::NextFault(const std::string& path,
                                             uint64_t offset, uint64_t length) {
  (void)path;
  (void)offset;
  std::lock_guard<std::mutex> lock(mu_);
  decisions_.fetch_add(1, std::memory_order_relaxed);
  fs::ReadFault fault;
  const double roll = rng_.NextDouble();
  const double transient_threshold =
      in_burst_ ? options_.burst_continue : options_.transient_rate;
  if (roll < transient_threshold) {
    in_burst_ = true;
    transient_faults_.fetch_add(1, std::memory_order_relaxed);
    fault.kind = fs::ReadFault::Kind::kTransientError;
    return fault;
  }
  in_burst_ = false;
  if (roll < transient_threshold + options_.short_read_rate && length > 1) {
    short_reads_.fetch_add(1, std::memory_order_relaxed);
    fault.kind = fs::ReadFault::Kind::kShortRead;
    // Truncate to a random strictly-smaller prefix.
    fault.max_bytes = 1 + rng_.Uniform(std::max<uint64_t>(1, length - 1));
  }
  return fault;
}

}  // namespace dgf::testing
