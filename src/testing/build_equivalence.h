#ifndef DGF_TESTING_BUILD_EQUIVALENCE_H_
#define DGF_TESTING_BUILD_EQUIVALENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dgf::testing {

/// Build-equivalence differential sweep: for each seeded world the meter
/// table (plus one incremental append batch) is built into a DGFIndex
/// serially and with every thread count on the axis, for both slice formats,
/// and the results are required to agree:
///
///   * KV artifacts byte-equal to the serial build — identical GFU key sets,
///     bit-identical headers, identical record counts, slice lists, and
///     per-dimension min/max metadata (data_dir-dependent values compared
///     modulo the per-build directory prefix);
///   * slice files byte-equal to the serial build (same relative names,
///     same bytes) — the "byte-stable builds" contract;
///   * text and RCFile builds agree with each other on key sets, record
///     counts and headers;
///   * the index agrees with the data: randomized cell-box queries answered
///     from Lookup + slice scans return exactly the rows a sequential scan
///     of the generated dataset yields, and dimension bounds match a fold
///     over the published keys.
struct BuildSweepOptions {
  /// First seed; seeds [seed, seed + count) are swept.
  uint64_t seed = 1;
  int count = 20;
  /// Build-thread axis. The first entry is the baseline the others must
  /// byte-match (conventionally 1 = serial).
  std::vector<int> thread_counts = {1, 2, 4, 8};
  /// Cell-box queries checked against the sequential-scan oracle per world.
  int queries_per_world = 4;
  bool verbose = false;
};

struct BuildSweepReport {
  int seeds_run = 0;
  /// Index builds performed (seeds x formats x thread counts).
  int builds = 0;
  /// Individual equality checks that ran (keys, headers, files, queries).
  uint64_t comparisons = 0;
  /// Human-readable descriptions of every disagreement found.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

Result<BuildSweepReport> RunBuildEquivalenceSweep(
    const BuildSweepOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_BUILD_EQUIVALENCE_H_
