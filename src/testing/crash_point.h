#ifndef DGF_TESTING_CRASH_POINT_H_
#define DGF_TESTING_CRASH_POINT_H_

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dgf::testing {

/// Process-wide registry of named crash points.
///
/// Production code marks the boundaries of its multi-step durable updates
/// with `DGF_CRASH_POINT("lsm.flush.after_sstable")`. In normal operation the
/// macro is a single relaxed atomic load. The crash-consistency sweep drives
/// it in two modes:
///
///   * recording: every hit is counted per point, nothing fails. The sweep
///     uses the recorded (point, hit-count) map to enumerate every syscall
///     boundary a real crash could land on.
///   * armed: the k-th hit of one chosen point returns an injected IOError,
///     simulating the process dying at exactly that boundary. The caller
///     then discards all in-memory state and re-opens from disk, which is
///     what a real restart would see (writes before the point are on disk,
///     writes after it never happened).
///
/// Not thread-safe by design: crash sweeps run their workload single
/// threaded so the boundary enumeration is deterministic and replayable
/// from a seed.
class CrashPoints {
 public:
  /// Arms `point`: its `occurrence`-th hit (1-based) fails with IOError.
  static void Arm(std::string point, int occurrence);

  /// Leaves armed/recording mode; hit counters are reset.
  static void Disarm();

  /// Starts counting hits without failing any.
  static void StartRecording();

  /// Stops recording and returns (point, hits) sorted by point name.
  static std::vector<std::pair<std::string, int>> StopRecording();

  /// True once the armed crash has fired (the sweep uses this to tell an
  /// injected crash from an ordinary workload error).
  static bool Fired();

  /// Fast-path guard: false whenever no sweep is active.
  static bool Active() {
    return active_.load(std::memory_order_relaxed);
  }

  /// Called by instrumented code via DGF_CRASH_POINT. Returns the injected
  /// error when this hit is the armed one.
  static Status Check(const char* point);

  /// True if `status` is an error injected by an armed crash point.
  static bool IsInjectedCrash(const Status& status);

 private:
  static std::atomic<bool> active_;
};

}  // namespace dgf::testing

/// Marks one crash boundary inside a function returning Status (or, via
/// DGF_RETURN_IF_ERROR at the call site, Result<T>). Free when no sweep is
/// active.
#define DGF_CRASH_POINT(point)                                          \
  do {                                                                  \
    if (::dgf::testing::CrashPoints::Active()) {                        \
      DGF_RETURN_IF_ERROR(::dgf::testing::CrashPoints::Check(point));   \
    }                                                                   \
  } while (0)

#endif  // DGF_TESTING_CRASH_POINT_H_
