#include "testing/node_crash_sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dgf/dgf_index.h"
#include "fs/mini_dfs.h"
#include "kv/lsm_kv.h"
#include "query/executor.h"
#include "query/parser.h"
#include "table/table.h"
#include "testing/shard_sweep.h"
#include "workload/meter_gen.h"

namespace dgf::testing {
namespace {

constexpr int kTimeSlot = 2;  // MeterSchema: userId, regionId, time, ...

constexpr char kCountSumSql[] =
    "SELECT count(*), sum(powerConsumed) FROM meterdata";

/// Deterministic per-cluster choreography stream (splitmix64): which shard
/// and store die, and at which case index, are all functions of the seed.
uint64_t NextRand(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string NodeCrashRepro(uint64_t seed, int shards) {
  return "dgf_difftest --node-crash-sweep --seed=" + std::to_string(seed) +
         " --seeds=1 --shards=" + std::to_string(shards);
}

double StatValue(const std::vector<std::pair<std::string, double>>& stats,
                 const std::string& name) {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  return -1;
}

/// Queries `sql` through the front server and returns the single
/// (count, sum) row it must produce.
Result<std::pair<int64_t, double>> CountSumProbe(server::ServerClient* client,
                                                 const std::string& sql) {
  DGF_ASSIGN_OR_RETURN(server::Response response, client->Query(sql));
  if (!response.ok()) return server::ResponseStatus(response);
  DGF_ASSIGN_OR_RETURN(query::QueryResult result,
                       ResultFromPayload(response.result));
  if (result.rows.size() != 1 || result.rows[0].size() != 2) {
    return Status::Internal("probe did not return one (count, sum) row: " +
                            sql);
  }
  return std::make_pair(result.rows[0][0].int64(),
                        result.rows[0][1].AsDouble());
}

Status CheckCountSum(const std::pair<int64_t, double>& got,
                     int64_t expected_count, double expected_sum,
                     const std::string& what) {
  if (got.first != expected_count) {
    return Status::Internal(what + ": count=" + std::to_string(got.first) +
                            " expected=" + std::to_string(expected_count));
  }
  const double tolerance = 1e-9 * std::max(1.0, std::fabs(expected_sum));
  if (std::fabs(got.second - expected_sum) > tolerance) {
    return Status::Internal(what + ": sum=" + std::to_string(got.second) +
                            " expected=" + std::to_string(expected_sum));
  }
  return Status::OK();
}

}  // namespace

Result<NodeCrashSweepReport> RunNodeCrashSweep(
    const NodeCrashSweepOptions& options) {
  NodeCrashSweepReport report;
  std::vector<int> shard_counts = {2, 4};
  if (options.only_shards > 0) shard_counts = {options.only_shards};

  for (uint64_t seed = options.seed;
       seed < options.seed + static_cast<uint64_t>(options.count); ++seed) {
    DGF_ASSIGN_OR_RETURN(SeededWorld world,
                         SeededWorld::Build(seed, /*worker_threads=*/2));
    ++report.seeds_run;
    const workload::MeterConfig& config = world.config();
    const table::Schema schema = workload::MeterSchema(config);

    struct Case {
      int case_id;
      query::Query query;
      query::QueryResult oracle;
    };
    std::vector<Case> cases;
    for (int case_id = 0; case_id < options.num_queries; ++case_id) {
      query::Query q = world.GenerateQuery(seed, case_id);
      DGF_ASSIGN_OR_RETURN(query::QueryResult oracle, world.Oracle(q));
      cases.push_back(Case{case_id, std::move(q), std::move(oracle)});
    }

    // Whole-table baseline, for probes that run after marker appends have
    // made the per-case oracles stale.
    DGF_ASSIGN_OR_RETURN(query::Query base_probe,
                         query::ParseQuery(kCountSumSql, schema));
    DGF_ASSIGN_OR_RETURN(query::QueryResult base_oracle,
                         world.Oracle(base_probe));
    const int64_t base_count = base_oracle.rows[0][0].int64();
    const double base_sum = base_oracle.rows[0][1].AsDouble();

    for (int requested : shard_counts) {
      ShardedCluster::Options cluster_options;
      cluster_options.config = config;
      cluster_options.dims = world.dims();
      cluster_options.num_shards = requested;
      cluster_options.replication = 2;
      cluster_options.replica_servers = true;
      cluster_options.use_lsm = true;
      DGF_ASSIGN_OR_RETURN(auto cluster,
                           ShardedCluster::Start(cluster_options));
      ++report.clusters_run;
      DGF_ASSIGN_OR_RETURN(auto client, cluster->Connect());

      auto diverge = [&](const std::string& stage, const std::string& query,
                         const std::string& detail) {
        Divergence divergence;
        divergence.seed = seed;
        divergence.case_id = -1;
        divergence.query = query;
        divergence.path_a = "oracle";
        divergence.path_b = "node-crash(" +
                            std::to_string(cluster->num_shards()) +
                            " shards, " + stage + ")";
        divergence.detail = detail;
        divergence.repro = NodeCrashRepro(seed, requested);
        report.divergences.push_back(std::move(divergence));
      };

      // Every case query through the coordinator must equal the oracle,
      // whatever has been killed so far.
      auto run_case = [&](const Case& c, const std::string& stage) {
        const std::string sql = c.query.ToSql();
        ++report.queries_run;
        auto response = client->Query(sql);
        if (!response.ok()) {
          diverge(stage, sql, "transport: " + response.status().ToString());
          return;
        }
        if (!response->ok()) {
          diverge(stage, sql,
                  "error response: " +
                      server::ResponseStatus(*response).ToString());
          return;
        }
        auto sharded = ResultFromPayload(response->result);
        if (!sharded.ok()) {
          diverge(stage, sql,
                  "result parse: " + sharded.status().ToString());
          return;
        }
        const std::string mismatch = DescribeResultMismatch(c.oracle, *sharded);
        if (!mismatch.empty()) diverge(stage, sql, mismatch);
      };

      uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 0x100 +
                     static_cast<uint64_t>(requested);
      const int num_shards = cluster->num_shards();
      const int victim_shard = static_cast<int>(
          NextRand(rng) % static_cast<uint64_t>(num_shards));
      const int victim_store = static_cast<int>(NextRand(rng) % 2);
      const size_t kill_at =
          cases.size() >= 2 ? 1 + NextRand(rng) % (cases.size() - 1) : 0;
      const auto& victim_dfs = cluster->shard_dfs(victim_shard);

      // --- Stage 1: healthy prefix, then a replica store's process dies
      // (its copies stay on disk) at a seed-derived case index.
      for (size_t i = 0; i < kill_at; ++i) run_case(cases[i], "healthy");
      DGF_RETURN_IF_ERROR(victim_dfs->KillStore(victim_store,
                                                /*wipe_data=*/false));
      ++report.store_kills;
      // Deterministic failover exercise: read a file whose *preferred*
      // replica is the dead store; the read must succeed via the survivor
      // and the failover counter must move.
      const uint64_t failovers_before = victim_dfs->TotalReadFailovers();
      for (const fs::FileStatus& fstat : victim_dfs->ListFiles("/")) {
        if (fstat.length == 0) continue;
        const std::vector<int> order = victim_dfs->ReplicaOrder(fstat.path);
        if (order.empty() || order[0] != victim_store) continue;
        auto reader = victim_dfs->OpenForRead(fstat.path);
        if (!reader.ok()) {
          diverge("store-down", "Pread " + fstat.path,
                  "open: " + reader.status().ToString());
          break;
        }
        std::string buf;
        const Status read = (*reader)->Pread(
            0, std::min<uint64_t>(fstat.length, 1024), &buf);
        if (!read.ok()) {
          diverge("store-down", "Pread " + fstat.path,
                  "read did not fail over: " + read.ToString());
        } else if (victim_dfs->TotalReadFailovers() <= failovers_before) {
          diverge("store-down", "Pread " + fstat.path,
                  "preferred replica was down but no failover was counted");
        }
        break;
      }
      for (size_t i = kill_at; i < cases.size(); ++i) {
        run_case(cases[i], "store-down");
      }
      report.read_failovers +=
          victim_dfs->TotalReadFailovers() - failovers_before;

      // --- Stage 2: the store comes back, then its *disk* is lost. Reads
      // route around the wiped copy via the per-file replica-valid flags;
      // ReReplicate() repairs it from the survivor and VerifyReplicas
      // proves every copy byte-identical.
      DGF_RETURN_IF_ERROR(victim_dfs->ReviveStore(victim_store));
      DGF_RETURN_IF_ERROR(victim_dfs->KillStore(victim_store,
                                                /*wipe_data=*/true));
      ++report.store_kills;
      const size_t mid = cases.size() / 2;
      for (size_t i = 0; i < mid; ++i) run_case(cases[i], "store-wiped");
      DGF_RETURN_IF_ERROR(victim_dfs->ReviveStore(victim_store));
      DGF_ASSIGN_OR_RETURN(const uint64_t repaired,
                           victim_dfs->ReReplicate());
      report.replicas_repaired += repaired;
      if (repaired == 0) {
        diverge("re-replicate", "ReReplicate()",
                "wiped store repaired 0 replicas");
      }
      for (const fs::FileStatus& fstat : victim_dfs->ListFiles("/")) {
        const Status verified = victim_dfs->VerifyReplicas(fstat.path);
        if (!verified.ok()) {
          diverge("re-replicate", "VerifyReplicas " + fstat.path,
                  verified.ToString());
        }
      }
      for (size_t i = mid; i < cases.size(); ++i) {
        run_case(cases[i], "repaired");
      }

      // --- Stage 3: acknowledged cross-shard marker append (riding each
      // shard's replicated WAL), then a shard's primary server dies. Reads
      // must keep answering exactly through the coordinator's one-shot
      // replica retry — and the retry counters must show it happened.
      const MarkerBatch batch =
          MakeMarkerBatch(config, /*rows=*/3 * config.num_days);
      const Status appended =
          CheckMarkerAppend(client.get(), config, batch);
      if (!appended.ok()) {
        diverge("append", "APPEND " + std::to_string(batch.lines.size()) +
                              " marker rows",
                appended.ToString());
      }

      const int downed_shard = static_cast<int>(
          NextRand(rng) % static_cast<uint64_t>(num_shards));
      const double retries_before = StatValue(
          cluster->coordinator()->StatsSnapshot(), "coord.replica_successes");
      cluster->KillShardPrimary(downed_shard);
      ++report.primary_kills;

      const std::string marker_sql =
          std::string(kCountSumSql) +
          " WHERE userId >= " + std::to_string(config.num_users);
      auto marker_probe = CountSumProbe(client.get(), marker_sql);
      if (!marker_probe.ok()) {
        diverge("primary-down", marker_sql, marker_probe.status().ToString());
      } else {
        const Status check =
            CheckCountSum(*marker_probe, batch.expected_count,
                          batch.expected_sum, "marker probe");
        if (!check.ok()) diverge("primary-down", marker_sql, check.ToString());
      }
      auto table_probe = CountSumProbe(client.get(), kCountSumSql);
      if (!table_probe.ok()) {
        diverge("primary-down", kCountSumSql,
                table_probe.status().ToString());
      } else {
        const Status check = CheckCountSum(
            *table_probe, base_count + batch.expected_count,
            base_sum + batch.expected_sum, "whole-table probe");
        if (!check.ok()) diverge("primary-down", kCountSumSql,
                                 check.ToString());
      }
      const double retries_after = StatValue(
          cluster->coordinator()->StatsSnapshot(), "coord.replica_successes");
      if (retries_after <= retries_before) {
        diverge("primary-down", "coord.replica_successes",
                "primary was down but no replica retry succeeded");
      } else {
        report.replica_retries +=
            static_cast<uint64_t>(retries_after - retries_before);
      }

      // --- Stage 4: the whole shard daemon dies, and one replica store's
      // directory is wiped on disk. Reopening the survivor cold (DFS →
      // re-replication → LsmKv WAL/MANIFEST replay → DGF index → executor)
      // must reproduce exactly the acknowledged prefix for that shard.
      cluster->KillShardDaemon(downed_shard);
      ++report.daemon_kills;

      int64_t expected_count = 0;
      double expected_sum = 0;
      const int power_slot = kTimeSlot + 1;  // powerConsumed follows time.
      DGF_RETURN_IF_ERROR(workload::ForEachMeterRow(
          config, [&](const table::Row& row) -> Status {
            if (cluster->shard_map().ShardForValue(
                    row[kTimeSlot].int64()) == downed_shard) {
              ++expected_count;
              expected_sum += row[power_slot].AsDouble();
            }
            return Status::OK();
          }));
      for (size_t j = 0; j < batch.days.size(); ++j) {
        if (cluster->shard_map().ShardForValue(batch.days[j]) ==
            downed_shard) {
          ++expected_count;
          expected_sum += batch.powers[j];
        }
      }

      // With k=2 an *open* file (the LsmKv WAL) is never re-replicated, so
      // on the store-killed shard it has exactly one current copy; losing
      // that disk too would lose acknowledged data by design. Wipe the
      // other store there; elsewhere both copies are current, either goes.
      const int lost_store = downed_shard == victim_shard
                                 ? victim_store
                                 : static_cast<int>(NextRand(rng) % 2);
      std::error_code ec;
      std::filesystem::remove_all(
          std::filesystem::path(cluster->shard_dir(downed_shard)) /
              ("r" + std::to_string(lost_store)),
          ec);

      const Status recovered = [&]() -> Status {
        fs::MiniDfs::Options dfs_options;
        dfs_options.root_dir = cluster->shard_dir(downed_shard);
        dfs_options.block_size = 16384;
        dfs_options.replication = 2;
        dfs_options.checksum_chunk_bytes = 4096;
        DGF_ASSIGN_OR_RETURN(auto dfs, fs::MiniDfs::Open(dfs_options));
        DGF_ASSIGN_OR_RETURN(const uint64_t rebuilt, dfs->ReReplicate());
        if (rebuilt == 0) {
          return Status::Internal(
              "wiped store rebuilt 0 replicas on reopen");
        }
        report.replicas_repaired += rebuilt;
        kv::LsmKv::Options lsm_options;
        lsm_options.dfs = dfs;
        lsm_options.dir = "/s/kv";
        DGF_ASSIGN_OR_RETURN(auto lsm, kv::LsmKv::Open(std::move(lsm_options)));
        std::shared_ptr<kv::KvStore> store(std::move(lsm));
        DGF_ASSIGN_OR_RETURN(auto dgf,
                             core::DgfIndex::Open(dfs, store, schema));
        query::QueryExecutor::Options exec_options;
        exec_options.dfs = dfs;
        exec_options.split_size = 16384;
        exec_options.worker_threads = 2;
        query::QueryExecutor exec(exec_options);
        exec.RegisterTable(cluster->meter_desc());
        exec.RegisterDgfIndex(cluster->meter_desc().name, dgf.get());
        DGF_ASSIGN_OR_RETURN(query::Query probe,
                             query::ParseQuery(kCountSumSql, schema));
        DGF_ASSIGN_OR_RETURN(query::QueryResult result, exec.Execute(probe));
        if (result.rows.size() != 1 || result.rows[0].size() != 2) {
          return Status::Internal("recovery probe did not return one row");
        }
        return CheckCountSum(
            {result.rows[0][0].int64(), result.rows[0][1].AsDouble()},
            expected_count, expected_sum, "recovered shard");
      }();
      ++report.recoveries_checked;
      if (!recovered.ok()) {
        diverge("recovery", kCountSumSql, recovered.ToString());
      }

      if (options.verbose) {
        std::fprintf(stderr,
                     "seed=%llu shards=%d node-crash ok=%d (victim shard %d "
                     "store %d, downed shard %d)\n",
                     static_cast<unsigned long long>(seed), num_shards,
                     report.divergences.empty() ? 1 : 0, victim_shard,
                     victim_store, downed_shard);
      }
    }
  }
  return report;
}

}  // namespace dgf::testing
