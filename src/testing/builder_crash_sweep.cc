#include "testing/builder_crash_sweep.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_index.h"
#include "dgf/dgf_input_format.h"
#include "kv/lsm_kv.h"
#include "server/query_service.h"
#include "table/table.h"
#include "testing/corruption.h"
#include "testing/crash_point.h"
#include "workload/meter_gen.h"

namespace dgf::testing {
namespace {

/// Crash points the sweep must reach, or the instrumentation has rotted.
constexpr const char* kRequiredPoints[] = {
    "dgf.reorg.after_shard",      "dgf.reorg.after_slices",
    "dgf.build.before_publish",   "dgf.append.before_job",
    "dgf.append.before_publish",  "dgf.append.group.before_flush",
};

constexpr const char* kKvDir = "/kv";
constexpr const char* kDataDir = "/dgf/data";

/// Move-only: ownership of the directory travels with the world object.
struct DirRemover {
  std::filesystem::path path;
  DirRemover() = default;
  DirRemover(DirRemover&& other) noexcept : path(std::move(other.path)) {
    other.path.clear();
  }
  DirRemover& operator=(DirRemover&& other) noexcept {
    std::swap(path, other.path);
    return *this;
  }
  DirRemover(const DirRemover&) = delete;
  DirRemover& operator=(const DirRemover&) = delete;
  ~DirRemover() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// One seeded world: base table, two direct append batches, one
/// group-commit batch (as text lines), and a post-recovery batch.
struct CrashWorld {
  DirRemover remover;
  std::shared_ptr<fs::MiniDfs> dfs;
  std::shared_ptr<kv::KvStore> store;
  workload::MeterConfig base_config;
  table::TableDesc base;
  std::vector<table::TableDesc> batches;              // direct appends
  std::vector<workload::MeterConfig> batch_configs;
  std::vector<std::string> service_lines;             // group-commit append
  table::TableDesc recover;
  workload::MeterConfig recover_config;
  std::vector<core::DimensionPolicy> dims;
};

Status CollectLines(const workload::MeterConfig& config,
                    std::vector<std::string>* out) {
  return workload::ForEachMeterRow(config, [&](const table::Row& row) {
    out->push_back(table::FormatRowText(row));
    return Status::OK();
  });
}

Result<std::shared_ptr<kv::KvStore>> OpenStore(
    const std::shared_ptr<fs::MiniDfs>& dfs) {
  kv::LsmKv::Options options;
  options.dfs = dfs;
  options.dir = kKvDir;
  options.memtable_flush_bytes = 4096;
  options.max_runs = 3;
  DGF_ASSIGN_OR_RETURN(auto store, kv::LsmKv::Open(std::move(options)));
  return std::shared_ptr<kv::KvStore>(std::move(store));
}

Result<CrashWorld> MakeWorld(uint64_t seed) {
  CrashWorld world;
  Random rng(seed * 0x9E3779B97F4A7C15ULL + 0xB01D);

  workload::MeterConfig& config = world.base_config;
  config.num_users = 10 + static_cast<int64_t>(rng.Uniform(8));
  config.num_regions = 2;
  config.num_days = 2;
  config.readings_per_day = 1;
  config.extra_metrics = 0;
  config.seed = seed ^ 0x5EEDULL;

  static std::atomic<int> counter{0};
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dgf_buildcrash_" + std::to_string(::getpid()) + "_" +
       std::to_string(seed) + "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  world.remover.path = dir;

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = dir.string();
  dfs_options.block_size = 8192;
  DGF_ASSIGN_OR_RETURN(world.dfs, fs::MiniDfs::Open(dfs_options));
  DGF_ASSIGN_OR_RETURN(world.store, OpenStore(world.dfs));

  DGF_ASSIGN_OR_RETURN(
      world.base, workload::GenerateMeterTable(world.dfs, "/w/meter", config,
                                               table::FileFormat::kText,
                                               /*max_file_bytes=*/2048));
  // Every batch extends the time dimension past everything before it.
  int64_t next_day = config.start_day + config.num_days;
  for (int b = 0; b < 2; ++b) {
    workload::MeterConfig batch_config = config;
    batch_config.start_day = next_day;
    batch_config.num_days = 1;
    batch_config.seed = seed ^ (0x10ULL + static_cast<uint64_t>(b));
    next_day += 1;
    DGF_ASSIGN_OR_RETURN(
        table::TableDesc desc,
        workload::GenerateMeterTable(world.dfs,
                                     "/w/batch" + std::to_string(b),
                                     batch_config, table::FileFormat::kText,
                                     /*max_file_bytes=*/2048));
    world.batches.push_back(std::move(desc));
    world.batch_configs.push_back(batch_config);
  }
  workload::MeterConfig service_config = config;
  service_config.start_day = next_day;
  service_config.num_days = 1;
  service_config.seed = seed ^ 0x5E21ULL;
  next_day += 1;
  DGF_RETURN_IF_ERROR(CollectLines(service_config, &world.service_lines));

  world.recover_config = config;
  world.recover_config.start_day = next_day;
  world.recover_config.num_days = 1;
  world.recover_config.seed = seed ^ 0x4ECULL;
  DGF_ASSIGN_OR_RETURN(
      world.recover,
      workload::GenerateMeterTable(world.dfs, "/w/recover",
                                   world.recover_config,
                                   table::FileFormat::kText,
                                   /*max_file_bytes=*/2048));

  world.dims = {
      {"userId", table::DataType::kInt64, 0, 4},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(config.start_day), 1},
  };
  return world;
}

core::DgfBuilder::Options BuildOptions(const CrashWorld& world) {
  core::DgfBuilder::Options options;
  options.dims = world.dims;
  options.precompute = {"sum(powerConsumed)", "count(*)"};
  options.data_dir = kDataDir;
  options.job.num_reducers = 2;
  options.job.worker_threads = 1;
  options.split_size = 4096;
  options.build_threads = 1;  // crash points are single-threaded by design
  return options;
}

exec::JobRunner::Options AppendJob() {
  exec::JobRunner::Options job;
  job.num_reducers = 2;
  job.worker_threads = 1;
  return job;
}

struct WorkloadOutcome {
  bool built = false;
  int appends_acked = 0;
  bool service_acked = false;
  /// The armed boundary fired (the op that died saw the injected error).
  bool crashed = false;
  /// A non-injected failure (a real bug surfacing as an error return).
  Status error;
};

/// The seeded workload: Build, two direct Appends, one QueryService
/// group-commit append. Stops at the first error; the index handle is
/// dropped on return (the sweep then discards the store too — "the process
/// died").
WorkloadOutcome RunBuildWorkload(CrashWorld& world) {
  WorkloadOutcome out;
  auto classify = [&](const Status& status) {
    if (CrashPoints::IsInjectedCrash(status)) {
      out.crashed = true;
    } else {
      out.error = status;
    }
  };
  auto built =
      core::DgfBuilder::Build(world.dfs, world.store, world.base,
                              BuildOptions(world));
  if (!built.ok()) {
    classify(built.status());
    return out;
  }
  out.built = true;
  std::unique_ptr<core::DgfIndex> index = std::move(*built);
  for (const table::TableDesc& batch : world.batches) {
    auto appended = core::DgfBuilder::Append(index.get(), batch, AppendJob(),
                                             /*split_size=*/4096,
                                             /*build_threads=*/1);
    if (!appended.ok()) {
      classify(appended.status());
      return out;
    }
    ++out.appends_acked;
  }
  {
    server::QueryService::Options service_options;
    service_options.dfs = world.dfs;
    service_options.max_concurrent = 1;
    service_options.query_worker_threads = 1;
    service_options.split_size = 4096;
    server::QueryService service(std::move(service_options));
    service.RegisterTable(world.base);
    service.RegisterDgfIndex(world.base.name, index.get());
    auto appended = service.Append(world.base.name, world.service_lines);
    if (!appended.ok()) {
      classify(appended.status());
      return out;
    }
    out.service_acked = true;
  }
  return out;
}

Result<std::map<std::string, std::string>> DumpStore(kv::KvStore* store) {
  std::map<std::string, std::string> out;
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace(std::string(it->key()), std::string(it->value()));
  }
  return out;
}

/// Every row reachable from the published index, via full slice scans.
Result<std::vector<std::string>> ScanIndexRows(
    const std::shared_ptr<fs::MiniDfs>& dfs, kv::KvStore* store,
    const table::Schema& schema, uint64_t* record_total) {
  *record_total = 0;
  std::vector<std::string> rows;
  DGF_ASSIGN_OR_RETURN(auto dump, DumpStore(store));
  for (const auto& [key, value] : dump) {
    if (key.empty() || key.front() != core::kGfuKeyPrefix) continue;
    DGF_ASSIGN_OR_RETURN(core::GfuValue gfu, core::GfuValue::Decode(value));
    *record_total += gfu.record_count;
    for (const core::SliceLocation& slice : gfu.slices) {
      DGF_ASSIGN_OR_RETURN(auto reader,
                           core::OpenSliceReader(dfs, slice, schema));
      table::Row row;
      for (;;) {
        DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
        if (!more) break;
        rows.push_back(table::FormatRowText(row));
      }
    }
  }
  return rows;
}

Status CompareRows(std::vector<std::string> got,
                   std::vector<std::string> want, const std::string& what) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  if (got == want) return Status::OK();
  if (got.size() != want.size()) {
    return Status::Corruption(what + ": " + std::to_string(got.size()) +
                              " rows recovered, oracle has " +
                              std::to_string(want.size()));
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      return Status::Corruption(what + ": row differs: '" + got[i] +
                                "' vs oracle '" + want[i] + "'");
    }
  }
  return Status::Corruption(what + ": rows differ");
}

/// The acknowledged-prefix oracle: what a re-opened store must contain.
Status VerifyRecovered(CrashWorld& world, const WorkloadOutcome& outcome) {
  // Simulate the process dying: drop every in-memory handle, then recover
  // from disk alone.
  world.store.reset();
  DGF_ASSIGN_OR_RETURN(world.store, OpenStore(world.dfs));

  std::vector<std::string> expected;
  DGF_RETURN_IF_ERROR(CollectLines(world.base_config, &expected));

  if (!outcome.built) {
    // An interrupted build must publish nothing at all.
    DGF_ASSIGN_OR_RETURN(auto dump, DumpStore(world.store.get()));
    if (!dump.empty()) {
      return Status::Corruption("unpublished build left " +
                                std::to_string(dump.size()) +
                                " keys in the store");
    }
    // Recovery liveness: a retry over the crashed state (same store, same
    // data_dir holding the dead attempt's orphan slice files) must succeed.
    DGF_ASSIGN_OR_RETURN(auto index,
                         core::DgfBuilder::Build(world.dfs, world.store,
                                                 world.base,
                                                 BuildOptions(world)));
    uint64_t record_total = 0;
    DGF_ASSIGN_OR_RETURN(auto rows,
                         ScanIndexRows(world.dfs, world.store.get(),
                                       world.base.schema, &record_total));
    DGF_RETURN_IF_ERROR(CompareRows(rows, expected, "rebuilt index"));
    if (record_total != expected.size()) {
      return Status::Corruption("rebuilt record_count mismatch");
    }
    return Status::OK();
  }

  for (int b = 0; b < outcome.appends_acked; ++b) {
    DGF_RETURN_IF_ERROR(
        CollectLines(world.batch_configs[static_cast<size_t>(b)], &expected));
  }
  if (outcome.service_acked) {
    expected.insert(expected.end(), world.service_lines.begin(),
                    world.service_lines.end());
  }

  uint64_t record_total = 0;
  DGF_ASSIGN_OR_RETURN(auto rows,
                       ScanIndexRows(world.dfs, world.store.get(),
                                     world.base.schema, &record_total));
  DGF_RETURN_IF_ERROR(CompareRows(rows, expected, "recovered index"));
  if (record_total != expected.size()) {
    return Status::Corruption("recovered record_count " +
                              std::to_string(record_total) + " != oracle " +
                              std::to_string(expected.size()));
  }
  // The batch counter must reflect exactly the acknowledged publishes:
  // Build publishes "1", every acknowledged append bumps it by one, and the
  // crashed append must not have.
  const int publishes =
      outcome.appends_acked + (outcome.service_acked ? 1 : 0);
  auto batch_key = world.store->Get(core::kMetaBatchKey);
  if (!batch_key.ok() || *batch_key != std::to_string(1 + publishes)) {
    return Status::Corruption(
        "batch counter " + (batch_key.ok() ? *batch_key : "absent") +
        " != expected " + std::to_string(1 + publishes));
  }

  // Recovery liveness: a fresh append over the crashed state (reclaiming any
  // orphan slice files of the dead attempt) must succeed and be exact.
  DGF_ASSIGN_OR_RETURN(auto index,
                       core::DgfIndex::Open(world.dfs, world.store,
                                            world.base.schema));
  DGF_RETURN_IF_ERROR(core::DgfBuilder::Append(index.get(), world.recover,
                                               AppendJob(), /*split_size=*/4096,
                                               /*build_threads=*/1)
                          .status());
  DGF_RETURN_IF_ERROR(CollectLines(world.recover_config, &expected));
  DGF_ASSIGN_OR_RETURN(rows, ScanIndexRows(world.dfs, world.store.get(),
                                           world.base.schema, &record_total));
  DGF_RETURN_IF_ERROR(CompareRows(rows, expected, "post-recovery append"));
  return Status::OK();
}

/// Post-crash truncation: shorten an orphan slice file of the dead build
/// attempt and require that (a) nothing was published and (b) the retry
/// still succeeds — a truncated in-progress build never publishes.
Status RunTruncationSchedule(uint64_t seed) {
  DGF_ASSIGN_OR_RETURN(CrashWorld world, MakeWorld(seed));
  CrashPoints::Arm("dgf.build.before_publish", 1);
  WorkloadOutcome outcome = RunBuildWorkload(world);
  const bool fired = CrashPoints::Fired();
  CrashPoints::Disarm();
  if (!outcome.error.ok()) return outcome.error;
  if (!fired || outcome.built) {
    return Status::Corruption("dgf.build.before_publish did not fire");
  }
  // The dead attempt's slice files are on the DFS; mangle one.
  const auto orphans = world.dfs->ListFiles(std::string(kDataDir) + "/");
  if (orphans.empty()) {
    return Status::Corruption("crashed build left no slice files to truncate");
  }
  const fs::FileStatus& victim = orphans.front();
  DGF_RETURN_IF_ERROR(
      TruncateFile(world.dfs, victim.path, victim.length / 2));
  return VerifyRecovered(world, outcome);
}

}  // namespace

Result<BuilderCrashSweepReport> RunBuilderCrashSweep(
    const BuilderCrashSweepOptions& options) {
  BuilderCrashSweepReport report;

  // Recording pass: enumerate every dgf.* boundary the workload crosses.
  std::vector<std::pair<std::string, int>> recorded;
  {
    DGF_ASSIGN_OR_RETURN(CrashWorld world, MakeWorld(options.seed));
    CrashPoints::StartRecording();
    WorkloadOutcome outcome = RunBuildWorkload(world);
    recorded = CrashPoints::StopRecording();
    if (!outcome.error.ok()) return outcome.error;
    if (outcome.crashed) {
      return Status::Corruption("recording pass saw an injected crash");
    }
  }
  std::vector<std::pair<std::string, int>> points;
  for (auto& [point, hits] : recorded) {
    if (point.rfind("dgf.", 0) == 0) points.emplace_back(point, hits);
  }
  report.points_covered = static_cast<int>(points.size());
  for (const char* required : kRequiredPoints) {
    bool found = false;
    for (const auto& [point, hits] : points) found |= point == required;
    if (!found) {
      report.failures.push_back(
          "seed=" + std::to_string(options.seed) +
          ": workload never reached required crash point " + required);
    }
  }

  for (const auto& [point, hits] : points) {
    const int occurrences =
        std::min(hits, options.max_occurrences_per_point);
    for (int occurrence = 1; occurrence <= occurrences; ++occurrence) {
      DGF_ASSIGN_OR_RETURN(CrashWorld world, MakeWorld(options.seed));
      CrashPoints::Arm(point, occurrence);
      WorkloadOutcome outcome = RunBuildWorkload(world);
      const bool fired = CrashPoints::Fired();
      CrashPoints::Disarm();
      ++report.schedules_run;
      const std::string context = "seed=" + std::to_string(options.seed) +
                                  " point=" + point + " occurrence=" +
                                  std::to_string(occurrence);
      if (!outcome.error.ok()) {
        report.failures.push_back(context + ": workload error: " +
                                  outcome.error.ToString());
        continue;
      }
      if (!fired || !outcome.crashed) {
        report.failures.push_back(context + ": armed point did not fire");
        continue;
      }
      if (options.verbose) {
        std::fprintf(stderr, "[builder-crash] %s built=%d appends=%d\n",
                     context.c_str(), outcome.built ? 1 : 0,
                     outcome.appends_acked);
      }
      Status verified = VerifyRecovered(world, outcome);
      if (!verified.ok()) {
        report.failures.push_back(context + ": " + verified.ToString());
      }
    }
  }

  {
    Status truncation = RunTruncationSchedule(options.seed);
    ++report.schedules_run;
    if (!truncation.ok()) {
      report.failures.push_back("seed=" + std::to_string(options.seed) +
                                " truncation schedule: " +
                                truncation.ToString());
    }
  }
  return report;
}

}  // namespace dgf::testing
