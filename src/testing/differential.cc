#include "testing/differential.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "index/bitmap_index.h"
#include "index/compact_index.h"
#include "kv/mem_kv.h"
#include "query/executor.h"
#include "table/table.h"
#include "testing/fault_schedule.h"
#include "workload/meter_gen.h"
#include "workload/query_gen.h"

namespace dgf::testing {

using query::AccessPath;

/// Held as the first member of World so the backing directory outlives (and
/// is removed after) every handle into it.
struct DirRemover {
  std::filesystem::path path;
  ~DirRemover() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// One seeded world: a randomized meter dataset materialized as an RCFile
/// base table (Bitmap requires RCFile) with every access path built over it.
/// The two DGFIndexes live in separate executors because an executor holds
/// one DGF index per table.
struct World {
  DirRemover remover;
  std::shared_ptr<fs::MiniDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  std::vector<core::DimensionPolicy> dims;
  std::unique_ptr<index::CompactIndex> compact;
  std::unique_ptr<index::BitmapIndex> bitmap;
  std::unique_ptr<index::AggregateIndex> aggregate;
  std::shared_ptr<kv::KvStore> text_store;
  std::shared_ptr<kv::KvStore> rc_store;
  std::unique_ptr<core::DgfIndex> dgf_text;
  std::unique_ptr<core::DgfIndex> dgf_rc;
  std::unique_ptr<query::QueryExecutor> base_exec;
  std::unique_ptr<query::QueryExecutor> dgf_text_exec;
  std::unique_ptr<query::QueryExecutor> dgf_rc_exec;
};

namespace {

core::AggSpec Agg(const char* text) {
  auto spec = core::AggSpec::Parse(text);
  // Generator aggregations are fixed literals; Parse cannot fail on them.
  return *spec;
}

Result<std::unique_ptr<World>> BuildWorld(uint64_t seed, int worker_threads) {
  auto world = std::make_unique<World>();
  Random rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1FF);

  // Randomize the dataset shape: user count, region cardinality, day span,
  // extra columns, and skew all vary per seed so structural edge cases
  // (single-region tables, near-empty days) get coverage across seeds.
  workload::MeterConfig& config = world->config;
  config.num_users = 40 + static_cast<int64_t>(rng.Uniform(160));
  config.num_regions = 3 + static_cast<int64_t>(rng.Uniform(9));
  config.num_days = 3 + static_cast<int>(rng.Uniform(5));
  config.readings_per_day = 1;
  config.extra_metrics = static_cast<int>(rng.Uniform(3));
  config.user_skew = (rng.Uniform(2) == 0) ? 0.0 : 0.8;
  config.seed = seed ^ 0xC0FFEEULL;

  static std::atomic<int> counter{0};
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dgf_difftest_" + std::to_string(::getpid()) + "_" +
       std::to_string(seed) + "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  world->remover.path = dir;

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = dir.string();
  dfs_options.block_size = 16384;
  DGF_ASSIGN_OR_RETURN(world->dfs, fs::MiniDfs::Open(dfs_options));

  // Small data files force multi-file, multi-split tables.
  DGF_ASSIGN_OR_RETURN(
      world->meter,
      workload::GenerateMeterTable(world->dfs, "/w/meter", config,
                                   table::FileFormat::kRcFile,
                                   /*max_file_bytes=*/48 * 1024));

  // Randomized grid: interval sizes are the main driver of inner/boundary
  // GFU classification, the logic the differential run is hunting in.
  world->dims = {
      {"userId", table::DataType::kInt64, 0,
       static_cast<double>(1 + rng.Uniform(50))},
      {"regionId", table::DataType::kInt64, 0,
       static_cast<double>(1 + rng.Uniform(3))},
      {"time", table::DataType::kDate, static_cast<double>(config.start_day),
       static_cast<double>(1 + rng.Uniform(3))},
  };

  index::CompactIndex::BuildOptions compact_build;
  compact_build.dims = {"regionId", "time"};
  compact_build.index_dir = "/w/idx_compact";
  compact_build.split_size = 16384;
  DGF_ASSIGN_OR_RETURN(
      world->compact,
      index::CompactIndex::Build(world->dfs, world->meter, compact_build));

  index::BitmapIndex::BuildOptions bitmap_build;
  bitmap_build.dims = {"regionId", "time"};
  bitmap_build.index_dir = "/w/idx_bitmap";
  bitmap_build.split_size = 16384;
  DGF_ASSIGN_OR_RETURN(
      world->bitmap,
      index::BitmapIndex::Build(world->dfs, world->meter, bitmap_build));

  index::CompactIndex::BuildOptions agg_build;
  agg_build.dims = {"regionId", "time"};
  agg_build.index_dir = "/w/idx_agg";
  agg_build.index_format = table::FileFormat::kText;
  agg_build.split_size = 16384;
  DGF_ASSIGN_OR_RETURN(
      world->aggregate,
      index::AggregateIndex::Build(world->dfs, world->meter, agg_build));

  core::DgfBuilder::Options dgf_build;
  dgf_build.dims = world->dims;
  // sum+count precomputed, min/max not: queries exercise both the
  // precomputed-header path and the fall-back slice path.
  dgf_build.precompute = {"sum(powerConsumed)", "count(*)"};
  dgf_build.split_size = 16384;
  dgf_build.data_dir = "/w/dgf_text";
  dgf_build.data_format = table::FileFormat::kText;
  world->text_store = std::make_shared<kv::MemKv>();
  DGF_ASSIGN_OR_RETURN(world->dgf_text,
                       core::DgfBuilder::Build(world->dfs, world->text_store,
                                               world->meter, dgf_build));
  dgf_build.data_dir = "/w/dgf_rc";
  dgf_build.data_format = table::FileFormat::kRcFile;
  world->rc_store = std::make_shared<kv::MemKv>();
  DGF_ASSIGN_OR_RETURN(world->dgf_rc,
                       core::DgfBuilder::Build(world->dfs, world->rc_store,
                                               world->meter, dgf_build));

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = world->dfs;
  exec_options.split_size = 16384;
  exec_options.worker_threads = worker_threads;

  world->base_exec = std::make_unique<query::QueryExecutor>(exec_options);
  world->base_exec->RegisterTable(world->meter);
  world->base_exec->RegisterCompactIndex(world->meter.name,
                                         world->compact.get());
  world->base_exec->RegisterBitmapIndex(world->meter.name,
                                        world->bitmap.get());
  world->base_exec->RegisterAggregateIndex(world->meter.name,
                                           world->aggregate.get());

  world->dgf_text_exec = std::make_unique<query::QueryExecutor>(exec_options);
  world->dgf_text_exec->RegisterTable(world->meter);
  world->dgf_text_exec->RegisterDgfIndex(world->meter.name,
                                         world->dgf_text.get());

  world->dgf_rc_exec = std::make_unique<query::QueryExecutor>(exec_options);
  world->dgf_rc_exec->RegisterTable(world->meter);
  world->dgf_rc_exec->RegisterDgfIndex(world->meter.name,
                                       world->dgf_rc.get());
  return world;
}

table::Value DimValue(int dim, int64_t v) {
  return dim == 2 ? table::Value::Date(v) : table::Value::Int64(v);
}

/// Generates case `case_id` of `seed`'s workload: a query with 0-3 range
/// conditions on the grid dimensions (point / two-sided / half-open, bounds
/// sometimes snapped exactly onto grid-cell boundaries), optionally a
/// condition on the non-indexed measure, under one of five select shapes.
query::Query GenerateCase(const World& world, uint64_t seed, int case_id) {
  Random rng(seed + 0x9E3779B97F4A7C15ULL *
                        (static_cast<uint64_t>(case_id) + 1));
  query::Query q;
  q.table = world.meter.name;

  if (rng.Uniform(100) < 20) {
    // Paper query templates (Listings 4/5/7 via workload/query_gen): the
    // exact shapes the evaluation runs, at the evaluated selectivities.
    // Join (Listing 6) is excluded — the world has no userInfo table.
    constexpr workload::MeterQueryKind kKinds[] = {
        workload::MeterQueryKind::kAggregation,
        workload::MeterQueryKind::kGroupBy,
        workload::MeterQueryKind::kPartial};
    constexpr workload::Selectivity kSels[] = {
        workload::Selectivity::kPoint, workload::Selectivity::kFivePercent,
        workload::Selectivity::kTwelvePercent};
    return workload::MakeMeterQuery(world.config, kKinds[rng.Uniform(3)],
                                    kSels[rng.Uniform(3)],
                                    /*variant=*/rng.Next());
  }

  for (int d = 0; d < 3; ++d) {
    if (rng.Uniform(100) < 30) continue;  // partial-specified query
    const core::DimensionPolicy& dim = world.dims[static_cast<size_t>(d)];
    int64_t domain_lo = 0;
    int64_t domain_hi = 0;  // one past the real values: empty-edge coverage
    switch (d) {
      case 0:
        domain_hi = world.config.num_users;
        break;
      case 1:
        domain_hi = world.config.num_regions;
        break;
      default:
        domain_lo = world.config.start_day;
        domain_hi = world.config.start_day + world.config.num_days;
        break;
    }
    auto pick = [&]() -> int64_t {
      int64_t v = domain_lo + static_cast<int64_t>(rng.Uniform(
                                  static_cast<uint64_t>(domain_hi - domain_lo) + 1));
      if (rng.Uniform(2) == 0) {
        // Snap onto the grid boundary at or below v; sometimes step one
        // value inside the previous cell. Boundary-aligned predicates are
        // where inner/boundary-GFU classification off-by-ones live.
        const auto interval = static_cast<int64_t>(dim.interval);
        const auto min = static_cast<int64_t>(dim.min);
        v = min + ((v - min) / interval) * interval;
        if (rng.Uniform(4) == 0) v -= 1;
      }
      return v;
    };
    switch (rng.Uniform(4)) {
      case 0:
        q.where.And(query::ColumnRange::Equal(dim.column, DimValue(d, pick())));
        break;
      case 1: {
        int64_t a = pick();
        int64_t b = pick();
        if (a > b) std::swap(a, b);
        q.where.And(query::ColumnRange::Between(
            dim.column, DimValue(d, a), rng.Uniform(2) == 0, DimValue(d, b),
            rng.Uniform(2) == 0));
        break;
      }
      case 2: {
        query::ColumnRange range;
        range.column = dim.column;
        range.lower = query::Bound{DimValue(d, pick()), rng.Uniform(2) == 0};
        q.where.And(std::move(range));
        break;
      }
      default: {
        query::ColumnRange range;
        range.column = dim.column;
        range.upper = query::Bound{DimValue(d, pick()), rng.Uniform(2) == 0};
        q.where.And(std::move(range));
        break;
      }
    }
  }
  if (rng.Uniform(100) < 30) {
    // Condition on the non-indexed measure: the index consultation cannot
    // use it, so every path must re-apply it during the data scan.
    const double lo = rng.UniformDouble(0, 20);
    q.where.And(query::ColumnRange::Between(
        "powerConsumed", table::Value::Double(lo), true,
        table::Value::Double(lo + rng.UniformDouble(0, 20)), false));
  }

  switch (rng.Uniform(5)) {
    case 0:  // fully precomputed aggregation: DGF answers inner GFUs from headers
      q.select.push_back(query::SelectItem::Aggregation(Agg("sum(powerConsumed)")));
      if (rng.Uniform(2) == 0) {
        q.select.push_back(query::SelectItem::Aggregation(Agg("count(*)")));
      }
      break;
    case 1:  // not precomputed: DGF must fall back to scanning slices
      q.select.push_back(query::SelectItem::Aggregation(Agg("min(powerConsumed)")));
      q.select.push_back(query::SelectItem::Aggregation(Agg("max(powerConsumed)")));
      break;
    case 2:  // projection: row-for-row comparison across paths
      q.select.push_back(query::SelectItem::Column("userId"));
      q.select.push_back(query::SelectItem::Column("time"));
      q.select.push_back(query::SelectItem::Column("powerConsumed"));
      break;
    case 3:
      q.select.push_back(query::SelectItem::Column("time"));
      q.select.push_back(query::SelectItem::Aggregation(Agg("sum(powerConsumed)")));
      q.group_by = "time";
      break;
    default: {  // count group-by: eligible for the Aggregate Index rewrite
      const char* col = rng.Uniform(2) == 0 ? "regionId" : "time";
      q.select.push_back(query::SelectItem::Column(col));
      q.select.push_back(query::SelectItem::Aggregation(Agg("count(*)")));
      q.group_by = col;
      break;
    }
  }
  return q;
}

bool AggregateRewriteEligible(const query::Query& q) {
  if (!q.group_by.has_value() || q.select.size() != 2) return false;
  const std::vector<core::AggSpec> aggs = q.Aggregations();
  if (aggs.size() != 1 || aggs[0].func != core::AggFunc::kCount) return false;
  const auto in_dims = [](const std::string& column) {
    return table::ColumnNameEquals(column, "regionId") ||
           table::ColumnNameEquals(column, "time");
  };
  if (!in_dims(*q.group_by)) return false;
  for (const auto& range : q.where.ranges()) {
    if (!in_dims(range.column)) return false;
  }
  return true;
}

/// Cell equality: exact for ints/dates/strings, tight relative tolerance for
/// doubles (partial sums merge in path-dependent order).
bool ValuesClose(const table::Value& a, const table::Value& b) {
  if (a.is_string() != b.is_string()) return false;
  if (a.is_string()) return a.str() == b.str();
  if (a.is_double() || b.is_double()) {
    const double da = a.AsDouble();
    const double db = b.AsDouble();
    // Exact match first: min/max over an empty selection yield +-inf
    // identities, where da - db would be NaN.
    if (da == db) return true;
    const double tol = 1e-9 * std::max({1.0, std::fabs(da), std::fabs(db)});
    return std::fabs(da - db) <= tol;
  }
  return a.Compare(b) == 0;
}

std::vector<table::Row> CanonicalRows(const query::QueryResult& result) {
  std::vector<table::Row> rows = result.rows;
  // Row order is not part of the contract (paths scan splits in different
  // orders); non-aggregated cells are decoded from identical stored bytes,
  // so exact comparison is a sound sort key.
  std::sort(rows.begin(), rows.end(),
            [](const table::Row& x, const table::Row& y) {
              const size_t n = std::min(x.size(), y.size());
              for (size_t i = 0; i < n; ++i) {
                const int c = x[i].Compare(y[i]);
                if (c != 0) return c < 0;
              }
              return x.size() < y.size();
            });
  return rows;
}

/// Empty string when the results agree; else the first difference.
std::string DescribeMismatch(const query::QueryResult& oracle,
                             const query::QueryResult& other) {
  const std::vector<table::Row> a = CanonicalRows(oracle);
  const std::vector<table::Row> b = CanonicalRows(other);
  if (a.size() != b.size()) {
    return "row count " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return "row " + std::to_string(i) + " width " +
             std::to_string(a[i].size()) + " vs " + std::to_string(b[i].size());
    }
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!ValuesClose(a[i][j], b[i][j])) {
        return "row " + std::to_string(i) + " col " + std::to_string(j) +
               ": " + a[i][j].ToText() + " vs " + b[i][j].ToText();
      }
    }
  }
  return std::string();
}

struct PathRun {
  const char* name;
  query::QueryExecutor* exec;
  AccessPath path;
};

std::vector<PathRun> PathsFor(World& world, const query::Query& q) {
  std::vector<PathRun> paths = {
      {"CompactIndex", world.base_exec.get(), AccessPath::kCompactIndex},
      {"BitmapIndex", world.base_exec.get(), AccessPath::kBitmapIndex},
      {"DGFIndex/text", world.dgf_text_exec.get(), AccessPath::kDgfIndex},
      {"DGFIndex/rcfile", world.dgf_rc_exec.get(), AccessPath::kDgfIndex},
  };
  if (AggregateRewriteEligible(q)) {
    paths.push_back({"AggregateRewrite", world.base_exec.get(),
                     AccessPath::kAggregateRewrite});
  }
  return paths;
}

/// Runs oracle + one path on `q`; empty string = agree.
std::string ComparePair(World& world, const query::Query& q,
                        const PathRun& path) {
  auto oracle = world.base_exec->Execute(q, AccessPath::kFullScan);
  if (!oracle.ok()) return std::string();  // not this path's divergence
  auto other = path.exec->Execute(q, path.path);
  if (!other.ok()) return "error: " + other.status().ToString();
  return DescribeMismatch(*oracle, *other);
}

/// Minimizes a diverging query: first tries dropping whole conditions, then
/// halving two-sided ranges, keeping each candidate that still diverges.
query::Query Shrink(World& world, const query::Query& original,
                    const PathRun& path, int budget = 48) {
  query::Query best = original;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    const std::vector<query::ColumnRange> ranges = best.where.ranges();
    for (size_t drop = 0; drop < ranges.size() && budget > 0; ++drop) {
      query::Query candidate = best;
      candidate.where = query::Predicate();
      for (size_t j = 0; j < ranges.size(); ++j) {
        if (j != drop) candidate.where.And(ranges[j]);
      }
      --budget;
      if (!ComparePair(world, candidate, path).empty()) {
        best = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (size_t i = 0; i < ranges.size() && budget > 0; ++i) {
      const query::ColumnRange& range = ranges[i];
      if (!range.lower.has_value() || !range.upper.has_value()) continue;
      if (range.lower->value.is_string()) continue;
      const double lo = range.lower->value.AsDouble();
      const double hi = range.upper->value.AsDouble();
      if (hi - lo < 1.0) continue;
      const auto mid = static_cast<int64_t>(std::floor((lo + hi) / 2));
      const table::Value mid_value =
          range.lower->value.is_date()     ? table::Value::Date(mid)
          : range.lower->value.is_int64()  ? table::Value::Int64(mid)
                                           : table::Value::Double(
                                                 static_cast<double>(mid));
      for (int half = 0; half < 2 && budget > 0; ++half) {
        query::ColumnRange narrowed = range;
        if (half == 0) {
          narrowed.upper = query::Bound{mid_value, true};
        } else {
          narrowed.lower = query::Bound{mid_value, true};
        }
        query::Query candidate = best;
        candidate.where = query::Predicate();
        for (size_t j = 0; j < ranges.size(); ++j) {
          candidate.where.And(j == i ? narrowed : ranges[j]);
        }
        --budget;
        if (!ComparePair(world, candidate, path).empty()) {
          best = std::move(candidate);
          progress = true;
          break;
        }
      }
      if (progress) break;
    }
  }
  return best;
}

std::string ReproLine(uint64_t seed, int case_id) {
  return "dgf_difftest --seed=" + std::to_string(seed) +
         " --case=" + std::to_string(case_id);
}

/// Threaded differential: oracle results are computed sequentially first (the
/// reference is single-threaded by definition), then `options.threads` reader
/// threads share the world's executors — and through them one DGF index and
/// one decoded-GFU cache per format — and re-run every path concurrently.
/// Any divergence from the sequential oracle is either a real query bug or a
/// concurrency bug in the snapshot machinery; shrinking happens after the
/// threads join so it cannot perturb the concurrent phase.
Result<DiffReport> RunDifferentialThreaded(const DiffOptions& options,
                                           World& world) {
  DiffReport report;
  const int n = options.num_queries;
  std::vector<query::Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int case_id = 0; case_id < n; ++case_id) {
    queries.push_back(GenerateCase(world, options.seed, case_id));
  }

  std::vector<std::optional<query::QueryResult>> oracles(
      static_cast<size_t>(n));
  for (int case_id = 0; case_id < n; ++case_id) {
    ++report.queries_run;
    auto oracle =
        world.base_exec->Execute(queries[static_cast<size_t>(case_id)],
                                 AccessPath::kFullScan);
    if (oracle.ok()) {
      oracles[static_cast<size_t>(case_id)] = std::move(*oracle);
      continue;
    }
    Divergence d;
    d.seed = options.seed;
    d.case_id = case_id;
    d.query = queries[static_cast<size_t>(case_id)].ToString();
    d.path_a = "FullScan";
    d.path_b = "FullScan";
    d.detail = "oracle failed: " + oracle.status().ToString();
    d.repro = ReproLine(options.seed, case_id);
    report.divergences.push_back(std::move(d));
  }

  struct PendingDivergence {
    int case_id;
    std::string path_name;
    std::string detail;
  };
  std::mutex mu;
  std::vector<PendingDivergence> pending;
  std::atomic<int> comparisons{0};
  const int num_threads = std::max(1, std::min(options.threads, n));
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    readers.emplace_back([&, tid] {
      for (int i = tid; i < n; i += num_threads) {
        const auto idx = static_cast<size_t>(i);
        if (!oracles[idx].has_value()) continue;
        for (const PathRun& path : PathsFor(world, queries[idx])) {
          comparisons.fetch_add(1, std::memory_order_relaxed);
          auto other = path.exec->Execute(queries[idx], path.path);
          std::string detail =
              other.ok() ? DescribeMismatch(*oracles[idx], *other)
                         : "error: " + other.status().ToString();
          if (detail.empty()) continue;
          std::lock_guard<std::mutex> lock(mu);
          pending.push_back(PendingDivergence{i, path.name, std::move(detail)});
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  report.comparisons = comparisons.load(std::memory_order_relaxed);

  std::sort(pending.begin(), pending.end(),
            [](const PendingDivergence& a, const PendingDivergence& b) {
              if (a.case_id != b.case_id) return a.case_id < b.case_id;
              return a.path_name < b.path_name;
            });
  for (PendingDivergence& p : pending) {
    const query::Query& q = queries[static_cast<size_t>(p.case_id)];
    const PathRun* run = nullptr;
    std::vector<PathRun> paths = PathsFor(world, q);
    for (const PathRun& candidate : paths) {
      if (p.path_name == candidate.name) run = &candidate;
    }
    const query::Query shrunk =
        (options.shrink && run != nullptr) ? Shrink(world, q, *run) : q;
    Divergence d;
    d.seed = options.seed;
    d.case_id = p.case_id;
    d.query = shrunk.ToString();
    d.path_a = "FullScan";
    d.path_b = std::move(p.path_name);
    d.detail = std::move(p.detail);
    // Sequential replay first; if the case only fails concurrently, the
    // full threaded run is the repro.
    d.repro = ReproLine(options.seed, p.case_id) + " (threaded run: --seed=" +
              std::to_string(options.seed) +
              " --threads=" + std::to_string(options.threads) + ")";
    report.divergences.push_back(std::move(d));
  }
  return report;
}

}  // namespace

std::string Divergence::ToString() const {
  return "DIVERGENCE seed=" + std::to_string(seed) +
         " case=" + std::to_string(case_id) + " " + path_a + " vs " + path_b +
         "\n  query:  " + query + "\n  detail: " + detail +
         "\n  repro:  " + repro;
}

Result<DiffReport> RunDifferential(const DiffOptions& options) {
  DiffReport report;
  DGF_ASSIGN_OR_RETURN(std::unique_ptr<World> world,
                       BuildWorld(options.seed, /*worker_threads=*/4));
  if (options.threads > 1 && options.only_case < 0) {
    return RunDifferentialThreaded(options, *world);
  }
  const int begin = options.only_case >= 0 ? options.only_case : 0;
  const int end =
      options.only_case >= 0 ? options.only_case + 1 : options.num_queries;
  for (int case_id = begin; case_id < end; ++case_id) {
    const query::Query q = GenerateCase(*world, options.seed, case_id);
    if (options.verbose) {
      std::fprintf(stderr, "[difftest] seed=%llu case=%d %s\n",
                   static_cast<unsigned long long>(options.seed), case_id,
                   q.ToString().c_str());
    }
    ++report.queries_run;
    auto oracle = world->base_exec->Execute(q, AccessPath::kFullScan);
    if (!oracle.ok()) {
      Divergence d;
      d.seed = options.seed;
      d.case_id = case_id;
      d.query = q.ToString();
      d.path_a = "FullScan";
      d.path_b = "FullScan";
      d.detail = "oracle failed: " + oracle.status().ToString();
      d.repro = ReproLine(options.seed, case_id);
      report.divergences.push_back(std::move(d));
      continue;
    }
    for (const PathRun& path : PathsFor(*world, q)) {
      ++report.comparisons;
      auto other = path.exec->Execute(q, path.path);
      std::string detail =
          other.ok() ? DescribeMismatch(*oracle, *other)
                     : "error: " + other.status().ToString();
      if (detail.empty()) continue;
      const query::Query shrunk =
          options.shrink ? Shrink(*world, q, path) : q;
      Divergence d;
      d.seed = options.seed;
      d.case_id = case_id;
      d.query = shrunk.ToString();
      d.path_a = "FullScan";
      d.path_b = path.name;
      d.detail = std::move(detail);
      d.repro = ReproLine(options.seed, case_id);
      report.divergences.push_back(std::move(d));
    }
  }
  return report;
}

Result<FaultReport> RunFaultSweep(const FaultSweepOptions& options) {
  FaultReport report;
  // Single worker thread: the schedule's decision ordinals then line up with
  // a deterministic read sequence, so a failing seed replays exactly.
  DGF_ASSIGN_OR_RETURN(std::unique_ptr<World> world,
                       BuildWorld(options.seed, /*worker_threads=*/1));
  auto schedule = std::make_shared<SeededFaultSchedule>(
      SeededFaultSchedule::Options{.seed = options.seed});
  for (int case_id = 0; case_id < options.num_queries; ++case_id) {
    const query::Query q =
        GenerateCase(*world, options.seed ^ 0xFA57ULL, case_id);
    world->dfs->SetReadFaultInjector(nullptr);
    auto oracle = world->base_exec->Execute(q, AccessPath::kFullScan);
    if (!oracle.ok()) continue;
    ++report.queries_run;
    std::vector<PathRun> paths = PathsFor(*world, q);
    paths.push_back({"FullScan", world->base_exec.get(), AccessPath::kFullScan});
    world->dfs->SetReadFaultInjector(schedule);
    for (const PathRun& path : paths) {
      ++report.executions;
      auto result = path.exec->Execute(q, path.path);
      if (result.ok()) {
        std::string detail = DescribeMismatch(*oracle, *result);
        if (detail.empty()) continue;
        Divergence d;
        d.seed = options.seed;
        d.case_id = case_id;
        d.query = q.ToString();
        d.path_a = "FullScan(no faults)";
        d.path_b = path.name;
        d.detail = "wrong data under fault injection: " + detail;
        d.repro = "dgf_difftest --fault-sweep --seed=" +
                  std::to_string(options.seed);
        report.divergences.push_back(std::move(d));
      } else if (result.status().ToString().find(
                     "injected transient read error") != std::string::npos) {
        // A burst outlasted the reader's retry budget: the structured
        // failure the contract allows.
        ++report.structured_errors;
      } else {
        Divergence d;
        d.seed = options.seed;
        d.case_id = case_id;
        d.query = q.ToString();
        d.path_a = "FullScan(no faults)";
        d.path_b = path.name;
        d.detail =
            "unstructured error under fault injection: " +
            result.status().ToString();
        d.repro = "dgf_difftest --fault-sweep --seed=" +
                  std::to_string(options.seed);
        report.divergences.push_back(std::move(d));
      }
    }
    world->dfs->SetReadFaultInjector(nullptr);
  }
  report.faults_injected = schedule->transient_faults();
  report.short_reads = schedule->short_reads();
  return report;
}

SeededWorld::SeededWorld(std::unique_ptr<World> world)
    : world_(std::move(world)) {}
SeededWorld::SeededWorld(SeededWorld&&) noexcept = default;
SeededWorld& SeededWorld::operator=(SeededWorld&&) noexcept = default;
SeededWorld::~SeededWorld() = default;

Result<SeededWorld> SeededWorld::Build(uint64_t seed, int worker_threads) {
  DGF_ASSIGN_OR_RETURN(auto world, BuildWorld(seed, worker_threads));
  return SeededWorld(std::move(world));
}

const std::shared_ptr<fs::MiniDfs>& SeededWorld::dfs() const {
  return world_->dfs;
}

const table::TableDesc& SeededWorld::meter() const { return world_->meter; }

const workload::MeterConfig& SeededWorld::config() const {
  return world_->config;
}

const std::vector<core::DimensionPolicy>& SeededWorld::dims() const {
  return world_->dims;
}

core::DgfIndex* SeededWorld::dgf_text() const {
  return world_->dgf_text.get();
}

Result<query::QueryResult> SeededWorld::Oracle(const query::Query& q) const {
  return world_->base_exec->Execute(q, AccessPath::kFullScan);
}

query::Query SeededWorld::GenerateQuery(uint64_t seed, int case_id) const {
  return GenerateCase(*world_, seed, case_id);
}

std::string DescribeResultMismatch(const query::QueryResult& oracle,
                                   const query::QueryResult& other) {
  return DescribeMismatch(oracle, other);
}

}  // namespace dgf::testing
