#ifndef DGF_TESTING_NODE_CRASH_SWEEP_H_
#define DGF_TESTING_NODE_CRASH_SWEEP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "testing/differential.h"

namespace dgf::testing {

/// Kill-a-node survivability sweep: every seeded world is served by
/// replicated 2- and 4-shard clusters (replication=2 MiniDfs per shard,
/// LsmKv so the metadata/epoch log rides DFS replication, and a replica
/// wire endpoint per shard arming the coordinator's one-shot read retry),
/// and nodes die at seed-derived points while the paper-template queries
/// must keep matching the single-node oracle exactly:
///
///  1. a replica *store* dies mid-case-stream (process kill: data intact,
///     reads fail over; then disk wipe: reads route around the lost copy,
///     `ReReplicate()` repairs it and `VerifyReplicas` proves the copies);
///  2. a shard's *primary server* dies after an acknowledged cross-shard
///     marker append — reads keep working through the coordinator's replica
///     retry, and the replica-retry counters must show it;
///  3. that shard's whole *daemon* dies; its on-disk state (minus one
///     replica store, wiped to model disk loss) is reopened cold — DFS,
///     LsmKv, DGF index, executor — and must equal the acknowledged prefix.
struct NodeCrashSweepOptions {
  uint64_t seed = 1;
  /// Worlds swept: seeds [seed, seed + count).
  int count = 1;
  int num_queries = 12;
  /// > 0: run only this shard count (replay); else 2 and 4.
  int only_shards = 0;
  bool verbose = false;
};

struct NodeCrashSweepReport {
  int seeds_run = 0;
  int clusters_run = 0;
  int queries_run = 0;
  int store_kills = 0;
  int primary_kills = 0;
  int daemon_kills = 0;
  int recoveries_checked = 0;
  /// Replicas repaired by ReReplicate across the sweep (wipe scenarios).
  uint64_t replicas_repaired = 0;
  /// Failover reads observed on killed-store shards across the sweep.
  uint64_t read_failovers = 0;
  /// Coordinator replica retries observed across the sweep.
  uint64_t replica_retries = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

Result<NodeCrashSweepReport> RunNodeCrashSweep(
    const NodeCrashSweepOptions& options);

}  // namespace dgf::testing

#endif  // DGF_TESTING_NODE_CRASH_SWEEP_H_
