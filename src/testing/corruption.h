#ifndef DGF_TESTING_CORRUPTION_H_
#define DGF_TESTING_CORRUPTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "fs/mini_dfs.h"

namespace dgf::testing {

/// Targeted on-disk corruption helpers shared by the failure-injection tests
/// and the differential harness. MiniDfs files are write-once, so both
/// helpers re-create the file with the mutated contents (which is also what
/// an external corruptor racing HDFS would effectively produce).

/// Rewrites `path` with byte `at` bit-flipped.
Status FlipByte(const std::shared_ptr<fs::MiniDfs>& dfs,
                const std::string& path, uint64_t at);

/// Rewrites `path` keeping only its first `keep` bytes.
Status TruncateFile(const std::shared_ptr<fs::MiniDfs>& dfs,
                    const std::string& path, uint64_t keep);

/// Flips one bit of byte `at` in exactly `store`'s local copy of `path`,
/// behind the DFS's back — the other replicas stay intact, so a chunk-
/// checksum mismatch on this copy must fail a read over to a sibling.
Status FlipReplicaByte(const std::shared_ptr<fs::MiniDfs>& dfs, int store,
                       const std::string& path, uint64_t at);

}  // namespace dgf::testing

#endif  // DGF_TESTING_CORRUPTION_H_
