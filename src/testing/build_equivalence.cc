#include "testing/build_equivalence.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/random.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_input_format.h"
#include "kv/mem_kv.h"
#include "table/table.h"
#include "workload/meter_gen.h"

namespace dgf::testing {
namespace {

/// Held first so the backing directory outlives every handle into it.
/// Move-only: ownership of the directory travels with the world object.
struct DirRemover {
  std::filesystem::path path;
  DirRemover() = default;
  DirRemover(DirRemover&& other) noexcept : path(std::move(other.path)) {
    other.path.clear();
  }
  DirRemover& operator=(DirRemover&& other) noexcept {
    std::swap(path, other.path);
    return *this;
  }
  DirRemover(const DirRemover&) = delete;
  DirRemover& operator=(const DirRemover&) = delete;
  ~DirRemover() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// One built engine variant: format x build_threads over the same dataset.
struct BuiltIndex {
  std::string data_dir;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> index;
};

Result<std::map<std::string, std::string>> DumpStore(kv::KvStore* store) {
  std::map<std::string, std::string> out;
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace(std::string(it->key()), std::string(it->value()));
  }
  return out;
}

/// Relative form of `path` under `dir` (slice files are compared modulo the
/// per-build data directory).
std::string StripDir(const std::string& path, const std::string& dir) {
  if (path.rfind(dir + "/", 0) == 0) return path.substr(dir.size() + 1);
  return path;
}

bool SameDoubleBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

bool FieldsClose(const std::string& a, const std::string& b) {
  if (a == b) return true;
  char* end_a = nullptr;
  char* end_b = nullptr;
  const double da = std::strtod(a.c_str(), &end_a);
  const double db = std::strtod(b.c_str(), &end_b);
  if (end_a != a.c_str() + a.size() || end_b != b.c_str() + b.size()) {
    return false;
  }
  const double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
  return std::fabs(da - db) <= 1e-9 * scale;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '|') {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Exact match first; numeric fallback with tight tolerance (RCFile round
/// trips values through its own encoding).
bool LinesClose(const std::string& a, const std::string& b) {
  if (a == b) return true;
  const std::vector<std::string> fa = SplitFields(a);
  const std::vector<std::string> fb = SplitFields(b);
  if (fa.size() != fb.size()) return false;
  for (size_t i = 0; i < fa.size(); ++i) {
    if (!FieldsClose(fa[i], fb[i])) return false;
  }
  return true;
}

/// The sweep's world: one generated dataset + append batch, shared by every
/// engine variant built over it.
struct SweepWorld {
  DirRemover remover;
  std::shared_ptr<fs::MiniDfs> dfs;
  workload::MeterConfig base_config;
  workload::MeterConfig append_config;
  table::TableDesc base;
  table::TableDesc append;
  std::vector<core::DimensionPolicy> dims;
  std::vector<std::string> precompute;
  int num_reducers = 2;
};

Result<SweepWorld> MakeWorld(uint64_t seed) {
  SweepWorld world;
  Random rng(seed * 0x9E3779B97F4A7C15ULL + 0xB111D);

  workload::MeterConfig& config = world.base_config;
  config.num_users = 20 + static_cast<int64_t>(rng.Uniform(40));
  config.num_regions = 2 + static_cast<int64_t>(rng.Uniform(5));
  config.num_days = 2 + static_cast<int>(rng.Uniform(3));
  config.readings_per_day = 1;
  config.extra_metrics = static_cast<int>(rng.Uniform(3));
  config.user_skew = (rng.Uniform(2) == 0) ? 0.0 : 0.8;
  config.seed = seed ^ 0xC0FFEEULL;

  // The append batch extends the time dimension past the base days — the
  // paper's incremental-load shape — with the same row schema.
  world.append_config = config;
  world.append_config.start_day = config.start_day + config.num_days;
  world.append_config.num_days = 1 + static_cast<int>(rng.Uniform(2));
  world.append_config.seed = seed ^ 0xABBAULL;

  static std::atomic<int> counter{0};
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dgf_buildsweep_" + std::to_string(::getpid()) + "_" +
       std::to_string(seed) + "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  world.remover.path = dir;

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = dir.string();
  dfs_options.block_size = 8192;
  DGF_ASSIGN_OR_RETURN(world.dfs, fs::MiniDfs::Open(dfs_options));

  // Small data files force multi-file, multi-split inputs — the sharding
  // the parallel pipeline actually distributes.
  DGF_ASSIGN_OR_RETURN(
      world.base,
      workload::GenerateMeterTable(world.dfs, "/w/meter", config,
                                   table::FileFormat::kText,
                                   /*max_file_bytes=*/4096));
  DGF_ASSIGN_OR_RETURN(
      world.append,
      workload::GenerateMeterTable(world.dfs, "/w/append", world.append_config,
                                   table::FileFormat::kText,
                                   /*max_file_bytes=*/4096));

  world.dims = {
      {"userId", table::DataType::kInt64, 0,
       static_cast<double>(1 + rng.Uniform(20))},
      {"regionId", table::DataType::kInt64, 0,
       static_cast<double>(1 + rng.Uniform(3))},
      {"time", table::DataType::kDate, static_cast<double>(config.start_day),
       static_cast<double>(1 + rng.Uniform(2))},
  };
  world.precompute = {"sum(powerConsumed)", "count(*)", "min(powerConsumed)",
                      "max(powerConsumed)"};
  world.num_reducers = 1 + static_cast<int>(rng.Uniform(4));
  return world;
}

Result<BuiltIndex> BuildVariant(const SweepWorld& world,
                                table::FileFormat format, int threads) {
  BuiltIndex built;
  built.data_dir =
      std::string("/dgf/") +
      (format == table::FileFormat::kText ? "text" : "rc") + "/t" +
      std::to_string(threads);
  built.store = std::make_shared<kv::MemKv>();
  core::DgfBuilder::Options options;
  options.dims = world.dims;
  options.precompute = world.precompute;
  options.data_dir = built.data_dir;
  options.data_format = format;
  options.job.num_reducers = world.num_reducers;
  options.job.worker_threads = threads;
  options.split_size = 4096;
  options.build_threads = threads;
  DGF_ASSIGN_OR_RETURN(
      built.index,
      core::DgfBuilder::Build(world.dfs, built.store, world.base, options));
  DGF_RETURN_IF_ERROR(core::DgfBuilder::Append(built.index.get(), world.append,
                                               options.job, options.split_size,
                                               threads)
                          .status());
  return built;
}

/// Byte-level comparison of two builds of the same world (KV artifacts and
/// slice files), modulo the per-build data directory.
void CompareBuilds(const SweepWorld& world, const BuiltIndex& baseline,
                   const BuiltIndex& other, const std::string& context,
                   BuildSweepReport* report) {
  auto fail = [&](const std::string& what) {
    report->failures.push_back(context + ": " + what);
  };
  auto base_dump = DumpStore(baseline.store.get());
  auto other_dump = DumpStore(other.store.get());
  if (!base_dump.ok() || !other_dump.ok()) {
    fail("store dump failed");
    return;
  }
  for (const auto& [key, value] : *base_dump) {
    if (!other_dump->count(key)) {
      fail("missing key " + key);
      return;
    }
  }
  for (const auto& [key, value] : *other_dump) {
    if (!base_dump->count(key)) {
      fail("extra key " + key);
      return;
    }
  }
  for (const auto& [key, base_value] : *base_dump) {
    ++report->comparisons;
    const std::string& other_value = other_dump->at(key);
    if (!key.empty() && key.front() == core::kGfuKeyPrefix) {
      auto a = core::GfuValue::Decode(base_value);
      auto b = core::GfuValue::Decode(other_value);
      if (!a.ok() || !b.ok()) {
        fail("GfuValue decode failed for key " + key);
        return;
      }
      if (a->record_count != b->record_count) {
        fail("record_count differs for key " + key + ": " +
             std::to_string(a->record_count) + " vs " +
             std::to_string(b->record_count));
        return;
      }
      if (a->header.size() != b->header.size()) {
        fail("header arity differs for key " + key);
        return;
      }
      for (size_t i = 0; i < a->header.size(); ++i) {
        if (!SameDoubleBits(a->header[i], b->header[i])) {
          fail("header[" + std::to_string(i) + "] differs for key " + key +
               ": " + std::to_string(a->header[i]) + " vs " +
               std::to_string(b->header[i]) + " (not bit-identical)");
          return;
        }
      }
      if (a->slices.size() != b->slices.size()) {
        fail("slice count differs for key " + key);
        return;
      }
      for (size_t i = 0; i < a->slices.size(); ++i) {
        const core::SliceLocation& sa = a->slices[i];
        const core::SliceLocation& sb = b->slices[i];
        if (StripDir(sa.file, baseline.data_dir) !=
                StripDir(sb.file, other.data_dir) ||
            sa.start != sb.start || sa.end != sb.end) {
          fail("slice " + std::to_string(i) + " differs for key " + key);
          return;
        }
      }
    } else if (key == core::kMetaDataDirKey) {
      // Per-build by construction.
    } else if (base_value != other_value) {
      fail("meta value differs for key " + key);
      return;
    }
  }
  // Slice files: same relative names, same bytes.
  const auto base_files = world.dfs->ListFiles(baseline.data_dir + "/");
  const auto other_files = world.dfs->ListFiles(other.data_dir + "/");
  if (base_files.size() != other_files.size()) {
    fail("file count differs: " + std::to_string(base_files.size()) + " vs " +
         std::to_string(other_files.size()));
    return;
  }
  for (size_t i = 0; i < base_files.size(); ++i) {
    ++report->comparisons;
    const std::string rel_a = StripDir(base_files[i].path, baseline.data_dir);
    const std::string rel_b = StripDir(other_files[i].path, other.data_dir);
    if (rel_a != rel_b) {
      fail("file name differs: " + rel_a + " vs " + rel_b);
      return;
    }
    if (base_files[i].length != other_files[i].length) {
      fail("file length differs for " + rel_a);
      return;
    }
    auto reader_a = world.dfs->OpenForRead(base_files[i].path);
    auto reader_b = world.dfs->OpenForRead(other_files[i].path);
    if (!reader_a.ok() || !reader_b.ok()) {
      fail("open failed for " + rel_a);
      return;
    }
    std::string bytes_a, bytes_b;
    if (!(*reader_a)->Pread(0, base_files[i].length, &bytes_a).ok() ||
        !(*reader_b)->Pread(0, other_files[i].length, &bytes_b).ok()) {
      fail("read failed for " + rel_a);
      return;
    }
    if (bytes_a != bytes_b) {
      fail("file bytes differ for " + rel_a);
      return;
    }
  }
}

/// The expected contents of the index: every generated row (base + append)
/// with its grid cell coordinates.
struct ExpectedData {
  std::vector<std::vector<int64_t>> cells;  // per row
  std::vector<std::string> lines;           // FormatRowText per row
  std::vector<int64_t> min_cell;
  std::vector<int64_t> max_cell;
  std::map<std::string, uint64_t> per_key_records;  // encoded key -> rows
};

Result<ExpectedData> ComputeExpected(const SweepWorld& world) {
  DGF_ASSIGN_OR_RETURN(
      core::SplittingPolicy policy,
      core::SplittingPolicy::Create(world.dims, world.base.schema));
  std::vector<int> dim_fields;
  for (const core::DimensionPolicy& dim : world.dims) {
    DGF_ASSIGN_OR_RETURN(int field, world.base.schema.FieldIndex(dim.column));
    dim_fields.push_back(field);
  }
  ExpectedData expected;
  const int num_dims = static_cast<int>(world.dims.size());
  expected.min_cell.assign(static_cast<size_t>(num_dims),
                           std::numeric_limits<int64_t>::max());
  expected.max_cell.assign(static_cast<size_t>(num_dims),
                           std::numeric_limits<int64_t>::min());
  const auto sink = [&](const table::Row& row) -> Status {
    std::vector<int64_t> cells(static_cast<size_t>(num_dims));
    for (int d = 0; d < num_dims; ++d) {
      cells[static_cast<size_t>(d)] = policy.CellOf(
          d, row[static_cast<size_t>(dim_fields[static_cast<size_t>(d)])]);
      expected.min_cell[static_cast<size_t>(d)] =
          std::min(expected.min_cell[static_cast<size_t>(d)],
                   cells[static_cast<size_t>(d)]);
      expected.max_cell[static_cast<size_t>(d)] =
          std::max(expected.max_cell[static_cast<size_t>(d)],
                   cells[static_cast<size_t>(d)]);
    }
    core::GfuKey key;
    key.cells = cells;
    ++expected.per_key_records[key.Encode()];
    expected.cells.push_back(std::move(cells));
    expected.lines.push_back(table::FormatRowText(row));
    return Status::OK();
  };
  DGF_RETURN_IF_ERROR(workload::ForEachMeterRow(world.base_config, sink));
  DGF_RETURN_IF_ERROR(workload::ForEachMeterRow(world.append_config, sink));
  return expected;
}

/// Checks one baseline build against the data itself: key sets, per-key
/// record counts, dimension bounds, and cell-box query answers (Lookup +
/// slice scan vs a sequential scan of the generated rows).
void CheckAgainstData(const SweepWorld& world, const ExpectedData& expected,
                      const BuiltIndex& built, table::FileFormat format,
                      int queries, uint64_t seed, const std::string& context,
                      BuildSweepReport* report) {
  auto fail = [&](const std::string& what) {
    report->failures.push_back(context + ": " + what);
  };
  auto dump = DumpStore(built.store.get());
  if (!dump.ok()) {
    fail("store dump failed");
    return;
  }
  const int num_dims = static_cast<int>(world.dims.size());

  // Key set and per-key record counts must match the data exactly.
  std::map<std::string, core::GfuValue> gfus;
  for (const auto& [key, value] : *dump) {
    if (key.empty() || key.front() != core::kGfuKeyPrefix) continue;
    auto decoded = core::GfuValue::Decode(value);
    if (!decoded.ok()) {
      fail("GfuValue decode failed");
      return;
    }
    gfus.emplace(key, std::move(*decoded));
  }
  ++report->comparisons;
  if (gfus.size() != expected.per_key_records.size()) {
    fail("GFU count " + std::to_string(gfus.size()) + " != expected " +
         std::to_string(expected.per_key_records.size()));
    return;
  }
  for (const auto& [key, records] : expected.per_key_records) {
    auto it = gfus.find(key);
    if (it == gfus.end()) {
      fail("expected key missing from index");
      return;
    }
    if (it->second.record_count != records) {
      fail("record_count " + std::to_string(it->second.record_count) +
           " != expected " + std::to_string(records));
      return;
    }
  }
  // Dimension bounds metadata must equal a fold over the published keys.
  for (int d = 0; d < num_dims; ++d) {
    ++report->comparisons;
    auto min_it = dump->find(core::kMetaDimMinPrefix + std::to_string(d));
    auto max_it = dump->find(core::kMetaDimMaxPrefix + std::to_string(d));
    if (min_it == dump->end() || max_it == dump->end()) {
      fail("missing dimension bound meta for dim " + std::to_string(d));
      return;
    }
    if (min_it->second !=
            std::to_string(expected.min_cell[static_cast<size_t>(d)]) ||
        max_it->second !=
            std::to_string(expected.max_cell[static_cast<size_t>(d)])) {
      fail("dimension bounds differ for dim " + std::to_string(d));
      return;
    }
  }

  // Cell-box queries: Lookup + slice scans vs the sequential-scan oracle.
  Random rng(seed * 0x51AB5ULL + 0x9E37);
  for (int q = 0; q < queries; ++q) {
    std::vector<int64_t> lo(static_cast<size_t>(num_dims));
    std::vector<int64_t> hi(static_cast<size_t>(num_dims));
    for (int d = 0; d < num_dims; ++d) {
      const int64_t min_c = expected.min_cell[static_cast<size_t>(d)];
      const int64_t max_c = expected.max_cell[static_cast<size_t>(d)];
      lo[static_cast<size_t>(d)] = rng.UniformRange(min_c, max_c);
      hi[static_cast<size_t>(d)] =
          rng.UniformRange(lo[static_cast<size_t>(d)], max_c);
    }
    std::vector<std::string> want;
    for (size_t r = 0; r < expected.cells.size(); ++r) {
      bool inside = true;
      for (int d = 0; d < num_dims && inside; ++d) {
        const int64_t c = expected.cells[r][static_cast<size_t>(d)];
        inside = c >= lo[static_cast<size_t>(d)] &&
                 c <= hi[static_cast<size_t>(d)];
      }
      if (inside) want.push_back(expected.lines[r]);
    }
    std::vector<std::string> got;
    bool scan_failed = false;
    for (const auto& [key, value] : gfus) {
      auto decoded_key = core::GfuKey::Decode(key, num_dims);
      if (!decoded_key.ok()) {
        fail("GfuKey decode failed");
        return;
      }
      bool inside = true;
      for (int d = 0; d < num_dims && inside; ++d) {
        const int64_t c = decoded_key->cells[static_cast<size_t>(d)];
        inside = c >= lo[static_cast<size_t>(d)] &&
                 c <= hi[static_cast<size_t>(d)];
      }
      if (!inside) continue;
      for (const core::SliceLocation& slice : value.slices) {
        auto reader = core::OpenSliceReader(world.dfs, slice,
                                            world.base.schema, format);
        if (!reader.ok()) {
          scan_failed = true;
          break;
        }
        table::Row row;
        for (;;) {
          auto more = (*reader)->Next(&row);
          if (!more.ok()) {
            scan_failed = true;
            break;
          }
          if (!*more) break;
          got.push_back(table::FormatRowText(row));
        }
        if (scan_failed) break;
      }
      if (scan_failed) break;
    }
    if (scan_failed) {
      fail("slice scan failed for query " + std::to_string(q));
      return;
    }
    ++report->comparisons;
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    if (want.size() != got.size()) {
      fail("query " + std::to_string(q) + " row count " +
           std::to_string(got.size()) + " != oracle " +
           std::to_string(want.size()));
      return;
    }
    for (size_t i = 0; i < want.size(); ++i) {
      if (!LinesClose(want[i], got[i])) {
        fail("query " + std::to_string(q) + " row " + std::to_string(i) +
             " differs: oracle '" + want[i] + "' vs index '" + got[i] + "'");
        return;
      }
    }
  }
}

Status RunOneSeed(const BuildSweepOptions& options, uint64_t seed,
                  BuildSweepReport* report) {
  DGF_ASSIGN_OR_RETURN(SweepWorld world, MakeWorld(seed));
  DGF_ASSIGN_OR_RETURN(ExpectedData expected, ComputeExpected(world));

  const table::FileFormat formats[] = {table::FileFormat::kText,
                                       table::FileFormat::kRcFile};
  BuiltIndex baselines[2];
  for (int f = 0; f < 2; ++f) {
    const table::FileFormat format = formats[f];
    const char* format_name = f == 0 ? "text" : "rc";
    for (size_t t = 0; t < options.thread_counts.size(); ++t) {
      const int threads = options.thread_counts[t];
      DGF_ASSIGN_OR_RETURN(BuiltIndex built,
                           BuildVariant(world, format, threads));
      ++report->builds;
      const std::string context = "seed " + std::to_string(seed) + " " +
                                  format_name + " threads=" +
                                  std::to_string(threads);
      if (t == 0) {
        // The baseline must agree with the data itself; the other thread
        // counts must then byte-match the baseline.
        CheckAgainstData(world, expected, built, format,
                         options.queries_per_world, seed, context, report);
        baselines[f] = std::move(built);
      } else {
        CompareBuilds(world, baselines[f], built,
                      context + " vs threads=" +
                          std::to_string(options.thread_counts[0]),
                      report);
      }
    }
  }
  // Cross-format agreement: same keys, counts, and headers (both formats
  // shard the same text input, so even the header bits must match).
  {
    const std::string context = "seed " + std::to_string(seed) + " text vs rc";
    auto text_dump = DumpStore(baselines[0].store.get());
    auto rc_dump = DumpStore(baselines[1].store.get());
    if (!text_dump.ok() || !rc_dump.ok()) {
      report->failures.push_back(context + ": store dump failed");
      return Status::OK();
    }
    for (const auto& [key, value] : *text_dump) {
      if (key.empty() || key.front() != core::kGfuKeyPrefix) continue;
      ++report->comparisons;
      auto it = rc_dump->find(key);
      if (it == rc_dump->end()) {
        report->failures.push_back(context + ": key missing from rc build");
        return Status::OK();
      }
      auto a = core::GfuValue::Decode(value);
      auto b = core::GfuValue::Decode(it->second);
      if (!a.ok() || !b.ok() || a->record_count != b->record_count ||
          a->header.size() != b->header.size()) {
        report->failures.push_back(context + ": GFU shape differs");
        return Status::OK();
      }
      for (size_t i = 0; i < a->header.size(); ++i) {
        if (!SameDoubleBits(a->header[i], b->header[i])) {
          report->failures.push_back(context + ": header differs for " + key);
          return Status::OK();
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<BuildSweepReport> RunBuildEquivalenceSweep(
    const BuildSweepOptions& options) {
  BuildSweepReport report;
  if (options.thread_counts.empty()) {
    return Status::InvalidArgument("thread_counts must not be empty");
  }
  for (int i = 0; i < options.count; ++i) {
    const uint64_t seed = options.seed + static_cast<uint64_t>(i);
    DGF_RETURN_IF_ERROR(RunOneSeed(options, seed, &report));
    ++report.seeds_run;
    if (options.verbose) {
      std::fprintf(stderr,
                   "[build-sweep] seed %llu done (%d builds, %llu checks, %zu "
                   "failures)\n",
                   static_cast<unsigned long long>(seed), report.builds,
                   static_cast<unsigned long long>(report.comparisons),
                   report.failures.size());
    }
    if (report.failures.size() >= 20) break;  // enough signal to debug
  }
  return report;
}

}  // namespace dgf::testing
