#include "testing/parser_fuzz.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>

#include "common/random.h"
#include "query/parser.h"
#include "workload/meter_gen.h"

namespace dgf::testing {
namespace {

constexpr const char* kCorpus[] = {
    "SELECT sum(powerConsumed) FROM meterdata WHERE userId >= 100 AND "
    "userId < 200 AND regionId = 3 AND time >= '2012-12-01' AND time < "
    "'2012-12-11'",
    "SELECT time, sum(powerConsumed) FROM meterdata WHERE regionId = 5 "
    "GROUP BY time",
    "SELECT t2.userName, t1.powerConsumed FROM meterdata t1 JOIN userInfo "
    "t2 ON t1.userId = t2.userId WHERE t1.time = '2012-12-03'",
    "SELECT count(*) FROM meterdata WHERE powerConsumed > 10.5",
    "SELECT userId, time, powerConsumed FROM meterdata WHERE userId = 7",
    "SELECT min(powerConsumed), max(powerConsumed), avg(powerConsumed) FROM "
    "meterdata",
    "SELECT sum(powerConsumed*powerConsumed) FROM meterdata WHERE time <= "
    "'2012-12-28'",
    "SELECT regionId, count(*) FROM meterdata WHERE time = '2012-12-02' "
    "GROUP BY regionId",
};

constexpr const char* kKeywords[] = {
    "SELECT", "FROM",  "WHERE", "AND",   "GROUP", "BY",
    "JOIN",   "ON",    "sum",   "count", "*",     "=",
    "<",      "<=",    ">",     ">=",
};

// Printable troublemakers plus raw high/control bytes.
constexpr char kNoise[] = "'\"()=<>*.,|%$ \t\n\0\x01\x7f\x80\xff";

void Mutate(std::string* sql, Random* rng) {
  if (sql->empty()) {
    sql->push_back(static_cast<char>(rng->Uniform(256)));
    return;
  }
  switch (rng->Uniform(7)) {
    case 0:  // truncate
      sql->resize(rng->Uniform(sql->size() + 1));
      break;
    case 1: {  // delete a span
      const size_t at = rng->Uniform(sql->size());
      const size_t len = 1 + rng->Uniform(8);
      sql->erase(at, len);
      break;
    }
    case 2: {  // duplicate a span
      const size_t at = rng->Uniform(sql->size());
      const size_t len =
          std::min<size_t>(1 + rng->Uniform(12), sql->size() - at);
      sql->insert(at, sql->substr(at, len));
      break;
    }
    case 3: {  // splice noise bytes
      const size_t at = rng->Uniform(sql->size() + 1);
      const size_t count = 1 + rng->Uniform(4);
      std::string noise;
      for (size_t i = 0; i < count; ++i) {
        noise.push_back(kNoise[rng->Uniform(sizeof(kNoise) - 1)]);
      }
      sql->insert(at, noise);
      break;
    }
    case 4: {  // swap two bytes
      const size_t a = rng->Uniform(sql->size());
      const size_t b = rng->Uniform(sql->size());
      std::swap((*sql)[a], (*sql)[b]);
      break;
    }
    case 5: {  // splice a keyword somewhere it doesn't belong
      const size_t at = rng->Uniform(sql->size() + 1);
      sql->insert(at, kKeywords[rng->Uniform(std::size(kKeywords))]);
      break;
    }
    default: {  // replace a literal-ish region with an enormous number
      const size_t at = rng->Uniform(sql->size());
      sql->insert(at, "99999999999999999999999999999999999");
      break;
    }
  }
}

}  // namespace

std::string GenerateFuzzQuery(uint64_t seed, int case_id) {
  Random rng(seed + 0x9E3779B97F4A7C15ULL *
                        (static_cast<uint64_t>(case_id) + 1));
  std::string sql = kCorpus[rng.Uniform(std::size(kCorpus))];
  const int mutations = 1 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < mutations; ++i) Mutate(&sql, &rng);
  return sql;
}

Result<ParserFuzzReport> RunParserFuzz(const ParserFuzzOptions& options) {
  ParserFuzzReport report;
  workload::MeterConfig config;
  config.extra_metrics = 2;
  const table::Schema meter = workload::MeterSchema(config);
  const table::Schema user_info = workload::UserInfoSchema();
  const std::string repro_prefix =
      "dgf_difftest --parser-fuzz --seed=" + std::to_string(options.seed) +
      " --case=";

  const int begin = options.only_case >= 0 ? options.only_case : 0;
  const int end =
      options.only_case >= 0 ? options.only_case + 1 : options.num_cases;
  for (int case_id = begin; case_id < end; ++case_id) {
    const std::string sql = GenerateFuzzQuery(options.seed, case_id);
    if (options.verbose) {
      std::fprintf(stderr, "[parser-fuzz] case %d: %s\n", case_id,
                   sql.c_str());
    }
    ++report.cases_run;
    // A crash/abort here takes down the whole binary — that *is* the
    // detection; the repro is the case id.
    auto parsed = query::ParseQuery(sql, meter, &user_info);
    if (!parsed.ok()) {
      ++report.parse_error;
      if (parsed.status().message().empty()) {
        report.failures.push_back("empty error message for input [" + sql +
                                  "] repro: " + repro_prefix +
                                  std::to_string(case_id));
      }
      continue;
    }
    ++report.parse_ok;
    // An accepted query must be fully usable downstream.
    const std::string round_trip = parsed->ToString();
    if (round_trip.empty()) {
      report.failures.push_back("accepted query prints empty for input [" +
                                sql + "] repro: " + repro_prefix +
                                std::to_string(case_id));
      continue;
    }
    if (!parsed->join.has_value()) {
      // Join-free queries bind their WHERE against the base schema; an
      // accepted predicate that cannot bind would blow up at execution.
      auto bound = parsed->where.Bind(meter);
      if (!bound.ok()) {
        report.failures.push_back(
            "accepted query fails to bind (" + bound.status().ToString() +
            ") for input [" + sql + "] repro: " + repro_prefix +
            std::to_string(case_id));
      }
    }
  }
  return report;
}

}  // namespace dgf::testing
