#include "testing/corruption.h"

#include <fstream>

namespace dgf::testing {
namespace {

Status RewriteFile(const std::shared_ptr<fs::MiniDfs>& dfs,
                   const std::string& path, const std::string& contents) {
  DGF_RETURN_IF_ERROR(dfs->Delete(path));
  DGF_ASSIGN_OR_RETURN(auto writer, dfs->Create(path));
  DGF_RETURN_IF_ERROR(writer->Append(contents));
  return writer->Close();
}

}  // namespace

Status FlipByte(const std::shared_ptr<fs::MiniDfs>& dfs,
                const std::string& path, uint64_t at) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(path));
  std::string contents;
  DGF_RETURN_IF_ERROR(reader->Pread(0, reader->Length(), &contents));
  if (at >= contents.size()) {
    return Status::InvalidArgument("FlipByte offset past end of " + path);
  }
  contents[at] = static_cast<char>(~contents[at]);
  return RewriteFile(dfs, path, contents);
}

Status TruncateFile(const std::shared_ptr<fs::MiniDfs>& dfs,
                    const std::string& path, uint64_t keep) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(path));
  std::string contents;
  DGF_RETURN_IF_ERROR(reader->Pread(0, keep, &contents));
  return RewriteFile(dfs, path, contents);
}

Status FlipReplicaByte(const std::shared_ptr<fs::MiniDfs>& dfs, int store,
                       const std::string& path, uint64_t at) {
  const std::string local = dfs->StoreLocalPath(store, path);
  std::fstream file(local,
                    std::ios::in | std::ios::out | std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError("open replica copy: " + local);
  }
  file.seekg(static_cast<std::streamoff>(at));
  char byte = 0;
  if (!file.read(&byte, 1)) {
    return Status::InvalidArgument("FlipReplicaByte offset past end of " +
                                   local);
  }
  byte ^= 0x01;
  file.seekp(static_cast<std::streamoff>(at));
  file.write(&byte, 1);
  file.flush();
  if (!file.good()) return Status::IOError("rewrite replica copy: " + local);
  return Status::OK();
}

}  // namespace dgf::testing
