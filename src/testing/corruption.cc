#include "testing/corruption.h"

namespace dgf::testing {
namespace {

Status RewriteFile(const std::shared_ptr<fs::MiniDfs>& dfs,
                   const std::string& path, const std::string& contents) {
  DGF_RETURN_IF_ERROR(dfs->Delete(path));
  DGF_ASSIGN_OR_RETURN(auto writer, dfs->Create(path));
  DGF_RETURN_IF_ERROR(writer->Append(contents));
  return writer->Close();
}

}  // namespace

Status FlipByte(const std::shared_ptr<fs::MiniDfs>& dfs,
                const std::string& path, uint64_t at) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(path));
  std::string contents;
  DGF_RETURN_IF_ERROR(reader->Pread(0, reader->Length(), &contents));
  if (at >= contents.size()) {
    return Status::InvalidArgument("FlipByte offset past end of " + path);
  }
  contents[at] = static_cast<char>(~contents[at]);
  return RewriteFile(dfs, path, contents);
}

Status TruncateFile(const std::shared_ptr<fs::MiniDfs>& dfs,
                    const std::string& path, uint64_t keep) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(path));
  std::string contents;
  DGF_RETURN_IF_ERROR(reader->Pread(0, keep, &contents));
  return RewriteFile(dfs, path, contents);
}

}  // namespace dgf::testing
