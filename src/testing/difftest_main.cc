// dgf_difftest: differential oracle harness for the mini warehouse.
//
// Every generated query is executed through brute-force scan, Compact Index,
// Bitmap Index, DGFIndex over TextFile slices, DGFIndex over RCFile slices
// (and the Aggregate Index rewrite when eligible) and the results must be
// identical. On top of the query differential it sweeps LsmKv crash
// consistency (kill-and-reopen at every flush/compaction/manifest boundary)
// and replays seeded read-fault schedules against live queries.
//
// Modes:
//   dgf_difftest --seeds=tier1           fixed smoke suite (the ctest entry)
//   dgf_difftest --seed=N [--queries=Q]  one differential world
//   dgf_difftest --seed=N --case=K       replay one failing case
//   dgf_difftest --threads=K ...         run each world's cases on K reader
//                                        threads against a sequential oracle
//   dgf_difftest --crash-sweep --seed=N  LSM crash-consistency sweep only
//   dgf_difftest --fault-sweep --seed=N  read-fault schedule sweep only
//   dgf_difftest --parser-fuzz --seed=N [--case=K]  parser fuzz only
//   dgf_difftest --build-sweep --seed=N [--count=K]  build-equivalence sweep:
//                                        serial vs 2/4/8-thread builds must
//                                        be byte-identical and match the data
//   dgf_difftest --builder-crash-sweep --seed=N  kill-and-reopen sweep over
//                                        the build/append/group-commit path
//   dgf_difftest --shard-sweep --seed=N [--count=K] [--shards=S] [--case=C]
//                                        sharded-vs-oracle sweep: every query
//                                        through 1/2/4-shard clusters behind
//                                        the coordinator must match the
//                                        single-node oracle
//   dgf_difftest --wire-fuzz --seed=N [--case=K]  mutated-frame fuzz against
//                                        the wire codec and a live server
//   dgf_difftest --node-crash-sweep --seed=N [--seeds=K] [--shards=S]
//                                        kill-a-node sweep: replicated 2/4-
//                                        shard clusters lose a replica store,
//                                        a primary server, and a whole shard
//                                        daemon at seed-derived points; every
//                                        query must still match the oracle
//                                        and recovered state the acked prefix
//   dgf_difftest --duration=SECONDS      open-ended soak over rolling seeds
//
// `--seeds=` accepts the fixed `tier1` suite or a number K, which sweeps
// seeds [--seed, --seed + K) for the selected component.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/build_equivalence.h"
#include "testing/builder_crash_sweep.h"
#include "testing/differential.h"
#include "testing/lsm_crash_sweep.h"
#include "testing/node_crash_sweep.h"
#include "testing/parser_fuzz.h"
#include "testing/shard_sweep.h"
#include "testing/wire_fuzz.h"

namespace {

using dgf::testing::BuilderCrashSweepOptions;
using dgf::testing::BuilderCrashSweepReport;
using dgf::testing::BuildSweepOptions;
using dgf::testing::BuildSweepReport;
using dgf::testing::CrashSweepOptions;
using dgf::testing::CrashSweepReport;
using dgf::testing::DiffOptions;
using dgf::testing::DiffReport;
using dgf::testing::FaultReport;
using dgf::testing::FaultSweepOptions;
using dgf::testing::NodeCrashSweepOptions;
using dgf::testing::NodeCrashSweepReport;
using dgf::testing::ParserFuzzOptions;
using dgf::testing::ParserFuzzReport;
using dgf::testing::ShardSweepOptions;
using dgf::testing::ShardSweepReport;
using dgf::testing::WireFuzzOptions;
using dgf::testing::WireFuzzReport;

struct Flags {
  bool tier1 = false;
  uint64_t seed = 1;
  int queries = 100;
  int only_case = -1;
  int threads = 1;
  double duration = 0;
  bool crash_sweep = false;
  bool fault_sweep = false;
  bool parser_fuzz = false;
  bool build_sweep = false;
  bool builder_crash_sweep = false;
  bool shard_sweep = false;
  bool wire_fuzz = false;
  bool node_crash_sweep = false;
  int shards = 0;
  int count = 20;
  bool no_shrink = false;
  bool verbose = false;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=tier1|N] [--seed=N] [--queries=N] "
               "[--case=K] [--threads=K] [--duration=SECONDS] [--crash-sweep] "
               "[--fault-sweep] [--parser-fuzz] [--build-sweep] "
               "[--builder-crash-sweep] [--shard-sweep] [--wire-fuzz] "
               "[--node-crash-sweep] [--shards=S] [--count=N] [--no-shrink] "
               "[--verbose]\n",
               argv0);
  return 2;
}

// One-line stage summary; failures print in full underneath.
int failures_total = 0;

void Stage(const char* name, bool ok, const std::string& summary) {
  std::printf("[%s] %-14s %s\n", ok ? "PASS" : "FAIL", name, summary.c_str());
  std::fflush(stdout);
  if (!ok) ++failures_total;
}

bool RunDiff(const DiffOptions& options) {
  auto report = dgf::testing::RunDifferential(options);
  if (!report.ok()) {
    Stage("differential", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("differential", report->ok(),
        "seed=" + std::to_string(options.seed) +
            (options.threads > 1
                 ? " threads=" + std::to_string(options.threads)
                 : std::string()) +
            " queries=" + std::to_string(report->queries_run) +
            " comparisons=" + std::to_string(report->comparisons) +
            " divergences=" + std::to_string(report->divergences.size()));
  for (const auto& divergence : report->divergences) {
    std::printf("%s\n", divergence.ToString().c_str());
  }
  return report->ok();
}

bool RunCrash(const CrashSweepOptions& options) {
  auto report = dgf::testing::RunLsmCrashSweep(options);
  if (!report.ok()) {
    Stage("crash-sweep", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("crash-sweep", report->ok(),
        "seed=" + std::to_string(options.seed) + " points=" +
            std::to_string(report->points_covered) + " schedules=" +
            std::to_string(report->schedules_run) + " failures=" +
            std::to_string(report->failures.size()));
  for (const auto& failure : report->failures) {
    std::printf("CRASH-SWEEP FAILURE: %s\n", failure.c_str());
  }
  return report->ok();
}

bool RunFaults(const FaultSweepOptions& options) {
  auto report = dgf::testing::RunFaultSweep(options);
  if (!report.ok()) {
    Stage("fault-sweep", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("fault-sweep", report->ok(),
        "seed=" + std::to_string(options.seed) + " queries=" +
            std::to_string(report->queries_run) + " executions=" +
            std::to_string(report->executions) + " faults=" +
            std::to_string(report->faults_injected) + " short_reads=" +
            std::to_string(report->short_reads) + " structured_errors=" +
            std::to_string(report->structured_errors) + " divergences=" +
            std::to_string(report->divergences.size()));
  for (const auto& divergence : report->divergences) {
    std::printf("%s\n", divergence.ToString().c_str());
  }
  return report->ok();
}

bool RunBuildSweep(const BuildSweepOptions& options) {
  auto report = dgf::testing::RunBuildEquivalenceSweep(options);
  if (!report.ok()) {
    Stage("build-sweep", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("build-sweep", report->ok(),
        "seed=" + std::to_string(options.seed) + " seeds=" +
            std::to_string(report->seeds_run) + " builds=" +
            std::to_string(report->builds) + " comparisons=" +
            std::to_string(report->comparisons) + " failures=" +
            std::to_string(report->failures.size()));
  for (const auto& failure : report->failures) {
    std::printf("BUILD-SWEEP FAILURE: %s\n", failure.c_str());
  }
  return report->ok();
}

bool RunBuilderCrash(const BuilderCrashSweepOptions& options) {
  auto report = dgf::testing::RunBuilderCrashSweep(options);
  if (!report.ok()) {
    Stage("builder-crash", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("builder-crash", report->ok(),
        "seed=" + std::to_string(options.seed) + " points=" +
            std::to_string(report->points_covered) + " schedules=" +
            std::to_string(report->schedules_run) + " failures=" +
            std::to_string(report->failures.size()));
  for (const auto& failure : report->failures) {
    std::printf("BUILDER-CRASH FAILURE: %s\n", failure.c_str());
  }
  return report->ok();
}

bool RunFuzz(const ParserFuzzOptions& options) {
  auto report = dgf::testing::RunParserFuzz(options);
  if (!report.ok()) {
    Stage("parser-fuzz", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("parser-fuzz", report->ok(),
        "seed=" + std::to_string(options.seed) + " cases=" +
            std::to_string(report->cases_run) + " ok=" +
            std::to_string(report->parse_ok) + " rejected=" +
            std::to_string(report->parse_error) + " failures=" +
            std::to_string(report->failures.size()));
  for (const auto& failure : report->failures) {
    std::printf("PARSER-FUZZ FAILURE: %s\n", failure.c_str());
  }
  return report->ok();
}

bool RunShards(const ShardSweepOptions& options) {
  auto report = dgf::testing::RunShardSweep(options);
  if (!report.ok()) {
    Stage("shard-sweep", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("shard-sweep", report->ok(),
        "seed=" + std::to_string(options.seed) + " seeds=" +
            std::to_string(report->seeds_run) + " clusters=" +
            std::to_string(report->clusters_run) + " queries=" +
            std::to_string(report->queries_run) + " appends=" +
            std::to_string(report->appends_checked) + " divergences=" +
            std::to_string(report->divergences.size()));
  for (const auto& divergence : report->divergences) {
    std::printf("%s\n", divergence.ToString().c_str());
  }
  return report->ok();
}

bool RunNodeCrash(const NodeCrashSweepOptions& options) {
  auto report = dgf::testing::RunNodeCrashSweep(options);
  if (!report.ok()) {
    Stage("node-crash", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("node-crash", report->ok(),
        "seed=" + std::to_string(options.seed) + " seeds=" +
            std::to_string(report->seeds_run) + " clusters=" +
            std::to_string(report->clusters_run) + " queries=" +
            std::to_string(report->queries_run) + " kills=" +
            std::to_string(report->store_kills + report->primary_kills +
                           report->daemon_kills) +
            " failovers=" + std::to_string(report->read_failovers) +
            " replica_retries=" + std::to_string(report->replica_retries) +
            " recoveries=" + std::to_string(report->recoveries_checked) +
            " divergences=" + std::to_string(report->divergences.size()));
  for (const auto& divergence : report->divergences) {
    std::printf("%s\n", divergence.ToString().c_str());
  }
  return report->ok();
}

bool RunWire(const WireFuzzOptions& options) {
  auto report = dgf::testing::RunWireFuzz(options);
  if (!report.ok()) {
    Stage("wire-fuzz", false,
          "seed=" + std::to_string(options.seed) +
              " harness error: " + report.status().ToString());
    return false;
  }
  Stage("wire-fuzz", report->ok(),
        "seed=" + std::to_string(options.seed) + " cases=" +
            std::to_string(report->cases_run) + " decoded=" +
            std::to_string(report->decode_ok) + " rejected=" +
            std::to_string(report->decode_error) + " live=" +
            std::to_string(report->live_cases_run) + " http=" +
            std::to_string(report->http_cases_run) + " failures=" +
            std::to_string(report->failures.size()));
  for (const auto& failure : report->failures) {
    std::printf("WIRE-FUZZ FAILURE: %s\n", failure.c_str());
  }
  return report->ok();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seeds", &value)) {
      if (value != nullptr && std::strcmp(value, "tier1") == 0) {
        flags.tier1 = true;
      } else if (value != nullptr && std::atoi(value) > 0) {
        // `--seeds=K` sweeps K consecutive seeds of the selected component.
        flags.count = std::atoi(value);
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "--seed", &value) && value != nullptr) {
      flags.seed = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--queries", &value) && value != nullptr) {
      flags.queries = std::atoi(value);
    } else if (ParseFlag(argv[i], "--case", &value) && value != nullptr) {
      flags.only_case = std::atoi(value);
    } else if (ParseFlag(argv[i], "--threads", &value) && value != nullptr) {
      flags.threads = std::atoi(value);
    } else if (ParseFlag(argv[i], "--duration", &value) && value != nullptr) {
      flags.duration = std::atof(value);
    } else if (ParseFlag(argv[i], "--count", &value) && value != nullptr) {
      flags.count = std::atoi(value);
    } else if (ParseFlag(argv[i], "--crash-sweep", &value)) {
      flags.crash_sweep = true;
    } else if (ParseFlag(argv[i], "--build-sweep", &value)) {
      flags.build_sweep = true;
    } else if (ParseFlag(argv[i], "--builder-crash-sweep", &value)) {
      flags.builder_crash_sweep = true;
    } else if (ParseFlag(argv[i], "--fault-sweep", &value)) {
      flags.fault_sweep = true;
    } else if (ParseFlag(argv[i], "--parser-fuzz", &value)) {
      flags.parser_fuzz = true;
    } else if (ParseFlag(argv[i], "--shard-sweep", &value)) {
      flags.shard_sweep = true;
    } else if (ParseFlag(argv[i], "--wire-fuzz", &value)) {
      flags.wire_fuzz = true;
    } else if (ParseFlag(argv[i], "--node-crash-sweep", &value)) {
      flags.node_crash_sweep = true;
    } else if (ParseFlag(argv[i], "--shards", &value) && value != nullptr) {
      flags.shards = std::atoi(value);
    } else if (ParseFlag(argv[i], "--no-shrink", &value)) {
      flags.no_shrink = true;
    } else if (ParseFlag(argv[i], "--verbose", &value)) {
      flags.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (flags.tier1) {
    // Fixed-seed smoke suite: 5 differential worlds x 100 queries (>= 500
    // randomized queries across all access paths), one full crash sweep,
    // one fault sweep, and a parser fuzz pass.
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      DiffOptions options;
      options.seed = seed;
      options.num_queries = 100;
      options.threads = flags.threads;
      options.verbose = flags.verbose;
      RunDiff(options);
    }
    RunCrash(CrashSweepOptions{.seed = 7, .verbose = flags.verbose});
    RunFaults(FaultSweepOptions{
        .seed = 11, .num_queries = 30, .verbose = flags.verbose});
    RunFuzz(ParserFuzzOptions{
        .seed = 13, .num_cases = 400, .verbose = flags.verbose});
    RunBuildSweep(
        BuildSweepOptions{.seed = 17, .count = 2, .verbose = flags.verbose});
    RunBuilderCrash(
        BuilderCrashSweepOptions{.seed = 19, .verbose = flags.verbose});
    RunShards(ShardSweepOptions{.seed = 23,
                                .count = 2,
                                .num_queries = 25,
                                .verbose = flags.verbose});
    RunWire(WireFuzzOptions{
        .seed = 29, .num_cases = 400, .verbose = flags.verbose});
    RunNodeCrash(NodeCrashSweepOptions{.seed = 31,
                                       .count = 1,
                                       .num_queries = 8,
                                       .only_shards = 2,
                                       .verbose = flags.verbose});
    return failures_total == 0 ? 0 : 1;
  }

  if (flags.duration > 0) {
    // Soak: rolling seeds, every component, until the clock runs out.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(flags.duration));
    uint64_t seed = flags.seed;
    while (std::chrono::steady_clock::now() < deadline) {
      DiffOptions options;
      options.seed = seed;
      options.num_queries = flags.queries;
      options.shrink = !flags.no_shrink;
      options.threads = flags.threads;
      options.verbose = flags.verbose;
      RunDiff(options);
      RunCrash(CrashSweepOptions{.seed = seed, .verbose = flags.verbose});
      RunFaults(FaultSweepOptions{
          .seed = seed, .num_queries = 30, .verbose = flags.verbose});
      RunFuzz(ParserFuzzOptions{
          .seed = seed, .num_cases = 400, .verbose = flags.verbose});
      RunBuildSweep(
          BuildSweepOptions{.seed = seed, .count = 1, .verbose = flags.verbose});
      RunBuilderCrash(
          BuilderCrashSweepOptions{.seed = seed, .verbose = flags.verbose});
      RunShards(ShardSweepOptions{.seed = seed,
                                  .count = 1,
                                  .num_queries = 15,
                                  .verbose = flags.verbose});
      RunWire(WireFuzzOptions{
          .seed = seed, .num_cases = 400, .verbose = flags.verbose});
      RunNodeCrash(NodeCrashSweepOptions{
          .seed = seed, .count = 1, .verbose = flags.verbose});
      ++seed;
    }
    std::printf("soak finished: seeds %llu..%llu, failures=%d\n",
                static_cast<unsigned long long>(flags.seed),
                static_cast<unsigned long long>(seed - 1), failures_total);
    return failures_total == 0 ? 0 : 1;
  }

  const bool any_component = flags.crash_sweep || flags.fault_sweep ||
                             flags.parser_fuzz || flags.build_sweep ||
                             flags.builder_crash_sweep || flags.shard_sweep ||
                             flags.wire_fuzz || flags.node_crash_sweep;
  if (flags.crash_sweep) {
    RunCrash(CrashSweepOptions{.seed = flags.seed, .verbose = flags.verbose});
  }
  if (flags.build_sweep) {
    RunBuildSweep(BuildSweepOptions{.seed = flags.seed,
                                    .count = flags.count,
                                    .verbose = flags.verbose});
  }
  if (flags.builder_crash_sweep) {
    RunBuilderCrash(BuilderCrashSweepOptions{.seed = flags.seed,
                                             .verbose = flags.verbose});
  }
  if (flags.fault_sweep) {
    RunFaults(FaultSweepOptions{
        .seed = flags.seed, .num_queries = flags.queries,
        .verbose = flags.verbose});
  }
  if (flags.parser_fuzz) {
    ParserFuzzOptions options;
    options.seed = flags.seed;
    options.only_case = flags.only_case;
    options.verbose = flags.verbose;
    RunFuzz(options);
  }
  if (flags.shard_sweep) {
    ShardSweepOptions options;
    options.seed = flags.seed;
    options.count = flags.count;
    options.only_case = flags.only_case;
    options.only_shards = flags.shards;
    options.verbose = flags.verbose;
    RunShards(options);
  }
  if (flags.node_crash_sweep) {
    NodeCrashSweepOptions options;
    options.seed = flags.seed;
    options.count = flags.count;
    options.only_shards = flags.shards;
    options.verbose = flags.verbose;
    RunNodeCrash(options);
  }
  if (flags.wire_fuzz) {
    WireFuzzOptions options;
    options.seed = flags.seed;
    options.only_case = flags.only_case;
    options.verbose = flags.verbose;
    RunWire(options);
  }
  if (!any_component) {
    DiffOptions options;
    options.seed = flags.seed;
    options.num_queries = flags.queries;
    options.only_case = flags.only_case;
    options.shrink = !flags.no_shrink;
    options.threads = flags.threads;
    options.verbose = flags.verbose;
    RunDiff(options);
  }
  return failures_total == 0 ? 0 : 1;
}
