#include "testing/shard_sweep.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "dgf/dgf_builder.h"
#include "kv/lsm_kv.h"
#include "kv/mem_kv.h"
#include "table/table.h"

namespace dgf::testing {
namespace {

struct ShardDirRemover {
  std::filesystem::path path;
  ~ShardDirRemover() {
    if (path.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

constexpr int kTimeSlot = 2;  // MeterSchema: userId, regionId, time, ...

}  // namespace

/// One shard: its own DFS, its day band of the dataset, a DGF index over the
/// shared grid policy, and a live server. Member order is destruction order
/// in reverse: the server drains before the index and DFS go away.
struct ShardedCluster::Shard {
  ShardDirRemover remover;
  std::shared_ptr<fs::MiniDfs> dfs;
  table::TableDesc meter;
  table::TableDesc user_info;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> dgf;
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::Server> server;
  /// Second wire server over the same service: the replica endpoint the
  /// coordinator retries reads on when `server` dies.
  std::unique_ptr<server::Server> replica_server;
};

Result<std::unique_ptr<ShardedCluster>> ShardedCluster::Start(
    const Options& options) {
  std::unique_ptr<ShardedCluster> cluster(new ShardedCluster());
  const workload::MeterConfig& config = options.config;
  cluster->shard_map_ = coord::ShardMap::ByTimeRange(
      "time", config.start_day, config.start_day + config.num_days - 1,
      options.num_shards);
  const int num_shards = cluster->shard_map_.num_shards();

  static std::atomic<int> counter{0};
  std::vector<coord::ShardEndpoint> endpoints;
  std::vector<coord::ShardEndpoint> replica_endpoints;
  for (int shard = 0; shard < num_shards; ++shard) {
    auto s = std::make_unique<Shard>();
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("dgf_shard_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++));
    std::filesystem::remove_all(dir);
    s->remover.path = dir;

    fs::MiniDfs::Options dfs_options;
    dfs_options.root_dir = dir.string();
    dfs_options.block_size = 16384;
    dfs_options.replication = options.replication;
    // Small chunks so laptop-scale files still span many checksum chunks.
    dfs_options.checksum_chunk_bytes = 4096;
    DGF_ASSIGN_OR_RETURN(s->dfs, fs::MiniDfs::Open(dfs_options));

    // The shard's slice of the dataset: exactly the rows whose time value
    // the shard map routes here — the same routing cross-shard APPEND uses.
    s->meter = table::TableDesc{"meterdata", workload::MeterSchema(config),
                                table::FileFormat::kText, "/s/meter"};
    table::TableWriter::Options writer_options;
    writer_options.max_file_bytes = 48 * 1024;
    DGF_ASSIGN_OR_RETURN(
        auto writer, table::TableWriter::Create(s->dfs, s->meter,
                                                writer_options));
    DGF_RETURN_IF_ERROR(workload::ForEachMeterRow(
        config, [&](const table::Row& row) -> Status {
          if (cluster->shard_map_.ShardForValue(row[kTimeSlot].int64()) !=
              shard) {
            return Status::OK();
          }
          return writer->Append(row);
        }));
    DGF_RETURN_IF_ERROR(writer->Close());

    core::DgfBuilder::Options dgf_build;
    dgf_build.dims = options.dims;
    dgf_build.precompute = options.precompute;
    dgf_build.split_size = 16384;
    dgf_build.data_dir = "/s/dgf";
    dgf_build.data_format = table::FileFormat::kText;
    if (options.use_lsm) {
      kv::LsmKv::Options lsm_options;
      lsm_options.dfs = s->dfs;
      lsm_options.dir = "/s/kv";
      DGF_ASSIGN_OR_RETURN(auto lsm, kv::LsmKv::Open(std::move(lsm_options)));
      s->store = std::shared_ptr<kv::KvStore>(std::move(lsm));
    } else {
      s->store = std::make_shared<kv::MemKv>();
    }
    DGF_ASSIGN_OR_RETURN(
        s->dgf, core::DgfBuilder::Build(s->dfs, s->store, s->meter, dgf_build));

    server::QueryService::Options service_options;
    service_options.dfs = s->dfs;
    service_options.max_concurrent = options.max_concurrent;
    service_options.max_pending = options.max_pending;
    service_options.split_size = 16384;
    s->service = std::make_unique<server::QueryService>(service_options);
    s->service->RegisterTable(s->meter);
    s->service->RegisterDgfIndex(s->meter.name, s->dgf.get());
    if (options.with_user_info) {
      // The archive is tiny and broadcast by the join anyway: replicate it.
      DGF_ASSIGN_OR_RETURN(
          s->user_info,
          workload::GenerateUserInfoTable(s->dfs, "/s/userinfo", config));
      s->service->RegisterTable(s->user_info);
    }

    server::Server::Options server_options;
    server_options.service = s->service.get();
    server_options.port = 0;
    // With a replica endpoint over the same service, killing the primary
    // must not mark the shared service draining (the replica keeps serving).
    server_options.drain_service_on_shutdown = !options.replica_servers;
    DGF_ASSIGN_OR_RETURN(s->server,
                         server::Server::Start(server_options));
    coord::ShardEndpoint endpoint;
    endpoint.host = "127.0.0.1";
    endpoint.port = s->server->port();
    endpoints.push_back(std::move(endpoint));
    if (options.replica_servers) {
      server::Server::Options replica_options;
      replica_options.service = s->service.get();
      replica_options.port = 0;
      replica_options.drain_service_on_shutdown = false;
      DGF_ASSIGN_OR_RETURN(s->replica_server,
                           server::Server::Start(replica_options));
      coord::ShardEndpoint replica_endpoint;
      replica_endpoint.host = "127.0.0.1";
      replica_endpoint.port = s->replica_server->port();
      replica_endpoints.push_back(std::move(replica_endpoint));
    }
    cluster->shards_.push_back(std::move(s));
  }

  coord::Coordinator::Options coord_options;
  coord_options.shard_map = cluster->shard_map_;
  coord_options.shards = std::move(endpoints);
  coord_options.replicas = std::move(replica_endpoints);
  coord_options.max_concurrent = options.max_concurrent;
  coord_options.max_pending = options.max_pending;
  coord_options.connect_timeout_seconds = options.connect_timeout_seconds;
  coord_options.shard_response_timeout_seconds =
      options.shard_response_timeout_seconds;
  cluster->coordinator_ =
      std::make_unique<coord::Coordinator>(std::move(coord_options));
  cluster->coordinator_->RegisterTable(cluster->shards_.front()->meter);
  if (options.with_user_info) {
    cluster->coordinator_->RegisterTable(cluster->shards_.front()->user_info);
  }

  server::Server::Options front_options;
  front_options.service = cluster->coordinator_.get();
  front_options.port = 0;
  DGF_ASSIGN_OR_RETURN(cluster->front_,
                       server::Server::Start(front_options));
  return cluster;
}

ShardedCluster::~ShardedCluster() {
  // Stop client traffic into the coordinator before the shards go away;
  // remaining members tear down in reverse declaration order.
  if (front_ != nullptr) front_->Shutdown();
}

Result<std::unique_ptr<server::ServerClient>> ShardedCluster::Connect()
    const {
  return server::ServerClient::ConnectTcp("127.0.0.1", front_->port());
}

server::Server* ShardedCluster::shard_server(int i) {
  return shards_[static_cast<size_t>(i)]->server.get();
}

server::Server* ShardedCluster::shard_replica_server(int i) {
  return shards_[static_cast<size_t>(i)]->replica_server.get();
}

server::QueryService* ShardedCluster::shard_service(int i) {
  return shards_[static_cast<size_t>(i)]->service.get();
}

const std::shared_ptr<fs::MiniDfs>& ShardedCluster::shard_dfs(int i) {
  return shards_[static_cast<size_t>(i)]->dfs;
}

std::string ShardedCluster::shard_dir(int i) const {
  return shards_[static_cast<size_t>(i)]->remover.path.string();
}

const table::TableDesc& ShardedCluster::meter_desc() const {
  return shards_.front()->meter;
}

void ShardedCluster::KillShardPrimary(int i) {
  shards_[static_cast<size_t>(i)]->server->Shutdown();
}

void ShardedCluster::KillShardDaemon(int i) {
  Shard& s = *shards_[static_cast<size_t>(i)];
  if (s.server != nullptr) s.server->Shutdown();
  if (s.replica_server != nullptr) s.replica_server->Shutdown();
  s.replica_server.reset();
  s.server.reset();
  s.service.reset();
  s.dgf.reset();
  s.store.reset();
  s.dfs.reset();
  // s.remover stays: the on-disk state survives for recovery checks and is
  // cleaned up with the cluster.
}

Result<query::QueryResult> ResultFromPayload(
    const server::QueryResultPayload& payload) {
  query::QueryResult result;
  result.schema = payload.schema;
  result.rows.reserve(payload.rows.size());
  for (const std::string& line : payload.rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row,
                         table::ParseRowText(line, result.schema));
    result.rows.push_back(std::move(row));
  }
  result.stats = payload.stats;
  return result;
}

namespace {

std::string ShardRepro(uint64_t seed, int shards, int case_id) {
  std::string repro = "dgf_difftest --shard-sweep --seed=" +
                      std::to_string(seed) +
                      " --shards=" + std::to_string(shards);
  if (case_id >= 0) repro += " --case=" + std::to_string(case_id);
  return repro;
}

}  // namespace

MarkerBatch MakeMarkerBatch(const workload::MeterConfig& config, int rows) {
  MarkerBatch batch;
  for (int j = 0; j < rows; ++j) {
    table::Row row;
    row.push_back(table::Value::Int64(config.num_users + j));
    row.push_back(table::Value::Int64(1 + (j % config.num_regions)));
    const int64_t day = config.start_day + (j % config.num_days);
    row.push_back(table::Value::Date(day));
    const double power = 7.25 + 1.5 * j;
    row.push_back(table::Value::Double(power));
    for (int m = 0; m < config.extra_metrics; ++m) {
      row.push_back(table::Value::Double(0.5 * m));
    }
    batch.lines.push_back(table::FormatRowText(row));
    batch.days.push_back(day);
    batch.powers.push_back(power);
    ++batch.expected_count;
    batch.expected_sum += power;
  }
  return batch;
}

Status CheckMarkerAppend(server::ServerClient* client,
                         const workload::MeterConfig& config,
                         const MarkerBatch& batch) {
  DGF_ASSIGN_OR_RETURN(server::Response append,
                       client->Append("meterdata", batch.lines));
  if (!append.ok()) return server::ResponseStatus(append);
  if (append.rows_appended != batch.lines.size()) {
    return Status::Internal(
        "append acknowledged " + std::to_string(append.rows_appended) +
        " rows, sent " + std::to_string(batch.lines.size()));
  }
  const std::string base =
      "SELECT count(*), sum(powerConsumed) FROM meterdata WHERE userId >= " +
      std::to_string(config.num_users);
  const std::string banded =
      base + " AND time >= '" + table::FormatDate(config.start_day) +
      "' AND time <= '" +
      table::FormatDate(config.start_day + config.num_days - 1) + "'";
  for (const std::string& sql : {base, banded}) {
    DGF_ASSIGN_OR_RETURN(server::Response response, client->Query(sql));
    if (!response.ok()) return server::ResponseStatus(response);
    DGF_ASSIGN_OR_RETURN(query::QueryResult result,
                         ResultFromPayload(response.result));
    if (result.rows.size() != 1 || result.rows[0].size() != 2) {
      return Status::Internal("marker probe did not return one row: " + sql);
    }
    const int64_t count = result.rows[0][0].int64();
    const double sum = result.rows[0][1].AsDouble();
    if (count != batch.expected_count) {
      return Status::Internal(
          "marker probe count=" + std::to_string(count) + " expected=" +
          std::to_string(batch.expected_count) + " for: " + sql);
    }
    const double tolerance =
        1e-9 * std::max(1.0, std::fabs(batch.expected_sum));
    if (std::fabs(sum - batch.expected_sum) > tolerance) {
      return Status::Internal("marker probe sum=" + std::to_string(sum) +
                              " expected=" +
                              std::to_string(batch.expected_sum) +
                              " for: " + sql);
    }
  }
  return Status::OK();
}

Result<ShardSweepReport> RunShardSweep(const ShardSweepOptions& options) {
  ShardSweepReport report;
  std::vector<int> shard_counts = {1, 2, 4};
  if (options.only_shards > 0) shard_counts = {options.only_shards};

  for (uint64_t seed = options.seed;
       seed < options.seed + static_cast<uint64_t>(options.count); ++seed) {
    DGF_ASSIGN_OR_RETURN(SeededWorld world,
                         SeededWorld::Build(seed, /*worker_threads=*/2));
    ++report.seeds_run;

    // The oracle answers every case once; each cluster size replays the
    // same cases through the coordinator.
    struct Case {
      int case_id;
      query::Query query;
      query::QueryResult oracle;
    };
    std::vector<Case> cases;
    for (int case_id = 0; case_id < options.num_queries; ++case_id) {
      if (options.only_case >= 0 && case_id != options.only_case) continue;
      query::Query q = world.GenerateQuery(seed, case_id);
      DGF_ASSIGN_OR_RETURN(query::QueryResult oracle, world.Oracle(q));
      cases.push_back(Case{case_id, std::move(q), std::move(oracle)});
    }

    for (int requested : shard_counts) {
      ShardedCluster::Options cluster_options;
      cluster_options.config = world.config();
      cluster_options.dims = world.dims();
      cluster_options.num_shards = requested;
      DGF_ASSIGN_OR_RETURN(auto cluster,
                           ShardedCluster::Start(cluster_options));
      ++report.clusters_run;
      DGF_ASSIGN_OR_RETURN(auto client, cluster->Connect());

      auto diverge = [&](int case_id, const std::string& query,
                         const std::string& detail) {
        Divergence divergence;
        divergence.seed = seed;
        divergence.case_id = case_id;
        divergence.query = query;
        divergence.path_a = "oracle";
        divergence.path_b =
            "coordinator(" + std::to_string(cluster->num_shards()) +
            " shards)";
        divergence.detail = detail;
        divergence.repro = ShardRepro(seed, requested, case_id);
        report.divergences.push_back(std::move(divergence));
      };

      for (const Case& c : cases) {
        const std::string sql = c.query.ToSql();
        auto response = client->Query(sql);
        ++report.queries_run;
        if (!response.ok()) {
          diverge(c.case_id, sql,
                  "transport: " + response.status().ToString());
          continue;
        }
        if (!response->ok()) {
          diverge(c.case_id, sql,
                  "error response: " +
                      server::ResponseStatus(*response).ToString());
          continue;
        }
        auto sharded = ResultFromPayload(response->result);
        if (!sharded.ok()) {
          diverge(c.case_id, sql,
                  "result parse: " + sharded.status().ToString());
          continue;
        }
        const std::string mismatch =
            DescribeResultMismatch(c.oracle, *sharded);
        if (!mismatch.empty()) {
          diverge(c.case_id, sql, mismatch);
          continue;
        }
        // Stats invariants: every shard answers via its DGF index, and a
        // projection's merged match count is exactly the oracle's row count
        // (shard row sets are disjoint).
        if (sharded->stats.path != query::AccessPath::kDgfIndex) {
          diverge(c.case_id, sql,
                  std::string("merged access path was ") +
                      query::AccessPathName(sharded->stats.path));
          continue;
        }
        const bool projection =
            !c.query.group_by.has_value() &&
            c.query.Aggregations().empty();
        if (projection &&
            sharded->stats.records_matched != c.oracle.rows.size()) {
          diverge(c.case_id, sql,
                  "merged records_matched=" +
                      std::to_string(sharded->stats.records_matched) +
                      " oracle rows=" +
                      std::to_string(c.oracle.rows.size()));
          continue;
        }
        if (options.verbose) {
          std::fprintf(stderr, "seed=%llu shards=%d case=%d ok\n",
                       static_cast<unsigned long long>(seed),
                       cluster->num_shards(), c.case_id);
        }
      }

      if (options.only_case < 0) {
        // Cross-shard append: a marker batch spanning every day band, then
        // exact-routing probes.
        const MarkerBatch batch =
            MakeMarkerBatch(world.config(), /*rows=*/3 * world.config().num_days);
        const Status appended =
            CheckMarkerAppend(client.get(), world.config(), batch);
        ++report.appends_checked;
        if (!appended.ok()) {
          diverge(-1, "APPEND " + std::to_string(batch.lines.size()) +
                          " marker rows",
                  appended.ToString());
        }
      }
    }
  }
  return report;
}

}  // namespace dgf::testing
