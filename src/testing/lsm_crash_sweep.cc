#include "testing/lsm_crash_sweep.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/random.h"
#include "fs/mini_dfs.h"
#include "kv/lsm_kv.h"
#include "testing/crash_point.h"

namespace dgf::testing {
namespace {

/// Crash points the sweep must reach, or the instrumentation has rotted.
constexpr const char* kRequiredPoints[] = {
    "lsm.flush.before_sstable",      "lsm.flush.after_sstable",
    "lsm.flush.before_manifest",     "lsm.flush.before_wal_truncate",
    "lsm.flush.after_wal_delete",    "lsm.compact.before_merge",
    "lsm.compact.after_merge",       "lsm.compact.before_delete_stale",
    "lsm.manifest.before_tmp",       "lsm.manifest.after_tmp",
    "lsm.manifest.before_rename",
};

struct Op {
  enum Kind { kPut, kDelete, kFlush, kCompact };
  Kind kind = kPut;
  std::string key;
  std::string value;
};

/// Seeded single-threaded workload over a ~40-key space, with periodic
/// explicit flushes and compactions on top of the size-triggered ones.
std::vector<Op> MakeWorkload(uint64_t seed, int num_ops) {
  Random rng(seed * 0x9E3779B97F4A7C15ULL + 0xC4A5);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(num_ops) + 2);
  for (int i = 0; i < num_ops; ++i) {
    Op op;
    if (i > 0 && i % 60 == 0) {
      op.kind = Op::kCompact;
    } else if (i > 0 && i % 25 == 0) {
      op.kind = Op::kFlush;
    } else {
      op.key = "k" + std::to_string(rng.Uniform(40));
      if (rng.Uniform(100) < 20) {
        op.kind = Op::kDelete;
      } else {
        op.kind = Op::kPut;
        op.value = "v" + std::to_string(i) + "-";
        op.value.append(8 + rng.Uniform(40), 'x');
      }
    }
    ops.push_back(std::move(op));
  }
  // Finish with a flush and a compaction so their boundaries are recorded as
  // part of the replayed op sequence (not as out-of-band teardown).
  ops.push_back(Op{Op::kFlush, {}, {}});
  ops.push_back(Op{Op::kCompact, {}, {}});
  return ops;
}

/// nullopt = reads NotFound (deleted or never written).
using OracleState = std::optional<std::string>;

struct WorkloadOutcome {
  std::map<std::string, OracleState> committed;
  /// The op that crashed mid-apply, if it was a mutation: the store may
  /// legally hold either its old or its new state.
  bool has_in_doubt = false;
  std::string in_doubt_key;
  OracleState in_doubt_old;
  OracleState in_doubt_new;
  bool crashed = false;
  /// A non-injected failure (a real bug surfacing as an error return).
  Status error;
};

WorkloadOutcome RunWorkload(kv::LsmKv* kv, const std::vector<Op>& ops) {
  WorkloadOutcome out;
  for (const Op& op : ops) {
    Status st;
    switch (op.kind) {
      case Op::kPut:
        st = kv->Put(op.key, op.value);
        break;
      case Op::kDelete:
        st = kv->Delete(op.key);
        break;
      case Op::kFlush:
        st = kv->Flush();
        break;
      case Op::kCompact:
        st = kv->Compact();
        break;
    }
    if (st.ok()) {
      if (op.kind == Op::kPut) out.committed[op.key] = op.value;
      if (op.kind == Op::kDelete) out.committed[op.key] = std::nullopt;
      continue;
    }
    if (CrashPoints::IsInjectedCrash(st)) {
      out.crashed = true;
      if (op.kind == Op::kPut || op.kind == Op::kDelete) {
        out.has_in_doubt = true;
        out.in_doubt_key = op.key;
        auto it = out.committed.find(op.key);
        out.in_doubt_old =
            it == out.committed.end() ? std::nullopt : it->second;
        out.in_doubt_new =
            op.kind == Op::kPut ? OracleState(op.value) : std::nullopt;
      }
      return out;
    }
    out.error = st;
    return out;
  }
  return out;
}

std::string Render(const OracleState& state) {
  return state.has_value() ? *state : std::string("<absent>");
}

/// Checks a recovered store against the shadow oracle. Resolves the in-doubt
/// key to whichever legal state it landed in (folding it into `committed`),
/// then requires exact agreement including a no-phantom full scan.
Status VerifyRecovered(kv::LsmKv* kv, WorkloadOutcome* out) {
  if (out->has_in_doubt) {
    OracleState observed;
    auto read = kv->Get(out->in_doubt_key);
    if (read.ok()) {
      observed = *read;
    } else if (!read.status().IsNotFound()) {
      return read.status();
    }
    if (observed != out->in_doubt_old && observed != out->in_doubt_new) {
      return Status::Corruption(
          "in-doubt key " + out->in_doubt_key + " reads " + Render(observed) +
          "; legal states are " + Render(out->in_doubt_old) + " (old) / " +
          Render(out->in_doubt_new) + " (new)");
    }
    out->committed[out->in_doubt_key] = observed;
    out->has_in_doubt = false;
  }
  for (const auto& [key, state] : out->committed) {
    auto read = kv->Get(key);
    if (state.has_value()) {
      if (!read.ok()) {
        return Status::Corruption("acknowledged key " + key + " lost: " +
                                  read.status().ToString());
      }
      if (*read != *state) {
        return Status::Corruption("acknowledged key " + key + " reads " +
                                  *read + ", expected " + *state);
      }
    } else {
      if (read.ok()) {
        return Status::Corruption("deleted key " + key + " resurrected as " +
                                  *read);
      }
      if (!read.status().IsNotFound()) return read.status();
    }
  }
  std::map<std::string, std::string> live;
  for (const auto& [key, state] : out->committed) {
    if (state.has_value()) live[key] = *state;
  }
  size_t seen = 0;
  auto it = kv->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    auto found = live.find(std::string(it->key()));
    if (found == live.end()) {
      return Status::Corruption("phantom key in scan: " +
                                std::string(it->key()));
    }
    if (found->second != it->value()) {
      return Status::Corruption("scan value mismatch for " + found->first);
    }
    ++seen;
  }
  if (seen != live.size()) {
    return Status::Corruption("scan saw " + std::to_string(seen) + " of " +
                              std::to_string(live.size()) + " live keys");
  }
  return Status::OK();
}

}  // namespace

Result<CrashSweepReport> RunLsmCrashSweep(const CrashSweepOptions& options) {
  CrashSweepReport report;
  const std::vector<Op> ops = MakeWorkload(options.seed, options.num_ops);
  const std::string repro =
      " [repro: dgf_difftest --crash-sweep --seed=" +
      std::to_string(options.seed) + "]";

  static std::atomic<int> counter{0};
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("dgf_crashsweep_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  std::filesystem::remove_all(root);
  struct Remover {
    std::filesystem::path path;
    ~Remover() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } remover{root};

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = root.string();
  dfs_options.block_size = 1 << 20;
  DGF_ASSIGN_OR_RETURN(auto dfs, fs::MiniDfs::Open(dfs_options));

  const auto open_store = [&](const std::string& dir) {
    kv::LsmKv::Options kv_options;
    kv_options.dfs = dfs;
    kv_options.dir = dir;
    // Tiny memtable and run budget: the workload crosses flush, inline
    // compaction, and manifest boundaries many times over.
    kv_options.memtable_flush_bytes = 512;
    kv_options.max_runs = 2;
    return kv::LsmKv::Open(kv_options);
  };

  // Recording pass: count every boundary the workload crosses.
  CrashPoints::StartRecording();
  {
    auto kv = open_store("/rec");
    if (!kv.ok()) {
      CrashPoints::Disarm();
      return kv.status();
    }
    WorkloadOutcome out = RunWorkload(kv->get(), ops);
    if (out.crashed || !out.error.ok()) {
      CrashPoints::Disarm();
      return Status::Internal("recording pass failed: " +
                              out.error.ToString());
    }
  }
  const std::vector<std::pair<std::string, int>> recorded =
      CrashPoints::StopRecording();
  report.points_covered = static_cast<int>(recorded.size());
  for (const char* required : kRequiredPoints) {
    const bool hit = std::any_of(
        recorded.begin(), recorded.end(),
        [&](const auto& entry) { return entry.first == required; });
    if (!hit) {
      report.failures.push_back("crash point never reached in recording: " +
                                std::string(required) + repro);
    }
  }

  // Sweep: one kill-and-reopen schedule per recorded (point, occurrence).
  int schedule_index = 0;
  for (const auto& [point, count] : recorded) {
    const int limit = std::min(count, options.max_occurrences_per_point);
    for (int occurrence = 1; occurrence <= limit; ++occurrence) {
      ++report.schedules_run;
      const std::string tag = point + "#" + std::to_string(occurrence);
      const std::string dir = "/sweep-" + std::to_string(schedule_index++);
      auto opened = open_store(dir);
      if (!opened.ok()) {
        report.failures.push_back(tag + ": open failed: " +
                                  opened.status().ToString() + repro);
        continue;
      }
      std::unique_ptr<kv::LsmKv> store = std::move(*opened);
      CrashPoints::Arm(point, occurrence);
      WorkloadOutcome out = RunWorkload(store.get(), ops);
      const bool fired = CrashPoints::Fired();
      CrashPoints::Disarm();
      if (!out.error.ok()) {
        report.failures.push_back(tag + ": workload error: " +
                                  out.error.ToString() + repro);
        continue;
      }
      if (!out.crashed || !fired) {
        report.failures.push_back(tag + ": armed crash never fired" + repro);
        continue;
      }
      if (options.verbose) {
        std::fprintf(stderr, "[crash-sweep] %s: crashed, reopening\n",
                     tag.c_str());
      }
      // "Kill" the process: discard all in-memory state, reopen from disk.
      store.reset();
      auto reopened = open_store(dir);
      if (!reopened.ok()) {
        report.failures.push_back(tag + ": reopen failed: " +
                                  reopened.status().ToString() + repro);
        continue;
      }
      store = std::move(*reopened);
      if (Status st = VerifyRecovered(store.get(), &out); !st.ok()) {
        report.failures.push_back(tag + ": " + st.ToString() + repro);
        continue;
      }
      // The recovered store must remain fully usable: new writes, a flush,
      // and a compaction (catches leaked run ids and stale on-disk files).
      Status post = [&]() -> Status {
        for (int i = 0; i < 12; ++i) {
          const std::string key = "post-" + std::to_string(i);
          const std::string value = "pv" + std::to_string(i);
          DGF_RETURN_IF_ERROR(store->Put(key, value));
          out.committed[key] = value;
        }
        DGF_RETURN_IF_ERROR(store->Flush());
        return store->Compact();
      }();
      if (!post.ok()) {
        report.failures.push_back(tag + ": store unusable after recovery: " +
                                  post.ToString() + repro);
        continue;
      }
      if (Status st = VerifyRecovered(store.get(), &out); !st.ok()) {
        report.failures.push_back(tag + ": after post-recovery writes: " +
                                  st.ToString() + repro);
      }
    }
  }
  return report;
}

}  // namespace dgf::testing
