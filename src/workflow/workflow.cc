#include "workflow/workflow.h"

#include <algorithm>
#include <deque>
#include <set>

namespace dgf::workflow {

Result<Workflow> Workflow::Create(std::string name,
                                  std::vector<Action> actions) {
  if (actions.empty()) {
    return Status::InvalidArgument("workflow needs at least one action");
  }
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].name.empty()) {
      return Status::InvalidArgument("action names must be non-empty");
    }
    if (!by_name.emplace(actions[i].name, static_cast<int>(i)).second) {
      return Status::InvalidArgument("duplicate action: " + actions[i].name);
    }
  }
  // Kahn's algorithm; also detects cycles and unknown dependencies.
  std::vector<int> in_degree(actions.size(), 0);
  std::vector<std::vector<int>> dependents(actions.size());
  for (size_t i = 0; i < actions.size(); ++i) {
    for (const std::string& dep : actions[i].depends_on) {
      auto it = by_name.find(dep);
      if (it == by_name.end()) {
        return Status::InvalidArgument("action '" + actions[i].name +
                                       "' depends on unknown '" + dep + "'");
      }
      dependents[static_cast<size_t>(it->second)].push_back(static_cast<int>(i));
      ++in_degree[i];
    }
  }
  std::deque<int> ready;
  for (size_t i = 0; i < actions.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  while (!ready.empty()) {
    const int current = ready.front();
    ready.pop_front();
    order.push_back(current);
    for (int dependent : dependents[static_cast<size_t>(current)]) {
      if (--in_degree[static_cast<size_t>(dependent)] == 0) {
        ready.push_back(dependent);
      }
    }
  }
  if (order.size() != actions.size()) {
    return Status::InvalidArgument("workflow '" + name + "' has a cycle");
  }
  return Workflow(std::move(name), std::move(actions), std::move(order));
}

Result<RunReport> Workflow::Run(query::QueryExecutor* executor) const {
  if (executor == nullptr) {
    return Status::InvalidArgument("workflow needs an executor");
  }
  RunReport report;
  std::map<std::string, bool> succeeded;  // name -> ran successfully
  std::vector<double> finish_time(actions_.size(), 0);

  for (int idx : order_) {
    const Action& action = actions_[static_cast<size_t>(idx)];
    ActionResult outcome;
    bool blocked = false;
    double ready_at = 0;
    for (const std::string& dep : action.depends_on) {
      auto it = succeeded.find(dep);
      if (it == succeeded.end() || !it->second) {
        blocked = true;
        break;
      }
      // Critical path: ready when the slowest dependency finishes.
      for (size_t j = 0; j < actions_.size(); ++j) {
        if (actions_[j].name == dep) {
          ready_at = std::max(ready_at, finish_time[j]);
        }
      }
    }
    if (blocked) {
      outcome.state = ActionResult::State::kSkipped;
      succeeded[action.name] = false;
      report.succeeded = false;
      report.actions.emplace(action.name, std::move(outcome));
      continue;
    }
    auto result = executor->Execute(action.query, action.path);
    if (result.ok()) {
      outcome.state = ActionResult::State::kSucceeded;
      const double duration = result->stats.total_seconds;
      report.sequential_seconds += duration;
      finish_time[static_cast<size_t>(idx)] = ready_at + duration;
      report.critical_path_seconds =
          std::max(report.critical_path_seconds,
                   finish_time[static_cast<size_t>(idx)]);
      outcome.result = std::move(*result);
      succeeded[action.name] = true;
    } else {
      outcome.state = ActionResult::State::kFailed;
      outcome.error = result.status();
      succeeded[action.name] = false;
      report.succeeded = false;
    }
    report.actions.emplace(action.name, std::move(outcome));
  }
  return report;
}

void Coordinator::Schedule(Workflow workflow, double period_s,
                           double first_fire_s) {
  entries_.push_back(Entry{std::move(workflow), period_s, first_fire_s});
}

Result<std::vector<Coordinator::Firing>> Coordinator::RunUntil(double until_s) {
  std::vector<Firing> firings;
  for (;;) {
    // Earliest due entry.
    Entry* next = nullptr;
    for (Entry& entry : entries_) {
      if (entry.next_fire_s > until_s) continue;
      if (next == nullptr || entry.next_fire_s < next->next_fire_s) {
        next = &entry;
      }
    }
    if (next == nullptr) break;
    now_ = next->next_fire_s;
    Firing firing;
    firing.workflow = next->workflow.name();
    firing.fire_time_s = now_;
    DGF_ASSIGN_OR_RETURN(firing.report, next->workflow.Run(executor_));
    firings.push_back(std::move(firing));
    next->next_fire_s += next->period_s;
  }
  now_ = until_s;
  return firings;
}

}  // namespace dgf::workflow
