#ifndef DGF_WORKFLOW_WORKFLOW_H_
#define DGF_WORKFLOW_WORKFLOW_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/executor.h"
#include "query/query.h"

namespace dgf::workflow {

/// One step of an analysis workflow: a query plus the names of steps that
/// must complete first. The analogue of one HiveQL statement inside a
/// translated stored procedure (Section 3.2: "The HiveQL statements in a
/// stored procedure are organized as work flow in Oozie").
struct Action {
  std::string name;
  query::Query query;
  std::vector<std::string> depends_on;
  /// Force an access path (default: executor's choice).
  std::optional<query::AccessPath> path;
};

/// Outcome of one action in a run.
struct ActionResult {
  enum class State { kSucceeded, kFailed, kSkipped };
  State state = State::kSkipped;
  Status error;                    // set when kFailed
  query::QueryResult result;       // set when kSucceeded
};

/// Report of one workflow execution.
struct RunReport {
  std::map<std::string, ActionResult> actions;
  /// Sum of per-action simulated durations (the sequential schedule Oozie
  /// uses for a linear stored procedure) and the DAG critical path (what a
  /// parallelism-aware scheduler could achieve).
  double sequential_seconds = 0;
  double critical_path_seconds = 0;
  bool succeeded = true;
};

/// A validated DAG of actions, executed in topological order.
///
/// Validation rejects duplicate names, unknown dependencies, and cycles. On
/// execution, a failed action fails the run and transitively skips its
/// dependents (Oozie's kill-on-error semantics); independent branches still
/// run.
class Workflow {
 public:
  static Result<Workflow> Create(std::string name, std::vector<Action> actions);

  /// Runs all actions through `executor`.
  Result<RunReport> Run(query::QueryExecutor* executor) const;

  const std::string& name() const { return name_; }
  int num_actions() const { return static_cast<int>(actions_.size()); }
  /// Topological execution order (stable: declaration order among ready
  /// actions).
  const std::vector<int>& order() const { return order_; }

 private:
  Workflow(std::string name, std::vector<Action> actions,
           std::vector<int> order)
      : name_(std::move(name)),
        actions_(std::move(actions)),
        order_(std::move(order)) {}

  std::string name_;
  std::vector<Action> actions_;
  std::vector<int> order_;
};

/// Oozie-style coordinator: fires workflows at fixed periods over a
/// simulated clock (the "executed at fixed frequencies" stored procedures —
/// data acquisition rate, power calculation, line loss analysis...).
class Coordinator {
 public:
  explicit Coordinator(query::QueryExecutor* executor) : executor_(executor) {}

  /// Schedules `workflow` every `period_s` simulated seconds starting at
  /// `first_fire_s`.
  void Schedule(Workflow workflow, double period_s, double first_fire_s = 0);

  struct Firing {
    std::string workflow;
    double fire_time_s = 0;
    RunReport report;
  };

  /// Advances the simulated clock to `until_s`, executing every due firing
  /// in time order. Returns the firings (with reports) in execution order.
  Result<std::vector<Firing>> RunUntil(double until_s);

  double now() const { return now_; }

 private:
  struct Entry {
    Workflow workflow;
    double period_s;
    double next_fire_s;
  };

  query::QueryExecutor* executor_;
  std::vector<Entry> entries_;
  double now_ = 0;
};

}  // namespace dgf::workflow

#endif  // DGF_WORKFLOW_WORKFLOW_H_
