#ifndef DGF_TABLE_PARTITION_H_
#define DGF_TABLE_PARTITION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fs/mini_dfs.h"
#include "query/predicate.h"
#include "table/table.h"

namespace dgf::table {

/// Hive-style table partitioning: one DFS directory per combination of
/// partition-column values (Section 2.2's "coarse-grained index").
///
/// A partitioned table lives under `desc.dir` with one subdirectory per
/// partition, e.g.
///     /warehouse/meter/time=2012-12-01/data-00000.txt
///     /warehouse/meter/time=2012-12-01/region=3/...   (multi-level)
/// Partition columns are real columns of the schema (unlike Hive we keep
/// them in the rows, which simplifies readers and costs a few bytes).
///
/// The paper's two observations both fall out of this implementation:
///   * pruning: a predicate on partition columns eliminates whole
///     directories before split enumeration;
///   * NameNode pressure: every partition adds directory + file metadata —
///     MiniDfs::MetadataMemoryBytes() shows the blow-up that makes
///     multidimensional partitioning impractical (1M directories for three
///     100-value dimensions).
class PartitionedTable {
 public:
  /// Declares a partitioned table: `partition_columns` must exist in
  /// `desc.schema`.
  static Result<std::unique_ptr<PartitionedTable>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, TableDesc desc,
      std::vector<std::string> partition_columns);

  /// Routes `row` to its partition, creating the partition writer on first
  /// use. Not thread-safe (one loader, as in Hive's INSERT).
  Status Append(const Row& row);

  /// Closes all partition writers.
  Status Close();

  /// Partition directories currently present (sorted).
  std::vector<std::string> PartitionDirs() const;
  int64_t NumPartitions() const { return static_cast<int64_t>(writers_.size()); }

  /// Splits of every partition surviving predicate pruning: a partition is
  /// pruned when the predicate provably rejects its partition values.
  /// Conditions on non-partition columns are ignored (the scan re-applies
  /// them). `pruned_partitions` (optional) reports how many were skipped.
  Result<std::vector<fs::FileSplit>> PrunedSplits(
      const query::Predicate& pred, uint64_t split_size = 0,
      int64_t* pruned_partitions = nullptr) const;

  const TableDesc& desc() const { return desc_; }
  const std::vector<std::string>& partition_columns() const {
    return partition_columns_;
  }

  /// Directory name fragment for one value, e.g. "time=2012-12-01".
  static std::string PartitionDirName(const std::string& column,
                                      const Value& value);

  /// Parses a partition path (relative fragments "col=value/...") back into
  /// typed values. Exposed for pruning and tests.
  Result<std::vector<Value>> ParsePartitionPath(const std::string& dir) const;

 private:
  PartitionedTable(std::shared_ptr<fs::MiniDfs> dfs, TableDesc desc,
                   std::vector<std::string> partition_columns,
                   std::vector<int> partition_fields)
      : dfs_(std::move(dfs)),
        desc_(std::move(desc)),
        partition_columns_(std::move(partition_columns)),
        partition_fields_(std::move(partition_fields)) {}

  std::string PartitionDir(const Row& row) const;

  std::shared_ptr<fs::MiniDfs> dfs_;
  TableDesc desc_;
  std::vector<std::string> partition_columns_;
  std::vector<int> partition_fields_;
  // partition dir -> open writer (and the set of known partitions).
  std::map<std::string, std::unique_ptr<TableWriter>> writers_;
};

}  // namespace dgf::table

#endif  // DGF_TABLE_PARTITION_H_
