#ifndef DGF_TABLE_STATISTICS_H_
#define DGF_TABLE_STATISTICS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dgf/policy_advisor.h"
#include "fs/mini_dfs.h"
#include "table/table.h"

namespace dgf::table {

/// One column's statistics from an ANALYZE pass.
struct ColumnStats {
  std::string name;
  DataType type = DataType::kInt64;
  /// Numeric min/max (for string columns the lexicographic bounds are not
  /// tracked; min/max stay 0).
  double min = 0;
  double max = 0;
  /// HyperLogLog distinct-count estimate (~1.6% error).
  double distinct = 0;
  uint64_t null_or_invalid = 0;
};

/// Table-level statistics: the Hive ANALYZE TABLE analogue.
struct TableStats {
  uint64_t num_rows = 0;
  uint64_t data_bytes = 0;
  double avg_row_bytes = 0;
  std::vector<ColumnStats> columns;

  /// Stats for `column`, or NotFound.
  Result<const ColumnStats*> Column(const std::string& name) const;

  /// Converts one column's stats into the advisor's input. Fails for string
  /// columns (not griddable).
  Result<core::PolicyAdvisor::DimensionStats> AdvisorDimension(
      const std::string& column) const;
};

/// Scans `desc` once and computes per-column min/max + distinct estimates —
/// the "distribution of the meter data" input of the paper's future-work
/// splitting-policy algorithm.
Result<TableStats> AnalyzeTable(const std::shared_ptr<fs::MiniDfs>& dfs,
                                const TableDesc& desc);

}  // namespace dgf::table

#endif  // DGF_TABLE_STATISTICS_H_
