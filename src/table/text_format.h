#ifndef DGF_TABLE_TEXT_FORMAT_H_
#define DGF_TABLE_TEXT_FORMAT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "table/record_reader.h"
#include "table/schema.h"

namespace dgf::table {

/// Writes rows to a TextFile ('|'-separated fields, '\n' row terminator).
class TextFileWriter {
 public:
  /// Creates `path` and returns a writer bound to `schema`.
  static Result<std::unique_ptr<TextFileWriter>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, const std::string& path, Schema schema);

  /// Appends one row.
  Status Append(const Row& row);

  /// Appends an already-serialized line (no trailing newline).
  Status AppendLine(std::string_view line);

  /// Offset where the next row will start.
  uint64_t Offset() const { return writer_->Offset(); }

  Status Close() { return writer_->Close(); }

 private:
  TextFileWriter(std::unique_ptr<fs::DfsWriter> writer, Schema schema)
      : writer_(std::move(writer)), schema_(std::move(schema)) {}

  std::unique_ptr<fs::DfsWriter> writer_;
  Schema schema_;
  // Reused line staging buffer: AppendLine runs once per row on every write
  // path, so it must not allocate per call.
  std::string write_buf_;
};

/// Reads the rows of one split of a TextFile (Hadoop line-boundary rules:
/// skip the partial first line unless at offset 0; finish the line straddling
/// the split end).
class TextSplitReader : public RecordReader {
 public:
  static Result<std::unique_ptr<TextSplitReader>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, const fs::FileSplit& split,
      Schema schema);

  /// Opens a reader over a byte range already known to start and end exactly
  /// at line boundaries (a DGFIndex Slice). No first-line discard; reads
  /// every line starting in [offset, end).
  static Result<std::unique_ptr<TextSplitReader>> OpenExactRange(
      std::shared_ptr<fs::MiniDfs> dfs, const fs::FileSplit& range,
      Schema schema);

  Result<bool> Next(Row* row) override;
  uint64_t CurrentBlockOffset() const override { return line_start_; }
  uint64_t CurrentRowInBlock() const override { return 0; }
  uint64_t BytesRead() const override { return bytes_read_; }

  /// Raw access used by index builders: like Next but exposes the line text.
  /// Exactly one of NextLine/NextLineView/Next should be used on a reader.
  Result<bool> NextLine(std::string* line);

  /// Zero-copy variant: `*line` points into the reader's internal buffer and
  /// is valid only until the next call on this reader.
  Result<bool> NextLineView(std::string_view* line);

 private:
  TextSplitReader(std::unique_ptr<fs::DfsReader> reader, fs::FileSplit split,
                  Schema schema);

  Status FillBuffer();

  std::unique_ptr<fs::DfsReader> reader_;
  fs::FileSplit split_;
  Schema schema_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
  uint64_t file_pos_ = 0;    // file offset of buffer_[buffer_pos_]
  uint64_t line_start_ = 0;  // file offset of the current record's line
  uint64_t bytes_read_ = 0;
  bool initialized_ = false;
  bool eof_ = false;
  bool exact_range_ = false;
  // Reused by Next() for zero-copy field splitting.
  std::vector<std::string_view> fields_scratch_;
};

}  // namespace dgf::table

#endif  // DGF_TABLE_TEXT_FORMAT_H_
