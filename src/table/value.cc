#include "table/value.h"

#include <cassert>
#include <charconv>
#include <cstdio>

#include "common/string_util.h"

namespace dgf::table {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "?";
}

Value Value::Date(int64_t days) {
  Value v(days);
  v.is_date_ = true;
  return v;
}

double Value::AsDouble() const {
  if (is_double()) return dbl();
  return static_cast<double>(int64());
}

std::string Value::ToText() const {
  if (is_string()) return str();
  if (is_date()) return FormatDate(int64());
  if (is_double()) {
    // Shortest representation that round-trips exactly: slice headers are
    // validated against re-parsed rows, so serialization must be lossless.
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), dbl());
    (void)ec;
    return std::string(buf, end);
  }
  return std::to_string(int64());
}

int Value::Compare(const Value& other) const {
  if (is_string() || other.is_string()) {
    assert(is_string() && other.is_string() &&
           "cannot compare string with non-string");
    const std::string& a = str();
    const std::string& b = other.str();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Exact path for int-like vs int-like; double path otherwise.
  if (!is_double() && !other.is_double()) {
    const int64_t a = int64();
    const int64_t b = other.int64();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

Result<Value> ParseValue(std::string_view text, DataType type) {
  switch (type) {
    case DataType::kInt64: {
      DGF_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      DGF_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(std::string(text));
    case DataType::kDate: {
      if (text.find('-') != std::string_view::npos) {
        DGF_ASSIGN_OR_RETURN(int64_t days, ParseDate(text));
        return Value::Date(days);
      }
      DGF_ASSIGN_OR_RETURN(int64_t days, ParseInt64(text));
      return Value::Date(days);
    }
  }
  return Status::InvalidArgument("unknown data type");
}

int64_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's algorithm; valid across the proleptic Gregorian calendar.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

std::string FormatDate(int64_t days) {
  // Inverse of DaysFromCivil.
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  const int64_t year = y + (m <= 2);
  return StringPrintf("%04lld-%02u-%02u", static_cast<long long>(year), m, d);
}

Result<int64_t> ParseDate(std::string_view text) {
  auto parts = SplitString(text, '-');
  if (parts.size() != 3) {
    return Status::InvalidArgument("bad date: " + std::string(text));
  }
  DGF_ASSIGN_OR_RETURN(int64_t year, ParseInt64(parts[0]));
  DGF_ASSIGN_OR_RETURN(int64_t month, ParseInt64(parts[1]));
  DGF_ASSIGN_OR_RETURN(int64_t day, ParseInt64(parts[2]));
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("bad date: " + std::string(text));
  }
  return DaysFromCivil(static_cast<int>(year), static_cast<int>(month),
                       static_cast<int>(day));
}

}  // namespace dgf::table
