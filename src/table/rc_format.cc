#include "table/rc_format.h"

#include <algorithm>
#include <cstring>

#include "common/encoding.h"

namespace dgf::table {
namespace {

constexpr size_t kSyncLen = sizeof(kRcSyncMarker);
constexpr size_t kReadChunk = 256 * 1024;

Value DefaultValueFor(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return Value::Int64(0);
    case DataType::kDouble:
      return Value::Double(0.0);
    case DataType::kString:
      return Value::String("");
    case DataType::kDate:
      return Value::Date(0);
  }
  return Value::Int64(0);
}

}  // namespace

RcFileWriter::RcFileWriter(std::unique_ptr<fs::DfsWriter> writer, Schema schema,
                           Options options)
    : writer_(std::move(writer)),
      schema_(std::move(schema)),
      options_(options),
      columns_(static_cast<size_t>(schema_.num_fields())) {}

Result<std::unique_ptr<RcFileWriter>> RcFileWriter::Create(
    std::shared_ptr<fs::MiniDfs> dfs, const std::string& path, Schema schema,
    Options options) {
  if (options.rows_per_group <= 0) {
    return Status::InvalidArgument("rows_per_group must be positive");
  }
  DGF_ASSIGN_OR_RETURN(auto writer, dfs->Create(path));
  return std::unique_ptr<RcFileWriter>(
      new RcFileWriter(std::move(writer), std::move(schema), options));
}

Status RcFileWriter::Append(const Row& row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t c = 0; c < row.size(); ++c) {
    PutLengthPrefixed(&columns_[c], row[c].ToText());
  }
  if (++pending_rows_ >= options_.rows_per_group) return FlushGroup();
  return Status::OK();
}

Status RcFileWriter::FlushGroup() {
  if (pending_rows_ == 0) return Status::OK();
  std::string out;
  out.append(kRcSyncMarker, kSyncLen);
  PutVarint64(&out, static_cast<uint64_t>(pending_rows_));
  PutVarint64(&out, static_cast<uint64_t>(columns_.size()));
  for (auto& column : columns_) {
    PutVarint64(&out, column.size());
    out.append(column);
    column.clear();
  }
  pending_rows_ = 0;
  return writer_->Append(out);
}

Status RcFileWriter::Flush() { return FlushGroup(); }

Status RcFileWriter::Close() {
  DGF_RETURN_IF_ERROR(FlushGroup());
  return writer_->Close();
}

RcSplitReader::RcSplitReader(std::unique_ptr<fs::DfsReader> reader,
                             fs::FileSplit split, Schema schema,
                             std::optional<std::vector<int>> projection)
    : reader_(std::move(reader)),
      split_(std::move(split)),
      schema_(std::move(schema)),
      projection_(std::move(projection)),
      scan_pos_(split_.offset) {}

Result<std::unique_ptr<RcSplitReader>> RcSplitReader::Open(
    std::shared_ptr<fs::MiniDfs> dfs, const fs::FileSplit& split, Schema schema,
    std::optional<std::vector<int>> projection) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(split.path));
  return std::unique_ptr<RcSplitReader>(new RcSplitReader(
      std::move(reader), split, std::move(schema), std::move(projection)));
}

void RcSplitReader::SetRowFilter(
    std::vector<std::pair<uint64_t, std::vector<uint64_t>>> groups_and_rows) {
  std::sort(groups_and_rows.begin(), groups_and_rows.end());
  row_filter_ = std::move(groups_and_rows);
  filter_pos_ = 0;
}

Status RcSplitReader::EnsureBuffered(uint64_t file_offset, uint64_t length) {
  // Drop bytes before file_offset; extend until [file_offset, +length) is in.
  if (file_offset > buffer_start_) {
    const uint64_t drop =
        std::min<uint64_t>(file_offset - buffer_start_, buffer_.size());
    buffer_.erase(0, drop);
    buffer_start_ += drop;
    // Empty buffer: jump straight to the requested offset instead of reading
    // the gap (otherwise a split at offset X would fetch the whole prefix).
    if (buffer_.empty()) buffer_start_ = file_offset;
  }
  while (buffer_start_ + buffer_.size() < file_offset + length) {
    const uint64_t read_at = buffer_start_ + buffer_.size();
    const uint64_t needed = file_offset + length - read_at;
    // Read ahead up to the chunk size, but never past the split end unless a
    // specific request (a straddling row group) demands it: DGFIndex Slices
    // are exact group runs and must not be billed for neighbouring bytes.
    uint64_t want = std::max<uint64_t>(needed, std::min<uint64_t>(
        kReadChunk, split_.end() > read_at ? split_.end() - read_at : 0));
    want = std::max<uint64_t>(want, needed);
    std::string chunk;
    DGF_RETURN_IF_ERROR(reader_->Pread(read_at, want, &chunk));
    if (chunk.empty()) break;  // end of file
    bytes_read_ += chunk.size();
    buffer_ += chunk;
  }
  return Status::OK();
}

Result<int64_t> RcSplitReader::FindSync(uint64_t from_offset) {
  uint64_t pos = from_offset;
  // A group belongs to this split only if its sync STARTS before split.end(),
  // so the search never needs bytes past end + marker length.
  const uint64_t limit = split_.end() + kSyncLen;
  for (;;) {
    if (pos >= split_.end()) return -1;
    DGF_RETURN_IF_ERROR(
        EnsureBuffered(pos, std::min<uint64_t>(kReadChunk, limit - pos)));
    const uint64_t available =
        std::min<uint64_t>(buffer_start_ + buffer_.size(), limit);
    if (pos + kSyncLen > available) return -1;  // EOF / split end, no sync
    const char* base = buffer_.data() + (pos - buffer_start_);
    const size_t searchable = static_cast<size_t>(available - pos);
    const void* hit = memmem(base, searchable, kRcSyncMarker, kSyncLen);
    if (hit != nullptr) {
      const auto at = static_cast<uint64_t>(
          pos + (static_cast<const char*>(hit) - base));
      return at < split_.end() ? static_cast<int64_t>(at) : -1;
    }
    // No sync in the buffered window; keep the last kSyncLen-1 bytes in case
    // a marker straddles the chunk boundary.
    pos = available - (kSyncLen - 1);
    if (buffer_start_ + buffer_.size() >= reader_->Length() ||
        available >= limit) {
      return -1;
    }
  }
}

Result<bool> RcSplitReader::LoadNextGroup() {
  for (;;) {
    if (done_) return false;
    DGF_ASSIGN_OR_RETURN(int64_t sync_at, FindSync(scan_pos_));
    if (sync_at < 0 || static_cast<uint64_t>(sync_at) >= split_.end()) {
      done_ = true;
      return false;
    }
    const uint64_t group_start = static_cast<uint64_t>(sync_at);
    uint64_t cursor = group_start + kSyncLen;
    // Parse the header; widths are small, so buffer a generous window first.
    DGF_RETURN_IF_ERROR(EnsureBuffered(cursor, 64));
    auto view = [&](uint64_t off) {
      return std::string_view(buffer_.data() + (off - buffer_start_),
                              buffer_.size() - (off - buffer_start_));
    };
    std::string_view header = view(cursor);
    const char* header_begin = header.data();
    auto num_rows = GetVarint64(&header);
    if (!num_rows.ok()) return num_rows.status();
    auto num_cols = GetVarint64(&header);
    if (!num_cols.ok()) return num_cols.status();
    cursor += static_cast<uint64_t>(header.data() - header_begin);
    if (*num_cols != static_cast<uint64_t>(schema_.num_fields())) {
      return Status::Corruption("RC group column count mismatch");
    }

    // Decode (or skip) each column.
    std::vector<std::vector<std::string_view>> decoded(
        static_cast<size_t>(schema_.num_fields()));
    std::vector<std::string> column_buffers(
        static_cast<size_t>(schema_.num_fields()));
    std::vector<bool> wanted(static_cast<size_t>(schema_.num_fields()),
                             !projection_.has_value());
    if (projection_.has_value()) {
      for (int c : *projection_) wanted[static_cast<size_t>(c)] = true;
    }
    for (int c = 0; c < schema_.num_fields(); ++c) {
      DGF_RETURN_IF_ERROR(EnsureBuffered(cursor, 16));
      std::string_view len_view = view(cursor);
      const char* len_begin = len_view.data();
      auto col_bytes = GetVarint64(&len_view);
      if (!col_bytes.ok()) return col_bytes.status();
      cursor += static_cast<uint64_t>(len_view.data() - len_begin);
      if (wanted[static_cast<size_t>(c)]) {
        DGF_RETURN_IF_ERROR(EnsureBuffered(cursor, *col_bytes));
        if (buffer_start_ + buffer_.size() < cursor + *col_bytes) {
          return Status::Corruption("truncated RC column");
        }
        // Copy out: later EnsureBuffered calls may shift the buffer.
        column_buffers[static_cast<size_t>(c)].assign(
            buffer_.data() + (cursor - buffer_start_), *col_bytes);
      }
      cursor += *col_bytes;
    }

    group_rows_.clear();
    group_rows_.resize(*num_rows);
    for (uint64_t r = 0; r < *num_rows; ++r) {
      Row& row = group_rows_[r];
      row.reserve(static_cast<size_t>(schema_.num_fields()));
      for (int c = 0; c < schema_.num_fields(); ++c) {
        row.push_back(DefaultValueFor(schema_.field(c).type));
      }
    }
    for (int c = 0; c < schema_.num_fields(); ++c) {
      if (!wanted[static_cast<size_t>(c)]) continue;
      std::string_view data = column_buffers[static_cast<size_t>(c)];
      for (uint64_t r = 0; r < *num_rows; ++r) {
        DGF_ASSIGN_OR_RETURN(std::string_view cell, GetLengthPrefixed(&data));
        DGF_ASSIGN_OR_RETURN(
            Value value, ParseValue(cell, schema_.field(c).type));
        group_rows_[r][static_cast<size_t>(c)] = std::move(value);
      }
    }
    group_offset_ = group_start;
    next_row_ = 0;
    scan_pos_ = cursor;

    if (row_filter_.has_value()) {
      // Skip groups the bitmap filter does not mention.
      while (filter_pos_ < row_filter_->size() &&
             (*row_filter_)[filter_pos_].first < group_start) {
        ++filter_pos_;
      }
      if (filter_pos_ >= row_filter_->size() ||
          (*row_filter_)[filter_pos_].first != group_start) {
        continue;  // group filtered out entirely
      }
      current_filter_rows_ = (*row_filter_)[filter_pos_].second;
      filter_row_pos_ = 0;
    }
    return true;
  }
}

Result<bool> RcSplitReader::Next(Row* row) {
  for (;;) {
    if (group_rows_.empty() || next_row_ >= group_rows_.size()) {
      DGF_ASSIGN_OR_RETURN(bool more, LoadNextGroup());
      if (!more) return false;
    }
    if (!row_filter_.has_value()) {
      row_in_group_ = next_row_;
      *row = group_rows_[next_row_++];
      return true;
    }
    // Bitmap-filtered path: emit only listed row ordinals.
    if (filter_row_pos_ >= current_filter_rows_.size()) {
      next_row_ = group_rows_.size();  // exhaust group, load next
      continue;
    }
    const uint64_t target = current_filter_rows_[filter_row_pos_++];
    if (target >= group_rows_.size()) {
      return Status::Corruption("bitmap row ordinal out of range");
    }
    row_in_group_ = target;
    next_row_ = static_cast<size_t>(target) + 1;
    *row = group_rows_[static_cast<size_t>(target)];
    return true;
  }
}

}  // namespace dgf::table
