#include "table/text_format.h"

#include <algorithm>

namespace dgf::table {
namespace {

constexpr size_t kReadChunk = 256 * 1024;

}  // namespace

Result<std::unique_ptr<TextFileWriter>> TextFileWriter::Create(
    std::shared_ptr<fs::MiniDfs> dfs, const std::string& path, Schema schema) {
  DGF_ASSIGN_OR_RETURN(auto writer, dfs->Create(path));
  return std::unique_ptr<TextFileWriter>(
      new TextFileWriter(std::move(writer), std::move(schema)));
}

Status TextFileWriter::Append(const Row& row) {
  return AppendLine(FormatRowText(row));
}

Status TextFileWriter::AppendLine(std::string_view line) {
  write_buf_.clear();
  write_buf_.reserve(line.size() + 1);
  write_buf_.append(line);
  write_buf_.push_back('\n');
  return writer_->Append(write_buf_);
}

TextSplitReader::TextSplitReader(std::unique_ptr<fs::DfsReader> reader,
                                 fs::FileSplit split, Schema schema)
    : reader_(std::move(reader)),
      split_(std::move(split)),
      schema_(std::move(schema)),
      file_pos_(split_.offset) {}

Result<std::unique_ptr<TextSplitReader>> TextSplitReader::Open(
    std::shared_ptr<fs::MiniDfs> dfs, const fs::FileSplit& split,
    Schema schema) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(split.path));
  return std::unique_ptr<TextSplitReader>(
      new TextSplitReader(std::move(reader), split, std::move(schema)));
}

Status TextSplitReader::FillBuffer() {
  // Compact consumed bytes and pull the next chunk from the file.
  if (buffer_pos_ > 0) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  const uint64_t read_at = file_pos_ + buffer_.size();
  uint64_t want = kReadChunk;
  if (exact_range_) {
    // Slices end exactly at line boundaries: never read past the range.
    if (read_at >= split_.end()) {
      eof_ = true;
      return Status::OK();
    }
    want = std::min<uint64_t>(want, split_.end() - read_at);
  } else if (read_at >= split_.end()) {
    // Only finishing the line that straddles the split end; read small.
    want = 4096;
  }
  std::string chunk;
  DGF_RETURN_IF_ERROR(reader_->Pread(read_at, want, &chunk));
  if (chunk.empty()) {
    eof_ = true;
  } else {
    bytes_read_ += chunk.size();
    buffer_ += chunk;
  }
  return Status::OK();
}

Result<std::unique_ptr<TextSplitReader>> TextSplitReader::OpenExactRange(
    std::shared_ptr<fs::MiniDfs> dfs, const fs::FileSplit& range,
    Schema schema) {
  DGF_ASSIGN_OR_RETURN(auto reader, Open(std::move(dfs), range, std::move(schema)));
  reader->exact_range_ = true;
  return reader;
}

Result<bool> TextSplitReader::NextLineView(std::string_view* line) {
  if (exact_range_) {
    // Slice semantics: boundaries are line boundaries; no discard, and the
    // range end is exclusive.
    if (file_pos_ >= split_.end()) return false;
  }
  if (!initialized_) {
    initialized_ = true;
    if (!exact_range_ && split_.offset > 0) {
      // Hadoop rule: a reader at offset > 0 discards the (possibly partial)
      // line in progress; it belongs to the previous split.
      std::string_view discard;
      DGF_ASSIGN_OR_RETURN(bool have, NextLineView(&discard));
      if (!have) return false;
    }
  }
  // Hadoop's ownership rule: a reader consumes lines starting at offsets in
  // (split.offset, split.end] (plus offset 0 for the first split). The line
  // starting exactly at split.end is ours because the next split's reader
  // unconditionally discards its first line.
  if (file_pos_ > split_.end()) return false;
  for (;;) {
    const size_t nl = buffer_.find('\n', buffer_pos_);
    if (nl != std::string::npos) {
      line_start_ = file_pos_;
      *line = std::string_view(buffer_).substr(buffer_pos_, nl - buffer_pos_);
      file_pos_ += (nl - buffer_pos_) + 1;
      buffer_pos_ = nl + 1;
      return true;
    }
    if (eof_) {
      if (buffer_pos_ >= buffer_.size()) return false;
      // Final line without trailing newline.
      line_start_ = file_pos_;
      *line = std::string_view(buffer_).substr(buffer_pos_);
      file_pos_ += buffer_.size() - buffer_pos_;
      buffer_pos_ = buffer_.size();
      return true;
    }
    DGF_RETURN_IF_ERROR(FillBuffer());
  }
}

Result<bool> TextSplitReader::NextLine(std::string* line) {
  std::string_view view;
  DGF_ASSIGN_OR_RETURN(bool have, NextLineView(&view));
  if (!have) return false;
  line->assign(view);
  return true;
}

Result<bool> TextSplitReader::Next(Row* row) {
  std::string_view line;
  DGF_ASSIGN_OR_RETURN(bool have, NextLineView(&line));
  if (!have) return false;
  DGF_RETURN_IF_ERROR(ParseRowTextInto(line, schema_, row, &fields_scratch_));
  return true;
}

}  // namespace dgf::table
