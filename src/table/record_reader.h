#ifndef DGF_TABLE_RECORD_READER_H_
#define DGF_TABLE_RECORD_READER_H_

#include <cstdint>

#include "common/result.h"
#include "table/schema.h"

namespace dgf::table {

/// Streaming reader of the rows inside one split.
///
/// Mirrors Hadoop's RecordReader contract for splittable files: a reader
/// yields every record whose *start* lies inside its split, which may require
/// reading past the split end for the final record; records starting before
/// the split are skipped by the next-lower split's reader.
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Fetches the next row. Returns false at end of split, or an error status.
  virtual Result<bool> Next(Row* row) = 0;

  /// File offset of the storage block containing the current row — the
  /// BLOCK_OFFSET_INSIDE_FILE virtual column that Hive index builders use.
  /// For text files this is the line start; for RC files the row-group start.
  virtual uint64_t CurrentBlockOffset() const = 0;

  /// Ordinal of the current row within its block (always 0 for text files).
  /// Bitmap indexes record this.
  virtual uint64_t CurrentRowInBlock() const = 0;

  /// Bytes pulled from the DFS so far (I/O accounting for the benches).
  virtual uint64_t BytesRead() const = 0;
};

}  // namespace dgf::table

#endif  // DGF_TABLE_RECORD_READER_H_
