#include "table/statistics.h"

#include <limits>

#include "common/hyperloglog.h"

namespace dgf::table {

Result<const ColumnStats*> TableStats::Column(const std::string& name) const {
  for (const ColumnStats& column : columns) {
    if (ColumnNameEquals(column.name, name)) return &column;
  }
  return Status::NotFound("no stats for column " + name);
}

Result<core::PolicyAdvisor::DimensionStats> TableStats::AdvisorDimension(
    const std::string& column) const {
  DGF_ASSIGN_OR_RETURN(const ColumnStats* stats, Column(column));
  if (stats->type == DataType::kString) {
    return Status::NotSupported("string columns cannot be grid dimensions: " +
                                column);
  }
  core::PolicyAdvisor::DimensionStats out;
  out.column = stats->name;
  out.type = stats->type;
  out.min = stats->min;
  out.max = stats->max;
  out.distinct = std::max(1.0, stats->distinct);
  return out;
}

Result<TableStats> AnalyzeTable(const std::shared_ptr<fs::MiniDfs>& dfs,
                                const TableDesc& desc) {
  TableStats stats;
  const int num_fields = desc.schema.num_fields();
  std::vector<HyperLogLog> sketches(static_cast<size_t>(num_fields));
  stats.columns.resize(static_cast<size_t>(num_fields));
  for (int c = 0; c < num_fields; ++c) {
    auto& column = stats.columns[static_cast<size_t>(c)];
    column.name = desc.schema.field(c).name;
    column.type = desc.schema.field(c).type;
    column.min = std::numeric_limits<double>::infinity();
    column.max = -std::numeric_limits<double>::infinity();
  }

  DGF_ASSIGN_OR_RETURN(auto splits, GetTableSplits(dfs, desc));
  Row row;
  for (const auto& split : splits) {
    DGF_ASSIGN_OR_RETURN(auto reader, OpenSplitReader(dfs, desc, split));
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      ++stats.num_rows;
      for (int c = 0; c < num_fields; ++c) {
        auto& column = stats.columns[static_cast<size_t>(c)];
        const Value& value = row[static_cast<size_t>(c)];
        sketches[static_cast<size_t>(c)].Add(value.ToText());
        if (!value.is_string()) {
          const double v = value.AsDouble();
          column.min = std::min(column.min, v);
          column.max = std::max(column.max, v);
        }
      }
    }
    stats.data_bytes += reader->BytesRead();
  }
  for (int c = 0; c < num_fields; ++c) {
    auto& column = stats.columns[static_cast<size_t>(c)];
    column.distinct = sketches[static_cast<size_t>(c)].Estimate();
    if (column.min > column.max) {  // empty table or string column
      column.min = 0;
      column.max = 0;
    }
  }
  if (stats.num_rows > 0) {
    stats.avg_row_bytes =
        static_cast<double>(stats.data_bytes) / stats.num_rows;
  }
  return stats;
}

}  // namespace dgf::table
