#include "table/partition.h"

#include <algorithm>

#include "common/string_util.h"

namespace dgf::table {

Result<std::unique_ptr<PartitionedTable>> PartitionedTable::Create(
    std::shared_ptr<fs::MiniDfs> dfs, TableDesc desc,
    std::vector<std::string> partition_columns) {
  if (partition_columns.empty()) {
    return Status::InvalidArgument("need at least one partition column");
  }
  std::vector<int> fields;
  for (const std::string& column : partition_columns) {
    DGF_ASSIGN_OR_RETURN(int field, desc.schema.FieldIndex(column));
    fields.push_back(field);
  }
  return std::unique_ptr<PartitionedTable>(
      new PartitionedTable(std::move(dfs), std::move(desc),
                           std::move(partition_columns), std::move(fields)));
}

std::string PartitionedTable::PartitionDirName(const std::string& column,
                                               const Value& value) {
  return column + "=" + value.ToText();
}

std::string PartitionedTable::PartitionDir(const Row& row) const {
  std::string dir = desc_.dir;
  for (size_t i = 0; i < partition_fields_.size(); ++i) {
    dir += "/";
    dir += PartitionDirName(
        partition_columns_[i],
        row[static_cast<size_t>(partition_fields_[i])]);
  }
  return dir;
}

Status PartitionedTable::Append(const Row& row) {
  if (static_cast<int>(row.size()) != desc_.schema.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  const std::string dir = PartitionDir(row);
  auto it = writers_.find(dir);
  if (it == writers_.end()) {
    TableDesc partition_desc = desc_;
    partition_desc.dir = dir;
    DGF_ASSIGN_OR_RETURN(auto writer,
                         TableWriter::Create(dfs_, partition_desc));
    it = writers_.emplace(dir, std::move(writer)).first;
  }
  return it->second->Append(row);
}

Status PartitionedTable::Close() {
  for (auto& [dir, writer] : writers_) {
    (void)dir;
    DGF_RETURN_IF_ERROR(writer->Close());
  }
  return Status::OK();
}

std::vector<std::string> PartitionedTable::PartitionDirs() const {
  std::vector<std::string> dirs;
  dirs.reserve(writers_.size());
  for (const auto& [dir, writer] : writers_) {
    (void)writer;
    dirs.push_back(dir);
  }
  return dirs;
}

Result<std::vector<Value>> PartitionedTable::ParsePartitionPath(
    const std::string& dir) const {
  // dir = "<table dir>/col0=v0/col1=v1..."
  if (!StartsWith(dir, desc_.dir + "/")) {
    return Status::InvalidArgument("not a partition of this table: " + dir);
  }
  const std::string relative = dir.substr(desc_.dir.size() + 1);
  auto fragments = SplitString(relative, '/');
  if (fragments.size() != partition_columns_.size()) {
    return Status::Corruption("partition depth mismatch: " + dir);
  }
  std::vector<Value> values;
  for (size_t i = 0; i < fragments.size(); ++i) {
    const std::string_view fragment = fragments[i];
    const size_t eq = fragment.find('=');
    if (eq == std::string_view::npos ||
        !ColumnNameEquals(fragment.substr(0, eq), partition_columns_[i])) {
      return Status::Corruption("bad partition fragment: " +
                                std::string(fragment));
    }
    const int field = partition_fields_[i];
    DGF_ASSIGN_OR_RETURN(
        Value value,
        ParseValue(fragment.substr(eq + 1), desc_.schema.field(field).type));
    values.push_back(std::move(value));
  }
  return values;
}

Result<std::vector<fs::FileSplit>> PartitionedTable::PrunedSplits(
    const query::Predicate& pred, uint64_t split_size,
    int64_t* pruned_partitions) const {
  if (pruned_partitions != nullptr) *pruned_partitions = 0;
  std::vector<fs::FileSplit> out;
  for (const auto& [dir, writer] : writers_) {
    (void)writer;
    DGF_ASSIGN_OR_RETURN(std::vector<Value> values, ParsePartitionPath(dir));
    bool pruned = false;
    for (size_t i = 0; i < values.size(); ++i) {
      const query::ColumnRange* range = pred.FindColumn(partition_columns_[i]);
      if (range != nullptr && !range->Matches(values[i])) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      if (pruned_partitions != nullptr) ++*pruned_partitions;
      continue;
    }
    DGF_ASSIGN_OR_RETURN(auto splits,
                         dfs_->GetSplitsForPrefix(dir + "/data-", split_size));
    out.insert(out.end(), splits.begin(), splits.end());
  }
  return out;
}

}  // namespace dgf::table
