#include "table/schema.h"

#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"

namespace dgf::table {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

bool ColumnNameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (ColumnNameEquals(fields_[i].name, name)) return static_cast<int>(i);
  }
  return Status::NotFound("no column named '" + name + "'");
}

int Schema::FieldIndexOrDie(const std::string& name) const {
  auto idx = FieldIndex(name);
  DGF_CHECK(idx.ok()) << idx.status().ToString();
  return *idx;
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

std::string FormatRowText(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += row[i].ToText();
  }
  return out;
}

Result<Row> ParseRowText(std::string_view line, const Schema& schema) {
  Row row;
  std::vector<std::string_view> scratch;
  DGF_RETURN_IF_ERROR(ParseRowTextInto(line, schema, &row, &scratch));
  return row;
}

Status ParseRowTextInto(std::string_view line, const Schema& schema, Row* row,
                        std::vector<std::string_view>* scratch) {
  SplitStringInto(line, '|', scratch);
  if (static_cast<int>(scratch->size()) != schema.num_fields()) {
    return Status::Corruption(
        StringPrintf("row has %zu fields, schema has %d: ", scratch->size(),
                     schema.num_fields()) +
        std::string(line.substr(0, 80)));
  }
  row->clear();
  row->reserve(scratch->size());
  for (int i = 0; i < schema.num_fields(); ++i) {
    DGF_ASSIGN_OR_RETURN(
        Value v,
        ParseValue((*scratch)[static_cast<size_t>(i)], schema.field(i).type));
    row->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace dgf::table
