#include "table/table.h"

#include "common/string_util.h"
#include "table/rc_format.h"
#include "table/text_format.h"

namespace dgf::table {

const char* FileFormatName(FileFormat format) {
  switch (format) {
    case FileFormat::kText:
      return "TextFile";
    case FileFormat::kRcFile:
      return "RCFile";
  }
  return "?";
}

std::string TableDesc::DataFilePath(int file_index) const {
  const char* ext = format == FileFormat::kText ? "txt" : "rc";
  return dir + "/" + StringPrintf("data-%05d.%s", file_index, ext);
}

Status Catalog::CreateTable(TableDesc desc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(desc.name) > 0) {
    return Status::AlreadyExists("table exists: " + desc.name);
  }
  if (desc.dir.empty() || desc.dir.front() != '/') {
    return Status::InvalidArgument("table dir must be absolute: " + desc.dir);
  }
  tables_[desc.name] = std::move(desc);
  return Status::OK();
}

Result<TableDesc> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  TableDesc desc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("no table named " + name);
    desc = it->second;
    tables_.erase(it);
  }
  for (const auto& file : dfs_->ListFiles(desc.dir + "/")) {
    DGF_RETURN_IF_ERROR(dfs_->Delete(file.path));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, desc] : tables_) {
    (void)desc;
    names.push_back(name);
  }
  return names;
}

TableWriter::TableWriter(std::shared_ptr<fs::MiniDfs> dfs, TableDesc desc,
                         Options options)
    : dfs_(std::move(dfs)),
      desc_(std::move(desc)),
      options_(options),
      next_file_index_(options.first_file_index) {}

TableWriter::~TableWriter() = default;

Result<std::unique_ptr<TableWriter>> TableWriter::Create(
    std::shared_ptr<fs::MiniDfs> dfs, const TableDesc& desc, Options options) {
  return std::unique_ptr<TableWriter>(
      new TableWriter(std::move(dfs), desc, options));
}

uint64_t TableWriter::CurrentOffset() const {
  if (text_ != nullptr) return text_->Offset();
  if (rc_ != nullptr) return rc_->Offset();
  return 0;
}

Status TableWriter::EnsureOpen() {
  if (text_ != nullptr || rc_ != nullptr) return Status::OK();
  const std::string path = desc_.DataFilePath(next_file_index_++);
  if (desc_.format == FileFormat::kText) {
    DGF_ASSIGN_OR_RETURN(text_,
                         TextFileWriter::Create(dfs_, path, desc_.schema));
  } else {
    RcFileWriter::Options rc_options;
    rc_options.rows_per_group = options_.rc_rows_per_group;
    DGF_ASSIGN_OR_RETURN(
        rc_, RcFileWriter::Create(dfs_, path, desc_.schema, rc_options));
  }
  return Status::OK();
}

Status TableWriter::CloseCurrent() {
  if (text_ != nullptr) {
    DGF_RETURN_IF_ERROR(text_->Close());
    text_.reset();
  }
  if (rc_ != nullptr) {
    DGF_RETURN_IF_ERROR(rc_->Close());
    rc_.reset();
  }
  return Status::OK();
}

Status TableWriter::RotateIfNeeded() {
  if (CurrentOffset() >= options_.max_file_bytes) return CloseCurrent();
  return Status::OK();
}

Status TableWriter::Append(const Row& row) {
  DGF_RETURN_IF_ERROR(EnsureOpen());
  if (text_ != nullptr) {
    DGF_RETURN_IF_ERROR(text_->Append(row));
  } else {
    DGF_RETURN_IF_ERROR(rc_->Append(row));
  }
  ++rows_written_;
  return RotateIfNeeded();
}

Status TableWriter::Close() { return CloseCurrent(); }

Result<std::unique_ptr<RecordReader>> OpenSplitReader(
    std::shared_ptr<fs::MiniDfs> dfs, const TableDesc& desc,
    const fs::FileSplit& split, std::optional<std::vector<int>> projection) {
  if (desc.format == FileFormat::kText) {
    DGF_ASSIGN_OR_RETURN(
        auto reader, TextSplitReader::Open(std::move(dfs), split, desc.schema));
    return std::unique_ptr<RecordReader>(std::move(reader));
  }
  DGF_ASSIGN_OR_RETURN(auto reader,
                       RcSplitReader::Open(std::move(dfs), split, desc.schema,
                                           std::move(projection)));
  return std::unique_ptr<RecordReader>(std::move(reader));
}

Result<std::vector<fs::FileSplit>> GetTableSplits(
    const std::shared_ptr<fs::MiniDfs>& dfs, const TableDesc& desc,
    uint64_t split_size) {
  return dfs->GetSplitsForPrefix(desc.dir + "/data-", split_size);
}

Result<uint64_t> TableDataBytes(const std::shared_ptr<fs::MiniDfs>& dfs,
                                const TableDesc& desc) {
  uint64_t total = 0;
  for (const auto& file : dfs->ListFiles(desc.dir + "/data-")) {
    total += file.length;
  }
  return total;
}

}  // namespace dgf::table
